//! # apples
//!
//! Fair comparisons in heterogeneous systems evaluation — a library
//! reproduction of *"Of Apples and Oranges: Fair Comparisons in
//! Heterogenous Systems Evaluation"* (Sadok, Panda, Sherry — HotNets
//! 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`metrics`]: typed quantities; performance metrics (direction +
//!   scalability); cost metrics with the paper's three properties
//!   (context-independence, quantifiability, end-to-end coverage);
//!   the Table 1 taxonomy; released pricing models (§3.1).
//! - [`core`]: the methodology engine — operating regimes (P4), Pareto
//!   dominance and comparison regions (Fig 2), baseline scaling with the
//!   §4.2.1 pitfall guards (P5/P6), non-scalable comparability (P7),
//!   Pareto frontiers, and evaluation reports.
//! - [`simnet`]: the discrete-event packet-processing simulator with
//!   heterogeneous device models (CPU, SmartNIC, programmable switch)
//!   and network functions (ACL firewall, NAT, DPI, load balancer, flow
//!   monitor).
//! - [`power`]: utilization-driven power models, energy metering, and
//!   full cost inventories.
//! - [`workload`]: seeded packet workloads (RFC 2544 sizes, IMIX,
//!   Poisson/bursty arrivals, Zipf flows).
//!
//! ## Quickstart
//!
//! ```
//! use apples::prelude::*;
//!
//! // Two measured systems on the (throughput, power) plane:
//! let proposed = System::new(
//!     "firewall+switch",
//!     vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
//!     OperatingPoint::new(
//!         PerfMetric::throughput_bps().value(gbps(100.0)),
//!         CostMetric::power_draw().value(watts(200.0)),
//!     ),
//! );
//! let baseline = System::new(
//!     "firewall",
//!     vec![DeviceClass::Cpu, DeviceClass::Nic],
//!     OperatingPoint::new(
//!         PerfMetric::throughput_bps().value(gbps(35.0)),
//!         CostMetric::power_draw().value(watts(100.0)),
//!     ),
//! );
//!
//! // Principle 6: generously scale the baseline into the comparison
//! // region and ask what claim the methodology licenses.
//! let result = Evaluation::new(proposed, baseline)
//!     .with_baseline_scaling(&IdealLinear)
//!     .run();
//! assert!(result.verdict.favors_proposed());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use apples_core as core;
pub use apples_metrics as metrics;
pub use apples_power as power;
pub use apples_simnet as simnet;
pub use apples_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use apples_core::report::render_text;
    pub use apples_core::{
        audit, compare_nonscalable, detect_regime, evaluate_multi, in_comparison_region,
        pareto_frontier, perf_per_cost, rank_by_efficiency, relate, relate_multi, render_checklist,
        Amdahl, ChecklistItem, Comparability, CostCoverage, Evaluation, IdealLinear, MeasuredCurve,
        MultiPoint, MultiResult, OperatingPoint, Regime, Relation, Saturating, ScalingModel,
        Summary, System, Tolerance, Verdict,
    };
    pub use apples_metrics::cost::DeviceClass;
    pub use apples_metrics::perf::PerfMetric;
    pub use apples_metrics::quantity::{
        bps, cores, dollars, gbps, joules, luts, mbps, micros, mpps, nanos, pps, ratio, seconds,
        watts,
    };
    pub use apples_metrics::{validate_cost_metric, CostMetric, Direction, Scalability};
    pub use apples_simnet::nf::NfChain;
    pub use apples_simnet::system::{Deployment, Measurement};
    pub use apples_simnet::SchedulerKind;
    pub use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let p = OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(20.0)),
            CostMetric::power_draw().value(watts(70.0)),
        );
        let b = OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(10.0)),
            CostMetric::power_draw().value(watts(50.0)),
        );
        assert_eq!(relate(&p, &b), Relation::Incomparable);
    }
}
