//! The canonical regression: every worked number in the paper's §4,
//! replayed through the public API.

use apples::prelude::*;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

fn lp(us: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::latency().value(micros(us)),
        CostMetric::power_draw().value(watts(w)),
    )
}

#[test]
fn section_41_claim_one_is_a_same_cost_speedup() {
    // "improves throughput with a single core from 10 Gbps to 15 Gbps"
    let old = OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(10.0)),
        CostMetric::cpu_cores().value(cores(1.0)),
    );
    let new = OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(15.0)),
        CostMetric::cpu_cores().value(cores(1.0)),
    );
    assert_eq!(detect_regime(&new, &old, Tolerance::exact()), Regime::SameCost);
    assert_eq!(relate(&new, &old), Relation::Dominates);
}

#[test]
fn section_41_claim_two_is_a_same_perf_cost_cut() {
    // "reduces the number of cores required to saturate a 100 Gbps link
    // from 8 to 4"
    let old = OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(100.0)),
        CostMetric::cpu_cores().value(cores(8.0)),
    );
    let new = OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(100.0)),
        CostMetric::cpu_cores().value(cores(4.0)),
    );
    assert_eq!(detect_regime(&new, &old, Tolerance::exact()), Regime::SamePerf);
    assert_eq!(relate(&new, &old), Relation::Dominates);
}

#[test]
fn section_42_smartnic_example_full_pipeline() {
    // Baseline 10 Gbps/50 W (1 core); with 2 cores 18 Gbps/80 W.
    // Proposed 20 Gbps/70 W. Paper: proposed is better at this target.
    let baseline = System::new("fw", vec![DeviceClass::Cpu, DeviceClass::Nic], tp(10.0, 50.0));
    let proposed =
        System::new("fw+smartnic", vec![DeviceClass::Cpu, DeviceClass::SmartNic], tp(20.0, 70.0));
    // Not comparable as measured:
    assert_eq!(relate(proposed.point(), baseline.point()), Relation::Incomparable);
    assert!(!in_comparison_region(baseline.point(), proposed.point()));

    // The measured 2-core deployment (18 Gbps / 80 W) IS in the region
    // and dominated:
    let two_cores = tp(18.0, 80.0);
    assert!(in_comparison_region(&two_cores, proposed.point()));
    assert_eq!(relate(proposed.point(), &two_cores), Relation::Dominates);

    // And the engine reaches the paper's conclusion via the measured
    // scaling curve:
    let curve = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (2.0, 1.8, 1.6)]);
    let result = Evaluation::new(proposed, baseline).with_baseline_scaling(&curve).run();
    assert!(result.verdict.favors_proposed(), "verdict: {}", result.verdict);
}

#[test]
fn section_421_switch_example_anchors() {
    // A = 100 Gbps / 200 W; B = 35 Gbps / 100 W. Ideal scaling:
    // 70 Gbps @ 200 W and 100 Gbps @ 286 W.
    let a = tp(100.0, 200.0);
    let b = tp(35.0, 100.0);
    let (k_cost, at_cost) = IdealLinear.scale_to_match_cost(&b, &a).unwrap();
    assert!((k_cost - 2.0).abs() < 1e-9);
    assert!((at_cost.perf().quantity().value() / 1e9 - 70.0).abs() < 1e-6);
    let (k_perf, at_perf) = IdealLinear.scale_to_match_perf(&b, &a).unwrap();
    assert!((k_perf - 100.0 / 35.0).abs() < 1e-6);
    assert!((at_perf.cost().quantity().value() - 2000.0 / 7.0).abs() < 1e-3); // 285.714 W

    let result = Evaluation::new(
        System::new("fw+switch", vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch], a),
        System::new("fw", vec![DeviceClass::Cpu, DeviceClass::Nic], b),
    )
    .with_baseline_scaling(&IdealLinear)
    .run();
    assert!(result.verdict.favors_proposed(), "verdict: {}", result.verdict);
}

#[test]
fn section_43_latency_cases() {
    // Comparable: 5 us / 100 W dominates 10 us / 300 W.
    match compare_nonscalable(&lp(5.0, 100.0), &lp(10.0, 300.0)) {
        Comparability::Comparable(Relation::Dominates) => {}
        other => panic!("expected dominance, got {other:?}"),
    }
    // Incomparable: 5 us / 200 W vs 8 us / 100 W.
    assert!(!compare_nonscalable(&lp(5.0, 200.0), &lp(8.0, 100.0)).is_comparable());
}

#[test]
fn table_1_classification() {
    use apples::metrics::catalog::{classify, well_known_metrics, MetricClass};
    let metrics = well_known_metrics();
    let dependent: Vec<_> = metrics
        .iter()
        .filter(|m| classify(m) == MetricClass::ContextDependent)
        .map(|m| m.name())
        .collect();
    assert_eq!(dependent, vec!["total cost of ownership", "hardware price", "carbon footprint"]);
    let independent: Vec<_> = metrics
        .iter()
        .filter(|m| classify(m) == MetricClass::ContextIndependent)
        .map(|m| m.name())
        .collect();
    assert!(independent.contains(&"power draw"));
    assert!(independent.contains(&"number of FPGA LUTs"));
}

#[test]
fn section_33_coverage_examples() {
    // "number of FPGA lookup tables cannot be used here, as it cannot be
    // measured for both systems"
    let v = validate_cost_metric(
        &CostMetric::fpga_luts(),
        &[("cpu-only", &[DeviceClass::Cpu]), ("fpga+cpu", &[DeviceClass::Fpga, DeviceClass::Cpu])],
    );
    assert!(!v.is_empty());
    // "even ... number of CPU cores ... fails to cover all systems in
    // the evaluation end-to-end"
    let v = validate_cost_metric(
        &CostMetric::cpu_cores(),
        &[("fpga+cpu", &[DeviceClass::Fpga, DeviceClass::Cpu])],
    );
    assert!(!v.is_empty());
    // Power passes for the same pair.
    let v = validate_cost_metric(
        &CostMetric::power_draw(),
        &[("cpu-only", &[DeviceClass::Cpu]), ("fpga+cpu", &[DeviceClass::Fpga, DeviceClass::Cpu])],
    );
    assert!(v.is_empty());
}
