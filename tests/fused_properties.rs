//! Property suite for pipeline fusion: the fused hot path (zero-latency
//! stage hops processed inside one timestamp walk) must be
//! observationally identical to the unfused reference path (every hop
//! re-enqueued through the event scheduler), bit for bit, on *random*
//! combinations of scenario, fault severity, workload seed, and
//! scheduler discipline.
//!
//! This extends the PR 4 heap-oracle suite: where `determinism.rs` pins
//! wheel-vs-heap on hand-picked scenarios, this file draws seeded random
//! combos so the fusion equivalence is exercised across the whole
//! configuration lattice, not just the corners we thought of.

use apples_bench::scenarios::{
    baseline_host, faulted, measure_quick, optimized_host, perturbed_workload, saturating_workload,
    smartnic_system, switch_system, SEVERITY_LADDER,
};
use apples_rng::Rng;
use apples_simnet::{Deployment, SchedulerKind};

type BuildFn = fn() -> Deployment;

/// The scenario families the harness measures, as rebuildable factories
/// (a `Deployment` is consumed by the builder-style `with_*` calls).
fn scenario_pool() -> Vec<(&'static str, BuildFn)> {
    vec![
        ("baseline-2c", || baseline_host(2)),
        ("optimized-1c", || optimized_host(1)),
        ("smartnic", smartnic_system),
        ("switch-4c", || switch_system(4)),
    ]
}

/// Every measured number reduced to its exact bit pattern, per-stage
/// reports included — "byte-identical" means this whole tuple agrees.
fn digest(m: &apples_simnet::system::Measurement) -> Vec<u64> {
    let mut d = vec![
        m.throughput_bps.to_bits(),
        m.throughput_pps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.p99_latency_ns.to_bits(),
        m.loss_rate.to_bits(),
        m.jain_index.map_or(0, f64::to_bits),
        m.policy_drops,
        m.fault_drops,
        m.injected_drops,
        m.corrupted,
        m.watts.to_bits(),
    ];
    for s in &m.stages {
        d.extend([
            s.utilization.to_bits(),
            s.arrivals,
            s.served,
            s.queue_drops,
            s.policy_drops,
            s.fault_drops,
            s.in_flight,
        ]);
    }
    d
}

/// Seeded random (scenario, severity, seed, scheduler) combos: the
/// fused and unfused paths must produce byte-identical measurements on
/// every draw. Failures print the full combo so any counterexample is
/// replayable by hand.
#[test]
fn fused_pipeline_matches_unfused_on_random_combos() {
    let scenarios = scenario_pool();
    let mut rng = Rng::seed_from_u64(0xF0_5ED);
    let mut faulted_runs = 0u32;
    for draw in 0..12 {
        let (name, build) = scenarios[rng.range_u64(0, scenarios.len() as u64) as usize];
        let (sev_name, severity) =
            SEVERITY_LADDER[rng.range_u64(0, SEVERITY_LADDER.len() as u64) as usize];
        let seed = rng.range_u64(0, 64);
        let kind =
            if rng.range_u64(0, 2) == 0 { SchedulerKind::Wheel } else { SchedulerKind::Heap };
        let wl = perturbed_workload(120.0, seed, severity);
        let with_severity = |d: Deployment| {
            if severity > 0.0 {
                faulted(d, severity)
            } else {
                d
            }
        };
        if severity > 0.0 {
            faulted_runs += 1;
        }
        let fused = measure_quick(&with_severity(build()).with_scheduler(kind), &wl);
        let unfused =
            measure_quick(&with_severity(build()).with_scheduler(kind).with_fusion(false), &wl);
        assert_eq!(
            digest(&fused),
            digest(&unfused),
            "fused/unfused diverged: draw {draw}, scenario {name}, severity {sev_name}, \
             seed {seed}, scheduler {kind:?}"
        );
    }
    assert!(faulted_runs > 0, "the severity draws never exercised the fault path");
}

/// The two-axis cross-check: on a fixed scenario, all four
/// (scheduler × fusion) configurations agree with each other — fusion
/// identity composes with the existing heap-oracle identity instead of
/// holding only per-scheduler.
#[test]
fn fusion_and_scheduler_axes_commute() {
    for (name, build) in scenario_pool() {
        let wl = saturating_workload(11);
        let reference = digest(&measure_quick(&build().with_scheduler(SchedulerKind::Wheel), &wl));
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            for fused in [true, false] {
                let m = measure_quick(&build().with_scheduler(kind).with_fusion(fused), &wl);
                assert_eq!(
                    digest(&m),
                    reference,
                    "{name} diverged at scheduler {kind:?}, fused {fused}"
                );
            }
        }
    }
}

/// Fusion identity survives the full severity ladder on the faulted
/// smartnic deployment: fault events ride the scheduler (never the
/// fused FIFO), so every rung must agree bit-for-bit.
#[test]
fn fused_pipeline_matches_unfused_across_severity_ladder() {
    for &(sev_name, severity) in SEVERITY_LADDER.iter().filter(|&&(_, s)| s > 0.0) {
        let wl = perturbed_workload(120.0, 5, severity);
        let fused = measure_quick(&faulted(smartnic_system(), severity), &wl);
        let unfused = measure_quick(&faulted(smartnic_system(), severity).with_fusion(false), &wl);
        assert_eq!(digest(&fused), digest(&unfused), "diverged at severity {sev_name}");
    }
}
