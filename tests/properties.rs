//! Property-style tests of the methodology's invariants over randomly
//! explored operating points and scaling parameters (seeded loops, so
//! every run explores the identical sequence).

use apples::prelude::*;
use apples_rng::Rng;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

fn random_point(rng: &mut Rng) -> OperatingPoint {
    tp(rng.range_f64(0.1, 1000.0), rng.range_f64(1.0, 2000.0))
}

fn random_points(rng: &mut Rng, max_len: usize) -> Vec<OperatingPoint> {
    (0..rng.range_usize(1, max_len)).map(|_| random_point(rng)).collect()
}

#[test]
fn relation_is_antisymmetric() {
    let mut rng = Rng::seed_from_u64(0x90A1);
    for _ in 0..1000 {
        let (a, b) = (random_point(&mut rng), random_point(&mut rng));
        assert_eq!(relate(&a, &b), relate(&b, &a).invert());
    }
}

#[test]
fn relation_to_self_is_equivalent() {
    let mut rng = Rng::seed_from_u64(0x90A2);
    for _ in 0..1000 {
        let a = random_point(&mut rng);
        assert_eq!(relate(&a, &a), Relation::Equivalent);
    }
}

#[test]
fn dominance_is_transitive() {
    let mut rng = Rng::seed_from_u64(0x90A3);
    for _ in 0..2000 {
        let a = random_point(&mut rng);
        let b = random_point(&mut rng);
        let c = random_point(&mut rng);
        if relate(&a, &b) == Relation::Dominates && relate(&b, &c) == Relation::Dominates {
            assert_eq!(relate(&a, &c), Relation::Dominates);
        }
    }
}

#[test]
fn frontier_points_are_mutually_incomparable_or_equal() {
    let mut rng = Rng::seed_from_u64(0x90A4);
    for _ in 0..300 {
        let pts = random_points(&mut rng, 60);
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        for (x, &i) in frontier.iter().enumerate() {
            for &j in &frontier[x + 1..] {
                let rel = relate(&pts[i], &pts[j]);
                assert!(
                    rel == Relation::Incomparable || rel == Relation::Equivalent,
                    "frontier members {i} and {j} relate as {rel:?}"
                );
            }
        }
    }
}

#[test]
fn non_frontier_points_are_dominated() {
    let mut rng = Rng::seed_from_u64(0x90A5);
    for _ in 0..300 {
        let pts = random_points(&mut rng, 60);
        let frontier = pareto_frontier(&pts);
        for i in 0..pts.len() {
            if !frontier.contains(&i) {
                let dominated =
                    frontier.iter().any(|&j| relate(&pts[j], &pts[i]) == Relation::Dominates);
                assert!(dominated, "off-frontier point {i} not dominated by the frontier");
            }
        }
    }
}

#[test]
fn ideal_scaling_preserves_perf_per_watt() {
    let mut rng = Rng::seed_from_u64(0x90A6);
    for _ in 0..1000 {
        let p = random_point(&mut rng);
        let k = rng.range_f64(0.01, 100.0);
        let scaled = IdealLinear.scale(&p, k).unwrap();
        let ratio_before = p.perf().quantity().value() / p.cost().quantity().value();
        let ratio_after = scaled.perf().quantity().value() / scaled.cost().quantity().value();
        assert!((ratio_before - ratio_after).abs() / ratio_before < 1e-9);
    }
}

#[test]
fn amdahl_never_beats_ideal() {
    let mut rng = Rng::seed_from_u64(0x90A7);
    for _ in 0..1000 {
        let p = random_point(&mut rng);
        let k = rng.range_f64(1.0, 64.0);
        let serial = rng.range_f64(0.0, 0.9);
        let ideal = IdealLinear.scale(&p, k).unwrap();
        let amdahl = Amdahl::new(serial).scale(&p, k).unwrap();
        assert!(
            amdahl.perf().quantity().value() <= ideal.perf().quantity().value() * (1.0 + 1e-9),
            "Amdahl exceeded the generous bound"
        );
        // Costs are identical (both linear in k).
        assert!((amdahl.cost().quantity().value() - ideal.cost().quantity().value()).abs() < 1e-6);
    }
}

#[test]
fn match_perf_anchor_lands_on_target_perf() {
    let mut rng = Rng::seed_from_u64(0x90A8);
    for _ in 0..1000 {
        let base = tp(rng.range_f64(1.0, 100.0), rng.range_f64(10.0, 500.0));
        let gain = rng.range_f64(0.1, 50.0);
        let target = tp(base.perf().quantity().value() / 1e9 * gain, 1.0);
        let (_, scaled) = IdealLinear.scale_to_match_perf(&base, &target).unwrap();
        assert_eq!(scaled.perf().quantity(), target.perf().quantity());
    }
}

#[test]
fn scaled_comparisons_never_claim_both_ways() {
    let mut rng = Rng::seed_from_u64(0x90A9);
    for _ in 0..500 {
        let p = random_point(&mut rng);
        let b = random_point(&mut rng);
        let proposed = System::new("p", vec![DeviceClass::Cpu, DeviceClass::SmartNic], p);
        let baseline = System::new("b", vec![DeviceClass::Cpu], b);
        let r = Evaluation::new(proposed, baseline).with_baseline_scaling(&IdealLinear).run();
        // A verdict cannot simultaneously favor the proposed system and
        // be inconclusive.
        assert!(!(r.verdict.favors_proposed() && r.verdict.is_inconclusive()));
    }
}

#[test]
fn regime_detection_is_symmetric() {
    let mut rng = Rng::seed_from_u64(0x90AA);
    for _ in 0..1000 {
        let a = random_point(&mut rng);
        let b = random_point(&mut rng);
        let t = Tolerance::new(rng.range_f64(0.0, 0.2));
        assert_eq!(detect_regime(&a, &b, t), detect_regime(&b, &a, t));
    }
}
