//! Property-based tests of the methodology's invariants over arbitrary
//! operating points and scaling parameters.

use apples::prelude::*;
use proptest::prelude::*;

fn tp(g: f64, w: f64) -> OperatingPoint {
    OperatingPoint::new(
        PerfMetric::throughput_bps().value(gbps(g)),
        CostMetric::power_draw().value(watts(w)),
    )
}

fn arb_point() -> impl Strategy<Value = OperatingPoint> {
    (0.1f64..1000.0, 1.0f64..2000.0).prop_map(|(g, w)| tp(g, w))
}

proptest! {
    #[test]
    fn relation_is_antisymmetric(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(relate(&a, &b), relate(&b, &a).invert());
    }

    #[test]
    fn relation_to_self_is_equivalent(a in arb_point()) {
        prop_assert_eq!(relate(&a, &a), Relation::Equivalent);
    }

    #[test]
    fn dominance_is_transitive(a in arb_point(), b in arb_point(), c in arb_point()) {
        if relate(&a, &b) == Relation::Dominates && relate(&b, &c) == Relation::Dominates {
            prop_assert_eq!(relate(&a, &c), Relation::Dominates);
        }
    }

    #[test]
    fn frontier_points_are_mutually_incomparable_or_equal(
        pts in proptest::collection::vec(arb_point(), 1..60),
    ) {
        let frontier = pareto_frontier(&pts);
        prop_assert!(!frontier.is_empty());
        for (x, &i) in frontier.iter().enumerate() {
            for &j in &frontier[x + 1..] {
                let rel = relate(&pts[i], &pts[j]);
                prop_assert!(
                    rel == Relation::Incomparable || rel == Relation::Equivalent,
                    "frontier members {i} and {j} relate as {rel:?}"
                );
            }
        }
    }

    #[test]
    fn non_frontier_points_are_dominated(
        pts in proptest::collection::vec(arb_point(), 1..60),
    ) {
        let frontier = pareto_frontier(&pts);
        for i in 0..pts.len() {
            if !frontier.contains(&i) {
                let dominated = frontier
                    .iter()
                    .any(|&j| relate(&pts[j], &pts[i]) == Relation::Dominates);
                prop_assert!(dominated, "off-frontier point {i} not dominated by the frontier");
            }
        }
    }

    #[test]
    fn ideal_scaling_preserves_perf_per_watt(
        p in arb_point(),
        k in 0.01f64..100.0,
    ) {
        let scaled = IdealLinear.scale(&p, k).unwrap();
        let ratio_before = p.perf().quantity().value() / p.cost().quantity().value();
        let ratio_after = scaled.perf().quantity().value() / scaled.cost().quantity().value();
        prop_assert!((ratio_before - ratio_after).abs() / ratio_before < 1e-9);
    }

    #[test]
    fn amdahl_never_beats_ideal(
        p in arb_point(),
        k in 1.0f64..64.0,
        serial in 0.0f64..0.9,
    ) {
        let ideal = IdealLinear.scale(&p, k).unwrap();
        let amdahl = Amdahl::new(serial).scale(&p, k).unwrap();
        prop_assert!(
            amdahl.perf().quantity().value() <= ideal.perf().quantity().value() * (1.0 + 1e-9),
            "Amdahl exceeded the generous bound"
        );
        // Costs are identical (both linear in k).
        prop_assert!(
            (amdahl.cost().quantity().value() - ideal.cost().quantity().value()).abs() < 1e-6
        );
    }

    #[test]
    fn match_perf_anchor_lands_on_target_perf(
        base_g in 1.0f64..100.0,
        base_w in 10.0f64..500.0,
        gain in 0.1f64..50.0,
    ) {
        let base = tp(base_g, base_w);
        let target = tp(base_g * gain, 1.0);
        let (_, scaled) = IdealLinear.scale_to_match_perf(&base, &target).unwrap();
        prop_assert_eq!(scaled.perf().quantity(), target.perf().quantity());
    }

    #[test]
    fn scaled_comparisons_never_claim_both_ways(
        p in arb_point(),
        b in arb_point(),
    ) {
        let proposed = System::new("p", vec![DeviceClass::Cpu, DeviceClass::SmartNic], p);
        let baseline = System::new("b", vec![DeviceClass::Cpu], b);
        let r = Evaluation::new(proposed, baseline)
            .with_baseline_scaling(&IdealLinear)
            .run();
        // A verdict cannot simultaneously favor the proposed system and
        // be inconclusive.
        prop_assert!(!(r.verdict.favors_proposed() && r.verdict.is_inconclusive()));
    }

    #[test]
    fn regime_detection_is_symmetric(a in arb_point(), b in arb_point(), tol in 0.0f64..0.2) {
        let t = Tolerance::new(tol);
        prop_assert_eq!(detect_regime(&a, &b, t), detect_regime(&b, &a, t));
    }
}
