//! Cross-crate integration: simulate heterogeneous deployments, feed the
//! measurements into the methodology engine, and check the conclusions.

use apples::prelude::*;
use apples_bench::scenarios::{
    baseline_host, measure, mtu_workload, optimized_host, saturating_workload, smartnic_system,
    switch_system,
};

#[test]
fn simulated_smartnic_comparison_reaches_a_licensed_claim() {
    let wl = saturating_workload(21);
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);

    // The substrate produces the §4.2 shape: more perf, more watts.
    assert!(nic.throughput_bps > base.throughput_bps);
    assert!(nic.watts > base.watts);

    // Measured curve from real multi-core runs.
    let samples: Vec<(f64, f64, f64)> = [1u32, 2, 4]
        .iter()
        .map(|&c| {
            let m = measure(&baseline_host(c), &wl);
            (f64::from(c), m.throughput_bps / base.throughput_bps, m.watts / base.watts)
        })
        .collect();
    let curve = MeasuredCurve::from_samples(samples);

    let result =
        Evaluation::new(nic.as_system(), base.as_system()).with_baseline_scaling(&curve).run();
    assert_eq!(result.relation, Relation::Incomparable);
    assert!(result.verdict.favors_proposed(), "verdict: {}", result.verdict);
    assert!(result.violations.is_empty(), "power draw satisfies P1-P3");
}

#[test]
fn simulated_switch_comparison_under_ideal_scaling() {
    let wl = saturating_workload(22);
    let base = measure(&baseline_host(8), &wl);
    let sw = measure(&switch_system(8), &wl);
    let result =
        Evaluation::new(sw.as_system(), base.as_system()).with_baseline_scaling(&IdealLinear).run();
    match &result.verdict {
        Verdict::Scaled { generous, .. } => assert!(*generous),
        other => panic!("expected a scaled verdict, got {other}"),
    }
}

#[test]
fn low_load_verdict_flips_to_the_baseline() {
    // At 2 Gbps offered, the switch's idle floor is dead weight and the
    // methodology says so.
    let wl = mtu_workload(2.0, 23);
    let base = measure(&baseline_host(8), &wl);
    let sw = measure(&switch_system(8), &wl);
    let result =
        Evaluation::new(sw.as_system(), base.as_system()).with_baseline_scaling(&IdealLinear).run();
    // Both systems carry the full (light) load, so the regime is
    // same-performance and the claim is unidimensional: the switch
    // design just costs ~3x more watts. Either way, no claim for the
    // proposed system.
    match &result.verdict {
        Verdict::SameRegime { regime: Regime::SamePerf, .. } | Verdict::BaselineDominates => {}
        other => panic!("expected the baseline to win at low load, got {other}"),
    }
    assert!(!result.verdict.favors_proposed());
}

#[test]
fn same_hardware_software_optimization_is_a_regime_claim() {
    let wl = saturating_workload(24);
    let base = measure(&baseline_host(1), &wl);
    let opt = measure(&optimized_host(1), &wl);
    let result = Evaluation::new(opt.as_system(), base.as_system())
        .with_tolerance(Tolerance::new(0.05))
        .run();
    match result.verdict {
        Verdict::SameRegime { regime: Regime::SameCost, .. } => {}
        other => panic!("expected a same-cost regime claim, got {other}"),
    }
}

#[test]
fn measurements_feed_every_metric_axis() {
    let wl = mtu_workload(3.0, 25);
    let m = measure(&baseline_host(2), &wl);
    // Throughput, pps, latency, p99, JFI all come from one run.
    assert!(m.throughput_power_point().perf().quantity().value() > 0.0);
    assert!(m.pps_power_point().perf().quantity().value() > 0.0);
    assert!(m.latency_power_point().perf().quantity().value() > 0.0);
    assert!(m.p99_power_point().perf().quantity().value() > 0.0);
    let j = m.jain_power_point().expect("traffic flowed");
    let jv = j.perf().quantity().value();
    assert!(jv > 0.0 && jv <= 1.0);
}

#[test]
fn latency_axes_refuse_scaling_end_to_end() {
    let wl = mtu_workload(1.0, 26);
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);
    let result = Evaluation::new(nic.as_latency_system(), base.as_latency_system())
        .with_baseline_scaling(&IdealLinear)
        .run();
    // Whatever the relation, the verdict must never be a Scaled one:
    // latency does not scale (Principle 7).
    assert!(
        !matches!(result.verdict, Verdict::Scaled { .. }),
        "latency must not be scaled: {}",
        result.verdict
    );
}

#[test]
fn identical_deployments_yield_identical_costs() {
    // Principle 1 on the substrate: same hardware, same workload ->
    // bit-identical measurement, hence identical context-independent
    // costs, regardless of "who" runs it (here: two separate runs).
    let wl = mtu_workload(5.0, 27);
    let a = measure(&baseline_host(2), &wl);
    let b = measure(&baseline_host(2), &wl);
    assert_eq!(a.watts, b.watts);
    assert_eq!(a.throughput_bps, b.throughput_bps);
    assert_eq!(a.p99_latency_ns, b.p99_latency_ns);
}

#[test]
fn report_renders_for_simulated_systems() {
    let wl = saturating_workload(28);
    let base = measure(&baseline_host(1), &wl);
    let nic = measure(&smartnic_system(), &wl);
    let result = Evaluation::new(nic.as_system(), base.as_system())
        .with_baseline_scaling(&IdealLinear)
        .run();
    let text = render_text(&result);
    assert!(text.contains("fw-smartnic"));
    assert!(text.contains("verdict:"));
    assert!(text.contains("power draw"));
}
