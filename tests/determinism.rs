//! Determinism regression: the same seed must produce bit-identical
//! results no matter how the harness schedules the work. A one-worker
//! pool and a many-worker pool run the same experiments and the same
//! measurements; every byte of output must agree.

use apples_bench::experiments::run;
use apples_bench::scenarios::{
    baseline_host, faulted, measure_quick, perturbed_workload, saturating_workload, smartnic_system,
};
use apples_bench::Pool;

/// Experiment reports render byte-identically under serial and
/// work-stealing schedules. The subset includes the experiments that
/// themselves fan out on nested pools (crossover, rfc2544).
#[test]
fn experiment_reports_are_schedule_independent() {
    let ids = vec!["fig1a", "ex42", "rfc2544", "crossover"];
    let render_all = |pool: Pool| -> Vec<String> {
        pool.map(ids.clone(), |id| run(id).expect("known id").render())
    };
    let serial = render_all(Pool::with_workers(1));
    let parallel = render_all(Pool::with_workers(4));
    assert_eq!(serial, parallel, "a report changed with the schedule");
}

/// Raw measurements are bit-identical (f64 bit patterns, not just
/// approximate equality) across schedules.
#[test]
fn measurements_are_bit_identical_across_schedules() {
    let batch = |pool: Pool| {
        pool.map((0..6u64).collect(), |seed| {
            let wl = saturating_workload(seed);
            let m = if seed % 2 == 0 {
                measure_quick(&baseline_host(2), &wl)
            } else {
                measure_quick(&smartnic_system(), &wl)
            };
            (
                m.throughput_bps.to_bits(),
                m.throughput_pps.to_bits(),
                m.mean_latency_ns.to_bits(),
                m.loss_rate.to_bits(),
                m.watts.to_bits(),
                m.policy_drops,
            )
        })
    };
    let serial = batch(Pool::with_workers(1));
    let parallel = batch(Pool::with_workers(5));
    assert_eq!(serial, parallel);
}

/// State built from unordered insertions must not depend on insertion
/// order. The DPI automaton's trie and the NF state tables are backed
/// by ordered maps precisely so that pattern/flow arrival order cannot
/// leak into results; feeding the same pattern set in permuted orders
/// must yield the same automaton size and the same match count.
#[test]
fn nf_automaton_is_insertion_order_independent() {
    use apples_simnet::nf::dpi::{AhoCorasick, Dpi};

    let base = Dpi::demo_signatures();
    let mut reversed = base.clone();
    reversed.reverse();
    let mut rotated = base.clone();
    rotated.rotate_left(base.len() / 2);

    // A haystack with guaranteed hits: noise with every signature spliced in.
    let mut haystack: Vec<u8> =
        (0..4096u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8).collect();
    for sig in &base {
        haystack.extend_from_slice(sig);
    }

    let reference = AhoCorasick::build(&base);
    let want = (reference.states(), reference.count_matches(&haystack));
    assert!(want.1 > 0, "haystack must contain matches for the test to mean anything");
    for perm in [&reversed, &rotated] {
        let ac = AhoCorasick::build(perm);
        assert_eq!((ac.states(), ac.count_matches(&haystack)), want);
    }
}

/// The timing-wheel scheduler is observationally identical to the
/// binary-heap baseline on every scenario family the harness measures:
/// same deliveries, same bit-exact latency and throughput, same drops.
/// This is the workspace-level half of the A/B argument (the simnet
/// unit tests assert full `RunResult` equality on raw engines).
#[test]
fn wheel_scheduler_matches_heap_baseline_on_all_scenarios() {
    use apples_bench::scenarios::{optimized_host, switch_system};
    use apples_simnet::SchedulerKind;

    type BuildFn = Box<dyn Fn() -> apples_simnet::Deployment>;
    let deployments: Vec<(&str, BuildFn)> = vec![
        ("baseline-2c", Box::new(|| baseline_host(2))),
        ("optimized-1c", Box::new(|| optimized_host(1))),
        ("smartnic", Box::new(smartnic_system)),
        ("switch-4c", Box::new(|| switch_system(4))),
    ];
    for (name, build) in deployments {
        let wl = saturating_workload(3);
        let wheel = measure_quick(&build().with_scheduler(SchedulerKind::Wheel), &wl);
        let heap = measure_quick(&build().with_scheduler(SchedulerKind::Heap), &wl);
        assert_eq!(
            wheel.throughput_bps.to_bits(),
            heap.throughput_bps.to_bits(),
            "throughput diverged on {name}"
        );
        assert_eq!(
            wheel.mean_latency_ns.to_bits(),
            heap.mean_latency_ns.to_bits(),
            "latency diverged on {name}"
        );
        assert_eq!(
            wheel.p99_latency_ns.to_bits(),
            heap.p99_latency_ns.to_bits(),
            "p99 diverged on {name}"
        );
        assert_eq!(wheel.loss_rate.to_bits(), heap.loss_rate.to_bits(), "loss diverged on {name}");
        assert_eq!(wheel.policy_drops, heap.policy_drops, "policy drops diverged on {name}");
        assert_eq!(wheel.watts.to_bits(), heap.watts.to_bits(), "watts diverged on {name}");
    }
}

/// Repeated in-process runs of the same experiment render byte-identical
/// reports (the map-iteration-order regression guard for the NF state
/// tables: any hash-order dependence would show up here or in the
/// schedule-independence test above).
#[test]
fn repeated_runs_render_byte_identical_reports() {
    let first = run("ex42").expect("known id").render();
    let second = run("ex42").expect("known id").render();
    assert_eq!(first, second);
}

/// One fault-injected measurement reduced to its complete bit pattern,
/// fault counters included.
fn faulted_bits(seed: u64, severity: f64) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    let wl = perturbed_workload(120.0, seed, severity);
    let m = if seed.is_multiple_of(2) {
        measure_quick(&faulted(baseline_host(2), severity), &wl)
    } else {
        measure_quick(&faulted(smartnic_system(), severity), &wl)
    };
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.loss_rate.to_bits(),
        m.watts.to_bits(),
        m.policy_drops,
        m.fault_drops,
        m.injected_drops,
        m.corrupted,
    )
}

/// Fault injection must not cost any determinism: the same faulted
/// measurement batch is bit-identical under 1 worker, 2 workers, and
/// the machine's full parallelism.
#[test]
fn faulted_measurements_are_bit_identical_across_schedules() {
    let batch = |pool: Pool| {
        pool.map((0..6u64).collect(), |seed| {
            let severity = [0.25, 0.5, 1.0][(seed % 3) as usize];
            faulted_bits(seed, severity)
        })
    };
    let serial = batch(Pool::with_workers(1));
    let two = batch(Pool::with_workers(2));
    let machine = batch(Pool::new());
    assert_eq!(serial, two, "faulted results changed between 1 and 2 workers");
    assert_eq!(serial, machine, "faulted results changed at machine parallelism");
    // And the faults actually did something in at least one run.
    assert!(serial.iter().any(|r| r.5 + r.6 > 0), "no faults fired anywhere: {serial:?}");
}

/// A faulted run is replayable from its inputs alone: rebuilding the
/// deployment, workload, and fault spec from scratch reproduces every
/// bit, including the fault counters.
#[test]
fn faulted_runs_replay_from_seed_and_spec() {
    for seed in 0..4u64 {
        assert_eq!(faulted_bits(seed, 1.0), faulted_bits(seed, 1.0), "seed {seed}");
    }
}

/// The wheel-vs-heap A/B identity survives fault injection at the
/// workspace level: fault events are first-class timing-wheel events,
/// and both disciplines must dispatch them identically.
#[test]
fn wheel_scheduler_matches_heap_baseline_under_faults() {
    use apples_simnet::SchedulerKind;

    type BuildFn = Box<dyn Fn() -> apples_simnet::Deployment>;
    let deployments: Vec<(&str, BuildFn)> = vec![
        ("baseline-2c", Box::new(|| baseline_host(2))),
        ("smartnic", Box::new(smartnic_system)),
    ];
    for (name, build) in deployments {
        let wl = perturbed_workload(120.0, 9, 1.0);
        let wheel = measure_quick(&faulted(build(), 1.0).with_scheduler(SchedulerKind::Wheel), &wl);
        let heap = measure_quick(&faulted(build(), 1.0).with_scheduler(SchedulerKind::Heap), &wl);
        assert_eq!(
            wheel.throughput_bps.to_bits(),
            heap.throughput_bps.to_bits(),
            "throughput diverged on faulted {name}"
        );
        assert_eq!(
            wheel.mean_latency_ns.to_bits(),
            heap.mean_latency_ns.to_bits(),
            "latency diverged on faulted {name}"
        );
        assert_eq!(wheel.fault_drops, heap.fault_drops, "fault drops diverged on {name}");
        assert_eq!(wheel.injected_drops, heap.injected_drops, "injected diverged on {name}");
        assert_eq!(wheel.corrupted, heap.corrupted, "corruption diverged on {name}");
        assert_eq!(wheel.policy_drops, heap.policy_drops, "policy drops diverged on {name}");
    }
}
