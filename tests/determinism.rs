//! Determinism regression: the same seed must produce bit-identical
//! results no matter how the harness schedules the work. A one-worker
//! pool and a many-worker pool run the same experiments and the same
//! measurements; every byte of output must agree.

use apples_bench::experiments::run;
use apples_bench::scenarios::{baseline_host, measure_quick, saturating_workload, smartnic_system};
use apples_bench::Pool;

/// Experiment reports render byte-identically under serial and
/// work-stealing schedules. The subset includes the experiments that
/// themselves fan out on nested pools (crossover, rfc2544).
#[test]
fn experiment_reports_are_schedule_independent() {
    let ids = vec!["fig1a", "ex42", "rfc2544", "crossover"];
    let render_all = |pool: Pool| -> Vec<String> {
        pool.map(ids.clone(), |id| run(id).expect("known id").render())
    };
    let serial = render_all(Pool::with_workers(1));
    let parallel = render_all(Pool::with_workers(4));
    assert_eq!(serial, parallel, "a report changed with the schedule");
}

/// Raw measurements are bit-identical (f64 bit patterns, not just
/// approximate equality) across schedules.
#[test]
fn measurements_are_bit_identical_across_schedules() {
    let batch = |pool: Pool| {
        pool.map((0..6u64).collect(), |seed| {
            let wl = saturating_workload(seed);
            let m = if seed % 2 == 0 {
                measure_quick(&baseline_host(2), &wl)
            } else {
                measure_quick(&smartnic_system(), &wl)
            };
            (
                m.throughput_bps.to_bits(),
                m.throughput_pps.to_bits(),
                m.mean_latency_ns.to_bits(),
                m.loss_rate.to_bits(),
                m.watts.to_bits(),
                m.policy_drops,
            )
        })
    };
    let serial = batch(Pool::with_workers(1));
    let parallel = batch(Pool::with_workers(5));
    assert_eq!(serial, parallel);
}
