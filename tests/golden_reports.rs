//! Golden end-to-end test: every experiment's markdown report is pinned
//! byte-for-byte against a fixture in `tests/golden/`.
//!
//! The whole workspace is deterministic by construction — seeded RNG,
//! ordered maps, schedule-independent pools, replayable fault plans —
//! so the reports themselves can be golden-tested. Any behavior change
//! anywhere in the stack (engine timing, NF costs, power model, fault
//! derivation, report formatting) shows up here as a byte diff naming
//! the experiment.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test golden_reports
//! git diff tests/golden/   # review every changed conclusion
//! ```

use apples_bench::experiments::{run, ALL_IDS};
use apples_bench::Pool;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

#[test]
fn every_experiment_report_matches_its_golden_fixture() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    let dir = golden_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    // Render everything on the pool (the reports are schedule-
    // independent; the determinism suite pins that separately).
    let rendered: Vec<(&str, String)> =
        Pool::new().map(ALL_IDS.to_vec(), |id| (id, run(id).expect("known id").render_markdown()));

    let mut mismatches = Vec::new();
    for (id, markdown) in rendered {
        let path = dir.join(format!("{id}.md"));
        if regen {
            let changed = std::fs::read_to_string(&path).map_or(true, |old| old != markdown);
            std::fs::write(&path, &markdown).expect("write fixture");
            if changed {
                // The fixture digest is a component of the experiment's
                // store key; drop the now-stale cached subtree so a
                // post-regen `xp all` can never serve a pre-regen
                // report. (The key change alone already forces a
                // re-run — this keeps the store free of orphans.)
                let store = apples_store::Store::open(apples_store::Store::default_root());
                let _ = store.invalidate(id);
            }
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == markdown => {}
            Ok(_) => mismatches.push(format!("{id}: report differs from tests/golden/{id}.md")),
            Err(e) => mismatches.push(format!("{id}: cannot read fixture {}: {e}", path.display())),
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden mismatches (GOLDEN_REGEN=1 to regenerate after intentional changes):\n  {}",
        mismatches.join("\n  ")
    );
}

#[test]
fn golden_dir_has_no_stale_fixtures() {
    // A fixture whose experiment no longer exists would silently stop
    // being checked; fail loudly instead.
    let Ok(entries) = std::fs::read_dir(golden_dir()) else {
        // Directory absent entirely: the main test reports that.
        return;
    };
    for entry in entries {
        let name = entry.expect("read dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".md") else {
            panic!("unexpected non-fixture file in tests/golden/: {name}");
        };
        assert!(ALL_IDS.contains(&stem), "stale fixture for unknown experiment: {name}");
    }
}
