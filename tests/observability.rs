//! Integration suite for the deterministic observability layer.
//!
//! The contract under test: observing a run changes *nothing* about the
//! run, and the artifacts the observer emits are pure functions of
//! `(seed, spec)` — byte-identical across schedulers (wheel vs heap)
//! and harness worker counts, with one Chrome trace pinned as a golden
//! fixture in `tests/golden_traces/`.
//!
//! To regenerate the trace fixture after an intentional change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test observability
//! git diff tests/golden_traces/
//! ```

use apples_bench::scenarios::{baseline_host, faulted, perturbed_workload, RUN_NS, WARMUP_NS};
use apples_bench::tracecmd::{run_trace, TraceOptions};
use apples_bench::Pool;
use apples_obs::{LogHistogram, ObsConfig};
use apples_rng::Rng;
use apples_simnet::sched::SchedulerKind;
use std::path::PathBuf;

fn moderate_smartnic(scheduler: SchedulerKind) -> TraceOptions {
    // A compact ring keeps the golden fixture reviewable while still
    // spanning thousands of events across every stage.
    TraceOptions { scenario: "smartnic".to_owned(), scheduler, severity: 0.5, seed: 1, ring: 1024 }
}

// ---------------------------------------------------------------------
// Trace determinism: {serial, parallel} x {wheel, heap}.
// ---------------------------------------------------------------------

#[test]
fn trace_files_are_identical_across_schedulers_and_worker_counts() {
    let reference =
        run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("known scenario").chrome_json;

    // Both schedulers, traced on a multi-worker pool: every file must
    // equal the serially-produced wheel reference byte-for-byte.
    let kinds =
        vec![SchedulerKind::Wheel, SchedulerKind::Heap, SchedulerKind::Wheel, SchedulerKind::Heap];
    let traced = Pool::with_workers(4).map(kinds, |kind| {
        run_trace(&moderate_smartnic(kind)).expect("known scenario").chrome_json
    });
    for (i, json) in traced.iter().enumerate() {
        assert_eq!(
            json, &reference,
            "trace {i} diverged from the serial wheel reference: traces must be a pure \
             function of (seed, spec)"
        );
    }
}

#[test]
fn trace_files_depend_on_seed_and_severity() {
    let base = run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("ok").chrome_json;
    let other_seed = TraceOptions { seed: 2, ..moderate_smartnic(SchedulerKind::Wheel) };
    assert_ne!(
        base,
        run_trace(&other_seed).expect("ok").chrome_json,
        "different seeds must trace differently"
    );
    let clean = TraceOptions { severity: 0.0, ..moderate_smartnic(SchedulerKind::Wheel) };
    assert_ne!(
        base,
        run_trace(&clean).expect("ok").chrome_json,
        "fault severity must show up in the trace"
    );
}

// ---------------------------------------------------------------------
// Golden Chrome trace fixture.
// ---------------------------------------------------------------------

fn golden_traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden_traces")
}

const TRACE_FIXTURES: [&str; 1] = ["smartnic-moderate"];

#[test]
fn chrome_trace_matches_its_golden_fixture() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    let dir = golden_traces_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden_traces");
    }
    let json = run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("ok").chrome_json;
    let path = dir.join("smartnic-moderate.json");
    if regen {
        std::fs::write(&path, &json).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run GOLDEN_REGEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        want, json,
        "Chrome trace differs from tests/golden_traces/smartnic-moderate.json \
         (GOLDEN_REGEN=1 to regenerate after intentional changes)"
    );
}

#[test]
fn golden_traces_dir_has_no_stale_fixtures() {
    let Ok(entries) = std::fs::read_dir(golden_traces_dir()) else {
        // Directory absent entirely: the fixture test reports that.
        return;
    };
    for entry in entries {
        let name = entry.expect("read dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".json") else {
            panic!("unexpected non-fixture file in tests/golden_traces/: {name}");
        };
        assert!(TRACE_FIXTURES.contains(&stem), "stale trace fixture: {name}");
    }
}

// ---------------------------------------------------------------------
// Histogram determinism and merge algebra.
// ---------------------------------------------------------------------

/// A seeded sample stream mixing magnitudes from ns to seconds.
fn sample_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let magnitude = rng.range_u64(0, 30);
            rng.range_u64(0, 1 << magnitude)
        })
        .collect()
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// Everything observable about a histogram, for equality checks.
fn fingerprint(h: &LogHistogram) -> String {
    let qs: Vec<String> =
        [0.0, 0.25, 0.5, 0.9, 0.99, 1.0].iter().map(|&q| h.quantile(q).to_string()).collect();
    format!("{};{};{};{}", h.count(), h.max(), qs.join(","), h.summary_json().render())
}

#[test]
fn histogram_recording_is_deterministic() {
    for seed in [1u64, 7, 42] {
        let a = hist_of(&sample_stream(seed, 4000));
        let b = hist_of(&sample_stream(seed, 4000));
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed}");
    }
}

#[test]
fn histogram_merge_is_commutative_and_associative() {
    for seed in [3u64, 11, 99] {
        let xs = sample_stream(seed, 3000);
        let ys = sample_stream(seed.wrapping_mul(31), 2000);
        let zs = sample_stream(seed.wrapping_mul(101), 1000);
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // Commutativity: a+b == b+a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(fingerprint(&ab), fingerprint(&ba), "merge must commute (seed {seed})");

        // Associativity: (a+b)+c == a+(b+c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(fingerprint(&left), fingerprint(&right), "merge must associate (seed {seed})");
    }
}

#[test]
fn sharded_merge_matches_the_single_stream() {
    // Recording a stream whole and recording it in shards then merging
    // must agree — the property that makes per-worker telemetry shards
    // safe to combine.
    let all = sample_stream(1234, 6000);
    let whole = hist_of(&all);
    let mut merged = LogHistogram::default();
    for shard in all.chunks(1700) {
        merged.merge(&hist_of(shard));
    }
    assert_eq!(fingerprint(&whole), fingerprint(&merged));
}

// ---------------------------------------------------------------------
// Observation must not perturb the simulation.
// ---------------------------------------------------------------------

#[test]
fn observed_and_unobserved_runs_agree_bit_for_bit() {
    let wl = perturbed_workload(120.0, 5, 0.5);
    let d = faulted(baseline_host(2), 0.5);
    let plain = d.run(&wl, RUN_NS, WARMUP_NS);
    let (observed, obs) = d.run_observed(&wl, RUN_NS, WARMUP_NS, &ObsConfig::full());
    assert_eq!(plain.throughput_bps.to_bits(), observed.throughput_bps.to_bits());
    assert_eq!(plain.mean_latency_ns.to_bits(), observed.mean_latency_ns.to_bits());
    assert_eq!(plain.p99_latency_ns.to_bits(), observed.p99_latency_ns.to_bits());
    assert_eq!(plain.policy_drops, observed.policy_drops);
    assert_eq!(plain.fault_drops, observed.fault_drops);
    assert_eq!(plain.watts.to_bits(), observed.watts.to_bits());
    // And the observer actually saw the run.
    assert!(obs.tracer.as_ref().is_some_and(|t| t.emitted() > 0));
    assert!(obs.telemetry.as_ref().is_some_and(|t| t.stages.iter().any(|s| s.arrivals > 0)));
    assert!(obs.spans.as_ref().is_some_and(|s| s.total_spans() > 0));
    assert!(obs.sched.pushes > 0);
}
