//! Integration suite for the deterministic observability layer.
//!
//! The contract under test: observing a run changes *nothing* about the
//! run, and the artifacts the observer emits are pure functions of
//! `(seed, spec)` — byte-identical across schedulers (wheel vs heap)
//! and harness worker counts, with one Chrome trace pinned as a golden
//! fixture in `tests/golden_traces/`.
//!
//! To regenerate the trace fixture after an intentional change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test observability
//! git diff tests/golden_traces/
//! ```

use apples_bench::scenarios::{
    baseline_host, faulted, firewall_chain, perturbed_workload, RUN_NS, WARMUP_NS,
};
use apples_bench::tracecmd::{run_trace, TraceOptions};
use apples_bench::Pool;
use apples_obs::{LogHistogram, ObsConfig, TimeSeries};
use apples_rng::Rng;
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::{Deployment, Measurement};
use std::path::PathBuf;

fn moderate_smartnic(scheduler: SchedulerKind) -> TraceOptions {
    // A compact ring keeps the golden fixture reviewable while still
    // spanning thousands of events across every stage.
    TraceOptions { scenario: "smartnic".to_owned(), scheduler, severity: 0.5, seed: 1, ring: 1024 }
}

// ---------------------------------------------------------------------
// Trace determinism: {serial, parallel} x {wheel, heap}.
// ---------------------------------------------------------------------

#[test]
fn trace_files_are_identical_across_schedulers_and_worker_counts() {
    let reference =
        run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("known scenario").chrome_json;

    // Both schedulers, traced on a multi-worker pool: every file must
    // equal the serially-produced wheel reference byte-for-byte.
    let kinds =
        vec![SchedulerKind::Wheel, SchedulerKind::Heap, SchedulerKind::Wheel, SchedulerKind::Heap];
    let traced = Pool::with_workers(4).map(kinds, |kind| {
        run_trace(&moderate_smartnic(kind)).expect("known scenario").chrome_json
    });
    for (i, json) in traced.iter().enumerate() {
        assert_eq!(
            json, &reference,
            "trace {i} diverged from the serial wheel reference: traces must be a pure \
             function of (seed, spec)"
        );
    }
}

#[test]
fn trace_files_depend_on_seed_and_severity() {
    let base = run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("ok").chrome_json;
    let other_seed = TraceOptions { seed: 2, ..moderate_smartnic(SchedulerKind::Wheel) };
    assert_ne!(
        base,
        run_trace(&other_seed).expect("ok").chrome_json,
        "different seeds must trace differently"
    );
    let clean = TraceOptions { severity: 0.0, ..moderate_smartnic(SchedulerKind::Wheel) };
    assert_ne!(
        base,
        run_trace(&clean).expect("ok").chrome_json,
        "fault severity must show up in the trace"
    );
}

// ---------------------------------------------------------------------
// Golden Chrome trace fixture.
// ---------------------------------------------------------------------

fn golden_traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden_traces")
}

const TRACE_FIXTURES: [&str; 1] = ["smartnic-moderate"];

#[test]
fn chrome_trace_matches_its_golden_fixture() {
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    let dir = golden_traces_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden_traces");
    }
    let json = run_trace(&moderate_smartnic(SchedulerKind::Wheel)).expect("ok").chrome_json;
    let path = dir.join("smartnic-moderate.json");
    if regen {
        std::fs::write(&path, &json).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run GOLDEN_REGEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        want, json,
        "Chrome trace differs from tests/golden_traces/smartnic-moderate.json \
         (GOLDEN_REGEN=1 to regenerate after intentional changes)"
    );
}

#[test]
fn golden_traces_dir_has_no_stale_fixtures() {
    let Ok(entries) = std::fs::read_dir(golden_traces_dir()) else {
        // Directory absent entirely: the fixture test reports that.
        return;
    };
    for entry in entries {
        let name = entry.expect("read dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".json") else {
            panic!("unexpected non-fixture file in tests/golden_traces/: {name}");
        };
        assert!(TRACE_FIXTURES.contains(&stem), "stale trace fixture: {name}");
    }
}

// ---------------------------------------------------------------------
// Histogram determinism and merge algebra.
// ---------------------------------------------------------------------

/// A seeded sample stream mixing magnitudes from ns to seconds.
fn sample_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let magnitude = rng.range_u64(0, 30);
            rng.range_u64(0, 1 << magnitude)
        })
        .collect()
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// Everything observable about a histogram, for equality checks.
fn fingerprint(h: &LogHistogram) -> String {
    let qs: Vec<String> =
        [0.0, 0.25, 0.5, 0.9, 0.99, 1.0].iter().map(|&q| h.quantile(q).to_string()).collect();
    format!("{};{};{};{}", h.count(), h.max(), qs.join(","), h.summary_json().render())
}

#[test]
fn histogram_recording_is_deterministic() {
    for seed in [1u64, 7, 42] {
        let a = hist_of(&sample_stream(seed, 4000));
        let b = hist_of(&sample_stream(seed, 4000));
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed}");
    }
}

#[test]
fn histogram_merge_is_commutative_and_associative() {
    for seed in [3u64, 11, 99] {
        let xs = sample_stream(seed, 3000);
        let ys = sample_stream(seed.wrapping_mul(31), 2000);
        let zs = sample_stream(seed.wrapping_mul(101), 1000);
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // Commutativity: a+b == b+a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(fingerprint(&ab), fingerprint(&ba), "merge must commute (seed {seed})");

        // Associativity: (a+b)+c == a+(b+c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(fingerprint(&left), fingerprint(&right), "merge must associate (seed {seed})");
    }
}

#[test]
fn sharded_merge_matches_the_single_stream() {
    // Recording a stream whole and recording it in shards then merging
    // must agree — the property that makes per-worker telemetry shards
    // safe to combine.
    let all = sample_stream(1234, 6000);
    let whole = hist_of(&all);
    let mut merged = LogHistogram::default();
    for shard in all.chunks(1700) {
        merged.merge(&hist_of(shard));
    }
    assert_eq!(fingerprint(&whole), fingerprint(&merged));
}

// ---------------------------------------------------------------------
// Observation must not perturb the simulation.
// ---------------------------------------------------------------------

#[test]
fn observed_and_unobserved_runs_agree_bit_for_bit() {
    let wl = perturbed_workload(120.0, 5, 0.5);
    let d = faulted(baseline_host(2), 0.5);
    let plain = d.run(&wl, RUN_NS, WARMUP_NS);
    let (observed, obs) = d.run_observed(&wl, RUN_NS, WARMUP_NS, &ObsConfig::full());
    assert_eq!(plain.throughput_bps.to_bits(), observed.throughput_bps.to_bits());
    assert_eq!(plain.mean_latency_ns.to_bits(), observed.mean_latency_ns.to_bits());
    assert_eq!(plain.p99_latency_ns.to_bits(), observed.p99_latency_ns.to_bits());
    assert_eq!(plain.policy_drops, observed.policy_drops);
    assert_eq!(plain.fault_drops, observed.fault_drops);
    assert_eq!(plain.watts.to_bits(), observed.watts.to_bits());
    // And the observer actually saw the run.
    assert!(obs.tracer.as_ref().is_some_and(|t| t.emitted() > 0));
    assert!(obs.telemetry.as_ref().is_some_and(|t| t.stages.iter().any(|s| s.arrivals > 0)));
    assert!(obs.spans.as_ref().is_some_and(|s| s.total_spans() > 0));
    assert!(obs.timeseries.as_ref().is_some_and(|ts| ts.total_dispatches() > 0));
    assert!(obs.sched.pushes > 0);
}

// ---------------------------------------------------------------------
// Time-series merge algebra: sharded recording == whole recording.
// ---------------------------------------------------------------------

/// Replays a seeded event stream into a series: dispatches always,
/// enqueues/drops/faults/ticks on a deterministic cadence so every
/// counter and gauge is exercised.
fn record_stream(ts: &mut TimeSeries, events: &[(u64, u64)]) {
    for &(i, t) in events {
        ts.on_dispatch(t);
        if i % 3 == 0 {
            ts.on_enqueue(t, (i % 5) as usize, i % 17);
        }
        if i % 11 == 0 {
            ts.on_drop(t);
        }
        if i % 29 == 0 {
            ts.on_fault(t);
        }
    }
}

#[test]
fn timeseries_chunked_recording_matches_the_whole_stream() {
    // Record a stream whole, then partitioned into chunks merged in a
    // scrambled order: counters and gauges must agree exactly — within
    // one stream, gauges partition cleanly (each observation lands in
    // exactly one chunk), so the full fingerprint must match.
    let mut rng = Rng::seed_from_u64(77);
    let events: Vec<(u64, u64)> = (0..20_000).map(|i| (i, rng.range_u64(0, 1 << 24))).collect();
    let mut whole = TimeSeries::new(1 << 18, 64);
    record_stream(&mut whole, &events);

    let chunks: Vec<&[(u64, u64)]> = events.chunks(3001).collect();
    let mut merged = TimeSeries::new(1 << 18, 64);
    for &idx in &[4usize, 0, 6, 2, 5, 1, 3] {
        let mut shard = TimeSeries::new(1 << 18, 64);
        record_stream(&mut shard, chunks[idx]);
        merged.merge(&shard);
    }
    assert_eq!(whole.fingerprint(), merged.fingerprint());
}

#[test]
fn timeseries_merge_commutes_under_eviction() {
    // Shards whose windows straddle the ring bound: merge order must
    // not matter even when merging itself evicts.
    let tight = |lo: u64, hi: u64, seed: u64| {
        let mut rng = Rng::seed_from_u64(seed);
        let mut ts = TimeSeries::new(1 << 10, 8);
        for _ in 0..2_000 {
            ts.on_dispatch(rng.range_u64(lo, hi));
        }
        ts
    };
    let a = tight(0, 1 << 14, 5);
    let b = tight(1 << 13, 1 << 15, 6);
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.fingerprint(), ba.fingerprint());
}

// ---------------------------------------------------------------------
// Diagnosis metrics must not perturb: schedulers x fusion x shards.
// ---------------------------------------------------------------------

fn bits(m: &Measurement) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.throughput_bps.to_bits(),
        m.mean_latency_ns.to_bits(),
        m.p99_latency_ns.to_bits(),
        m.policy_drops,
        m.fault_drops,
        m.watts.to_bits(),
    )
}

fn cluster() -> Deployment {
    faulted(Deployment::replicated_cluster("cluster", 4, 2, 0.1, firewall_chain), 0.3)
}

#[test]
fn diagnosis_metrics_stay_invisible_across_schedulers_fusion_and_shards() {
    let wl = perturbed_workload(12.0, 3, 0.3);
    let reference = bits(&cluster().run(&wl, RUN_NS, WARMUP_NS));
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        for fused in [true, false] {
            for shards in 1..=4usize {
                let d = cluster().with_scheduler(kind).with_fusion(fused).with_shards(shards);
                let (m, obs, diag) =
                    d.run_diagnosed(&wl, RUN_NS, WARMUP_NS, &ObsConfig::diagnosis());
                assert_eq!(
                    bits(&m),
                    reference,
                    "metrics-on run diverged ({kind:?}, fused={fused}, shards={shards})"
                );
                assert!(
                    obs.timeseries.as_ref().is_some_and(|ts| ts.total_dispatches() > 0),
                    "series empty ({kind:?}, fused={fused}, shards={shards})"
                );
                if fused && (shards == 2 || shards == 4) {
                    let diag = diag.expect("cluster plan must shard at 2 and 4");
                    let (c, b, g) = diag.fractions();
                    assert!(
                        (c + b + g - 1.0).abs() < 1e-9,
                        "fractions must sum to 1: {c} + {b} + {g}"
                    );
                    assert_eq!(diag.lanes.len(), shards);
                    let jfi = diag.jain_index();
                    assert!((0.0..=1.0 + 1e-9).contains(&jfi), "jain index {jfi}");
                    assert!(diag.predicted_max_speedup() <= shards as f64 + 1e-9);
                }
            }
        }
    }
}

#[test]
fn sharded_observed_counters_match_serial_observed() {
    // Telemetry counters and the time-series counter fields are exact
    // under sharding (each stage lives on exactly one shard; sim-time
    // bins align); gauges only bound the serial value, so they stay out
    // of the comparison.
    let wl = perturbed_workload(12.0, 3, 0.3);
    let cfg = ObsConfig::telemetry_only();
    let (m_serial, serial) = cluster().run_observed(&wl, RUN_NS, WARMUP_NS, &cfg);
    let names: Vec<String> = m_serial.stages.iter().map(|s| s.name.to_owned()).collect();
    let serial_tel = serial.telemetry.as_ref().expect("telemetry on").to_json(&names).render();

    let diag_cfg = ObsConfig::diagnosis();
    let (_, serial_diag, _) = cluster().run_diagnosed(&wl, RUN_NS, WARMUP_NS, &diag_cfg);
    let serial_series = serial_diag.timeseries.as_ref().expect("series on");

    for shards in [2usize, 4] {
        let (m, sharded) = cluster().with_shards(shards).run_observed(&wl, RUN_NS, WARMUP_NS, &cfg);
        assert_eq!(bits(&m), bits(&m_serial), "shards={shards}");
        let sharded_tel =
            sharded.telemetry.as_ref().expect("telemetry on").to_json(&names).render();
        assert_eq!(sharded_tel, serial_tel, "telemetry diverged at shards={shards}");

        let (_, obs, _) =
            cluster().with_shards(shards).run_diagnosed(&wl, RUN_NS, WARMUP_NS, &diag_cfg);
        let series = obs.timeseries.as_ref().expect("series on");
        assert_eq!(series.len(), serial_series.len(), "bin count at shards={shards}");
        for ((idx_a, a), (idx_b, b)) in series.bins().zip(serial_series.bins()) {
            assert_eq!(idx_a, idx_b, "bin index at shards={shards}");
            assert_eq!(
                (a.dispatches, a.enqueues, a.drops, a.faults),
                (b.dispatches, b.enqueues, b.drops, b.faults),
                "counters diverged in interval {idx_a} at shards={shards}"
            );
        }
    }
}
