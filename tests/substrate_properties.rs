//! Property-based tests of the simulation substrate: matcher
//! equivalence, search-engine correctness, and packet conservation over
//! random pipeline configurations.

use apples::simnet::engine::{Engine, StageConfig};
use apples::simnet::nf::dpi::AhoCorasick;
use apples::simnet::nf::firewall::{Action, BucketedFirewall, Firewall, Rule};
use apples::simnet::nf::{NetworkFunction, NfChain};
use apples::simnet::packet::Packet;
use apples::simnet::service::{LineRate, NfService};
use apples::workload::{FiveTuple, WorkloadSpec};
use proptest::prelude::*;

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        any::<u32>(),
        0u8..=32,
        any::<u32>(),
        0u8..=32,
        any::<u16>(),
        0u16..16,
        prop_oneof![Just(None), Just(Some(6u8)), Just(Some(17u8))],
        prop_oneof![Just(Action::Allow), Just(Action::Deny)],
    )
        .prop_map(|(sa, sl, da, dl, plo, pspan, proto, action)| Rule {
            src: (sa, sl),
            dst: (da, dl),
            dst_ports: (plo, plo.saturating_add(pspan)),
            proto,
            action,
        })
}

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u32>(), any::<u16>(), 0u16..32, prop_oneof![Just(6u8), Just(17u8)])
        .prop_map(|(s, d, sp, dp, proto)| FiveTuple {
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
            proto,
        })
}

fn packet(t: FiveTuple) -> Packet {
    Packet::new(1, 0, t, 64, 0)
}

proptest! {
    /// The bucketed matcher is an optimization, not a semantic change:
    /// it must agree with the linear first-match scan on every rule set
    /// and every packet.
    #[test]
    fn bucketed_firewall_matches_linear_semantics(
        rules in proptest::collection::vec(arb_rule(), 0..40),
        tuples in proptest::collection::vec(arb_tuple(), 1..40),
        default_deny in any::<bool>(),
    ) {
        let default = if default_deny { Action::Deny } else { Action::Allow };
        let mut linear = Firewall::new(rules.clone(), default);
        let mut bucketed = BucketedFirewall::new(rules, default);
        for t in tuples {
            let p = packet(t);
            let (lv, _) = linear.process(&p);
            let (bv, _) = bucketed.process(&p);
            prop_assert_eq!(lv, bv, "matchers disagree on {:?}", t);
        }
    }

    /// Aho–Corasick counts exactly what a naive scan counts.
    #[test]
    fn aho_corasick_matches_naive_search(
        patterns in proptest::collection::vec(
            proptest::collection::vec(97u8..=100, 1..5), 1..6),
        haystack in proptest::collection::vec(97u8..=100, 0..200),
    ) {
        let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
        let ac = AhoCorasick::build(&refs);
        let naive: u64 = patterns
            .iter()
            .map(|p| {
                if p.len() > haystack.len() {
                    0
                } else {
                    haystack.windows(p.len()).filter(|w| *w == p.as_slice()).count() as u64
                }
            })
            .sum();
        prop_assert_eq!(ac.count_matches(&haystack), naive);
    }

    /// No pipeline configuration loses or invents packets.
    #[test]
    fn pipelines_conserve_packets(
        servers1 in 1u32..4,
        servers2 in 1u32..4,
        cap1 in 1usize..64,
        cap2 in 1usize..64,
        rate_mpps in 1u64..20,
        size in 64u32..1500,
        seed in 0u64..1000,
    ) {
        let mut engine = Engine::new(vec![
            StageConfig::new("front", servers1, cap1, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", servers2, cap2, Box::new(LineRate::new("10G", 10e9))),
        ]);
        let wl = WorkloadSpec::cbr(rate_mpps as f64 * 1e6, size, 4, seed);
        let r = engine.run(&wl, 1_000_000, 0);
        for s in &r.stages {
            prop_assert!(s.conserves_packets(), "stage {} leaks: {s:?}", s.name);
        }
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        prop_assert_eq!(accounted, r.injected);
    }

    /// Batch stages conserve packets for any policy parameters, and
    /// batching never delivers more than was offered.
    #[test]
    fn batch_stages_conserve_packets(
        max_batch in 1usize..128,
        timeout_us in 1u64..200,
        kernel_us in 0u64..50,
        rate_mpps in 1u64..8,
        seed in 0u64..200,
    ) {
        use apples::simnet::engine::BatchPolicy;
        use apples::simnet::service::FixedTime;
        let mut engine = Engine::new(vec![StageConfig::new(
            "gpu",
            2,
            2048,
            Box::new(FixedTime::new("kernel", NfChain::empty(), 30)),
        )
        .with_batching(BatchPolicy::new(max_batch, timeout_us * 1000, kernel_us * 1000))]);
        let wl = WorkloadSpec::cbr(rate_mpps as f64 * 1e6, 300, 4, seed);
        let r = engine.run(&wl, 2_000_000, 0);
        prop_assert!(r.stages[0].conserves_packets(), "{:?}", r.stages[0]);
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        prop_assert_eq!(accounted, r.injected);
        prop_assert!(r.sink.delivered_packets() <= r.injected);
    }

    /// Adding servers never reduces delivered throughput (work
    /// conservation of the queueing model).
    #[test]
    fn more_servers_never_hurt(seed in 0u64..50) {
        let deliver = |servers: u32| {
            let mut engine = Engine::new(vec![StageConfig::new(
                "core",
                servers,
                128,
                Box::new(NfService::host_core(NfChain::empty())),
            )]);
            let wl = WorkloadSpec::cbr(12e6, 64, 4, seed);
            engine.run(&wl, 1_000_000, 0).sink.delivered_packets()
        };
        let one = deliver(1);
        let two = deliver(2);
        prop_assert!(two + 8 >= one, "2 servers delivered {two} < 1 server {one}");
    }
}
