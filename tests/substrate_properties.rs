//! Property-style tests of the simulation substrate: matcher
//! equivalence, search-engine correctness, and packet conservation over
//! randomly explored pipeline configurations (seeded loops, so every
//! run explores the identical sequence).

use apples::simnet::engine::{Engine, StageConfig};
use apples::simnet::nf::dpi::AhoCorasick;
use apples::simnet::nf::firewall::{Action, BucketedFirewall, Firewall, Rule};
use apples::simnet::nf::{NetworkFunction, NfChain};
use apples::simnet::packet::Packet;
use apples::simnet::service::{LineRate, NfService};
use apples::workload::{FiveTuple, WorkloadSpec};
use apples_rng::Rng;

fn random_rule(rng: &mut Rng) -> Rule {
    let plo = rng.range_u16_inclusive(0, u16::MAX);
    Rule {
        src: (rng.next_u32(), rng.range_u8_inclusive(0, 32)),
        dst: (rng.next_u32(), rng.range_u8_inclusive(0, 32)),
        dst_ports: (plo, plo.saturating_add(rng.range_u16(0, 16))),
        proto: match rng.range_u32(0, 3) {
            0 => None,
            1 => Some(6),
            _ => Some(17),
        },
        action: if rng.gen_bool(0.5) { Action::Allow } else { Action::Deny },
    }
}

fn random_tuple(rng: &mut Rng) -> FiveTuple {
    FiveTuple {
        src_ip: rng.next_u32(),
        dst_ip: rng.next_u32(),
        src_port: rng.range_u16_inclusive(0, u16::MAX),
        dst_port: rng.range_u16(0, 32),
        proto: if rng.gen_bool(0.5) { 6 } else { 17 },
    }
}

fn packet(t: FiveTuple) -> Packet {
    Packet::new(1, 0, t, 64, 0)
}

/// The bucketed matcher is an optimization, not a semantic change: it
/// must agree with the linear first-match scan on every rule set and
/// every packet.
#[test]
fn bucketed_firewall_matches_linear_semantics() {
    let mut rng = Rng::seed_from_u64(0x50B1);
    for _ in 0..300 {
        let rules: Vec<Rule> = (0..rng.range_usize(0, 40)).map(|_| random_rule(&mut rng)).collect();
        let default = if rng.gen_bool(0.5) { Action::Deny } else { Action::Allow };
        let mut linear = Firewall::new(rules.clone(), default);
        let mut bucketed = BucketedFirewall::new(rules, default);
        for _ in 0..rng.range_usize(1, 40) {
            let t = random_tuple(&mut rng);
            let p = packet(t);
            let (lv, _) = linear.process(&p);
            let (bv, _) = bucketed.process(&p);
            assert_eq!(lv, bv, "matchers disagree on {t:?}");
        }
    }
}

/// Aho–Corasick counts exactly what a naive scan counts.
#[test]
fn aho_corasick_matches_naive_search() {
    let mut rng = Rng::seed_from_u64(0x50B2);
    for _ in 0..300 {
        let patterns: Vec<Vec<u8>> = (0..rng.range_usize(1, 6))
            .map(|_| (0..rng.range_usize(1, 5)).map(|_| rng.range_u8_inclusive(97, 100)).collect())
            .collect();
        let haystack: Vec<u8> =
            (0..rng.range_usize(0, 200)).map(|_| rng.range_u8_inclusive(97, 100)).collect();
        let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
        let ac = AhoCorasick::build(&refs);
        let naive: u64 = patterns
            .iter()
            .map(|p| {
                if p.len() > haystack.len() {
                    0
                } else {
                    haystack.windows(p.len()).filter(|w| *w == p.as_slice()).count() as u64
                }
            })
            .sum();
        assert_eq!(ac.count_matches(&haystack), naive);
    }
}

/// No pipeline configuration loses or invents packets. This is the
/// suite-wide conservation sweep: every random two-stage pipeline must
/// satisfy `StageReport::conserves_packets` at every stage, and the
/// global delivered + dropped + in-flight accounting must equal the
/// injected count.
#[test]
fn pipelines_conserve_packets() {
    let mut rng = Rng::seed_from_u64(0x50B3);
    for _ in 0..60 {
        let servers1 = rng.range_u32(1, 4);
        let servers2 = rng.range_u32(1, 4);
        let cap1 = rng.range_usize(1, 64);
        let cap2 = rng.range_usize(1, 64);
        let rate_mpps = rng.range_u64(1, 20);
        let size = rng.range_u32(64, 1500);
        let seed = rng.range_u64(0, 1000);
        let mut engine = Engine::new(vec![
            StageConfig::new(
                "front",
                servers1,
                cap1,
                Box::new(NfService::host_core(NfChain::empty())),
            ),
            StageConfig::new("back", servers2, cap2, Box::new(LineRate::new("10G", 10e9))),
        ]);
        let wl = WorkloadSpec::cbr(rate_mpps as f64 * 1e6, size, 4, seed);
        let r = engine.run(&wl, 1_000_000, 0);
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks: {s:?}", s.name);
        }
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }
}

/// Batch stages conserve packets for any policy parameters, and
/// batching never delivers more than was offered.
#[test]
fn batch_stages_conserve_packets() {
    use apples::simnet::engine::BatchPolicy;
    use apples::simnet::service::FixedTime;
    let mut rng = Rng::seed_from_u64(0x50B4);
    for _ in 0..60 {
        let max_batch = rng.range_usize(1, 128);
        let timeout_us = rng.range_u64(1, 200);
        let kernel_us = rng.range_u64(0, 50);
        let rate_mpps = rng.range_u64(1, 8);
        let seed = rng.range_u64(0, 200);
        let mut engine = Engine::new(vec![StageConfig::new(
            "gpu",
            2,
            2048,
            Box::new(FixedTime::new("kernel", NfChain::empty(), 30)),
        )
        .with_batching(BatchPolicy::new(max_batch, timeout_us * 1000, kernel_us * 1000))]);
        let wl = WorkloadSpec::cbr(rate_mpps as f64 * 1e6, 300, 4, seed);
        let r = engine.run(&wl, 2_000_000, 0);
        assert!(r.stages[0].conserves_packets(), "{:?}", r.stages[0]);
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
        assert!(r.sink.delivered_packets() <= r.injected);
    }
}

/// Adding servers never reduces delivered throughput (work conservation
/// of the queueing model).
#[test]
fn more_servers_never_hurt() {
    for seed in 0..50u64 {
        let deliver = |servers: u32| {
            let mut engine = Engine::new(vec![StageConfig::new(
                "core",
                servers,
                128,
                Box::new(NfService::host_core(NfChain::empty())),
            )]);
            let wl = WorkloadSpec::cbr(12e6, 64, 4, seed);
            engine.run(&wl, 1_000_000, 0).sink.delivered_packets()
        };
        let one = deliver(1);
        let two = deliver(2);
        assert!(two + 8 >= one, "2 servers delivered {two} < 1 server {one}");
    }
}
