//! End-to-end store gate: a fully-warm `xp all` must be byte-identical
//! — stdout, markdown reports, and figure CSVs — to a cold run and to
//! a `--no-cache` run, the cache must be valid across harness
//! schedules and simulation substrates (both schedulers, shards
//! {1,4}), and regenerating a golden fixture must invalidate the
//! corresponding store entries so a post-regen run can never serve a
//! pre-regen cached report.

use apples_bench::scenarios::{baseline_host, measure_quick, saturating_workload, switch_system};
use apples_bench::xpall::{run_all, XpAllOptions};
use apples_simnet::SchedulerKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Representative subset: a table experiment, a worked example, and a
/// fault-injected experiment (exercising the fault-spec DAG roots).
/// The full 27-id matrix runs in the release-mode `== store ==` CI
/// stage; this debug-mode gate keeps the same shape but small.
const IDS: [&str; 3] = ["fig1a", "ex42", "robustness-verdict"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apples-store-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn opts(store: &Path, artifacts: &Path, threads: usize) -> XpAllOptions {
    let mut o = XpAllOptions::for_ids(IDS.iter().map(|s| s.to_string()).collect());
    o.store_root = store.to_path_buf();
    o.csv_dir = Some(artifacts.join("csv"));
    o.md_dir = Some(artifacts.join("md"));
    o.threads = Some(threads);
    o
}

/// Stdout minus the `wrote <path>` echo lines, which name the (per-run
/// temp) artifact directories; the artifact bytes themselves are
/// compared separately via `dir_bytes`.
fn report_text(stdout: &str) -> String {
    stdout.lines().filter(|l| !l.starts_with("wrote ")).collect::<Vec<_>>().join("\n")
}

/// Every regular file under a directory, keyed by relative path.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).expect("under dir").display().to_string();
                out.insert(rel, std::fs::read(&path).expect("read artifact"));
            }
        }
    }
    out
}

/// Cold run (all misses) → warm run (100% hits, different pool width)
/// → `--no-cache` run: stdout, CSVs, and markdown byte-identical
/// across all three.
#[test]
fn warm_run_is_byte_identical_to_cold_and_no_cache() {
    let store = temp_dir("identity-store");
    let (a, b, c) = (temp_dir("identity-a"), temp_dir("identity-b"), temp_dir("identity-c"));

    let cold = run_all(&opts(&store, &a, 1)).expect("cold run");
    assert_eq!(cold.stats.hit, 0, "cold run hit a fresh store");
    assert_eq!(cold.stats.miss, cold.stats.nodes);
    assert_eq!(cold.stats.executed.len(), IDS.len(), "cold run must execute everything");

    // Warm, on a wider pool: the cache must be schedule-independent.
    let warm = run_all(&opts(&store, &b, 4)).expect("warm run");
    assert_eq!(warm.stats.hit, warm.stats.nodes, "warm run was not 100% hits: {}", warm.explain);
    assert!(warm.stats.executed.is_empty(), "warm run re-executed {:?}", warm.stats.executed);
    assert_eq!(
        report_text(&warm.stdout),
        report_text(&cold.stdout),
        "warm stdout diverged from cold"
    );

    let mut no_cache = opts(&store, &c, 2);
    no_cache.no_cache = true;
    let fresh = run_all(&no_cache).expect("no-cache run");
    assert_eq!(fresh.stats.executed.len(), IDS.len(), "--no-cache must execute everything");
    assert_eq!(
        report_text(&fresh.stdout),
        report_text(&cold.stdout),
        "--no-cache stdout diverged from cold"
    );

    let (cold_files, warm_files, fresh_files) = (dir_bytes(&a), dir_bytes(&b), dir_bytes(&c));
    assert!(!cold_files.is_empty(), "cold run wrote no artifacts");
    assert_eq!(cold_files, warm_files, "a cached CSV/report differs from its cold original");
    assert_eq!(cold_files, fresh_files, "a --no-cache artifact differs from its cold original");

    for d in [&store, &a, &b, &c] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The store caches *measurements*, so a cached artifact is only valid
/// if the measurement is invariant across execution substrates. Gate
/// that directly: both schedulers × shards {1,4} produce bit-identical
/// measurements on the scenario families the suite runs.
#[test]
fn cached_measurements_are_substrate_invariant_across_schedulers_and_shards() {
    let wl = saturating_workload(7);
    let reference = measure_quick(&baseline_host(2), &wl);
    let reference_switch = measure_quick(&switch_system(4), &wl);
    for sched in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        for shards in [1usize, 4] {
            let host =
                measure_quick(&baseline_host(2).with_scheduler(sched).with_shards(shards), &wl);
            let switch =
                measure_quick(&switch_system(4).with_scheduler(sched).with_shards(shards), &wl);
            for (got, want, name) in
                [(&host, &reference, "baseline-2c"), (&switch, &reference_switch, "switch-4c")]
            {
                assert_eq!(
                    got.throughput_bps.to_bits(),
                    want.throughput_bps.to_bits(),
                    "{name} throughput diverged under {sched:?}/{shards} shards"
                );
                assert_eq!(
                    got.p99_latency_ns.to_bits(),
                    want.p99_latency_ns.to_bits(),
                    "{name} p99 diverged under {sched:?}/{shards} shards"
                );
                assert_eq!(
                    got.loss_rate.to_bits(),
                    want.loss_rate.to_bits(),
                    "{name} loss diverged under {sched:?}/{shards} shards"
                );
            }
        }
    }
}

/// Golden-regen regression: changing a golden fixture's bytes changes
/// that experiment's run key, so the next `xp all` re-executes exactly
/// that experiment instead of serving the pre-regen cached report.
#[test]
fn regenerated_golden_fixture_invalidates_the_cached_report() {
    let store = temp_dir("regen-store");
    let golden = temp_dir("regen-golden");
    for id in IDS {
        let fixture = PathBuf::from("tests").join("golden").join(format!("{id}.md"));
        std::fs::copy(&fixture, golden.join(format!("{id}.md"))).expect("copy fixture");
    }

    let mut o = opts(&store, &temp_dir("regen-a"), 2);
    o.golden_dir = golden.clone();
    let cold = run_all(&o).expect("cold run");
    assert_eq!(cold.stats.executed.len(), IDS.len());

    // Regenerate one fixture (byte change, as GOLDEN_REGEN=1 would).
    let victim = "ex42";
    let path = golden.join(format!("{victim}.md"));
    let mut bytes = std::fs::read(&path).expect("read fixture");
    bytes.extend_from_slice(b"\n<!-- regenerated -->\n");
    std::fs::write(&path, &bytes).expect("rewrite fixture");

    let regen = run_all(&o).expect("post-regen run");
    assert_eq!(
        regen.stats.executed,
        vec![victim.to_string()],
        "post-regen run must re-execute exactly the regenerated experiment: {}",
        regen.explain
    );
    assert!(regen.stats.stale >= 1, "the stale run node went undetected: {}", regen.explain);
    assert_eq!(
        report_text(&regen.stdout),
        report_text(&cold.stdout),
        "report bytes changed with only a fixture regen"
    );

    // And the store settles: the next run is fully warm again.
    let warm = run_all(&o).expect("settled run");
    assert_eq!(warm.stats.hit, warm.stats.nodes, "store did not settle post-regen");
    assert!(warm.stats.executed.is_empty());

    for d in [&store, &golden] {
        let _ = std::fs::remove_dir_all(d);
    }
}
