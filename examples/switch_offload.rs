//! End-to-end §4.2.1: a programmable switch pre-applies part of the same
//! ACL the host enforces, compared against the all-cores baseline under
//! ideal scaling — including what happens at *low* load, where the
//! switch's idle power makes the accelerated design indefensible.
//!
//! ```sh
//! cargo run --release --example switch_offload
//! ```

use apples::prelude::*;
use apples_bench::scenarios::{baseline_host, measure, mtu_workload, switch_system, to_gbps};

fn compare_at(offered_gbps: f64) {
    let wl = mtu_workload(offered_gbps, 2);
    let base = measure(&baseline_host(8), &wl);
    let sw = measure(&switch_system(8), &wl);

    println!("--- offered load: {offered_gbps} Gbps ---");
    println!("baseline : {:6.2} Gbps at {:6.1} W", to_gbps(base.throughput_bps), base.watts);
    println!("proposed : {:6.2} Gbps at {:6.1} W", to_gbps(sw.throughput_bps), sw.watts);
    let result =
        Evaluation::new(sw.as_system(), base.as_system()).with_baseline_scaling(&IdealLinear).run();
    println!("verdict  : {}\n", result.verdict);
}

fn main() {
    // At saturation the switch sheds the host's most expensive packets
    // (the deep-in-the-ACL web-traffic deny) and the accelerated design
    // prevails even against an ideally scaled baseline.
    compare_at(120.0);
    // At light load the switch's ~100 W idle floor buys nothing: the
    // baseline dominates outright — the honest negative result the
    // methodology reports just as readily.
    compare_at(2.0);
}
