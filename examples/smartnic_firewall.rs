//! End-to-end §4.2: simulate a firewall on a host, on a SmartNIC-
//! accelerated host, and on a multi-core host; then let the methodology
//! decide what may be claimed.
//!
//! ```sh
//! cargo run --release --example smartnic_firewall
//! ```

use apples::prelude::*;
use apples_bench::scenarios::{
    baseline_host, measure, saturating_workload, smartnic_system, to_gbps,
};

fn main() {
    // A saturating MTU workload: every deployment reports its ceiling.
    let wl = saturating_workload(1);

    // Baseline at 1..4 cores (Principle 5: measure the scaling curve).
    println!("measuring the baseline's core-scaling curve:");
    let mut curve_samples = Vec::new();
    let mut base1: Option<Measurement> = None;
    for cores in [1u32, 2, 3, 4] {
        let m = measure(&baseline_host(cores), &wl);
        println!("  {} : {:6.2} Gbps at {:5.1} W", m.name, to_gbps(m.throughput_bps), m.watts);
        if let Some(b) = &base1 {
            curve_samples.push((
                f64::from(cores),
                m.throughput_bps / b.throughput_bps,
                m.watts / b.watts,
            ));
        } else {
            curve_samples.push((1.0, 1.0, 1.0));
            base1 = Some(m);
        }
    }
    let base1 = base1.expect("measured");
    let curve = MeasuredCurve::from_samples(curve_samples);

    // The proposed system: the ACL on SmartNIC cores, the stateful tail
    // (NAT + flow monitor) on one host core.
    let nic = measure(&smartnic_system(), &wl);
    println!(
        "proposed {} : {:6.2} Gbps at {:5.1} W\n",
        nic.name,
        to_gbps(nic.throughput_bps),
        nic.watts
    );

    // Cross-check the event scheduler itself: the default timing wheel
    // and the reference binary heap must report the same measurement.
    let heap = measure(&smartnic_system().with_scheduler(SchedulerKind::Heap), &wl);
    assert_eq!(nic.throughput_bps.to_bits(), heap.throughput_bps.to_bits());
    assert_eq!(nic.watts.to_bits(), heap.watts.to_bits());

    // The fair comparison, with the measured scaling model.
    let result =
        Evaluation::new(nic.as_system(), base1.as_system()).with_baseline_scaling(&curve).run();
    println!("{}", render_text(&result));
}
