//! §3.1's TCO proposal in practice: TCO is context-dependent, so release
//! the *pricing model* with the paper. Anyone holding the model computes
//! the same dollars for the same deployment — and can re-price their own
//! systems under it for an apples-to-apples dollar comparison.
//!
//! ```sh
//! cargo run --example tco_release
//! ```

use apples::metrics::pricing::{BomItem, PricingModel};
use apples::power::devices::DeviceSpec;
use apples::power::inventory::SystemInventory;
use apples::prelude::*;

fn main() {
    // Two deployments' inventories at their measured utilizations.
    let baseline = SystemInventory::new()
        .add(DeviceSpec::host_chassis(), 1, 1.0)
        .add(DeviceSpec::xeon_core(), 2, 1.0)
        .add(DeviceSpec::dumb_nic_100g(), 1, 0.8);
    let accelerated = SystemInventory::new()
        .add(DeviceSpec::host_chassis(), 1, 1.0)
        .add(DeviceSpec::xeon_core(), 1, 0.9)
        .add(DeviceSpec::smartnic_100g(), 1, 0.95);

    // Context-independent costs first (what the paper asks papers to report):
    for (name, inv) in [("baseline", &baseline), ("accelerated", &accelerated)] {
        let v = inv.cost_vector();
        println!(
            "{name:<12} power={:6.1} W  heat={:7.1} BTU/h  rack={:.1} RU",
            v.watts,
            v.heat().value(),
            v.rack_units
        );
        match v.core_count() {
            Some(c) => println!("{:<12} cores compose: {}", "", c),
            None => println!(
                "{:<12} cores do NOT compose across device classes (principle 3) — not reported",
                ""
            ),
        }
    }

    // The released pricing models.
    let campus = PricingModel::campus_testbed_2023();
    let hyperscaler = PricingModel::hyperscaler_2023();
    println!("\nyearly TCO under each released model:");
    println!("{:<12} {:>20} {:>20}", "system", campus.name.as_str(), hyperscaler.name.as_str());
    for (name, inv) in [("baseline", &baseline), ("accelerated", &accelerated)] {
        let tc = inv.yearly_tco(&campus).expect("priced");
        let th = inv.yearly_tco(&hyperscaler).expect("priced");
        println!("{name:<12} {:>20} {:>20}", tc.to_string(), th.to_string());
    }

    println!(
        "\nsame deployments, different models, different dollars — that is context\n\
         dependence. Within one released model the ranking is reproducible by anyone."
    );

    // A consumer with their own part can extend the model and stay
    // comparable.
    let mut extended = campus.clone();
    extended.price_list.insert("fpga-nic-200g".to_owned(), 9_500.0);
    let custom = extended
        .yearly_tco(
            &[BomItem::new("fpga-nic-200g", 1), BomItem::new("xeon-server-16c", 1)],
            watts(120.0),
        )
        .expect("priced");
    println!("\na third party pricing their FPGA system under the released model: {custom}/yr");
}
