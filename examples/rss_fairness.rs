//! Queueing-model choices change tail latency and fairness — and the
//! methodology's non-scalable rules (§4.3) govern how those metrics may
//! be compared. This example measures a shared-queue host against an
//! RSS (per-core-queue) host under increasingly skewed traffic, then
//! runs the latency comparison through Principle 7.
//!
//! ```sh
//! cargo run --release --example rss_fairness
//! ```

use apples::prelude::*;
use apples_bench::scenarios::{full_chain, CONTENTION_ALPHA};

fn workload(zipf: f64) -> WorkloadSpec {
    WorkloadSpec {
        sizes: PacketSizeDist::Fixed(1500),
        arrivals: ArrivalProcess::Poisson { rate_pps: 2.2e6 },
        flows: 64,
        zipf_s: zipf,
        seed: 9,
    }
}

fn main() {
    println!("{:<8} {:<10} {:>9} {:>10} {:>8}", "zipf", "model", "Gbps", "p99 (us)", "JFI");
    let mut last: Option<(Measurement, Measurement)> = None;
    for zipf in [0.0, 0.8, 1.2] {
        let wl = workload(zipf);
        let shared = Deployment::cpu_host_contended("shared-4c", 4, CONTENTION_ALPHA, full_chain)
            .run(&wl, 20_000_000, 2_000_000);
        let rss = Deployment::cpu_host_rss("rss-4c", 4, full_chain).run(&wl, 20_000_000, 2_000_000);
        for m in [&shared, &rss] {
            println!(
                "{:<8} {:<10} {:>9.2} {:>10.1} {:>8.4}",
                zipf,
                m.name,
                m.throughput_bps / 1e9,
                m.p99_latency_ns / 1000.0,
                m.jain_index.unwrap_or(0.0),
            );
        }
        last = Some((shared, rss));
    }

    // Latency is non-scalable: Principle 7 decides what may be claimed
    // at the highest skew.
    let (shared, rss) = last.expect("measured");
    let comparison = compare_nonscalable(&shared.p99_power_point(), &rss.p99_power_point());
    println!("\np99-latency comparison at zipf 1.2 (principle 7): {comparison}");
    match comparison {
        Comparability::Comparable(rel) => {
            println!("shared-queue {rel} RSS: an objective claim is licensed")
        }
        Comparability::Incomparable { .. } => {
            println!("no objective claim; report both points")
        }
    }
}
