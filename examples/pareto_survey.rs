//! Survey mode: measure a whole design space (core counts × accelerator
//! choices), compute the Pareto frontier, and print the defensible menu
//! — the generalization of the paper's two-system comparisons.
//!
//! ```sh
//! cargo run --release --example pareto_survey
//! ```

use apples::prelude::*;
use apples_bench::scenarios::{
    baseline_host, firewall_chain, measure, optimized_host, saturating_workload,
    stateful_tail_chain, switch_system, to_gbps,
};

fn main() {
    let wl = saturating_workload(3);

    let mut deployments: Vec<Deployment> = Vec::new();
    for cores in [1u32, 2, 4, 8] {
        deployments.push(baseline_host(cores));
    }
    deployments.push(optimized_host(2));
    deployments.push(Deployment::smartnic_offload(
        "smartnic+1c",
        4,
        firewall_chain,
        1,
        stateful_tail_chain,
    ));
    deployments.push(Deployment::smartnic_offload(
        "smartnic+2c",
        8,
        firewall_chain,
        2,
        stateful_tail_chain,
    ));
    for cores in [2u32, 8] {
        deployments.push(switch_system(cores));
    }

    println!("measuring {} designs under one saturating workload:\n", deployments.len());
    let measurements: Vec<Measurement> = deployments.iter().map(|d| measure(d, &wl)).collect();
    let points: Vec<OperatingPoint> =
        measurements.iter().map(|m| m.throughput_power_point()).collect();
    let frontier = pareto_frontier(&points);

    println!("{:<16} {:>10} {:>9}  pareto-optimal?", "design", "Gbps", "watts");
    for (i, m) in measurements.iter().enumerate() {
        println!(
            "{:<16} {:>10.2} {:>9.1}  {}",
            m.name,
            to_gbps(m.throughput_bps),
            m.watts,
            if frontier.contains(&i) { "YES" } else { "no (dominated)" }
        );
    }

    println!("\nthe frontier is the defensible menu: every off-frontier design is");
    println!("Pareto-dominated by one on it, so no fair evaluation can prefer it.");
    assert!(!frontier.is_empty());
}
