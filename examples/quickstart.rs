//! Quickstart: the fair-comparison workflow in five steps, using the
//! paper's §4.2.1 numbers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use apples::prelude::*;

fn main() {
    // 1. Pick a cost metric and check it against the paper's three
    //    principles for the systems you are comparing.
    let metric = CostMetric::power_draw();
    let violations = validate_cost_metric(
        &metric,
        &[
            ("firewall+switch", &[DeviceClass::Cpu, DeviceClass::ProgrammableSwitch]),
            ("firewall", &[DeviceClass::Cpu, DeviceClass::Nic]),
        ],
    );
    assert!(violations.is_empty(), "power draw satisfies principles 1-3");
    println!("cost metric: {metric} — principles 1-3 satisfied");

    // 2. Describe each system as an operating point in the
    //    performance-cost plane.
    let proposed = System::new(
        "firewall+switch",
        vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
        OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(100.0)),
            metric.value(watts(200.0)),
        ),
    );
    let baseline = System::new(
        "firewall",
        vec![DeviceClass::Cpu, DeviceClass::Nic],
        OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(35.0)),
            metric.value(watts(100.0)),
        ),
    );

    // 3. Check the operating regime (Principle 4) and raw dominance.
    let regime = detect_regime(proposed.point(), baseline.point(), Tolerance::default());
    let relation = relate(proposed.point(), baseline.point());
    println!("regime  : {regime}");
    println!("relation: proposed {relation} baseline");

    // 4. The systems are incomparable as measured, so generously scale
    //    the baseline into the comparison region (Principle 6).
    let result = Evaluation::new(proposed, baseline).with_baseline_scaling(&IdealLinear).run();

    // 5. Report.
    println!("\n{}", render_text(&result));
    assert!(result.verdict.favors_proposed());
}
