//! Fault robustness: re-judge a worked-example comparison while the
//! environment degrades identically for both contenders, and show the
//! replay contract — a faulted run is a pure function of
//! `(seed, FaultSpec)`, so every number below reproduces bit-for-bit.
//!
//! ```sh
//! cargo run --release --example fault_robustness
//! ```

use apples::prelude::*;
use apples_bench::scenarios::{
    baseline_host, faulted, measure, perturbed_workload, smartnic_system, to_gbps, SEVERITY_LADDER,
};

fn main() {
    println!("severity   system      Gbps    watts  fault-drops  verdict");
    for (name, severity) in SEVERITY_LADDER {
        // Same fault severity, same perturbed workload, for both
        // systems: the degraded environment stays a controlled variable.
        let wl = perturbed_workload(120.0, 42, severity);
        let base = measure(&faulted(baseline_host(2), severity), &wl);
        let nic = measure(&faulted(smartnic_system(), severity), &wl);
        let verdict = Evaluation::new(nic.as_system(), base.as_system())
            .with_baseline_scaling(&IdealLinear)
            .run()
            .verdict;
        for m in [&base, &nic] {
            println!(
                "{:<10} {:<10} {:>6.2} {:>8.1} {:>12} ",
                name,
                m.name,
                to_gbps(m.throughput_bps),
                m.watts,
                m.fault_drops + m.injected_drops,
            );
        }
        println!(
            "{:<10} -> smartnic {}",
            "",
            if verdict.favors_proposed() { "still defensibly superior" } else { "no longer wins" }
        );

        // The replay contract: rebuild everything from scratch and the
        // faulted measurement reproduces exactly.
        let replay = measure(&faulted(smartnic_system(), severity), &wl);
        assert_eq!(replay.throughput_bps.to_bits(), nic.throughput_bps.to_bits());
        assert_eq!(replay.fault_drops, nic.fault_drops);
        assert_eq!(replay.corrupted, nic.corrupted);
    }
    println!();
    println!("every faulted run above replayed bit-for-bit from (seed, FaultSpec):");
    println!("robustness results are as reproducible as the clean comparisons they stress.");
}
