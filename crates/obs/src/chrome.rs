//! Chrome `trace_event` export: a traced run opens directly in
//! `chrome://tracing` / Perfetto.
//!
//! Schema (all keys insertion-ordered, so files are byte-stable):
//!
//! ```json
//! {
//!   "displayTimeUnit": "ns",
//!   "provenance": { "seed": ..., "scheduler": "scheduler-invariant", ... },
//!   "emitted": 123, "retained": 123, "overwritten": 0,
//!   "traceEvents": [ ... ]
//! }
//! ```
//!
//! Stage-exit events become `"ph": "X"` complete slices (`ts` backdated
//! by the service time, `dur` the service time, both in fractional µs);
//! everything else becomes a thread-scoped instant (`"ph": "i"`). One
//! track (`tid`) per stage under a single process. Timestamps are pure
//! sim-time — wall time never appears in a trace file, which is what
//! makes two traces of the same `(seed, spec)` byte-identical.

use crate::provenance::Provenance;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use apples_core::json::Json;

const US_PER_NS: f64 = 1e-3;

fn base(ph: &str, name: &str, t_ns: u64, stage: u32) -> Json {
    Json::obj()
        .field("name", name)
        .field("ph", ph)
        .field("ts", t_ns as f64 * US_PER_NS)
        .field("pid", 0u64)
        .field("tid", u64::from(stage))
}

fn instant(ev: &TraceEvent, args: Json) -> Json {
    base("i", ev.kind.label(), ev.t_ns, ev.kind.stage()).field("s", "t").field("args", args)
}

fn event_json(ev: &TraceEvent) -> Json {
    let seq = ev.seq;
    match ev.kind {
        TraceKind::Enqueue { depth, .. } => {
            instant(ev, Json::obj().field("seq", seq).field("depth", u64::from(depth)))
        }
        TraceKind::Dispatch { wait_ns, .. } => {
            instant(ev, Json::obj().field("seq", seq).field("wait_ns", wait_ns))
        }
        TraceKind::StageEnter { .. } => instant(ev, Json::obj().field("seq", seq)),
        TraceKind::Drop { reason, .. } => {
            instant(ev, Json::obj().field("seq", seq).field("reason", reason.label()))
        }
        TraceKind::Fault { fault, .. } => {
            instant(ev, Json::obj().field("seq", seq).field("action", fault.label()))
        }
        TraceKind::StageExit { stage, service_ns, forwarded } => {
            let start_ns = ev.t_ns.saturating_sub(service_ns);
            base("X", "service", start_ns, stage)
                .field("dur", service_ns as f64 * US_PER_NS)
                .field("args", Json::obj().field("seq", seq).field("forwarded", forwarded))
        }
    }
}

/// Renders a whole trace. `stage_names` labels the per-stage tracks
/// (falling back to `stage<i>` when the list is short).
pub fn chrome_trace(tracer: &Tracer, stage_names: &[String], prov: &Provenance) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(
        Json::obj()
            .field("name", "process_name")
            .field("ph", "M")
            .field("pid", 0u64)
            .field("args", Json::obj().field("name", "apples-simnet")),
    );
    let max_stage = tracer.events().map(|e| e.kind.stage() as usize + 1).max().unwrap_or(0);
    for i in 0..max_stage.max(stage_names.len()) {
        let name = stage_names.get(i).cloned().unwrap_or_else(|| format!("stage{i}"));
        events.push(
            Json::obj()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", 0u64)
                .field("tid", i as u64)
                .field("args", Json::obj().field("name", name)),
        );
    }
    for ev in tracer.events() {
        events.push(event_json(ev));
    }
    Json::obj()
        .field("displayTimeUnit", "ns")
        .field("provenance", prov.to_json())
        .field("emitted", tracer.emitted())
        .field("retained", tracer.len())
        .field("overwritten", tracer.overwritten())
        .field("traceEvents", Json::Arr(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceDrop, TraceSink};

    fn sample_tracer() -> Tracer {
        let mut tr = Tracer::with_capacity(16);
        tr.emit(TraceEvent { t_ns: 1000, seq: 1, kind: TraceKind::StageEnter { stage: 0 } });
        tr.emit(TraceEvent { t_ns: 1000, seq: 1, kind: TraceKind::Enqueue { stage: 0, depth: 1 } });
        tr.emit(TraceEvent {
            t_ns: 2500,
            seq: 2,
            kind: TraceKind::StageExit { stage: 0, service_ns: 1500, forwarded: true },
        });
        tr.emit(TraceEvent {
            t_ns: 3000,
            seq: 3,
            kind: TraceKind::Drop { stage: 1, reason: TraceDrop::Policy },
        });
        tr
    }

    #[test]
    fn export_has_the_advertised_shape() {
        let prov = Provenance::new(7, "scheduler-invariant", "none", "cafe");
        let names = vec!["host".to_owned(), "sink-side".to_owned()];
        let s = chrome_trace(&sample_tracer(), &names, &prov).render_pretty();
        for key in [
            "\"displayTimeUnit\"",
            "\"provenance\"",
            "\"traceEvents\"",
            "\"process_name\"",
            "\"thread_name\"",
            "\"host\"",
            "\"sink-side\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        // The service slice is backdated by its duration: 2500-1500 ns
        // start → 1 µs, 1.5 µs duration.
        assert!(s.contains("\"ph\": \"X\""), "{s}");
        assert!(s.contains("\"dur\": 1.5"), "{s}");
        // Drops render as instants with a reason.
        assert!(s.contains("\"reason\": \"policy\""), "{s}");
    }

    #[test]
    fn export_is_deterministic() {
        let prov = Provenance::new(7, "scheduler-invariant", "none", "cafe");
        let a = chrome_trace(&sample_tracer(), &[], &prov).render();
        let b = chrome_trace(&sample_tracer(), &[], &prov).render();
        assert_eq!(a, b);
    }

    #[test]
    fn tracks_cover_stages_seen_in_events_even_unnamed() {
        let prov = Provenance::new(1, "scheduler-invariant", "none", "00");
        let s = chrome_trace(&sample_tracer(), &[], &prov).render();
        assert!(s.contains("\"stage0\""), "{s}");
        assert!(s.contains("\"stage1\""), "{s}");
    }
}
