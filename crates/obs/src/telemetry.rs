//! Per-stage telemetry: deterministic counters plus log-scale
//! histograms of queue depth, queue wait, and service time.
//!
//! A [`Telemetry`] is pure sim-time state — identical across schedulers
//! and worker counts — and shards merge associatively (bin-wise), so a
//! parallel harness can collect per-worker telemetry and fold it in any
//! order.

use crate::hist::LogHistogram;
use apples_core::json::Json;

/// Counters and distributions for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTelemetry {
    /// Packets that arrived at the stage.
    pub arrivals: u64,
    /// Packets pushed into the stage queue.
    pub enqueues: u64,
    /// Packets pulled from the queue into service.
    pub dispatches: u64,
    /// Service completions.
    pub served: u64,
    /// Drops because the bounded queue was full.
    pub queue_drops: u64,
    /// Drops by NF policy (deny verdicts).
    pub policy_drops: u64,
    /// Drops by the fault layer.
    pub fault_drops: u64,
    /// Fault-plan actions applied to this stage.
    pub fault_events: u64,
    /// Deepest queue depth observed at enqueue time.
    pub peak_depth: u64,
    /// Queue depth after each enqueue.
    pub depth: LogHistogram,
    /// Sim-time ns spent queued before service.
    pub wait_ns: LogHistogram,
    /// Sim-time ns of service per completion.
    pub service_ns: LogHistogram,
}

impl StageTelemetry {
    /// Total drops at this stage, all causes.
    pub fn drops(&self) -> u64 {
        self.queue_drops + self.policy_drops + self.fault_drops
    }

    /// Adds every counter and bin of `other` into `self`.
    pub fn merge(&mut self, other: &StageTelemetry) {
        self.arrivals += other.arrivals;
        self.enqueues += other.enqueues;
        self.dispatches += other.dispatches;
        self.served += other.served;
        self.queue_drops += other.queue_drops;
        self.policy_drops += other.policy_drops;
        self.fault_drops += other.fault_drops;
        self.fault_events += other.fault_events;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.depth.merge(&other.depth);
        self.wait_ns.merge(&other.wait_ns);
        self.service_ns.merge(&other.service_ns);
    }

    /// Deterministic JSON rendering of this stage's telemetry.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("arrivals", self.arrivals)
            .field("enqueues", self.enqueues)
            .field("dispatches", self.dispatches)
            .field("served", self.served)
            .field("queue_drops", self.queue_drops)
            .field("policy_drops", self.policy_drops)
            .field("fault_drops", self.fault_drops)
            .field("fault_events", self.fault_events)
            .field("peak_depth", self.peak_depth)
            .field("depth", self.depth.summary_json())
            .field("wait_ns", self.wait_ns.summary_json())
            .field("service_ns", self.service_ns.summary_json())
    }
}

/// Telemetry for a whole deployment: one [`StageTelemetry`] per stage,
/// indexed exactly like the engine's stage list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Per-stage records, index-aligned with the deployment.
    pub stages: Vec<StageTelemetry>,
}

impl Telemetry {
    /// Creates telemetry sized for `n` stages.
    pub fn new(n: usize) -> Self {
        Telemetry { stages: vec![StageTelemetry::default(); n] }
    }

    /// Grows to at least `n` stages (merging shards of different width
    /// pads the narrower one).
    pub fn ensure_stages(&mut self, n: usize) {
        if self.stages.len() < n {
            self.stages.resize(n, StageTelemetry::default());
        }
    }

    /// Merges another telemetry shard into this one, stage by stage.
    pub fn merge(&mut self, other: &Telemetry) {
        self.ensure_stages(other.stages.len());
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
    }

    /// The stage index with the most service completions, if any stage
    /// served at all.
    pub fn busiest_stage(&self) -> Option<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.served > 0)
            .max_by_key(|(i, s)| (s.served, usize::MAX - i))
            .map(|(i, _)| i)
    }

    /// The stage index with the deepest observed queue, if any queued.
    pub fn deepest_queue(&self) -> Option<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.peak_depth > 0)
            .max_by_key(|(i, s)| (s.peak_depth, usize::MAX - i))
            .map(|(i, _)| i)
    }

    /// Deterministic JSON: an array of per-stage objects, labelled with
    /// `names` where provided (falling back to `stage<i>`).
    pub fn to_json(&self, names: &[String]) -> Json {
        let arr: Vec<Json> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let name = names.get(i).cloned().unwrap_or_else(|| format!("stage{i}"));
                Json::obj().field("stage", name).field("telemetry", s.to_json())
            })
            .collect();
        Json::Arr(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(seed: u64) -> Telemetry {
        let mut t = Telemetry::new(2);
        for i in 0..10u64 {
            let s = &mut t.stages[(i % 2) as usize];
            s.arrivals += 1;
            s.served += 1;
            s.service_ns.record(seed * 100 + i * 7);
            s.wait_ns.record(seed + i);
            s.depth.record(i);
            s.peak_depth = s.peak_depth.max(i);
        }
        t
    }

    #[test]
    fn merge_is_order_insensitive() {
        let (a, b, c) = (shard(1), shard(2), shard(3));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c, c_ba);
    }

    #[test]
    fn merge_pads_narrower_shards() {
        let mut narrow = Telemetry::new(1);
        narrow.stages[0].arrivals = 5;
        let mut wide = Telemetry::new(3);
        wide.stages[2].served = 7;
        narrow.merge(&wide);
        assert_eq!(narrow.stages.len(), 3);
        assert_eq!(narrow.stages[0].arrivals, 5);
        assert_eq!(narrow.stages[2].served, 7);
    }

    #[test]
    fn busiest_and_deepest_prefer_lowest_index_on_ties() {
        let mut t = Telemetry::new(3);
        t.stages[1].served = 4;
        t.stages[2].served = 4;
        t.stages[2].peak_depth = 9;
        assert_eq!(t.busiest_stage(), Some(1));
        assert_eq!(t.deepest_queue(), Some(2));
        assert_eq!(Telemetry::new(2).busiest_stage(), None);
    }

    #[test]
    fn json_uses_names_then_falls_back() {
        let t = Telemetry::new(2);
        let names = vec!["acl".to_owned()];
        let s = t.to_json(&names).render();
        assert!(s.contains("\"acl\""), "{s}");
        assert!(s.contains("\"stage1\""), "{s}");
    }
}
