//! Provenance stamping: the header that makes an artifact replayable.
//!
//! Every emitted report and JSON artifact carries a `provenance` block:
//! the seed, scheduler kind, fault-spec digest, and config digest fully
//! determine the simulated numbers (replay those four and the artifact
//! reproduces bit-for-bit); toolchain and git revision record *where*
//! it was produced. The environment fields come from `APPLES_TOOLCHAIN`
//! / `APPLES_GIT_REV` — the sanctioned env path, set by CI — and fall
//! back to the stable string `unrecorded` so goldens regenerated on a
//! bare machine stay byte-identical.

use apples_core::digest::CacheKey;
use apples_core::json::Json;

// The hash moved into `apples-core::digest` when the experiment store
// made digests a typed value; re-exported here so existing provenance
// call sites keep one import path.
pub use apples_core::digest::{fnv1a, fnv1a_hex};

/// The provenance stamp attached to reports and trace files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Workload seed the run derives from.
    pub seed: u64,
    /// Scheduler kind (`wheel` / `heap`), or `scheduler-invariant` for
    /// artifacts the determinism contract guarantees are identical
    /// across schedulers (trace files).
    pub scheduler: String,
    /// Digest of the fault spec (`none` when faults are off).
    pub fault_digest: String,
    /// Digest of the deployment/workload configuration.
    pub config_digest: String,
    /// Toolchain recorded by the environment (`unrecorded` fallback).
    pub toolchain: String,
    /// Git revision recorded by the environment (`unrecorded` fallback).
    pub git_rev: String,
}

fn env_or_unrecorded(key: &str) -> String {
    std::env::var(key).ok().filter(|v| !v.is_empty()).unwrap_or_else(|| "unrecorded".to_owned())
}

impl Provenance {
    /// Builds a stamp from the replay-determining fields; toolchain and
    /// git revision are read from the environment.
    pub fn new(
        seed: u64,
        scheduler: impl Into<String>,
        fault_digest: impl Into<String>,
        config_digest: impl Into<String>,
    ) -> Self {
        Provenance {
            seed,
            scheduler: scheduler.into(),
            fault_digest: fault_digest.into(),
            config_digest: config_digest.into(),
            toolchain: env_or_unrecorded("APPLES_TOOLCHAIN"),
            git_rev: env_or_unrecorded("APPLES_GIT_REV"),
        }
    }

    /// Deterministic JSON block (insertion-ordered keys).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("seed", self.seed)
            .field("scheduler", self.scheduler.as_str())
            .field("fault_digest", self.fault_digest.as_str())
            .field("config_digest", self.config_digest.as_str())
            .field("toolchain", self.toolchain.as_str())
            .field("git_rev", self.git_rev.as_str())
    }

    /// The provenance fields as a typed store cache key, in stamp
    /// order. This is the bridge between "artifact is stamped with X"
    /// and "artifact is cached under X": an entry keyed on this value
    /// is provably keyed on the exact provenance block it carries.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::new()
            .with("seed", self.seed.to_string())
            .with("scheduler", self.scheduler.as_str())
            .with("fault", self.fault_digest.as_str())
            .with("config", self.config_digest.as_str())
            .with("toolchain", self.toolchain.as_str())
            .with("rev", self.git_rev.as_str())
    }

    /// One-line rendering for markdown/plain-text reports.
    pub fn render_compact(&self) -> String {
        format!(
            "seed={} scheduler={} fault={} config={} toolchain={} rev={}",
            self.seed,
            self.scheduler,
            self.fault_digest,
            self.config_digest,
            self.toolchain,
            self.git_rev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_hold() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn digest_is_16_lower_hex() {
        let d = fnv1a_hex(b"anything at all");
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn stamp_renders_every_field() {
        let p = Provenance::new(42, "wheel", "none", "abcd");
        let line = p.render_compact();
        for part in ["seed=42", "scheduler=wheel", "fault=none", "config=abcd"] {
            assert!(line.contains(part), "{line}");
        }
        let json = p.to_json().render();
        for key in [
            "\"seed\"",
            "\"scheduler\"",
            "\"fault_digest\"",
            "\"config_digest\"",
            "\"toolchain\"",
            "\"git_rev\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn cache_key_mirrors_the_stamp_fields() {
        let p = Provenance::new(42, "wheel", "none", "abcd");
        let key = p.cache_key();
        assert_eq!(key.component("seed"), Some("42"));
        assert_eq!(key.component("scheduler"), Some("wheel"));
        assert_eq!(key.component("fault"), Some("none"));
        assert_eq!(key.component("config"), Some("abcd"));
        assert_eq!(key.component("toolchain"), Some(p.toolchain.as_str()));
        assert_eq!(key.component("rev"), Some(p.git_rev.as_str()));
        // Any replay-determining field change must move the digest.
        let other = Provenance::new(43, "wheel", "none", "abcd");
        assert_ne!(key.digest(), other.cache_key().digest());
    }

    #[test]
    fn env_fallback_is_the_stable_string() {
        let p = Provenance::new(1, "heap", "none", "00");
        // Only assert the fallback when the variables are genuinely
        // unset (the default everywhere goldens are regenerated).
        if std::env::var("APPLES_TOOLCHAIN").is_err() {
            assert_eq!(p.toolchain, "unrecorded");
        }
        if std::env::var("APPLES_GIT_REV").is_err() {
            assert_eq!(p.git_rev, "unrecorded");
        }
        assert!(!p.toolchain.is_empty() && !p.git_rev.is_empty());
    }
}
