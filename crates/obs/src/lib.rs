//! Deterministic observability for the simulation workspace.
//!
//! Everything here is driven by *sim-time*: the trace of a run is a pure
//! function of `(seed, spec)`, byte-identical across schedulers and
//! worker counts, so a trace file is evidence — not an anecdote. The
//! crate provides four pieces, composable via [`RunObserver`]:
//!
//! - [`trace`]: a bounded ring-buffer [`Tracer`] of typed events
//!   (enqueue / dispatch / drop / fault / stage-enter / stage-exit)
//!   behind the [`TraceSink`] trait, so instrumentation compiles down to
//!   one `Option` check when observability is off;
//! - [`telemetry`]: per-stage counters and log-scale histograms
//!   (queue depth, queue wait, service time) that merge associatively
//!   across per-worker shards;
//! - [`span`]: a sampled sim-time + wall-time span profiler over engine
//!   phases, cheap enough to leave on (<5% overhead, enforced by the
//!   bench harness), with folded-stack export for flamegraph tooling;
//! - [`timeseries`]: a sim-time interval ring of throughput, live
//!   events, scheduler occupancy, and per-stage queue depth, with
//!   commutative/associative cross-shard merge;
//! - [`provenance`]: the stamp (seed, scheduler, fault digest, config
//!   digest, toolchain, git rev) that makes any emitted artifact
//!   replayable from its own header.
//!
//! The only wall-clock read in the crate is the span profiler's sampled
//! `Instant::now`, carried with a reasoned lint suppression; wall time
//! never flows into simulated results or trace files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod observer;
pub mod provenance;
pub mod span;
pub mod telemetry;
pub mod timeseries;
pub mod trace;

pub use hist::LogHistogram;
pub use observer::{ObsConfig, RunObserver, SchedCounters};
pub use provenance::{fnv1a, fnv1a_hex, Provenance};
pub use span::{Phase, SpanProfiler, SpanToken};
pub use telemetry::{StageTelemetry, Telemetry};
pub use timeseries::{SeriesBin, TimeSeries};
pub use trace::{NullSink, TraceDrop, TraceEvent, TraceFault, TraceKind, TraceSink, Tracer};
