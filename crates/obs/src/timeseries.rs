//! A deterministic sim-time time-series ring.
//!
//! The run is cut into fixed sim-time intervals (`interval_ns` wide);
//! each retained interval holds one [`SeriesBin`] of counters (events
//! dispatched, enqueues, drops, faults) and gauges (peak live events,
//! peak scheduler occupancy, per-stage peak queue depth). The ring
//! keeps the most recent [`TimeSeries::capacity`] intervals: when a new
//! interval opens past the window, the oldest bins are evicted, so
//! memory stays flat on arbitrarily long runs.
//!
//! Everything here is keyed by *sim time*, so the series is a pure
//! function of `(seed, spec)` — identical across schedulers, fusion
//! modes, and shard counts for the counter fields. Cross-shard merge is
//! commutative and associative like [`crate::LogHistogram`]: bins align
//! by interval index, counters add, gauges take the max, and the
//! eviction threshold is the max interval seen minus the capacity —
//! which only grows, so merging early evicts exactly the bins the final
//! threshold would evict (property-tested in `tests/observability.rs`).
//! Gauges merged across shards are per-shard maxima summed over nothing
//! — they bound, rather than equal, the serial gauge (each shard sees
//! only its own live events), which is why identity gates compare
//! counters, never gauges.

use apples_core::json::Json;

/// Default interval width: 2^20 ns ≈ 1.05 ms of sim time per bin.
pub const DEFAULT_INTERVAL_NS: u64 = 1 << 20;

/// Default ring bound: at the default interval this retains ~0.5 s of
/// sim time, far past the bench windows, on a fixed footprint.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One interval's worth of metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesBin {
    /// Packets dispatched into service this interval (the throughput
    /// numerator: `dispatches / interval_ns`).
    pub dispatches: u64,
    /// Packets enqueued this interval.
    pub enqueues: u64,
    /// Packets dropped this interval, all causes.
    pub drops: u64,
    /// Fault-plan actions applied this interval.
    pub faults: u64,
    /// Peak live (in-flight) events observed this interval.
    pub peak_live: u64,
    /// Peak scheduler (wheel/heap) occupancy observed this interval.
    pub peak_sched: u64,
    /// Peak queue depth per stage this interval, index-aligned with
    /// the deployment's stage list (grows on demand).
    pub stage_peak_depth: Vec<u64>,
}

impl SeriesBin {
    /// Folds `other` into `self`: counters add, gauges take the max,
    /// the narrower stage vector is padded.
    fn merge(&mut self, other: &SeriesBin) {
        self.dispatches += other.dispatches;
        self.enqueues += other.enqueues;
        self.drops += other.drops;
        self.faults += other.faults;
        self.peak_live = self.peak_live.max(other.peak_live);
        self.peak_sched = self.peak_sched.max(other.peak_sched);
        if self.stage_peak_depth.len() < other.stage_peak_depth.len() {
            self.stage_peak_depth.resize(other.stage_peak_depth.len(), 0);
        }
        for (mine, theirs) in self.stage_peak_depth.iter_mut().zip(other.stage_peak_depth.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The deepest per-stage queue this interval, across all stages.
    pub fn deepest_stage_depth(&self) -> u64 {
        self.stage_peak_depth.iter().copied().max().unwrap_or(0)
    }
}

/// The ring: retained `(interval index, bin)` pairs, ascending by
/// index, at most `cap` of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval_ns: u64,
    cap: usize,
    /// Retained interval indices, strictly ascending; parallel to
    /// `bins`.
    idxs: Vec<u64>,
    bins: Vec<SeriesBin>,
    /// Hot-path cache: the slot of the interval most recently written,
    /// valid while `has_cur`. Lets the per-event hooks update the
    /// current bin with one compare instead of a division + search.
    cur_slot: usize,
    cur_idx: u64,
    cur_end_ns: u64,
    has_cur: bool,
}

impl TimeSeries {
    /// Creates an empty series with the given interval width and ring
    /// bound (both floored at 1).
    pub fn new(interval_ns: u64, capacity: usize) -> Self {
        TimeSeries {
            interval_ns: interval_ns.max(1),
            cap: capacity.max(1),
            idxs: Vec::new(),
            bins: Vec::new(),
            cur_slot: 0,
            cur_idx: 0,
            cur_end_ns: 0,
            has_cur: false,
        }
    }

    /// The configured interval width in sim-time ns.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// The ring bound: how many intervals are retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of retained intervals.
    pub fn len(&self) -> usize {
        self.idxs.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.idxs.is_empty()
    }

    /// Retained `(interval index, bin)` pairs, ascending by index.
    pub fn bins(&self) -> impl Iterator<Item = (u64, &SeriesBin)> {
        self.idxs.iter().copied().zip(self.bins.iter())
    }

    /// The bin covering sim time `t_ns`, creating (and evicting) as
    /// needed. The common case — same interval as the last write — is a
    /// single compare.
    #[inline]
    fn bin_at(&mut self, t_ns: u64) -> &mut SeriesBin {
        if !self.has_cur || t_ns >= self.cur_end_ns || t_ns < self.cur_end_ns - self.interval_ns {
            self.seek(t_ns / self.interval_ns);
        }
        &mut self.bins[self.cur_slot]
    }

    /// Cold path: position the cache on interval `idx`, inserting an
    /// empty bin and evicting past-window bins as needed.
    fn seek(&mut self, idx: u64) {
        match self.idxs.binary_search(&idx) {
            Ok(slot) => self.cur_slot = slot,
            Err(slot) => {
                self.idxs.insert(slot, idx);
                self.bins.insert(slot, SeriesBin::default());
                self.evict();
                // Eviction only removes from the front, so re-search.
                self.cur_slot = self.idxs.binary_search(&idx).unwrap_or(0);
            }
        }
        self.cur_idx = idx;
        self.cur_end_ns = (idx + 1).saturating_mul(self.interval_ns);
        self.has_cur = true;
    }

    /// Drops every bin older than `max_idx - cap + 1`. The threshold is
    /// a pure function of the maximum interval ever retained, which only
    /// grows — the property that makes merge order-insensitive.
    fn evict(&mut self) {
        let Some(&max_idx) = self.idxs.last() else { return };
        let threshold = max_idx.saturating_sub(self.cap as u64 - 1);
        let keep_from = self.idxs.partition_point(|&i| i < threshold);
        if keep_from > 0 {
            self.idxs.drain(..keep_from);
            self.bins.drain(..keep_from);
        }
    }

    /// A packet was dispatched into service at sim time `t_ns`.
    #[inline]
    pub fn on_dispatch(&mut self, t_ns: u64) {
        self.bin_at(t_ns).dispatches += 1;
    }

    /// A packet was enqueued at `stage` at sim time `t_ns`; `depth` is
    /// the queue depth after.
    #[inline]
    pub fn on_enqueue(&mut self, t_ns: u64, stage: usize, depth: u64) {
        let bin = self.bin_at(t_ns);
        bin.enqueues += 1;
        if bin.stage_peak_depth.len() <= stage {
            bin.stage_peak_depth.resize(stage + 1, 0);
        }
        bin.stage_peak_depth[stage] = bin.stage_peak_depth[stage].max(depth);
    }

    /// A packet was dropped at sim time `t_ns`.
    #[inline]
    pub fn on_drop(&mut self, t_ns: u64) {
        self.bin_at(t_ns).drops += 1;
    }

    /// A fault-plan action was applied at sim time `t_ns`.
    #[inline]
    pub fn on_fault(&mut self, t_ns: u64) {
        self.bin_at(t_ns).faults += 1;
    }

    /// Gauge sample at sim time `t_ns`: `live` in-flight events and
    /// `sched_len` events resident in the scheduler. The engine calls
    /// this once per drained bucket.
    #[inline]
    pub fn on_tick(&mut self, t_ns: u64, live: u64, sched_len: u64) {
        let bin = self.bin_at(t_ns);
        bin.peak_live = bin.peak_live.max(live);
        bin.peak_sched = bin.peak_sched.max(sched_len);
    }

    /// Merges another series into this one: bins align by interval
    /// index, counters add, gauges take the max, and the union is
    /// re-evicted against the combined maximum interval. Commutative
    /// and associative; the empty series is the identity. Panics if the
    /// interval widths differ (shards of one run always share the
    /// observer's configured width).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.interval_ns, other.interval_ns,
            "cannot merge time series with different interval widths"
        );
        self.has_cur = false;
        for (idx, bin) in other.bins() {
            match self.idxs.binary_search(&idx) {
                Ok(slot) => self.bins[slot].merge(bin),
                Err(slot) => {
                    self.idxs.insert(slot, idx);
                    self.bins.insert(slot, bin.clone());
                }
            }
        }
        self.evict();
    }

    /// Total dispatches across retained intervals.
    pub fn total_dispatches(&self) -> u64 {
        self.bins.iter().map(|b| b.dispatches).sum()
    }

    /// The busiest retained interval: `(index, dispatches)`, preferring
    /// the earliest on ties.
    pub fn peak_interval(&self) -> Option<(u64, u64)> {
        self.bins()
            .max_by_key(|(idx, b)| (b.dispatches, u64::MAX - idx))
            .map(|(idx, b)| (idx, b.dispatches))
    }

    /// A compact deterministic rendering of every retained bin — what
    /// the merge-algebra property tests compare. Covers all counter and
    /// gauge fields plus the interval geometry.
    pub fn fingerprint(&self) -> String {
        let mut out = format!("interval={} cap={}", self.interval_ns, self.cap);
        for (idx, b) in self.bins() {
            out.push_str(&format!(
                "|{}:d{},e{},x{},f{},l{},s{},q{:?}",
                idx,
                b.dispatches,
                b.enqueues,
                b.drops,
                b.faults,
                b.peak_live,
                b.peak_sched,
                b.stage_peak_depth
            ));
        }
        out
    }

    /// Deterministic JSON: interval geometry plus one object per
    /// retained interval.
    pub fn to_json(&self) -> Json {
        let series: Vec<Json> = self
            .bins()
            .map(|(idx, b)| {
                Json::obj()
                    .field("interval", idx)
                    .field("t_ms", (idx * self.interval_ns) as f64 / 1e6)
                    .field("dispatches", b.dispatches)
                    .field("enqueues", b.enqueues)
                    .field("drops", b.drops)
                    .field("faults", b.faults)
                    .field("peak_live", b.peak_live)
                    .field("peak_sched", b.peak_sched)
                    .field("peak_depth", b.deepest_stage_depth())
            })
            .collect();
        let mut obj = Json::obj()
            .field("interval_ns", self.interval_ns)
            .field("intervals", self.idxs.len() as u64)
            .field("total_dispatches", self.total_dispatches());
        if let Some((idx, peak)) = self.peak_interval() {
            let meps = peak as f64 * 1e3 / self.interval_ns as f64;
            obj = obj.field("peak_interval", idx).field("peak_throughput_meps", meps);
        }
        obj.field("series", Json::Arr(series))
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(DEFAULT_INTERVAL_NS, DEFAULT_SERIES_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(cap: usize) -> TimeSeries {
        TimeSeries::new(100, cap)
    }

    #[test]
    fn bins_align_by_interval_index() {
        let mut ts = series(8);
        ts.on_dispatch(0);
        ts.on_dispatch(99);
        ts.on_dispatch(100);
        ts.on_enqueue(150, 2, 7);
        ts.on_drop(250);
        ts.on_fault(250);
        ts.on_tick(50, 12, 40);
        assert_eq!(ts.len(), 3);
        let bins: Vec<_> = ts.bins().collect();
        assert_eq!(bins[0].0, 0);
        assert_eq!(bins[0].1.dispatches, 2);
        assert_eq!((bins[0].1.peak_live, bins[0].1.peak_sched), (12, 40));
        assert_eq!(bins[1].1.dispatches, 1);
        assert_eq!(bins[1].1.stage_peak_depth, vec![0, 0, 7]);
        assert_eq!((bins[2].1.drops, bins[2].1.faults), (1, 1));
        assert_eq!(ts.total_dispatches(), 3);
        assert_eq!(ts.peak_interval(), Some((0, 2)));
    }

    #[test]
    fn ring_evicts_past_the_window() {
        let mut ts = series(4);
        for i in 0..10u64 {
            ts.on_dispatch(i * 100);
        }
        assert_eq!(ts.len(), 4);
        let idxs: Vec<u64> = ts.bins().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![6, 7, 8, 9]);
        // Writes into an evicted interval land in a recreated bin only
        // if still inside the window; here interval 6 is retained.
        ts.on_dispatch(650);
        assert_eq!(ts.bins().next().unwrap().1.dispatches, 2);
    }

    #[test]
    fn merge_is_commutative_and_associative_with_identity() {
        let mk = |offset: u64| {
            let mut ts = series(16);
            for i in 0..20u64 {
                ts.on_dispatch(offset + i * 37);
                ts.on_tick(offset + i * 37, i, 2 * i);
            }
            ts
        };
        let (a, b, c) = (mk(0), mk(500), mk(900));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c.fingerprint(), c_ba.fingerprint());
        let mut with_id = a.clone();
        with_id.merge(&series(16));
        assert_eq!(with_id.fingerprint(), a.fingerprint());
    }

    #[test]
    fn merge_eviction_matches_direct_recording() {
        // A merge whose union spans more than `cap` intervals must land
        // on the same retained window as recording everything into one
        // series directly.
        let mut whole = series(3);
        let mut lo = series(3);
        let mut hi = series(3);
        for i in 0..9u64 {
            whole.on_dispatch(i * 100);
            if i < 5 {
                lo.on_dispatch(i * 100);
            } else {
                hi.on_dispatch(i * 100);
            }
        }
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.fingerprint(), whole.fingerprint());
        let mut merged_rev = hi;
        merged_rev.merge(&lo);
        assert_eq!(merged_rev.fingerprint(), whole.fingerprint());
    }

    #[test]
    fn gauges_max_and_counters_add_on_merge() {
        let mut a = series(8);
        a.on_tick(10, 5, 100);
        a.on_enqueue(10, 0, 3);
        let mut b = series(8);
        b.on_tick(20, 9, 50);
        b.on_enqueue(10, 1, 8);
        a.merge(&b);
        let bin = a.bins().next().unwrap().1.clone();
        assert_eq!(bin.enqueues, 2);
        assert_eq!(bin.stage_peak_depth, vec![3, 8]);
        assert_eq!(bin.peak_live, 9);
        assert_eq!(bin.peak_sched, 100);
        assert_eq!(bin.deepest_stage_depth(), 8);
    }

    #[test]
    fn json_has_the_advertised_keys() {
        let mut ts = TimeSeries::default();
        ts.on_dispatch(5);
        ts.on_dispatch(6);
        let s = ts.to_json().render();
        for key in [
            "\"interval_ns\"",
            "\"intervals\"",
            "\"total_dispatches\"",
            "\"peak_throughput_meps\"",
            "\"series\"",
            "\"peak_depth\"",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
