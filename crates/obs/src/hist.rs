//! A mergeable log-linear histogram over `u64` observations.
//!
//! Same bucket geometry as the sink's latency histogram (64 linear
//! sub-buckets per power-of-two magnitude, ≤ ~1.6% relative error over
//! the full `u64` range), plus what telemetry sharding needs: bin-wise
//! [`LogHistogram::merge`], which is associative and commutative, so
//! per-worker shards combine into identical bins in any order —
//! property-tested in `tests/observability.rs`.

use apples_core::json::Json;

const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;
/// Magnitudes 0..=57 cover the u64 range above the linear region.
const MAGNITUDES: u64 = 58;

/// A fixed-footprint log-linear histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; (MAGNITUDES * SUB_BUCKETS) as usize],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let mag = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = mag - SUB_BITS + 1;
        let sub = v >> shift; // top bits
        let base = (u64::from(mag) - SUB_BITS as u64 + 1) * SUB_BUCKETS;
        (base + (sub - SUB_BUCKETS / 2)) as usize
    }

    fn bucket_value(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let mag = i / SUB_BUCKETS + SUB_BITS as u64 - 1;
        let sub = i % SUB_BUCKETS + SUB_BUCKETS / 2;
        let shift = mag - SUB_BITS as u64 + 1;
        // Midpoint of the bucket.
        (sub << shift) + (1 << (shift - 1))
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = Self::index(v).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.sum += u128::from(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The maximum recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Adds every bin of `other` into `self`. Bin-wise addition: the
    /// operation is associative and commutative, so merging per-worker
    /// shards in any order yields identical bins.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Non-empty bins as `(representative value, count)`, ascending.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
            .collect()
    }

    /// Deterministic JSON summary: count, max, mean, p50/p90/p99.
    pub fn summary_json(&self) -> Json {
        Json::obj()
            .field("count", self.total)
            .field("max", self.max)
            .field("mean", self.mean())
            .field("p50", self.quantile(0.50))
            .field("p90", self.quantile(0.90))
            .field("p99", self.quantile(0.99))
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for mag in 7..40u32 {
            let v = (1u64 << mag) + (1 << (mag - 2));
            h.record(v);
            let q = h.quantile(1.0);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.02, "value {v} quantile {q} err {err}");
            // Reset for the next magnitude.
            h = LogHistogram::new();
        }
    }

    #[test]
    fn merge_matches_recording_directly() {
        let values = [0u64, 5, 63, 64, 100, 1000, 123_456, 7_777_777, u64::MAX / 3];
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean().to_bits(), whole.mean().to_bits());
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean().to_bits(), 0.0f64.to_bits());
        assert!(h.nonzero_bins().is_empty());
    }

    #[test]
    fn summary_json_has_the_advertised_keys() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(1000);
        let s = h.summary_json().render();
        for key in ["\"count\"", "\"max\"", "\"mean\"", "\"p50\"", "\"p90\"", "\"p99\""] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
