//! Sampled span profiling over engine phases.
//!
//! Every span records its sim-time attribution unconditionally (that's
//! free: the engine already knows how far the clock moved), but reads
//! the wall clock only once per [`SAMPLE_EVERY`] spans per phase — two
//! `Instant::now` calls per bucket would dominate a hot loop that
//! dispatches tens of millions of events per second. Estimated totals
//! scale the sampled time by the sampling ratio; the bench harness's
//! overhead gate holds the whole mechanism under 5%.
//!
//! Wall time measured here is *reported only* — it never flows into
//! simulated results, trace files, or goldens, which is why the one
//! `Instant::now` below carries a reasoned D2 suppression (mirroring
//! the bench harness's `WallClock`).

use apples_core::json::Json;
use std::time::Instant;

/// Engine phases the profiler covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Advancing the scheduler and draining the next event bucket.
    WheelAdvance,
    /// Dispatching the drained bucket's events through the stages.
    Dispatch,
    /// Applying fault-plan actions.
    FaultApply,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 3] = [Phase::WheelAdvance, Phase::Dispatch, Phase::FaultApply];

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::WheelAdvance => "wheel-advance",
            Phase::Dispatch => "dispatch",
            Phase::FaultApply => "fault-apply",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::WheelAdvance => 0,
            Phase::Dispatch => 1,
            Phase::FaultApply => 2,
        }
    }
}

/// Wall clock is read once per this many spans per phase (power of
/// two). Spans open per *bucket*, and buckets are often a single event,
/// so the cadence must be sparse for the profiler to stay under its 5%
/// budget; at 1024 the clock reads are thousands per second, not
/// hundreds of thousands.
pub const SAMPLE_EVERY: u64 = 1024;

/// Accumulated profile for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Spans recorded.
    pub count: u64,
    /// Sim-time nanoseconds attributed (deterministic).
    pub sim_ns: u128,
    /// Wall nanoseconds accumulated over the sampled spans only.
    pub sampled_wall_ns: u128,
    /// How many spans were wall-sampled.
    pub samples: u64,
}

impl PhaseProfile {
    /// Estimated total wall nanoseconds: sampled time scaled by the
    /// sampling ratio (0 when nothing was sampled).
    pub fn est_wall_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sampled_wall_ns as f64 * (self.count as f64 / self.samples as f64)
        }
    }
}

/// An open span: carries the (possibly absent) sampled start instant.
/// `Copy`, so the engine can hold it across arbitrary control flow.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    started: Option<Instant>,
}

impl SpanToken {
    /// A token that samples nothing — what a disabled profiler hands out.
    pub fn noop() -> Self {
        SpanToken { started: None }
    }
}

/// The profiler: fixed per-phase slots, no allocation after creation.
#[derive(Debug, Clone, Default)]
pub struct SpanProfiler {
    phases: [PhaseProfile; 3],
}

impl SpanProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Opens a span for `phase`. Reads the wall clock only on the
    /// sampling cadence.
    #[inline]
    pub fn begin(&mut self, phase: Phase) -> SpanToken {
        let p = &mut self.phases[phase.idx()];
        let sampled = p.count.is_multiple_of(SAMPLE_EVERY);
        p.count += 1;
        let started = if sampled {
            // lint: allow(D2, reason = "sampled span-profiler wall read; reported only, never flows into simulated results or trace files")
            Some(Instant::now())
        } else {
            None
        };
        SpanToken { started }
    }

    /// Closes a span, attributing `sim_ns` of simulated time to `phase`.
    #[inline]
    pub fn end(&mut self, phase: Phase, token: SpanToken, sim_ns: u64) {
        let p = &mut self.phases[phase.idx()];
        p.sim_ns += u128::from(sim_ns);
        if let Some(start) = token.started {
            p.sampled_wall_ns += start.elapsed().as_nanos();
            p.samples += 1;
        }
    }

    /// RAII span over `phase`: closes itself (with the sim-time set via
    /// [`Span::attribute_sim_ns`]) when dropped.
    pub fn span(&mut self, phase: Phase) -> Span<'_> {
        let token = self.begin(phase);
        Span { prof: self, phase, token, sim_ns: 0 }
    }

    /// Adds another profiler's totals into this one, field-wise: span
    /// counts, sim-time attribution, sampled wall time, and sample
    /// counts all sum, so per-shard profilers fold together in any
    /// order and the merged estimates cover the whole run.
    pub fn merge(&mut self, other: &SpanProfiler) {
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.count += theirs.count;
            mine.sim_ns += theirs.sim_ns;
            mine.sampled_wall_ns += theirs.sampled_wall_ns;
            mine.samples += theirs.samples;
        }
    }

    /// The accumulated profile for `phase`.
    pub fn phase(&self, phase: Phase) -> &PhaseProfile {
        &self.phases[phase.idx()]
    }

    /// Folded-stack rendering for standard flamegraph tooling: one
    /// `frame;frame value` line per stack, where the value is the
    /// phase's estimated *self* wall time in integer microseconds.
    /// Fault-apply spans open inside dispatch spans, so the fault
    /// estimate is subtracted from dispatch's self time (floored at
    /// zero) and emitted as a `dispatch;fault-apply` child frame.
    /// Phases that never ran emit nothing; phases that ran but round to
    /// zero emit 1, so no recorded work disappears from the graph.
    pub fn to_folded(&self, root: &str) -> String {
        let est_us = |ph: Phase| self.phase(ph).est_wall_ns() / 1e3;
        let fault_us = est_us(Phase::FaultApply);
        let mut out = String::new();
        let mut line = |stack: &str, count: u64, us: f64| {
            if count > 0 {
                out.push_str(&format!("{root};{stack} {}\n", (us.round() as u64).max(1)));
            }
        };
        line("wheel-advance", self.phase(Phase::WheelAdvance).count, est_us(Phase::WheelAdvance));
        let dispatch_self = (est_us(Phase::Dispatch) - fault_us).max(0.0);
        line("dispatch", self.phase(Phase::Dispatch).count, dispatch_self);
        line("dispatch;fault-apply", self.phase(Phase::FaultApply).count, fault_us);
        out
    }

    /// Total spans recorded across all phases.
    pub fn total_spans(&self) -> u64 {
        self.phases.iter().map(|p| p.count).sum()
    }

    /// JSON rendering: one object per phase, in [`Phase::ALL`] order.
    /// Wall fields are estimates and excluded from determinism gates.
    pub fn to_json(&self) -> Json {
        let arr: Vec<Json> = Phase::ALL
            .iter()
            .map(|&ph| {
                let p = self.phase(ph);
                Json::obj()
                    .field("phase", ph.label())
                    .field("spans", p.count)
                    .field("sim_ns", p.sim_ns as f64)
                    .field("wall_samples", p.samples)
                    .field("est_wall_ms", p.est_wall_ns() / 1e6)
            })
            .collect();
        Json::Arr(arr)
    }
}

/// An RAII guard created by [`SpanProfiler::span`].
#[derive(Debug)]
pub struct Span<'a> {
    prof: &'a mut SpanProfiler,
    phase: Phase,
    token: SpanToken,
    sim_ns: u64,
}

impl Span<'_> {
    /// Sets the simulated nanoseconds this span covers.
    pub fn attribute_sim_ns(&mut self, ns: u64) {
        self.sim_ns = ns;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.prof.end(self.phase, self.token, self.sim_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_cadence_reads_the_clock_sparsely() {
        let mut prof = SpanProfiler::new();
        for i in 0..(SAMPLE_EVERY * 3) {
            let tok = prof.begin(Phase::Dispatch);
            prof.end(Phase::Dispatch, tok, i);
        }
        let p = prof.phase(Phase::Dispatch);
        assert_eq!(p.count, SAMPLE_EVERY * 3);
        assert_eq!(p.samples, 3, "one wall sample per {SAMPLE_EVERY} spans");
        let n = SAMPLE_EVERY * 3;
        assert_eq!(p.sim_ns, u128::from(n * (n - 1) / 2));
    }

    #[test]
    fn raii_span_attributes_on_drop() {
        let mut prof = SpanProfiler::new();
        {
            let mut s = prof.span(Phase::WheelAdvance);
            s.attribute_sim_ns(123);
        }
        let p = prof.phase(Phase::WheelAdvance);
        assert_eq!(p.count, 1);
        assert_eq!(p.sim_ns, 123);
        assert_eq!(prof.total_spans(), 1);
    }

    #[test]
    fn estimates_scale_by_the_sampling_ratio() {
        let p = PhaseProfile { count: 128, sim_ns: 0, sampled_wall_ns: 1000, samples: 2 };
        assert_eq!(p.est_wall_ns().to_bits(), 64_000.0f64.to_bits());
        assert_eq!(PhaseProfile::default().est_wall_ns().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = SpanProfiler::new();
        let mut b = SpanProfiler::new();
        for _ in 0..3 {
            let tok = a.begin(Phase::Dispatch);
            a.end(Phase::Dispatch, tok, 10);
            let tok = b.begin(Phase::WheelAdvance);
            b.end(Phase::WheelAdvance, tok, 7);
        }
        a.merge(&b);
        assert_eq!(a.phase(Phase::Dispatch).count, 3);
        assert_eq!(a.phase(Phase::WheelAdvance).count, 3);
        assert_eq!(a.phase(Phase::WheelAdvance).sim_ns, 21);
        assert_eq!(a.total_spans(), 6);
    }

    #[test]
    fn folded_output_is_wellformed_and_nests_faults_under_dispatch() {
        let mut prof = SpanProfiler::new();
        prof.phases[Phase::WheelAdvance.idx()] =
            PhaseProfile { count: 10, sim_ns: 0, sampled_wall_ns: 5_000_000, samples: 10 };
        prof.phases[Phase::Dispatch.idx()] =
            PhaseProfile { count: 10, sim_ns: 0, sampled_wall_ns: 9_000_000, samples: 10 };
        prof.phases[Phase::FaultApply.idx()] =
            PhaseProfile { count: 4, sim_ns: 0, sampled_wall_ns: 2_000_000, samples: 4 };
        let folded = prof.to_folded("engine");
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "engine;wheel-advance 5000",
                "engine;dispatch 7000",
                "engine;dispatch;fault-apply 2000"
            ]
        );
        for l in &lines {
            let (stack, count) = l.rsplit_once(' ').expect("space-separated");
            assert!(!stack.contains(' '), "frames must be space-free: {stack}");
            assert!(count.parse::<u64>().is_ok(), "count must be an integer: {count}");
        }
    }

    #[test]
    fn folded_output_skips_phases_that_never_ran() {
        let mut prof = SpanProfiler::new();
        let tok = prof.begin(Phase::Dispatch);
        prof.end(Phase::Dispatch, tok, 5);
        let folded = prof.to_folded("engine");
        assert!(!folded.contains("wheel-advance"), "{folded}");
        assert!(!folded.contains("fault-apply"), "{folded}");
        assert!(folded.contains("engine;dispatch "), "{folded}");
    }

    #[test]
    fn json_lists_every_phase_in_order() {
        let prof = SpanProfiler::new();
        let s = prof.to_json().render();
        let a = s.find("wheel-advance").unwrap();
        let b = s.find("\"dispatch\"").unwrap();
        let c = s.find("fault-apply").unwrap();
        assert!(a < b && b < c, "{s}");
    }
}
