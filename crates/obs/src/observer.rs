//! The composition layer the engine talks to: one optional observer
//! that fans hooks out to the tracer, telemetry, and span profiler.
//!
//! The engine holds `Option<RunObserver>`; with `None` every
//! instrumentation site is a single branch (the zero-cost-when-off
//! contract the bench harness verifies byte-for-byte). With `Some`,
//! each hook updates whichever pieces the [`ObsConfig`] enabled.

use crate::span::{Phase, SpanProfiler, SpanToken};
use crate::telemetry::Telemetry;
use crate::timeseries::TimeSeries;
use crate::trace::{TraceDrop, TraceEvent, TraceFault, TraceKind, TraceSink, Tracer};
use apples_core::json::Json;

/// Structural counters from the event scheduler: how the wheel (or
/// heap) moved the run along. Pure functions of the event schedule, so
/// deterministic for a given `(seed, spec)` — but *not* invariant
/// across scheduler kinds (the heap never cascades), which is why they
/// live beside the trace rather than inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Events pushed into the scheduler.
    pub pushes: u64,
    /// Timestamp buckets drained (one dispatch pass each).
    pub buckets_drained: u64,
    /// Wheel level-cascades performed (always 0 for the heap).
    pub cascades: u64,
    /// Overflow-tree epoch promotions (always 0 for the heap).
    pub overflow_promotions: u64,
}

impl SchedCounters {
    /// Adds another run's counters into this one.
    pub fn merge(&mut self, other: SchedCounters) {
        self.pushes += other.pushes;
        self.buckets_drained += other.buckets_drained;
        self.cascades += other.cascades;
        self.overflow_promotions += other.overflow_promotions;
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("pushes", self.pushes)
            .field("buckets_drained", self.buckets_drained)
            .field("cascades", self.cascades)
            .field("overflow_promotions", self.overflow_promotions)
    }
}

/// Default trace ring bound: plenty for the short windows traces are
/// taken over, flat memory on anything longer.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Which observability pieces a run collects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace ring bound; 0 disables tracing entirely.
    pub trace_capacity: usize,
    /// Collect per-stage telemetry.
    pub telemetry: bool,
    /// Profile engine phases.
    pub spans: bool,
    /// Collect the sim-time metrics ring ([`TimeSeries`]).
    pub timeseries: bool,
}

impl ObsConfig {
    /// Everything on, default trace bound.
    pub fn full() -> Self {
        ObsConfig {
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            telemetry: true,
            spans: true,
            timeseries: true,
        }
    }

    /// Telemetry and spans without event tracing.
    pub fn telemetry_only() -> Self {
        ObsConfig { trace_capacity: 0, telemetry: true, spans: false, timeseries: false }
    }

    /// Tracing only, with an explicit ring bound.
    pub fn trace_only(capacity: usize) -> Self {
        ObsConfig { trace_capacity: capacity, telemetry: false, spans: false, timeseries: false }
    }

    /// The scaling-diagnosis set: spans and the metrics ring, no event
    /// tracing, no per-stage telemetry — the cheap-enough-to-leave-on
    /// configuration the bench overhead gate holds under its ceiling.
    pub fn diagnosis() -> Self {
        ObsConfig { trace_capacity: 0, telemetry: false, spans: true, timeseries: true }
    }
}

/// Live observability state for one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunObserver {
    /// The bounded event trace, when tracing is on.
    pub tracer: Option<Tracer>,
    /// Per-stage counters/histograms, when telemetry is on.
    pub telemetry: Option<Telemetry>,
    /// Engine-phase profiles, when spans are on.
    pub spans: Option<SpanProfiler>,
    /// The sim-time metrics ring, when the time series is on.
    pub timeseries: Option<TimeSeries>,
    /// Scheduler counters, folded in at the end of every observed run.
    pub sched: SchedCounters,
}

impl RunObserver {
    /// Builds an observer from a config.
    pub fn new(cfg: &ObsConfig) -> Self {
        RunObserver {
            tracer: (cfg.trace_capacity > 0).then(|| Tracer::with_capacity(cfg.trace_capacity)),
            telemetry: cfg.telemetry.then(Telemetry::default),
            spans: cfg.spans.then(SpanProfiler::new),
            timeseries: cfg.timeseries.then(TimeSeries::default),
            sched: SchedCounters::default(),
        }
    }

    /// True when this observer can be split across shards and folded
    /// back together losslessly: telemetry, spans, the time series, and
    /// scheduler counters all merge; the bounded event trace does not
    /// (its retained window depends on the global event order), so a
    /// tracing observer keeps the engine on the serial path.
    pub fn shardable(&self) -> bool {
        self.tracer.is_none()
    }

    /// An empty observer of the same shape, for one shard of a run.
    /// The trace ring is never replicated (see [`Self::shardable`]).
    pub fn fresh_shard(&self) -> RunObserver {
        RunObserver {
            tracer: None,
            telemetry: self.telemetry.as_ref().map(|_| Telemetry::default()),
            spans: self.spans.as_ref().map(|_| SpanProfiler::new()),
            timeseries: self
                .timeseries
                .as_ref()
                .map(|ts| TimeSeries::new(ts.interval_ns(), ts.capacity())),
            sched: SchedCounters::default(),
        }
    }

    /// Folds one shard's observer back into this one. Telemetry and
    /// scheduler counters add exactly (the merged result equals a
    /// serial run's), histogram bins and time-series counters add
    /// bin-wise, wall-time span profiles sum, and gauges take maxima.
    pub fn absorb_shard(&mut self, other: &RunObserver) {
        if let (Some(mine), Some(theirs)) = (self.telemetry.as_mut(), other.telemetry.as_ref()) {
            mine.merge(theirs);
        }
        if let (Some(mine), Some(theirs)) = (self.spans.as_mut(), other.spans.as_ref()) {
            mine.merge(theirs);
        }
        if let (Some(mine), Some(theirs)) = (self.timeseries.as_mut(), other.timeseries.as_ref()) {
            mine.merge(theirs);
        }
        self.sched.merge(other.sched);
    }

    /// Folds one run's scheduler counters into the observer.
    #[inline]
    pub fn merge_sched(&mut self, counters: SchedCounters) {
        self.sched.merge(counters);
    }

    /// Sizes telemetry for `n` stages (the engine calls this once per
    /// run, before any hook fires).
    pub fn ensure_stages(&mut self, n: usize) {
        if let Some(t) = &mut self.telemetry {
            t.ensure_stages(n);
        }
    }

    #[inline]
    fn emit(&mut self, t_ns: u64, seq: u64, kind: TraceKind) {
        if let Some(tr) = &mut self.tracer {
            tr.emit(TraceEvent { t_ns, seq, kind });
        }
    }

    #[inline]
    fn stage_mut(&mut self, stage: usize) -> Option<&mut crate::telemetry::StageTelemetry> {
        self.telemetry.as_mut().and_then(|t| t.stages.get_mut(stage))
    }

    /// A packet arrived at `stage`.
    #[inline]
    pub fn on_stage_enter(&mut self, t_ns: u64, seq: u64, stage: usize) {
        if let Some(s) = self.stage_mut(stage) {
            s.arrivals += 1;
        }
        self.emit(t_ns, seq, TraceKind::StageEnter { stage: stage as u32 });
    }

    /// A packet was queued at `stage`; `depth` is the depth after.
    #[inline]
    pub fn on_enqueue(&mut self, t_ns: u64, seq: u64, stage: usize, depth: usize) {
        if let Some(s) = self.stage_mut(stage) {
            s.enqueues += 1;
            s.peak_depth = s.peak_depth.max(depth as u64);
            s.depth.record(depth as u64);
        }
        if let Some(ts) = &mut self.timeseries {
            ts.on_enqueue(t_ns, stage, depth as u64);
        }
        self.emit(t_ns, seq, TraceKind::Enqueue { stage: stage as u32, depth: depth as u32 });
    }

    /// A packet left the queue into service after `wait_ns` queued.
    #[inline]
    pub fn on_dispatch(&mut self, t_ns: u64, seq: u64, stage: usize, wait_ns: u64) {
        if let Some(s) = self.stage_mut(stage) {
            s.dispatches += 1;
            s.wait_ns.record(wait_ns);
        }
        if let Some(ts) = &mut self.timeseries {
            ts.on_dispatch(t_ns);
        }
        self.emit(t_ns, seq, TraceKind::Dispatch { stage: stage as u32, wait_ns });
    }

    /// A packet finished `service_ns` of service at `stage`.
    #[inline]
    pub fn on_stage_exit(
        &mut self,
        t_ns: u64,
        seq: u64,
        stage: usize,
        service_ns: u64,
        forwarded: bool,
    ) {
        if let Some(s) = self.stage_mut(stage) {
            s.served += 1;
            s.service_ns.record(service_ns);
        }
        self.emit(t_ns, seq, TraceKind::StageExit { stage: stage as u32, service_ns, forwarded });
    }

    /// A packet was dropped at `stage`.
    #[inline]
    pub fn on_drop(&mut self, t_ns: u64, seq: u64, stage: usize, reason: TraceDrop) {
        if let Some(s) = self.stage_mut(stage) {
            match reason {
                TraceDrop::QueueFull => s.queue_drops += 1,
                TraceDrop::Policy => s.policy_drops += 1,
                TraceDrop::Fault => s.fault_drops += 1,
            }
        }
        if let Some(ts) = &mut self.timeseries {
            ts.on_drop(t_ns);
        }
        self.emit(t_ns, seq, TraceKind::Drop { stage: stage as u32, reason });
    }

    /// A fault-plan action was applied to `stage`.
    #[inline]
    pub fn on_fault(&mut self, t_ns: u64, seq: u64, stage: usize, fault: TraceFault) {
        if let Some(s) = self.stage_mut(stage) {
            s.fault_events += 1;
        }
        if let Some(ts) = &mut self.timeseries {
            ts.on_fault(t_ns);
        }
        self.emit(t_ns, seq, TraceKind::Fault { stage: stage as u32, fault });
    }

    /// Gauge sample for the time series: `live` in-flight events and
    /// `sched_len` events resident in the scheduler at sim time `t_ns`.
    /// The engine calls this once per drained bucket; a no-op unless
    /// the time series is on.
    #[inline]
    pub fn on_tick(&mut self, t_ns: u64, live: u64, sched_len: u64) {
        if let Some(ts) = &mut self.timeseries {
            ts.on_tick(t_ns, live, sched_len);
        }
    }

    /// Opens a profiling span (no-op token when spans are off).
    #[inline]
    pub fn span_begin(&mut self, phase: Phase) -> SpanToken {
        match &mut self.spans {
            Some(p) => p.begin(phase),
            None => SpanToken::noop(),
        }
    }

    /// Closes a profiling span.
    #[inline]
    pub fn span_end(&mut self, phase: Phase, token: SpanToken, sim_ns: u64) {
        if let Some(p) = &mut self.spans {
            p.end(phase, token, sim_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets_enable_the_right_pieces() {
        let full = RunObserver::new(&ObsConfig::full());
        assert!(full.tracer.is_some() && full.telemetry.is_some() && full.spans.is_some());
        assert!(full.timeseries.is_some());
        let t = RunObserver::new(&ObsConfig::telemetry_only());
        assert!(t.tracer.is_none() && t.telemetry.is_some() && t.spans.is_none());
        assert!(t.timeseries.is_none());
        let tr = RunObserver::new(&ObsConfig::trace_only(128));
        assert!(tr.tracer.is_some() && tr.telemetry.is_none() && tr.spans.is_none());
        let d = RunObserver::new(&ObsConfig::diagnosis());
        assert!(d.tracer.is_none() && d.telemetry.is_none());
        assert!(d.spans.is_some() && d.timeseries.is_some());
    }

    #[test]
    fn shardability_follows_the_trace_ring() {
        assert!(!RunObserver::new(&ObsConfig::full()).shardable());
        assert!(RunObserver::new(&ObsConfig::diagnosis()).shardable());
        assert!(RunObserver::new(&ObsConfig::telemetry_only()).shardable());
    }

    #[test]
    fn fresh_shard_mirrors_shape_and_absorb_folds_back() {
        let mut root = RunObserver::new(&ObsConfig::diagnosis());
        let mut shard = root.fresh_shard();
        assert!(shard.tracer.is_none() && shard.telemetry.is_none());
        assert!(shard.spans.is_some() && shard.timeseries.is_some());
        let tok = shard.span_begin(Phase::Dispatch);
        shard.span_end(Phase::Dispatch, tok, 42);
        shard.on_dispatch(100, 1, 0, 5);
        shard.on_tick(100, 3, 7);
        shard.merge_sched(SchedCounters { pushes: 2, ..SchedCounters::default() });
        root.absorb_shard(&shard);
        assert_eq!(root.spans.as_ref().unwrap().phase(Phase::Dispatch).count, 1);
        assert_eq!(root.timeseries.as_ref().unwrap().total_dispatches(), 1);
        assert_eq!(root.sched.pushes, 2);
    }

    #[test]
    fn hooks_update_trace_and_telemetry_together() {
        let mut obs = RunObserver::new(&ObsConfig::full());
        obs.ensure_stages(2);
        obs.on_stage_enter(100, 1, 0);
        obs.on_enqueue(100, 1, 0, 3);
        obs.on_dispatch(150, 2, 0, 50);
        obs.on_stage_exit(250, 3, 0, 100, true);
        obs.on_drop(300, 4, 1, TraceDrop::QueueFull);
        obs.on_fault(400, 5, 1, TraceFault::DeviceDown);
        let tel = obs.telemetry.as_ref().unwrap();
        let s0 = &tel.stages[0];
        assert_eq!((s0.arrivals, s0.enqueues, s0.dispatches, s0.served), (1, 1, 1, 1));
        assert_eq!(s0.peak_depth, 3);
        assert_eq!(s0.wait_ns.count(), 1);
        let s1 = &tel.stages[1];
        assert_eq!((s1.queue_drops, s1.fault_events), (1, 1));
        assert_eq!(s1.drops(), 1);
        assert_eq!(obs.tracer.as_ref().unwrap().emitted(), 6);
    }

    #[test]
    fn out_of_range_stage_is_ignored_by_telemetry_not_trace() {
        let mut obs = RunObserver::new(&ObsConfig::full());
        obs.ensure_stages(1);
        obs.on_drop(10, 1, 9, TraceDrop::Policy);
        assert_eq!(obs.telemetry.as_ref().unwrap().stages[0].drops(), 0);
        assert_eq!(obs.tracer.as_ref().unwrap().emitted(), 1);
    }

    #[test]
    fn spans_are_noops_when_disabled() {
        let mut obs = RunObserver::new(&ObsConfig::trace_only(8));
        let tok = obs.span_begin(Phase::Dispatch);
        obs.span_end(Phase::Dispatch, tok, 10);
        assert!(obs.spans.is_none());
    }
}
