//! Structured sim-time tracing: typed events in a bounded ring buffer.
//!
//! Events are keyed on `(t_ns, seq, stage)` — the same total order the
//! event engine schedules by — and never on slab slots or addresses, so
//! a trace is byte-identical wherever the run executes. The ring bound
//! keeps memory flat on long runs: when full, the oldest events are
//! overwritten and counted, never silently lost.

/// Why a traced packet left the pipeline early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDrop {
    /// A stage's bounded queue was full (overload loss).
    QueueFull,
    /// A network function's policy denied it (firewall deny, IDS block).
    Policy,
    /// The fault layer lost it (injection-point loss or a down device).
    Fault,
}

impl TraceDrop {
    /// Stable label used in exported trace files.
    pub fn label(self) -> &'static str {
        match self {
            TraceDrop::QueueFull => "queue-full",
            TraceDrop::Policy => "policy",
            TraceDrop::Fault => "fault",
        }
    }
}

/// A fault-plan action applied to a stage, as seen by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFault {
    /// A transient slowdown began (service times scale up).
    SlowdownStart,
    /// The slowdown ended (service factor back to 1).
    SlowdownEnd,
    /// The device went down (outage begins).
    DeviceDown,
    /// The device came back up (outage ends).
    DeviceUp,
    /// A per-packet injection-point drop fired.
    InjectedDrop,
    /// A per-packet corruption fired.
    Corrupt,
}

impl TraceFault {
    /// Stable label used in exported trace files.
    pub fn label(self) -> &'static str {
        match self {
            TraceFault::SlowdownStart => "slowdown-start",
            TraceFault::SlowdownEnd => "slowdown-end",
            TraceFault::DeviceDown => "device-down",
            TraceFault::DeviceUp => "device-up",
            TraceFault::InjectedDrop => "injected-drop",
            TraceFault::Corrupt => "corrupt",
        }
    }
}

/// The event taxonomy. Payloads carry only deterministic quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet was queued at a stage; `depth` is the queue depth
    /// *after* the push.
    Enqueue {
        /// Stage index in the deployment's stage list.
        stage: u32,
        /// Queue depth after this packet was pushed.
        depth: u32,
    },
    /// A packet left a stage queue and entered service after waiting
    /// `wait_ns` in the queue.
    Dispatch {
        /// Stage index.
        stage: u32,
        /// Sim-time nanoseconds the packet spent queued.
        wait_ns: u64,
    },
    /// A packet arrived at a stage (before any queue/serve decision).
    StageEnter {
        /// Stage index.
        stage: u32,
    },
    /// A packet finished service at a stage.
    StageExit {
        /// Stage index.
        stage: u32,
        /// Sim-time nanoseconds of service this completion took.
        service_ns: u64,
        /// Whether the stage forwarded the packet (`false` = denied).
        forwarded: bool,
    },
    /// A packet was dropped.
    Drop {
        /// Stage index.
        stage: u32,
        /// Why it was dropped.
        reason: TraceDrop,
    },
    /// A fault-plan action was applied.
    Fault {
        /// Stage index the action targeted.
        stage: u32,
        /// Which action.
        fault: TraceFault,
    },
}

impl TraceKind {
    /// The stage this event belongs to.
    pub fn stage(&self) -> u32 {
        match *self {
            TraceKind::Enqueue { stage, .. }
            | TraceKind::Dispatch { stage, .. }
            | TraceKind::StageEnter { stage }
            | TraceKind::StageExit { stage, .. }
            | TraceKind::Drop { stage, .. }
            | TraceKind::Fault { stage, .. } => stage,
        }
    }

    /// Stable short name used in exported trace files.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Enqueue { .. } => "enqueue",
            TraceKind::Dispatch { .. } => "dispatch",
            TraceKind::StageEnter { .. } => "arrive",
            TraceKind::StageExit { .. } => "service",
            TraceKind::Drop { .. } => "drop",
            TraceKind::Fault { .. } => "fault",
        }
    }
}

/// One trace record: where in sim-time, which scheduled event, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated nanoseconds since run start.
    pub t_ns: u64,
    /// Deterministic discriminator: the packet id for packet-scoped
    /// events, the scheduler sequence number for fault actions. Either
    /// way it is schedule-invariant — never a slab slot or address.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Where trace events go. The engine holds an `Option<RunObserver>`;
/// with `None` the instrumentation is a single branch per site, which
/// the zero-cost-when-off gates in the bench harness verify.
pub trait TraceSink {
    /// Consumes one event.
    fn emit(&mut self, ev: TraceEvent);
}

/// A sink that discards everything — the measurement baseline and the
/// stand-in when only telemetry or spans are wanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Bounded ring-buffer trace sink.
///
/// Keeps the most recent `capacity` events; older events are overwritten
/// and tallied in [`Tracer::overwritten`] so exports can say exactly
/// what the bound cost. Iteration yields oldest → newest.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Vec<TraceEvent>,
    head: usize,
    emitted: u64,
    capacity: usize,
}

impl Tracer {
    /// Creates a tracer bounded at `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer { buf: Vec::with_capacity(capacity.min(4096)), head: 0, emitted: 0, capacity }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring bound this tracer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events emitted into the tracer, including overwritten ones.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// How many events the ring bound discarded (oldest-first).
    pub fn overwritten(&self) -> u64 {
        self.emitted - self.buf.len() as u64
    }

    /// Retained events, oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        self.emitted += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, seq: u64) -> TraceEvent {
        TraceEvent { t_ns: t, seq, kind: TraceKind::StageEnter { stage: 0 } }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut tr = Tracer::with_capacity(3);
        for i in 0..5 {
            tr.emit(ev(i, i));
        }
        let seqs: Vec<u64> = tr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(tr.emitted(), 5);
        assert_eq!(tr.overwritten(), 2);
        assert_eq!(tr.capacity(), 3);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut tr = Tracer::with_capacity(8);
        for i in 0..3 {
            tr.emit(ev(10 + i, i));
        }
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
        assert_eq!(tr.overwritten(), 0);
        let seqs: Vec<u64> = tr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut tr = Tracer::with_capacity(0);
        tr.emit(ev(1, 1));
        tr.emit(ev(2, 2));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.events().next().map(|e| e.seq), Some(2));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceDrop::QueueFull.label(), "queue-full");
        assert_eq!(TraceFault::DeviceDown.label(), "device-down");
        let k = TraceKind::Drop { stage: 3, reason: TraceDrop::Policy };
        assert_eq!(k.label(), "drop");
        assert_eq!(k.stage(), 3);
    }
}
