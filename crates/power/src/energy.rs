//! Energy metering: integrating device power over simulated time.
//!
//! The simulator reports utilization samples per device; the meter
//! integrates `power(u(t)) dt` piecewise (each sample holds from its
//! timestamp until the next), yielding total joules and the average
//! watts an evaluation reports as its cost coordinate.

use crate::model::LinearPower;
use apples_metrics::quantity::{joules, watts, Quantity};

/// Integrates one device's power over a sequence of utilization samples.
///
/// Samples must arrive in non-decreasing time order (nanoseconds). The
/// utilization reported at time `t` is taken to hold over `[t, t_next)`.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    power: LinearPower,
    last_t_ns: Option<u64>,
    last_u: f64,
    total_joules: f64,
    elapsed_ns: u64,
}

impl EnergyMeter {
    /// Creates a meter for a device with the given power model.
    pub fn new(power: LinearPower) -> Self {
        EnergyMeter { power, last_t_ns: None, last_u: 0.0, total_joules: 0.0, elapsed_ns: 0 }
    }

    /// Records that the device's utilization is `u` from time `t_ns` on.
    ///
    /// # Panics
    /// If `t_ns` precedes the previous sample.
    pub fn sample(&mut self, t_ns: u64, u: f64) {
        if let Some(prev) = self.last_t_ns {
            assert!(t_ns >= prev, "samples must be time-ordered: {t_ns} < {prev}");
            self.accumulate(prev, t_ns);
        }
        self.last_t_ns = Some(t_ns);
        self.last_u = u;
    }

    /// Closes the measurement window at `end_ns`, accounting for the time
    /// since the last sample.
    pub fn finish(&mut self, end_ns: u64) {
        if let Some(prev) = self.last_t_ns {
            assert!(end_ns >= prev, "finish time precedes last sample");
            self.accumulate(prev, end_ns);
            self.last_t_ns = Some(end_ns);
        }
    }

    fn accumulate(&mut self, from_ns: u64, to_ns: u64) {
        let dt_s = (to_ns - from_ns) as f64 * 1e-9;
        self.total_joules += self.power.watts_at(self.last_u) * dt_s;
        self.elapsed_ns += to_ns - from_ns;
    }

    /// Total energy consumed so far.
    pub fn energy(&self) -> Quantity {
        joules(self.total_joules)
    }

    /// Average power over the measured window; the device's idle power
    /// when no time has elapsed (an unloaded device still draws idle).
    pub fn average_power(&self) -> Quantity {
        if self.elapsed_ns == 0 {
            watts(self.power.watts_at(0.0))
        } else {
            watts(self.total_joules / (self.elapsed_ns as f64 * 1e-9))
        }
    }

    /// Nanoseconds of measured time.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn constant_load_integrates_exactly() {
        let mut m = EnergyMeter::new(LinearPower::new(20.0, 100.0));
        m.sample(0, 1.0);
        m.finish(1_000_000_000); // 1 s at full load: 100 J
        assert!((m.energy().value() - 100.0).abs() < 1e-9);
        assert!((m.average_power().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_load_is_time_weighted() {
        let mut m = EnergyMeter::new(LinearPower::new(0.0, 100.0));
        m.sample(0, 1.0); // full load for 0.25 s
        m.sample(250_000_000, 0.0); // idle for 0.75 s
        m.finish(1_000_000_000);
        assert!((m.energy().value() - 25.0).abs() < 1e-9);
        assert!((m.average_power().value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn unmeasured_meter_reports_idle_power() {
        let m = EnergyMeter::new(LinearPower::new(15.0, 25.0));
        assert_eq!(m.average_power().value(), 15.0);
        assert_eq!(m.energy().value(), 0.0);
        assert_eq!(m.elapsed_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_samples_rejected() {
        let mut m = EnergyMeter::new(LinearPower::constant(10.0));
        m.sample(100, 0.5);
        m.sample(50, 0.5);
    }

    #[test]
    fn zero_duration_samples_are_harmless() {
        let mut m = EnergyMeter::new(LinearPower::constant(10.0));
        m.sample(0, 0.3);
        m.sample(0, 0.9);
        m.finish(1_000_000_000);
        assert!((m.energy().value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_is_within_model_bounds() {
        let mut rng = Rng::seed_from_u64(0xE4E0);
        for _ in 0..500 {
            let idle = rng.range_f64(0.0, 50.0);
            let extra = rng.range_f64(0.0, 200.0);
            let n = rng.range_usize(1, 20);
            let mut m = EnergyMeter::new(LinearPower::new(idle, idle + extra));
            let mut t = 0u64;
            for _ in 0..n {
                m.sample(t, rng.next_f64());
                t += 1_000_000; // 1 ms steps
            }
            m.finish(t + 1_000_000);
            let avg = m.average_power().value();
            assert!(avg >= idle - 1e-9);
            assert!(avg <= idle + extra + 1e-9);
        }
    }
}
