//! # apples-power
//!
//! Power and cost accounting for simulated heterogeneous deployments.
//!
//! The paper recommends power draw (watts) as the default cost metric: it
//! is context-independent, quantifiable, and composes end-to-end (§3.4).
//! Real evaluations read watts from a meter; this crate supplies the
//! simulator's stand-in — a first-order utilization model
//! (idle + utilization × dynamic range) per device, integrated over
//! simulated time by an [`energy::EnergyMeter`].
//!
//! It also carries the rest of a system's cost inventory — rack units,
//! die area, memory, bill of materials — so any of the Table 1 metrics
//! can be reported for a deployment, and the §3.1 pricing-model release
//! can price it.
//!
//! The device constants in [`devices`] are synthetic but representative
//! (documented per device); DESIGN.md records the substitution rationale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod devices;
pub mod energy;
pub mod inventory;
pub mod model;

pub use devices::DeviceSpec;
pub use energy::EnergyMeter;
pub use inventory::{CostVector, SystemInventory};
pub use model::LinearPower;
