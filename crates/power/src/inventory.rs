//! System inventories and end-to-end cost vectors.
//!
//! A [`SystemInventory`] is the full bill of hardware a deployment needs
//! to produce its output — the paper's Principle 3 demands that cost
//! cover *all* of it. [`CostVector`] aggregates every Table 1 metric the
//! inventory supports at once, refusing (with `None`) the ones that do
//! not compose across the inventory's device classes.

use crate::devices::DeviceSpec;
use apples_metrics::cost::DeviceClass;
use apples_metrics::pricing::{BomItem, PricingModel};
use apples_metrics::quantity::{bytes, dollars, luts as luts_q, rack_units, watts, Quantity};
use apples_metrics::quantity::{cores as cores_q, watts_to_btu_per_hour};

/// One inventory line: a device and how many of it the system uses.
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryLine {
    /// The device.
    pub device: DeviceSpec,
    /// How many instances the deployment uses.
    pub count: u32,
    /// Steady-state utilization assumed for power reporting, `[0, 1]`.
    pub utilization: f64,
}

/// A deployment's complete hardware inventory.
///
/// # Examples
///
/// ```
/// use apples_power::devices::DeviceSpec;
/// use apples_power::inventory::SystemInventory;
///
/// let inv = SystemInventory::new()
///     .add(DeviceSpec::host_chassis(), 1, 1.0)
///     .add(DeviceSpec::xeon_core(), 2, 0.5)
///     .add(DeviceSpec::smartnic_100g(), 1, 0.9);
/// let v = inv.cost_vector();
/// assert!(v.watts > 70.0);
/// // CPU cores and SmartNIC cores refuse to compose (§3.4):
/// assert!(v.core_count().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemInventory {
    lines: Vec<InventoryLine>,
}

impl SystemInventory {
    /// Creates an empty inventory.
    pub fn new() -> Self {
        SystemInventory::default()
    }

    /// Adds `count` instances of `device` at the given steady-state
    /// utilization.
    pub fn add(mut self, device: DeviceSpec, count: u32, utilization: f64) -> Self {
        assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
        self.lines.push(InventoryLine { device, count, utilization });
        self
    }

    /// The inventory lines.
    pub fn lines(&self) -> &[InventoryLine] {
        &self.lines
    }

    /// The distinct device classes present (for Principle 3 validation).
    pub fn device_classes(&self) -> Vec<DeviceClass> {
        let mut classes: Vec<DeviceClass> = self.lines.iter().map(|l| l.device.class).collect();
        classes.sort();
        classes.dedup();
        classes
    }

    /// Aggregates the cost vector at the configured utilizations.
    pub fn cost_vector(&self) -> CostVector {
        let mut v = CostVector::default();
        let mut core_classes: Vec<DeviceClass> = Vec::new();
        for l in &self.lines {
            let n = f64::from(l.count);
            v.watts += n * l.device.watts_at(l.utilization);
            v.rack_units += n * l.device.rack_units;
            v.die_area_mm2 += n * l.device.die_area_mm2;
            v.memory_bytes += n * l.device.memory_bytes;
            v.luts += u64::from(l.count) * l.device.luts;
            if l.device.cores > 0 {
                v.cores += l.count * l.device.cores;
                if !core_classes.contains(&l.device.class) {
                    core_classes.push(l.device.class);
                }
            }
        }
        // Core counts only compose within a single device class (§3.4).
        v.cores_composable = core_classes.len() <= 1;
        v
    }

    /// The bill of materials for pricing under a released model.
    pub fn bom(&self) -> Vec<BomItem> {
        self.lines.iter().map(|l| BomItem::new(l.device.part, l.count)).collect()
    }

    /// Yearly TCO under a released pricing model, using the inventory's
    /// steady-state power.
    pub fn yearly_tco(
        &self,
        model: &PricingModel,
    ) -> Result<Quantity, apples_metrics::pricing::PricingError> {
        model.yearly_tco(&self.bom(), watts(self.cost_vector().watts))
    }
}

/// Every Table 1 cost this crate can compute for an inventory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostVector {
    /// End-to-end power at the configured utilizations, watts.
    pub watts: f64,
    /// Total rack footprint, rack units.
    pub rack_units: f64,
    /// Total silicon die area, mm².
    pub die_area_mm2: f64,
    /// Total device memory, bytes.
    pub memory_bytes: f64,
    /// Total processing cores, **meaningful only when
    /// [`Self::cores_composable`]** (§3.4: cores on different device
    /// classes do not add).
    pub cores: u32,
    /// Whether the `cores` total spans a single device class.
    pub cores_composable: bool,
    /// Total FPGA LUTs.
    pub luts: u64,
}

impl CostVector {
    /// Power as a typed quantity.
    pub fn power(&self) -> Quantity {
        watts(self.watts)
    }

    /// Heat dissipation (all consumed power becomes heat).
    pub fn heat(&self) -> Quantity {
        // lint: allow(P1, reason = "invariant: power() constructs its Quantity with the watts() constructor two lines up, so the unit check cannot fail")
        watts_to_btu_per_hour(self.power()).expect("power is watts")
    }

    /// Rack space as a typed quantity.
    pub fn rack_space(&self) -> Quantity {
        rack_units(self.rack_units)
    }

    /// Memory as a typed quantity.
    pub fn memory(&self) -> Quantity {
        bytes(self.memory_bytes)
    }

    /// Core count as a typed quantity, or `None` when cores span device
    /// classes and therefore do not compose (Principle 3).
    pub fn core_count(&self) -> Option<Quantity> {
        if self.cores_composable {
            Some(cores_q(f64::from(self.cores)))
        } else {
            None
        }
    }

    /// LUT count as a typed quantity.
    pub fn lut_count(&self) -> Quantity {
        luts_q(self.luts as f64)
    }

    /// Hardware capex under a pricing model (context-dependent; prefer
    /// reporting the model alongside the number).
    pub fn priced(&self, model: &PricingModel, bom: &[BomItem]) -> Quantity {
        model.capex(bom).unwrap_or_else(|_| dollars(f64::NAN.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smartnic_host() -> SystemInventory {
        SystemInventory::new()
            .add(DeviceSpec::host_chassis(), 1, 1.0)
            .add(DeviceSpec::xeon_core(), 1, 0.8)
            .add(DeviceSpec::smartnic_100g(), 1, 1.0)
    }

    #[test]
    fn watts_compose_end_to_end() {
        let v = smartnic_host().cost_vector();
        // 20 + (1 + 0.8*29) + 40 = 84.2 W (§4.2's proposed-system shape:
        // above the 50 W one-core baseline, below 2x of it).
        assert!((v.watts - 84.2).abs() < 1e-9, "got {}", v.watts);
        assert!((v.heat().value() - 84.2 * 3.412_142).abs() < 1e-3);
    }

    #[test]
    fn cores_refuse_to_compose_across_cpu_and_smartnic() {
        let v = smartnic_host().cost_vector();
        assert!(!v.cores_composable);
        assert_eq!(v.core_count(), None);
    }

    #[test]
    fn cores_compose_within_one_class() {
        let v = SystemInventory::new()
            .add(DeviceSpec::host_chassis(), 1, 1.0)
            .add(DeviceSpec::xeon_core(), 4, 1.0)
            .cost_vector();
        assert!(v.cores_composable);
        assert_eq!(v.core_count().unwrap().value(), 4.0);
    }

    #[test]
    fn device_classes_deduplicated_and_sorted() {
        let classes = smartnic_host().device_classes();
        assert_eq!(classes, vec![DeviceClass::Cpu, DeviceClass::SmartNic]);
    }

    #[test]
    fn bom_and_tco_price_the_inventory() {
        let inv = smartnic_host();
        let model = PricingModel::campus_testbed_2023();
        let bom = inv.bom();
        assert_eq!(bom.len(), 3);
        let tco = inv.yearly_tco(&model).unwrap();
        assert!(tco.value() > 0.0);
        // More hardware, more TCO.
        let bigger = inv.add(DeviceSpec::xeon_core(), 8, 1.0);
        assert!(bigger.yearly_tco(&model).unwrap().value() > tco.value());
    }

    #[test]
    fn empty_inventory_is_all_zero() {
        let v = SystemInventory::new().cost_vector();
        assert_eq!(v.watts, 0.0);
        assert_eq!(v.cores, 0);
        assert!(v.cores_composable);
        assert_eq!(v.lut_count().value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = SystemInventory::new().add(DeviceSpec::xeon_core(), 1, 1.5);
    }

    #[test]
    fn rack_space_accumulates() {
        let v = SystemInventory::new()
            .add(DeviceSpec::host_chassis(), 2, 1.0)
            .add(DeviceSpec::programmable_switch_32x100g(), 1, 0.5)
            .cost_vector();
        assert_eq!(v.rack_space().value(), 3.0);
    }
}
