//! The device catalog: synthetic but representative hardware specs.
//!
//! We have no SmartNIC/FPGA/switch testbed (the reproduction gate), so
//! each device is described by public-datasheet-magnitude constants:
//! power envelope, die area, rack footprint, memory, and a part id in the
//! released [`apples_metrics::pricing::PricingModel`]. The experiments
//! calibrate *deployment-level* configurations against the paper's §4
//! worked examples; the catalog provides the per-device building blocks.

use crate::model::LinearPower;
use apples_metrics::cost::DeviceClass;

/// A concrete device model: one line of a deployment's inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Device class for Principle 3 coverage checks.
    pub class: DeviceClass,
    /// Utilization-linear power model.
    pub power: LinearPower,
    /// Rack footprint in rack units (fractional for components that
    /// share a chassis).
    pub rack_units: f64,
    /// Silicon die area in mm² (0 when not meaningfully attributable).
    pub die_area_mm2: f64,
    /// On-device memory in bytes.
    pub memory_bytes: f64,
    /// Processing cores (CPU or NIC cores; 0 for fixed-function).
    pub cores: u32,
    /// FPGA LUTs (0 for non-FPGA devices).
    pub luts: u64,
    /// Part id in the released pricing model's price list.
    pub part: &'static str,
}

impl DeviceSpec {
    /// A server chassis (fans, PSU losses, board) *without* any cores:
    /// the idle floor every host pays once. ~20 W idle.
    pub fn host_chassis() -> Self {
        DeviceSpec {
            name: "host chassis",
            class: DeviceClass::Cpu,
            power: LinearPower::constant(20.0),
            rack_units: 1.0,
            die_area_mm2: 0.0,
            memory_bytes: 64e9,
            cores: 0,
            luts: 0,
            part: "xeon-server-16c",
        }
    }

    /// One server-class x86 core: ~1 W idle (deep C-state), ~30 W at full
    /// load including its share of uncore/DRAM activity. Matches the §4.2
    /// example's marginal cost of a busy core (+30 W).
    pub fn xeon_core() -> Self {
        DeviceSpec {
            name: "x86 core",
            class: DeviceClass::Cpu,
            power: LinearPower::new(1.0, 30.0),
            rack_units: 0.0,
            die_area_mm2: 8.0,
            memory_bytes: 2e6, // L2 slice
            cores: 1,
            luts: 0,
            part: "xeon-core",
        }
    }

    /// A conventional 100 GbE NIC: fixed-function, nearly flat draw.
    pub fn dumb_nic_100g() -> Self {
        DeviceSpec {
            name: "100G NIC",
            class: DeviceClass::Nic,
            power: LinearPower::new(4.0, 6.0),
            rack_units: 0.0,
            die_area_mm2: 40.0,
            memory_bytes: 16e6,
            cores: 0,
            luts: 0,
            part: "dumb-nic-100g",
        }
    }

    /// A 100 GbE SmartNIC with embedded processing cores: higher idle
    /// than a dumb NIC (the SoC is always on), ~40 W at full load —
    /// BlueField-class envelopes.
    pub fn smartnic_100g() -> Self {
        DeviceSpec {
            name: "100G SmartNIC",
            class: DeviceClass::SmartNic,
            power: LinearPower::new(25.0, 40.0),
            rack_units: 0.0,
            die_area_mm2: 120.0,
            memory_bytes: 8e9,
            cores: 8, // NIC cores — intentionally NOT summable with x86 cores
            luts: 0,
            part: "smartnic-100g",
        }
    }

    /// A 100 GbE FPGA NIC: reconfigurable pipeline, ~35 W at full load.
    pub fn fpga_nic_100g() -> Self {
        DeviceSpec {
            name: "100G FPGA NIC",
            class: DeviceClass::Fpga,
            power: LinearPower::new(20.0, 35.0),
            rack_units: 0.0,
            die_area_mm2: 600.0,
            memory_bytes: 8e9,
            cores: 0,
            luts: 1_200_000,
            part: "fpga-nic-100g",
        }
    }

    /// An inference/packet-processing GPU accelerator (T4-class):
    /// meaningful idle draw, high peak; the batching device.
    pub fn gpu_accelerator() -> Self {
        DeviceSpec {
            name: "GPU accelerator",
            class: DeviceClass::Gpu,
            power: LinearPower::new(30.0, 70.0),
            rack_units: 0.0,
            die_area_mm2: 545.0,
            memory_bytes: 16e9,
            cores: 0,
            luts: 0,
            part: "gpu-t4",
        }
    }

    /// A 32x100 GbE programmable (match-action) switch: dominated by
    /// SerDes, so close to load-independent — ~100 W idle, 150 W peak.
    pub fn programmable_switch_32x100g() -> Self {
        DeviceSpec {
            name: "32x100G programmable switch",
            class: DeviceClass::ProgrammableSwitch,
            power: LinearPower::new(100.0, 150.0),
            rack_units: 1.0,
            die_area_mm2: 500.0,
            memory_bytes: 100e6, // SRAM/TCAM
            cores: 0,
            luts: 0,
            part: "tofino-switch-32x100g",
        }
    }

    /// Average watts at the given utilization.
    pub fn watts_at(&self, utilization: f64) -> f64 {
        self.power.watts_at(utilization)
    }

    /// Returns a copy with the whole power envelope scaled by `factor`
    /// — the lever sensitivity studies turn to ask how much a verdict
    /// depends on the synthetic constants.
    pub fn with_power_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.power =
            LinearPower::new(self.power.idle_watts * factor, self.power.peak_watts * factor);
        self
    }
}

/// The whole catalog, for iteration in tests and docs.
pub fn catalog() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::host_chassis(),
        DeviceSpec::xeon_core(),
        DeviceSpec::dumb_nic_100g(),
        DeviceSpec::smartnic_100g(),
        DeviceSpec::fpga_nic_100g(),
        DeviceSpec::gpu_accelerator(),
        DeviceSpec::programmable_switch_32x100g(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_metrics::pricing::PricingModel;

    #[test]
    fn catalog_parts_all_priced() {
        let model = PricingModel::campus_testbed_2023();
        for d in catalog() {
            assert!(
                model.price_list.contains_key(d.part),
                "device '{}' references unpriced part '{}'",
                d.name,
                d.part
            );
        }
    }

    #[test]
    fn section_42_marginal_core_power_matches() {
        // §4.2: baseline 1 core = 50 W, 2 cores = 80 W -> +30 W per busy
        // core. chassis (20) + core at full load (30) = 50.
        let chassis = DeviceSpec::host_chassis();
        let core = DeviceSpec::xeon_core();
        let one = chassis.watts_at(1.0) + core.watts_at(1.0);
        let two = chassis.watts_at(1.0) + 2.0 * core.watts_at(1.0);
        assert!((one - 50.0).abs() < 1e-9, "one core host = {one} W");
        assert!((two - 80.0).abs() < 1e-9, "two core host = {two} W");
    }

    #[test]
    fn smartnic_offload_power_has_the_section_42_shape() {
        // §4.2's shape: the SmartNIC system draws more than the 1-core
        // baseline (50 W) but well under 2x of it. At 80% core load:
        // 20 + (1 + 0.8*29) + 40 = 84.2 W.
        let w = DeviceSpec::host_chassis().watts_at(1.0)
            + DeviceSpec::xeon_core().watts_at(0.8)
            + DeviceSpec::smartnic_100g().watts_at(1.0);
        assert!((w - 84.2).abs() < 1e-9, "got {w}");
        let baseline_1c =
            DeviceSpec::host_chassis().watts_at(1.0) + DeviceSpec::xeon_core().watts_at(1.0);
        assert!(w > baseline_1c && w < 2.0 * baseline_1c);
    }

    #[test]
    fn accelerators_have_higher_idle_floors_than_dumb_equivalents() {
        assert!(
            DeviceSpec::smartnic_100g().power.idle_watts
                > DeviceSpec::dumb_nic_100g().power.idle_watts
        );
        assert!(
            DeviceSpec::fpga_nic_100g().power.idle_watts
                > DeviceSpec::dumb_nic_100g().power.idle_watts
        );
    }

    #[test]
    fn switch_is_mostly_load_independent() {
        let s = DeviceSpec::programmable_switch_32x100g();
        assert!(s.power.proportionality() < 0.5);
    }

    #[test]
    fn only_fpga_reports_luts_and_only_multicore_devices_report_cores() {
        for d in catalog() {
            if d.luts > 0 {
                assert_eq!(d.class, DeviceClass::Fpga, "{}", d.name);
            }
            if d.cores > 0 {
                assert!(matches!(d.class, DeviceClass::Cpu | DeviceClass::SmartNic), "{}", d.name);
            }
        }
    }
}
