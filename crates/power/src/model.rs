//! First-order device power models.
//!
//! Network hardware draws an idle floor plus a roughly linear dynamic
//! component with utilization — the standard first-order model used in
//! datacenter power studies. It is deliberately simple: the methodology
//! only needs watts that respond to load the way real watts do
//! (accelerators shift the idle/dynamic split, CPUs pay per active core).

/// `power(u) = idle + u * (peak - idle)` for utilization `u` in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPower {
    /// Power draw at zero load, in watts.
    pub idle_watts: f64,
    /// Power draw at full load, in watts.
    pub peak_watts: f64,
}

impl LinearPower {
    /// Creates a model; panics unless `0 <= idle <= peak` and both finite.
    pub fn new(idle_watts: f64, peak_watts: f64) -> Self {
        assert!(idle_watts.is_finite() && peak_watts.is_finite(), "power bounds must be finite");
        assert!(
            0.0 <= idle_watts && idle_watts <= peak_watts,
            "need 0 <= idle ({idle_watts}) <= peak ({peak_watts})"
        );
        LinearPower { idle_watts, peak_watts }
    }

    /// A load-independent draw (fixed-function devices at line rate).
    pub fn constant(watts: f64) -> Self {
        LinearPower::new(watts, watts)
    }

    /// Instantaneous power at `utilization` (clamped to `[0, 1]`).
    pub fn watts_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + u * (self.peak_watts - self.idle_watts)
    }

    /// The dynamic range (`peak - idle`) in watts.
    pub fn dynamic_watts(&self) -> f64 {
        self.peak_watts - self.idle_watts
    }

    /// Energy proportionality index: dynamic / peak. 1.0 means perfectly
    /// proportional (no idle draw), 0.0 means load-independent.
    pub fn proportionality(&self) -> f64 {
        // lint: allow(N1, reason = "exact-zero sentinel: a zero-peak device is constructed with literal 0.0 and draws nothing")
        if self.peak_watts == 0.0 {
            0.0
        } else {
            self.dynamic_watts() / self.peak_watts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn endpoints() {
        let m = LinearPower::new(20.0, 100.0);
        assert_eq!(m.watts_at(0.0), 20.0);
        assert_eq!(m.watts_at(1.0), 100.0);
        assert_eq!(m.watts_at(0.5), 60.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = LinearPower::new(20.0, 100.0);
        assert_eq!(m.watts_at(-0.5), 20.0);
        assert_eq!(m.watts_at(2.0), 100.0);
    }

    #[test]
    fn constant_model_is_flat() {
        let m = LinearPower::constant(150.0);
        assert_eq!(m.watts_at(0.0), 150.0);
        assert_eq!(m.watts_at(1.0), 150.0);
        assert_eq!(m.proportionality(), 0.0);
    }

    #[test]
    fn proportionality_bounds() {
        assert_eq!(LinearPower::new(0.0, 100.0).proportionality(), 1.0);
        assert_eq!(LinearPower::new(50.0, 100.0).proportionality(), 0.5);
        assert_eq!(LinearPower::new(0.0, 0.0).proportionality(), 0.0);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn idle_above_peak_rejected() {
        let _ = LinearPower::new(100.0, 50.0);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let mut rng = Rng::seed_from_u64(0xB00);
        for _ in 0..1000 {
            let idle = rng.range_f64(0.0, 200.0);
            let extra = rng.range_f64(0.0, 300.0);
            let u1 = rng.next_f64();
            let u2 = rng.next_f64();
            let m = LinearPower::new(idle, idle + extra);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            assert!(m.watts_at(lo) <= m.watts_at(hi) + 1e-12);
            assert!(m.watts_at(lo) >= idle - 1e-12);
            assert!(m.watts_at(hi) <= idle + extra + 1e-12);
        }
    }
}
