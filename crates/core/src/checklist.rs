//! The reviewer checklist: auditing an evaluation against all seven
//! principles.
//!
//! The paper's §5 hopes "authors adhere to these principles when
//! evaluating their systems, and reviewers consider these principles
//! when reviewing papers". [`audit`] turns that hope into a function: it
//! inspects a finished [`EvaluationResult`] and reports, principle by
//! principle, whether the comparison complied, with the note a reviewer
//! would write.

use crate::evaluate::EvaluationResult;
use crate::regime::Regime;
use crate::verdict::{ScaledOutcome, Verdict};
use apples_metrics::cost::PrincipleViolation;
use apples_metrics::Scalability;
use std::fmt;

/// One principle's audit outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The evaluation complied with the principle.
    Pass,
    /// The principle did not bear on this comparison.
    NotApplicable,
    /// Compliance is questionable; the note says why.
    Warn,
    /// The evaluation violated the principle.
    Fail,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Pass => "PASS",
            Status::NotApplicable => "n/a",
            Status::Warn => "WARN",
            Status::Fail => "FAIL",
        };
        f.write_str(s)
    }
}

/// One row of the checklist.
#[derive(Debug, Clone, PartialEq)]
pub struct ChecklistItem {
    /// Principle number, 1–7.
    pub principle: u8,
    /// The principle's short statement.
    pub title: &'static str,
    /// Audit outcome.
    pub status: Status,
    /// Reviewer-style justification.
    pub note: String,
}

/// Audits an evaluation result against all seven principles.
pub fn audit(r: &EvaluationResult) -> Vec<ChecklistItem> {
    let mut items = Vec::with_capacity(7);
    let metric = r.proposed.point().cost().metric();
    let perf_scalable = r.proposed.point().perf().metric().scalability() == Scalability::Scalable;

    // P1–P3 come from the metric validation.
    let p1_bad =
        r.violations.iter().any(|v| matches!(v, PrincipleViolation::ContextDependent { .. }));
    items.push(ChecklistItem {
        principle: 1,
        title: "cost metric is context-independent",
        status: if p1_bad { Status::Fail } else { Status::Pass },
        note: if p1_bad {
            format!("'{}' can be computed differently by different evaluators", metric.name())
        } else {
            format!("'{}' yields identical values for identical deployments", metric.name())
        },
    });

    let p2_bad =
        r.violations.iter().any(|v| matches!(v, PrincipleViolation::NotQuantifiable { .. }));
    items.push(ChecklistItem {
        principle: 2,
        title: "cost metric is quantifiable",
        status: if p2_bad { Status::Fail } else { Status::Pass },
        note: if p2_bad {
            format!("'{}' lacks an agreed measurement methodology", metric.name())
        } else {
            format!("'{}' is measurable and comparable head-to-head", metric.name())
        },
    });

    let p3_bad = r.violations.iter().any(|v| {
        matches!(
            v,
            PrincipleViolation::IncompleteCoverage { .. }
                | PrincipleViolation::NotComposable { .. }
        )
    });
    items.push(ChecklistItem {
        principle: 3,
        title: "cost covers all systems end-to-end",
        status: if p3_bad { Status::Fail } else { Status::Pass },
        note: if p3_bad {
            "a compared component's cost is missing or cannot be summed".to_owned()
        } else {
            "every device class of every system is covered and composable".to_owned()
        },
    });

    // P4: unidimensional analysis in shared regimes.
    items.push(match r.regime {
        Regime::Different => ChecklistItem {
            principle: 4,
            title: "same-regime comparisons made unidimensional",
            status: Status::NotApplicable,
            note: "the systems operate in different regimes; both axes were compared".to_owned(),
        },
        _ => ChecklistItem {
            principle: 4,
            title: "same-regime comparisons made unidimensional",
            status: if matches!(r.verdict, Verdict::SameRegime { .. }) {
                Status::Pass
            } else {
                Status::Warn
            },
            note: format!("regime detected as '{}'", r.regime),
        },
    });

    // P5/P6: scaling of the baseline.
    match &r.verdict {
        Verdict::Scaled { generous: false, model, .. } => {
            items.push(ChecklistItem {
                principle: 5,
                title: "scalable baseline scaled into the comparison region",
                status: Status::Pass,
                note: format!("baseline brought into the region via the {model} model"),
            });
            items.push(ChecklistItem {
                principle: 6,
                title: "ideal scaling used only as a generous bound",
                status: Status::NotApplicable,
                note: "a measured scaling model was available; no ideal bound needed".to_owned(),
            });
        }
        Verdict::Scaled { generous: true, outcome, .. } => {
            items.push(ChecklistItem {
                principle: 5,
                title: "scalable baseline scaled into the comparison region",
                status: Status::Pass,
                note: "baseline brought into the region (by the generous bound of P6)".to_owned(),
            });
            let note = match outcome {
                ScaledOutcome::ProposedPrevails => {
                    "ideal scaling favored the baseline, so the proposed system's win is safe"
                        .to_owned()
                }
                ScaledOutcome::BaselinePrevails { .. } => {
                    "the generously scaled baseline prevailed; correctly, no reverse claim was made"
                        .to_owned()
                }
                ScaledOutcome::Mixed => "anchors disagreed; no single claim was made".to_owned(),
            };
            items.push(ChecklistItem {
                principle: 6,
                title: "ideal scaling used only as a generous bound",
                status: Status::Pass,
                note,
            });
        }
        Verdict::Incomparable { .. } if perf_scalable => {
            items.push(ChecklistItem {
                principle: 5,
                title: "scalable baseline scaled into the comparison region",
                status: Status::Warn,
                note: "the performance metric is scalable but no scaling closed the comparison; \
                       provision the baseline (P5) or bound it ideally (P6)"
                    .to_owned(),
            });
            items.push(ChecklistItem {
                principle: 6,
                title: "ideal scaling used only as a generous bound",
                status: Status::NotApplicable,
                note: "no scaled comparison was made".to_owned(),
            });
        }
        _ => {
            items.push(ChecklistItem {
                principle: 5,
                title: "scalable baseline scaled into the comparison region",
                status: Status::NotApplicable,
                note: "no scaling was needed for this verdict".to_owned(),
            });
            items.push(ChecklistItem {
                principle: 6,
                title: "ideal scaling used only as a generous bound",
                status: Status::NotApplicable,
                note: "no scaling was needed for this verdict".to_owned(),
            });
        }
    }

    // P7: non-scalable comparisons stay inside the region.
    let p7 = if perf_scalable {
        ChecklistItem {
            principle: 7,
            title: "non-scalable baselines compared only inside the region",
            status: Status::NotApplicable,
            note: "the performance metric is scalable".to_owned(),
        }
    } else {
        match &r.verdict {
            Verdict::Scaled { .. } => ChecklistItem {
                principle: 7,
                title: "non-scalable baselines compared only inside the region",
                status: Status::Fail,
                note: "a non-scalable metric was scaled — the comparison is invalid".to_owned(),
            },
            Verdict::Incomparable { .. } => ChecklistItem {
                principle: 7,
                title: "non-scalable baselines compared only inside the region",
                status: Status::Pass,
                note: "incomparable systems were reported as such, with both operating points"
                    .to_owned(),
            },
            _ => ChecklistItem {
                principle: 7,
                title: "non-scalable baselines compared only inside the region",
                status: Status::Pass,
                note: "the baseline was already inside the comparison region".to_owned(),
            },
        }
    };
    items.push(p7);
    items
}

/// Renders a checklist as aligned plain text.
pub fn render_checklist(items: &[ChecklistItem]) -> String {
    let mut out = String::new();
    out.push_str("principle compliance checklist:\n");
    for i in items {
        out.push_str(&format!("  P{} [{}] {} — {}\n", i.principle, i.status, i.title, i.note));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluation;
    use crate::point::test_support::{lp, tp};
    use crate::point::System;
    use crate::scaling::IdealLinear;
    use apples_metrics::cost::DeviceClass;

    fn sys(name: &str, devices: &[DeviceClass], p: crate::OperatingPoint) -> System {
        System::new(name, devices.to_vec(), p)
    }

    const HOST: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::Nic];
    const SWITCHED: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::ProgrammableSwitch];

    #[test]
    fn compliant_scaled_comparison_passes_everything_applicable() {
        let r =
            Evaluation::new(sys("a", SWITCHED, tp(100.0, 200.0)), sys("b", HOST, tp(35.0, 100.0)))
                .with_baseline_scaling(&IdealLinear)
                .run();
        let items = audit(&r);
        assert_eq!(items.len(), 7);
        for i in &items {
            assert_ne!(i.status, Status::Fail, "P{} failed: {}", i.principle, i.note);
        }
        // P6 must be an explicit pass here.
        assert_eq!(items[5].principle, 6);
        assert_eq!(items[5].status, Status::Pass);
    }

    #[test]
    fn bad_metric_fails_p3() {
        use apples_metrics::perf::PerfMetric;
        use apples_metrics::quantity::{cores, gbps};
        use apples_metrics::CostMetric;
        let p = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(20.0)),
            CostMetric::cpu_cores().value(cores(2.0)),
        );
        let b = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(10.0)),
            CostMetric::cpu_cores().value(cores(4.0)),
        );
        let r = Evaluation::new(
            sys("accel", &[DeviceClass::Cpu, DeviceClass::Fpga], p),
            sys("base", &[DeviceClass::Cpu], b),
        )
        .run();
        let items = audit(&r);
        assert_eq!(items[2].principle, 3);
        assert_eq!(items[2].status, Status::Fail);
    }

    #[test]
    fn unscaled_scalable_comparison_warns_on_p5() {
        let r =
            Evaluation::new(sys("a", SWITCHED, tp(100.0, 200.0)), sys("b", HOST, tp(35.0, 100.0)))
                .run(); // no scaling model supplied
        let items = audit(&r);
        assert_eq!(items[4].principle, 5);
        assert_eq!(items[4].status, Status::Warn);
    }

    #[test]
    fn same_regime_passes_p4() {
        let r =
            Evaluation::new(sys("a", HOST, tp(15.0, 50.0)), sys("b", HOST, tp(10.0, 50.0))).run();
        let items = audit(&r);
        assert_eq!(items[3].principle, 4);
        assert_eq!(items[3].status, Status::Pass);
    }

    #[test]
    fn latency_comparisons_engage_p7() {
        let r = Evaluation::new(sys("a", SWITCHED, lp(5.0, 200.0)), sys("b", HOST, lp(8.0, 100.0)))
            .run();
        let items = audit(&r);
        assert_eq!(items[6].principle, 7);
        assert_eq!(items[6].status, Status::Pass);
        // And P5 must be n/a, not a warn: latency is not scalable.
        assert_eq!(items[4].status, Status::NotApplicable);
    }

    #[test]
    fn render_mentions_every_principle() {
        let r =
            Evaluation::new(sys("a", SWITCHED, tp(100.0, 200.0)), sys("b", HOST, tp(35.0, 100.0)))
                .with_baseline_scaling(&IdealLinear)
                .run();
        let text = render_checklist(&audit(&r));
        for p in 1..=7 {
            assert!(text.contains(&format!("P{p} [")), "{text}");
        }
    }
}
