//! Performance-per-cost ratios and when they are (and are not) a valid
//! comparison criterion.
//!
//! Computer-architecture evaluations often rank systems by
//! performance-per-watt (§2 mentions the practice). How does that relate
//! to the paper's geometry?
//!
//! Two facts, both encoded and tested here:
//!
//! 1. **Dominance implies higher efficiency** ([`perf_per_cost`] is
//!    strictly ordered along dominance), so efficiency rankings never
//!    contradict an objective claim — but the converse fails: a more
//!    "efficient" system can be incomparable (e.g. a 5 Gbps / 4 W design
//!    beats a 10 Gbps / 10 W design on perf-per-watt yet cannot serve a
//!    10 Gbps requirement).
//! 2. **Under ideal linear scaling, comparing efficiencies *is* the
//!    Principle 6 comparison** ([`ideal_verdict_from_efficiency`]):
//!    ideal scaling preserves perf/cost, so the scaled baseline matches
//!    the proposed system's perf (or cost) with better/worse cost (or
//!    perf) exactly according to the efficiency order. For any
//!    *realistic* (sub-linear) model the equivalence breaks, and
//!    efficiency rankings overstate the baseline — which is precisely
//!    why the paper calls ideal scaling "generous".

use crate::dominance::Relation;
use crate::point::OperatingPoint;
use apples_metrics::Direction;

/// The perf-per-cost ratio of a point, or `None` when the performance
/// metric improves downward (latency-per-watt is not an efficiency) or
/// the cost is zero.
///
/// # Examples
///
/// ```
/// use apples_core::{perf_per_cost, OperatingPoint};
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{gbps, watts};
///
/// let p = OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(10.0)),
///     CostMetric::power_draw().value(watts(50.0)),
/// );
/// // 0.2 Gbit per joule.
/// assert!((perf_per_cost(&p).unwrap() - 0.2e9).abs() < 1.0);
/// ```
pub fn perf_per_cost(p: &OperatingPoint) -> Option<f64> {
    if p.perf().metric().direction() == Direction::LowerIsBetter {
        return None;
    }
    let cost = p.cost().quantity().value();
    if cost <= 0.0 {
        return None;
    }
    Some(p.perf().quantity().value() / cost)
}

/// What an ideal-linear-scaling comparison (Principle 6) of `proposed`
/// against `baseline` would conclude, derived purely from the
/// efficiency order. Returns the relation of the proposed system to the
/// ideally scaled baseline at the matching anchors, or `None` when
/// efficiency is undefined for either point.
pub fn ideal_verdict_from_efficiency(
    proposed: &OperatingPoint,
    baseline: &OperatingPoint,
) -> Option<Relation> {
    proposed.assert_same_axes(baseline);
    let ep = perf_per_cost(proposed)?;
    let eb = perf_per_cost(baseline)?;
    let rel = if ep > eb {
        Relation::Dominates
    } else if ep < eb {
        Relation::DominatedBy
    } else {
        Relation::Equivalent
    };
    Some(rel)
}

/// Ranks point indices by efficiency, best first. Ties keep input order.
/// Points with undefined efficiency are excluded.
pub fn rank_by_efficiency(points: &[OperatingPoint]) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> =
        points.iter().enumerate().filter_map(|(i, p)| perf_per_cost(p).map(|e| (i, e))).collect();
    // total_cmp: a total order over f64, so no panic path (P1) even
    // though efficiencies are finite by Quantity's construction.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    ranked.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::relate;
    use crate::point::test_support::{lp, tp};
    use crate::scaling::{Amdahl, IdealLinear, ScalingModel};

    #[test]
    fn efficiency_of_throughput_power_points() {
        // 10 Gbps at 50 W = 0.2 Gbit/J.
        let e = perf_per_cost(&tp(10.0, 50.0)).unwrap();
        assert!((e - 0.2e9).abs() < 1.0);
    }

    #[test]
    fn latency_efficiency_is_undefined() {
        assert_eq!(perf_per_cost(&lp(5.0, 100.0)), None);
    }

    #[test]
    fn dominance_implies_strictly_higher_efficiency() {
        let pairs = [
            (tp(20.0, 50.0), tp(10.0, 50.0)),
            (tp(10.0, 40.0), tp(10.0, 50.0)),
            (tp(20.0, 40.0), tp(10.0, 50.0)),
        ];
        for (a, b) in pairs {
            assert_eq!(relate(&a, &b), Relation::Dominates);
            assert!(perf_per_cost(&a).unwrap() > perf_per_cost(&b).unwrap());
        }
    }

    #[test]
    fn higher_efficiency_does_not_imply_dominance() {
        // B has better perf-per-watt but cannot serve A's regime.
        let a = tp(10.0, 10.0);
        let b = tp(5.0, 4.0);
        assert!(perf_per_cost(&b).unwrap() > perf_per_cost(&a).unwrap());
        assert_eq!(relate(&b, &a), Relation::Incomparable);
    }

    #[test]
    fn ideal_scaling_agrees_with_efficiency_order() {
        // The §4.2.1 numbers: A = (100, 200) vs B = (35, 100).
        let a = tp(100.0, 200.0);
        let b = tp(35.0, 100.0);
        // Efficiency order says A wins (0.5 vs 0.35 Gbps/W)…
        assert_eq!(ideal_verdict_from_efficiency(&a, &b), Some(Relation::Dominates));
        // …and the actual ideal-scaling anchors agree.
        let (_, at_cost) = IdealLinear.scale_to_match_cost(&b, &a).unwrap();
        assert_eq!(relate(&a, &at_cost), Relation::Dominates);
        let (_, at_perf) = IdealLinear.scale_to_match_perf(&b, &a).unwrap();
        assert_eq!(relate(&a, &at_perf), Relation::Dominates);
    }

    #[test]
    fn equivalence_breaks_for_realistic_models() {
        // A is slightly less efficient than B (0.19 vs 0.2 Gbps/W), so
        // efficiency (= ideal scaling) says B prevails. But under an
        // Amdahl baseline, scaling B to A's cost yields less performance
        // than ideal, and A wins at that anchor.
        let a = tp(38.0, 200.0);
        let b = tp(10.0, 50.0);
        assert_eq!(ideal_verdict_from_efficiency(&a, &b), Some(Relation::DominatedBy));
        let realistic = Amdahl::new(0.15);
        let (_, at_cost) = realistic.scale_to_match_cost(&b, &a).unwrap();
        // Amdahl at k=4: perf factor 1/(0.15 + 0.85/4) = 2.76 -> 27.6 Gbps.
        assert_eq!(relate(&a, &at_cost), Relation::Dominates);
    }

    #[test]
    fn ranking_orders_by_ratio_and_skips_undefined() {
        let pts = vec![tp(10.0, 50.0), tp(30.0, 60.0), tp(5.0, 100.0)];
        assert_eq!(rank_by_efficiency(&pts), vec![1, 0, 2]);
        let lat = vec![lp(5.0, 100.0)];
        assert!(rank_by_efficiency(&lat).is_empty());
    }

    #[test]
    fn equal_efficiencies_are_equivalent_under_ideal() {
        let a = tp(20.0, 100.0);
        let b = tp(10.0, 50.0);
        assert_eq!(ideal_verdict_from_efficiency(&a, &b), Some(Relation::Equivalent));
    }
}
