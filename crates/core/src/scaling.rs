//! Baseline scaling (§4.2, Principles 5 and 6) with the §4.2.1 pitfall
//! guards.
//!
//! When a scalable baseline is outside the proposed system's comparison
//! region, Principle 5 says to scale it into the region; Principle 6 says
//! that when actually provisioning the scaled baseline is impractical,
//! one may *ideally* (linearly) scale it, which is generous to the
//! baseline and therefore safe for claims in the proposed system's favor.
//!
//! The paper lists three pitfalls of ideal scaling, and this module turns
//! each into a mechanical guard:
//!
//! 1. **Only the baseline may be ideally scaled** — the comparison entry
//!    points in [`crate::evaluate`] only ever apply a model to the
//!    baseline; this module additionally exposes the rule as
//!    [`ScalingModel::is_generous_bound`] so reports can say which side
//!    was treated generously.
//! 2. **Cost coverage must be complete when scaling** — a baseline that
//!    uses 1 of 8 host cores but is costed at the whole server must not
//!    be linearly scaled at whole-server cost ([`CostCoverage`] guard).
//! 3. **Not every system or metric is scalable** — scaling refuses
//!    non-scalable performance metrics (latency, JFI) with
//!    [`ScalingError::NonScalableMetric`]; those comparisons must go
//!    through [`crate::nonscalable`] (Principle 7).

use crate::point::OperatingPoint;
use apples_metrics::{Direction, Scalability};
use std::fmt;

/// Whether the baseline's reported cost covers the entire unit being
/// replicated (§4.2.1 pitfall 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostCoverage {
    /// The cost covers exactly the resources the baseline uses; linear
    /// scaling of (perf, cost) together is meaningful.
    FullSystem,
    /// The baseline uses only part of a host whose *whole* cost was
    /// reported (e.g. 1 of 8 cores at full-server watts). Linearly
    /// scaling this is *not* generous: more performance could be had at
    /// the same cost by first filling the host.
    PartialHost {
        /// Resources actually used (e.g. cores).
        used: f64,
        /// Resources the reported cost pays for.
        paid_for: f64,
    },
}

impl CostCoverage {
    /// Returns an error when scaling under this coverage would violate
    /// the §4.2.1 generosity requirement.
    pub fn check(&self) -> Result<(), ScalingError> {
        match *self {
            CostCoverage::FullSystem => Ok(()),
            CostCoverage::PartialHost { used, paid_for } => {
                if used + f64::EPSILON >= paid_for {
                    Ok(())
                } else {
                    Err(ScalingError::PartialCostCoverage { used, paid_for })
                }
            }
        }
    }
}

/// Errors from scaling operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingError {
    /// The performance metric does not improve under horizontal scaling
    /// (latency, Jain's fairness index — §4.3). Use Principle 7 instead.
    NonScalableMetric {
        /// The metric's name.
        metric: &'static str,
    },
    /// The performance metric is scalable but not multiplicatively (loss
    /// rate shrinks rather than grows with added capacity); the simple
    /// factor model does not apply.
    NonMultiplicativeMetric {
        /// The metric's name.
        metric: &'static str,
    },
    /// A scale factor must be a positive finite number.
    InvalidFactor {
        /// The offending factor.
        factor: f64,
    },
    /// The target performance cannot be reached by this model no matter
    /// how far the system is scaled (e.g. beyond an Amdahl ceiling).
    TargetUnreachable {
        /// The requested performance gain (target / base).
        requested_gain: f64,
        /// The model's asymptotic maximum gain, if finite.
        max_gain: Option<f64>,
    },
    /// §4.2.1 pitfall 2: the baseline's cost pays for more resources than
    /// it uses, so linear scaling at that cost is not generous.
    PartialCostCoverage {
        /// Resources actually used.
        used: f64,
        /// Resources the reported cost pays for.
        paid_for: f64,
    },
}

impl fmt::Display for ScalingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingError::NonScalableMetric { metric } => write!(
                f,
                "'{metric}' does not improve under horizontal scaling; apply principle 7 \
                 (non-scalable comparison) instead of scaling"
            ),
            ScalingError::NonMultiplicativeMetric { metric } => write!(
                f,
                "'{metric}' is scalable but not multiplicative in the replication factor; \
                 the factor-scaling model does not apply"
            ),
            ScalingError::InvalidFactor { factor } => {
                write!(f, "scale factor must be positive and finite, got {factor}")
            }
            ScalingError::TargetUnreachable { requested_gain, max_gain } => match max_gain {
                Some(m) => write!(
                    f,
                    "requested {requested_gain:.3}x gain exceeds the model's {m:.3}x ceiling"
                ),
                None => write!(f, "requested {requested_gain:.3}x gain is unreachable"),
            },
            ScalingError::PartialCostCoverage { used, paid_for } => write!(
                f,
                "baseline uses {used} of the {paid_for} resource units its cost pays for; \
                 linearly scaling whole-unit cost is not generous (\u{a7}4.2.1) — cost the \
                 used fraction or first scale within the unit"
            ),
        }
    }
}

impl std::error::Error for ScalingError {}

/// A horizontal-scaling model: how performance and cost multiply when the
/// baseline is replicated by a factor `k > 0`.
///
/// `perf_factor` must be monotonically non-decreasing with
/// `perf_factor(1) = 1`; `cost_factor` defaults to `k` (provisioning
/// twice the hardware costs twice as much — costs that scale *better*
/// than linearly would be a claim needing its own evidence).
pub trait ScalingModel {
    /// Short model name for reports.
    fn name(&self) -> &'static str;

    /// Performance multiplier at replication factor `k`.
    fn perf_factor(&self, k: f64) -> f64;

    /// Cost multiplier at replication factor `k`.
    fn cost_factor(&self, k: f64) -> f64 {
        k
    }

    /// The model's asymptotic maximum performance gain, when finite
    /// (Amdahl: `1/serial`; saturating: the cap).
    fn max_gain(&self) -> Option<f64> {
        None
    }

    /// True when the model is a *generous upper bound* on the baseline's
    /// real behaviour (Principle 6's ideal scaling). Claims in the
    /// proposed system's favor remain valid under a generous bound;
    /// claims in the baseline's favor do not.
    fn is_generous_bound(&self) -> bool {
        false
    }

    /// Scales an operating point by `k`, checking metric scalability and
    /// factor validity.
    fn scale(&self, base: &OperatingPoint, k: f64) -> Result<OperatingPoint, ScalingError> {
        if !(k.is_finite() && k > 0.0) {
            return Err(ScalingError::InvalidFactor { factor: k });
        }
        check_multiplicative(base)?;
        let perf = base.perf().metric().value(base.perf().quantity().scale(self.perf_factor(k)));
        let cost = base.cost().metric().value(base.cost().quantity().scale(self.cost_factor(k)));
        Ok(OperatingPoint::new(perf, cost))
    }

    /// The model's maximum cost multiplier, when finite (a measured curve
    /// cannot promise cost behaviour beyond its last sample).
    fn max_cost_factor(&self) -> Option<f64> {
        None
    }

    /// Finds the replication factor at which the scaled baseline reaches
    /// `gain` times its base performance (bisection; works for any
    /// monotone `perf_factor`).
    fn factor_for_perf_gain(&self, gain: f64) -> Result<f64, ScalingError> {
        if let Some(max) = self.max_gain() {
            if gain > max * (1.0 + 1e-12) {
                return Err(ScalingError::TargetUnreachable {
                    requested_gain: gain,
                    max_gain: Some(max),
                });
            }
        }
        invert_monotone(gain, |k| self.perf_factor(k)).ok_or(ScalingError::TargetUnreachable {
            requested_gain: gain,
            max_gain: self.max_gain(),
        })
    }

    /// Finds the replication factor at which the scaled baseline's cost
    /// reaches `factor` times its base cost.
    fn factor_for_cost_factor(&self, factor: f64) -> Result<f64, ScalingError> {
        if let Some(max) = self.max_cost_factor() {
            if factor > max * (1.0 + 1e-12) {
                return Err(ScalingError::TargetUnreachable {
                    requested_gain: factor,
                    max_gain: Some(max),
                });
            }
        }
        invert_monotone(factor, |k| self.cost_factor(k)).ok_or(ScalingError::TargetUnreachable {
            requested_gain: factor,
            max_gain: self.max_cost_factor(),
        })
    }

    /// Scales `base` so its performance matches `target`'s performance
    /// (the Figure 3 "match A's performance" anchor). Returns the factor
    /// and the scaled point, with the matched axis snapped exactly to the
    /// target so the anchor lies on the target's performance level.
    fn scale_to_match_perf(
        &self,
        base: &OperatingPoint,
        target: &OperatingPoint,
    ) -> Result<(f64, OperatingPoint), ScalingError> {
        base.assert_same_axes(target);
        check_multiplicative(base)?;
        let gain = target
            .perf()
            .quantity()
            .ratio_to(base.perf().quantity())
            .map_err(|_| ScalingError::InvalidFactor { factor: f64::NAN })?;
        if !(gain.is_finite() && gain > 0.0) {
            return Err(ScalingError::InvalidFactor { factor: gain });
        }
        let k = self.factor_for_perf_gain(gain)?;
        let scaled = self.scale(base, k)?;
        // Snap the matched axis: bisection leaves ~1e-12 residue that
        // would otherwise perturb dominance decisions at the anchor.
        let snapped = OperatingPoint::new(target.perf().clone(), scaled.cost().clone());
        Ok((k, snapped))
    }

    /// Scales `base` so its cost matches `target`'s cost (the Figure 3
    /// "match A's cost" anchor), inverting the model's cost curve.
    fn scale_to_match_cost(
        &self,
        base: &OperatingPoint,
        target: &OperatingPoint,
    ) -> Result<(f64, OperatingPoint), ScalingError> {
        base.assert_same_axes(target);
        check_multiplicative(base)?;
        let cf = target
            .cost()
            .quantity()
            .ratio_to(base.cost().quantity())
            .map_err(|_| ScalingError::InvalidFactor { factor: f64::NAN })?;
        if !(cf.is_finite() && cf > 0.0) {
            return Err(ScalingError::InvalidFactor { factor: cf });
        }
        let k = self.factor_for_cost_factor(cf)?;
        let scaled = self.scale(base, k)?;
        let snapped = OperatingPoint::new(scaled.perf().clone(), target.cost().clone());
        Ok((k, snapped))
    }
}

/// Inverts a monotone non-decreasing factor function by bracketing and
/// bisection. Returns `None` when the target cannot be bracketed.
fn invert_monotone(target: f64, f: impl Fn(f64) -> f64) -> Option<f64> {
    if !(target.is_finite() && target > 0.0) {
        return None;
    }
    let (mut lo, mut hi) = (1e-9_f64, 1.0_f64);
    let mut doublings = 0;
    while f(hi) < target {
        hi *= 2.0;
        doublings += 1;
        if doublings > 200 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * hi {
            break;
        }
    }
    Some(hi)
}

fn check_multiplicative(p: &OperatingPoint) -> Result<(), ScalingError> {
    let metric = p.perf().metric();
    if metric.scalability() == Scalability::NonScalable {
        return Err(ScalingError::NonScalableMetric { metric: metric.name() });
    }
    if metric.direction() == Direction::LowerIsBetter {
        return Err(ScalingError::NonMultiplicativeMetric { metric: metric.name() });
    }
    Ok(())
}

/// Principle 6's ideal scalability: performance and cost both scale
/// exactly linearly. A generous upper bound on any real baseline.
///
/// # Examples
///
/// The §4.2.1 anchors (70 Gbps @ 200 W and 100 Gbps @ ~286 W):
///
/// ```
/// use apples_core::{IdealLinear, OperatingPoint, ScalingModel};
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{gbps, watts};
///
/// let tp = |g, w| OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(g)),
///     CostMetric::power_draw().value(watts(w)),
/// );
/// let baseline = tp(35.0, 100.0);
/// let proposed = tp(100.0, 200.0);
///
/// let (k, at_cost) = IdealLinear.scale_to_match_cost(&baseline, &proposed).unwrap();
/// assert!((k - 2.0).abs() < 1e-9);
/// assert!((at_cost.perf().quantity().value() / 1e9 - 70.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IdealLinear;

impl ScalingModel for IdealLinear {
    fn name(&self) -> &'static str {
        "ideal linear"
    }

    fn perf_factor(&self, k: f64) -> f64 {
        k
    }

    fn is_generous_bound(&self) -> bool {
        true
    }
}

/// Amdahl's-law scaling: a `serial` fraction of the work does not
/// parallelize, capping the gain at `1/serial`. A *realistic* (not
/// generous) model — useful for quantifying how optimistic ideal scaling
/// is (the `xa-scaling` ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amdahl {
    /// Non-parallelizable fraction of the work, in `[0, 1)`.
    pub serial: f64,
}

impl Amdahl {
    /// Creates an Amdahl model; panics unless `0 <= serial < 1`.
    pub fn new(serial: f64) -> Self {
        assert!((0.0..1.0).contains(&serial), "serial fraction must be in [0,1), got {serial}");
        Amdahl { serial }
    }
}

impl ScalingModel for Amdahl {
    fn name(&self) -> &'static str {
        "Amdahl"
    }

    fn perf_factor(&self, k: f64) -> f64 {
        1.0 / (self.serial + (1.0 - self.serial) / k)
    }

    fn max_gain(&self) -> Option<f64> {
        // lint: allow(N1, reason = "exact-zero sentinel: a zero serial fraction is set by literal, meaning perfectly parallel")
        if self.serial == 0.0 {
            None
        } else {
            Some(1.0 / self.serial)
        }
    }
}

/// Linear scaling up to a hard capacity cap (e.g. a link or PCIe
/// bottleneck), flat beyond it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturating {
    /// Maximum performance gain over the base point.
    pub max_factor: f64,
}

impl Saturating {
    /// Creates a saturating model; panics unless `max_factor >= 1`.
    pub fn new(max_factor: f64) -> Self {
        assert!(max_factor >= 1.0, "max factor must be >= 1, got {max_factor}");
        Saturating { max_factor }
    }
}

impl ScalingModel for Saturating {
    fn name(&self) -> &'static str {
        "saturating"
    }

    fn perf_factor(&self, k: f64) -> f64 {
        k.min(self.max_factor)
    }

    fn max_gain(&self) -> Option<f64> {
        Some(self.max_factor)
    }
}

/// A scaling curve interpolated from *measured* replication points
/// (Principle 5: actually provisioning the baseline at higher scale).
///
/// Samples are `(k, perf_factor, cost_factor)` triples relative to the
/// base point at `k = 1`; between samples the curve is piecewise-linear,
/// and it is clamped at the last sample (no extrapolated optimism).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCurve {
    samples: Vec<(f64, f64, f64)>,
}

impl MeasuredCurve {
    /// Builds a curve from `(k, perf_factor, cost_factor)` samples.
    ///
    /// # Panics
    /// If fewer than one sample is given, samples are not strictly
    /// increasing in `k`, or the first sample is not `(1, 1, 1)`.
    pub fn from_samples(samples: Vec<(f64, f64, f64)>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let first = samples[0];
        assert!(
            (first.0 - 1.0).abs() < 1e-9
                && (first.1 - 1.0).abs() < 1e-9
                && (first.2 - 1.0).abs() < 1e-9,
            "first sample must be (1, 1, 1), got {first:?}"
        );
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0, "samples must be strictly increasing in k");
            assert!(w[0].1 <= w[1].1, "perf factors must be non-decreasing");
            assert!(w[0].2 <= w[1].2, "cost factors must be non-decreasing");
        }
        MeasuredCurve { samples }
    }

    fn interpolate(&self, k: f64, select: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        let first = &self.samples[0];
        if k <= first.0 {
            // Below the measured range: scale down linearly from the base
            // point (k < 1 means a fractional deployment).
            return select(first) * k / first.0;
        }
        for w in self.samples.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if k <= b.0 {
                let t = (k - a.0) / (b.0 - a.0);
                return select(a) + t * (select(b) - select(a));
            }
        }
        // Clamp at the last measured sample: we refuse to invent
        // performance beyond what was measured. (`unwrap_or` is the
        // panic-free spelling; the constructor guarantees samples.)
        select(self.samples.last().unwrap_or(first))
    }
}

impl ScalingModel for MeasuredCurve {
    fn name(&self) -> &'static str {
        "measured"
    }

    fn perf_factor(&self, k: f64) -> f64 {
        self.interpolate(k, |s| s.1)
    }

    fn cost_factor(&self, k: f64) -> f64 {
        self.interpolate(k, |s| s.2)
    }

    fn max_gain(&self) -> Option<f64> {
        self.samples.last().map(|s| s.1)
    }

    fn max_cost_factor(&self) -> Option<f64> {
        self.samples.last().map(|s| s.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::{lp, tp};
    use apples_metrics::perf::PerfMetric;
    use apples_metrics::quantity::ratio;
    use apples_metrics::CostMetric;

    #[test]
    fn ideal_linear_scales_both_axes() {
        // §4.2.1: 35 Gbps/100 W scaled to match 100 Gbps costs 286 W.
        let b = tp(35.0, 100.0);
        let a = tp(100.0, 200.0);
        let (k, scaled) = IdealLinear.scale_to_match_perf(&b, &a).unwrap();
        assert!((k - 100.0 / 35.0).abs() < 1e-9);
        assert!((scaled.perf().quantity().value() - 100e9).abs() < 1.0);
        assert!((scaled.cost().quantity().value() - 285.714).abs() < 0.001);
    }

    #[test]
    fn ideal_linear_matches_cost_anchor() {
        // §4.2.1: at 200 W the ideally scaled baseline reaches 70 Gbps.
        let b = tp(35.0, 100.0);
        let a = tp(100.0, 200.0);
        let (k, scaled) = IdealLinear.scale_to_match_cost(&b, &a).unwrap();
        assert!((k - 2.0).abs() < 1e-9);
        assert!((scaled.perf().quantity().value() - 70e9).abs() < 1.0);
        assert!((scaled.cost().quantity().value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_caps_gain_at_inverse_serial() {
        let m = Amdahl::new(0.1);
        assert_eq!(m.max_gain(), Some(10.0));
        assert!((m.perf_factor(1.0) - 1.0).abs() < 1e-12);
        assert!(m.perf_factor(1e9) < 10.0);
        let b = tp(10.0, 50.0);
        let a = tp(200.0, 1000.0); // 20x gain > 10x ceiling
        let err = m.scale_to_match_perf(&b, &a).unwrap_err();
        assert!(matches!(err, ScalingError::TargetUnreachable { .. }));
    }

    #[test]
    fn amdahl_solver_inverts_the_factor() {
        let m = Amdahl::new(0.05);
        let k = m.factor_for_perf_gain(4.0).unwrap();
        assert!((m.perf_factor(k) - 4.0).abs() < 1e-6, "k={k}");
    }

    #[test]
    fn amdahl_zero_serial_is_ideal() {
        let m = Amdahl::new(0.0);
        assert_eq!(m.max_gain(), None);
        assert!((m.perf_factor(7.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_clamps() {
        let m = Saturating::new(3.0);
        assert_eq!(m.perf_factor(2.0), 2.0);
        assert_eq!(m.perf_factor(5.0), 3.0);
        assert!(m.factor_for_perf_gain(3.5).is_err());
    }

    #[test]
    fn measured_curve_interpolates_and_clamps() {
        // §4.2's measured scaling: 1 core = 10 Gbps/50 W, 2 cores =
        // 18 Gbps/80 W (perf factor 1.8, cost factor 1.6).
        let c = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (2.0, 1.8, 1.6)]);
        assert!((c.perf_factor(1.5) - 1.4).abs() < 1e-9);
        assert!((c.cost_factor(1.5) - 1.3).abs() < 1e-9);
        // Clamped beyond the last measurement.
        assert!((c.perf_factor(4.0) - 1.8).abs() < 1e-9);
        assert_eq!(c.max_gain(), Some(1.8));
    }

    #[test]
    fn measured_curve_reproduces_section_42() {
        let b = tp(10.0, 50.0);
        let c = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (2.0, 1.8, 1.6)]);
        let scaled = c.scale(&b, 2.0).unwrap();
        assert!((scaled.perf().quantity().value() - 18e9).abs() < 1.0);
        assert!((scaled.cost().quantity().value() - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "first sample")]
    fn measured_curve_requires_unit_base() {
        let _ = MeasuredCurve::from_samples(vec![(2.0, 1.8, 1.6)]);
    }

    #[test]
    fn scaling_rejects_latency() {
        // §4.3 / pitfall 3: latency does not scale.
        let b = lp(10.0, 100.0);
        let err = IdealLinear.scale(&b, 2.0).unwrap_err();
        assert!(matches!(err, ScalingError::NonScalableMetric { .. }));
    }

    #[test]
    fn scaling_rejects_loss_rate_as_non_multiplicative() {
        let p = OperatingPoint::new(
            PerfMetric::loss_rate().value(ratio(0.01)),
            CostMetric::power_draw().value(apples_metrics::quantity::watts(50.0)),
        );
        let err = IdealLinear.scale(&p, 2.0).unwrap_err();
        assert!(matches!(err, ScalingError::NonMultiplicativeMetric { .. }));
    }

    #[test]
    fn invalid_factors_rejected() {
        let b = tp(10.0, 50.0);
        for k in [0.0, -1.0, f64::INFINITY] {
            assert!(matches!(IdealLinear.scale(&b, k), Err(ScalingError::InvalidFactor { .. })));
        }
    }

    #[test]
    fn downscaling_is_permitted_for_ideal() {
        // §4.3 mentions downscaling targets; ideal linear handles k < 1.
        let b = tp(10.0, 50.0);
        let scaled = IdealLinear.scale(&b, 0.5).unwrap();
        assert!((scaled.perf().quantity().value() - 5e9).abs() < 1.0);
        assert!((scaled.cost().quantity().value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn cost_coverage_guard_fires_for_partial_hosts() {
        assert!(CostCoverage::FullSystem.check().is_ok());
        assert!(CostCoverage::PartialHost { used: 8.0, paid_for: 8.0 }.check().is_ok());
        let err = CostCoverage::PartialHost { used: 1.0, paid_for: 8.0 }.check().unwrap_err();
        assert!(matches!(err, ScalingError::PartialCostCoverage { .. }));
        assert!(err.to_string().contains("not generous"));
    }

    #[test]
    fn only_ideal_is_a_generous_bound() {
        assert!(IdealLinear.is_generous_bound());
        assert!(!Amdahl::new(0.1).is_generous_bound());
        assert!(!Saturating::new(2.0).is_generous_bound());
        assert!(!MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0)]).is_generous_bound());
    }

    #[test]
    fn error_messages_are_actionable() {
        let e = ScalingError::NonScalableMetric { metric: "latency" };
        assert!(e.to_string().contains("principle 7"));
        let e = ScalingError::TargetUnreachable { requested_gain: 20.0, max_gain: Some(10.0) };
        assert!(e.to_string().contains("ceiling"));
    }
}
