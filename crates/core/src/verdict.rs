//! Comparison verdicts: what an evaluation is allowed to claim.
//!
//! The paper's central worry is unsupported superiority claims. A
//! [`Verdict`] is the strongest statement the methodology licenses for a
//! given pair of measurements — and it is explicit about *why* weaker
//! statements are all that is available in the incomparable cases.

use crate::dominance::Relation;
use crate::point::OperatingPoint;
use crate::regime::{Regime, UnidimensionalClaim};
use std::fmt;

/// Which axis of the proposed system a scaled baseline was matched to
/// (the two anchors of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorKind {
    /// Baseline scaled until its performance equals the proposed
    /// system's; compare costs there.
    MatchPerf,
    /// Baseline scaled until its cost equals the proposed system's;
    /// compare performance there.
    MatchCost,
}

impl fmt::Display for AnchorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnchorKind::MatchPerf => f.write_str("at equal performance"),
            AnchorKind::MatchCost => f.write_str("at equal cost"),
        }
    }
}

/// One scaled-baseline anchor point and the relation of the proposed
/// system to it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledAnchor {
    /// Which axis was matched.
    pub kind: AnchorKind,
    /// The replication factor applied to the baseline.
    pub factor: f64,
    /// The baseline's operating point after scaling.
    pub scaled_baseline: OperatingPoint,
    /// Relation of the *proposed* system to the scaled baseline.
    pub relation: Relation,
}

impl fmt::Display for ScaledAnchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline x{:.3} -> {}; proposed {} it",
            self.kind, self.factor, self.scaled_baseline, self.relation
        )
    }
}

/// Outcome of a scaled comparison across its anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaledOutcome {
    /// The proposed system is at least as good at every anchor, strictly
    /// better at one — an objective claim at the proposed system's
    /// operating regime (safe even under a generous baseline bound).
    ProposedPrevails,
    /// The scaled baseline prevails. `objective` is true only when the
    /// scaling model was *measured* (Principle 5): a generously scaled
    /// baseline beating the proposed system does not license the reverse
    /// claim, it only blocks the forward one (Principle 6 pitfall 1).
    BaselinePrevails {
        /// Whether "baseline is superior" is itself an objective claim.
        objective: bool,
    },
    /// The anchors disagree (possible under non-linear measured models);
    /// no single claim covers the region.
    Mixed,
}

impl fmt::Display for ScaledOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaledOutcome::ProposedPrevails => {
                f.write_str("proposed system prevails at its operating regime")
            }
            ScaledOutcome::BaselinePrevails { objective: true } => {
                f.write_str("scaled baseline objectively prevails")
            }
            ScaledOutcome::BaselinePrevails { objective: false } => f.write_str(
                "generously scaled baseline prevails: no claim for the proposed system \
                 (and none against it either — the bound is generous)",
            ),
            ScaledOutcome::Mixed => {
                f.write_str("anchors disagree; report both and refrain from a single claim")
            }
        }
    }
}

/// The strongest methodology-sanctioned statement about a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The systems share a regime; the claim is unidimensional
    /// (Principle 4, Figure 1).
    SameRegime {
        /// The detected regime.
        regime: Regime,
        /// The extracted one-dimensional claim.
        claim: UnidimensionalClaim,
    },
    /// The proposed system Pareto-dominates the baseline outright.
    ProposedDominates,
    /// The baseline Pareto-dominates the proposed system — an honest
    /// negative result.
    BaselineDominates,
    /// The baseline was scaled into the proposed system's comparison
    /// region (Principles 5/6) and compared there.
    Scaled {
        /// Scaling model name.
        model: &'static str,
        /// Whether the model is a generous upper bound (ideal scaling).
        generous: bool,
        /// The Figure 3 anchors that were reachable.
        anchors: Vec<ScaledAnchor>,
        /// Anchors that could not be reached (model ceilings), and other
        /// remarks a report should carry.
        notes: Vec<String>,
        /// The aggregated outcome.
        outcome: ScaledOutcome,
    },
    /// No objective claim: the systems are in different regimes and the
    /// baseline could not be (or may not be) brought into the comparison
    /// region. Carries the paper's §4.3 reporting guidance.
    Incomparable {
        /// Why the comparison could not be closed (non-scalable metric,
        /// unreachable target, no scaling model supplied, …).
        reason: String,
    },
}

impl Verdict {
    /// True when the verdict licenses the claim "the proposed system is
    /// superior at the compared regime".
    pub fn favors_proposed(&self) -> bool {
        match self {
            Verdict::ProposedDominates => true,
            Verdict::Scaled { outcome: ScaledOutcome::ProposedPrevails, .. } => true,
            Verdict::SameRegime { claim, .. } => match claim {
                UnidimensionalClaim::PerfImprovement { factor } => *factor > 1.0,
                UnidimensionalClaim::CostChange { factor } => *factor < 1.0,
            },
            _ => false,
        }
    }

    /// True when no superiority claim in either direction is licensed.
    pub fn is_inconclusive(&self) -> bool {
        matches!(
            self,
            Verdict::Incomparable { .. }
                | Verdict::Scaled { outcome: ScaledOutcome::Mixed, .. }
                | Verdict::Scaled {
                    outcome: ScaledOutcome::BaselinePrevails { objective: false },
                    ..
                }
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::SameRegime { regime, claim } => write!(f, "{regime}: {claim}"),
            Verdict::ProposedDominates => {
                f.write_str("proposed system Pareto-dominates the baseline")
            }
            Verdict::BaselineDominates => {
                f.write_str("baseline Pareto-dominates the proposed system")
            }
            Verdict::Scaled { model, generous, outcome, .. } => {
                let bound = if *generous { "a generous bound" } else { "a realistic model" };
                write!(f, "after {model} scaling of the baseline ({bound}): {outcome}")
            }
            Verdict::Incomparable { reason } => write!(
                f,
                "fundamentally incomparable ({reason}); report both operating points and argue \
                 why the proposed regime is desirable (\u{a7}4.3)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::tp;

    #[test]
    fn favors_proposed_cases() {
        assert!(Verdict::ProposedDominates.favors_proposed());
        assert!(!Verdict::BaselineDominates.favors_proposed());
        assert!(Verdict::SameRegime {
            regime: Regime::SameCost,
            claim: UnidimensionalClaim::PerfImprovement { factor: 1.5 },
        }
        .favors_proposed());
        assert!(!Verdict::SameRegime {
            regime: Regime::SameCost,
            claim: UnidimensionalClaim::PerfImprovement { factor: 0.8 },
        }
        .favors_proposed());
        assert!(Verdict::SameRegime {
            regime: Regime::SamePerf,
            claim: UnidimensionalClaim::CostChange { factor: 0.5 },
        }
        .favors_proposed());
    }

    #[test]
    fn generous_baseline_win_is_inconclusive() {
        let v = Verdict::Scaled {
            model: "ideal linear",
            generous: true,
            anchors: vec![],
            notes: vec![],
            outcome: ScaledOutcome::BaselinePrevails { objective: false },
        };
        assert!(v.is_inconclusive());
        assert!(!v.favors_proposed());
        assert!(v.to_string().contains("generous"));
    }

    #[test]
    fn measured_baseline_win_is_conclusive_against() {
        let v = Verdict::Scaled {
            model: "measured",
            generous: false,
            anchors: vec![],
            notes: vec![],
            outcome: ScaledOutcome::BaselinePrevails { objective: true },
        };
        assert!(!v.is_inconclusive());
        assert!(!v.favors_proposed());
    }

    #[test]
    fn incomparable_display_carries_guidance() {
        let v = Verdict::Incomparable { reason: "latency does not scale".to_owned() };
        let s = v.to_string();
        assert!(s.contains("report both"));
        assert!(s.contains("desirable"));
        assert!(v.is_inconclusive());
    }

    #[test]
    fn anchor_display_mentions_factor_and_relation() {
        let a = ScaledAnchor {
            kind: AnchorKind::MatchPerf,
            factor: 2.857,
            scaled_baseline: tp(100.0, 285.7),
            relation: Relation::Dominates,
        };
        let s = a.to_string();
        assert!(s.contains("x2.857"));
        assert!(s.contains("at equal performance"));
    }
}
