//! Report rendering: human-readable evaluation write-ups and a tiny CSV
//! emitter for machine-readable experiment outputs.
//!
//! The paper asks evaluations to *report* — both axes, the metric's
//! principle compliance, the scaling assumptions, and the verdict — so
//! that future papers can reuse the numbers as baselines. [`render_text`]
//! produces that write-up; [`Csv`] serializes the raw series.

use crate::evaluate::EvaluationResult;
use crate::verdict::Verdict;

/// Renders an evaluation result as a plain-text report.
pub fn render_text(r: &EvaluationResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("## Fair comparison: {} vs {}\n", r.proposed.name(), r.baseline.name()));
    out.push_str(&format!("proposed : {}\n", r.proposed.point()));
    out.push_str(&format!("baseline : {}\n", r.baseline.point()));

    let cost_metric = r.proposed.point().cost().metric();
    out.push_str(&format!("cost metric: {}", cost_metric));
    if let Some(caveat) = cost_metric.caveat() {
        out.push_str(&format!(" (caveat: {caveat})"));
    }
    out.push('\n');

    if r.violations.is_empty() {
        out.push_str("principles 1-3: satisfied for these systems\n");
    } else {
        out.push_str("principle violations:\n");
        for v in &r.violations {
            out.push_str(&format!("  - {v}\n"));
        }
    }

    out.push_str(&format!("operating regime: {}\n", r.regime));
    out.push_str(&format!("pareto relation : proposed {} baseline\n", r.relation));

    if let Verdict::Scaled { anchors, .. } = &r.verdict {
        out.push_str("scaled anchors:\n");
        for a in anchors {
            out.push_str(&format!("  - {a}\n"));
        }
    }

    out.push_str(&format!("verdict: {}\n", r.verdict));
    out
}

/// Renders an evaluation result as GitHub-flavored markdown, suitable
/// for pasting into a paper's artifact appendix or a PR description.
pub fn render_markdown(r: &EvaluationResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Fair comparison: `{}` vs `{}`\n\n",
        r.proposed.name(),
        r.baseline.name()
    ));
    out.push_str("| | performance | cost |\n|---|---|---|\n");
    out.push_str(&format!(
        "| proposed | {} | {} |\n",
        r.proposed.point().perf(),
        r.proposed.point().cost()
    ));
    out.push_str(&format!(
        "| baseline | {} | {} |\n\n",
        r.baseline.point().perf(),
        r.baseline.point().cost()
    ));

    if r.violations.is_empty() {
        out.push_str("- cost metric satisfies principles 1–3 for these systems\n");
    } else {
        out.push_str("- **principle violations:**\n");
        for v in &r.violations {
            out.push_str(&format!("  - {v}\n"));
        }
    }
    out.push_str(&format!("- operating regime: {}\n", r.regime));
    out.push_str(&format!("- Pareto relation: proposed {} baseline\n", r.relation));
    if let Verdict::Scaled { anchors, notes, .. } = &r.verdict {
        for a in anchors {
            out.push_str(&format!("- anchor {a}\n"));
        }
        for n in notes {
            out.push_str(&format!("- note: {n}\n"));
        }
    }
    out.push_str(&format!("\n**Verdict:** {}\n", r.verdict));
    out
}

/// A minimal CSV table builder (quotes fields containing separators, per
/// RFC 4180's essentials). Kept tiny on purpose — experiment outputs are
/// simple numeric series.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Csv { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; panics if the width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Appends a row of floats formatted with 6 significant digits.
    pub fn row_f64(&mut self, cells: impl IntoIterator<Item = f64>) -> &mut Self {
        self.row(cells.into_iter().map(|v| format!("{v:.6}")))
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn write_row(out: &mut String, cells: &[String]) {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if cell.contains([',', '"', '\n']) {
                out.push('"');
                out.push_str(&cell.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    }
}

impl std::fmt::Display for Csv {
    /// Serializes the table (header row, then data rows).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        Self::write_row(&mut out, &self.header);
        for r in &self.rows {
            Self::write_row(&mut out, r);
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluation;
    use crate::point::test_support::tp;
    use crate::point::System;
    use crate::scaling::IdealLinear;
    use apples_metrics::cost::DeviceClass;

    fn result() -> EvaluationResult {
        Evaluation::new(
            System::new(
                "fw+switch",
                vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
                tp(100.0, 200.0),
            ),
            System::new("fw", vec![DeviceClass::Cpu, DeviceClass::Nic], tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&IdealLinear)
        .run()
    }

    #[test]
    fn text_report_contains_all_sections() {
        let s = render_text(&result());
        for needle in [
            "fw+switch",
            "operating regime",
            "pareto relation",
            "scaled anchors",
            "verdict",
            "principles 1-3: satisfied",
        ] {
            assert!(s.contains(needle), "missing '{needle}' in:\n{s}");
        }
    }

    #[test]
    fn text_report_lists_violations_when_present() {
        use apples_metrics::cost::CostMetric;
        use apples_metrics::perf::PerfMetric;
        use apples_metrics::quantity::{cores, gbps};
        let p = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(20.0)),
            CostMetric::cpu_cores().value(cores(2.0)),
        );
        let b = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(10.0)),
            CostMetric::cpu_cores().value(cores(4.0)),
        );
        let r = Evaluation::new(
            System::new("accel", vec![DeviceClass::Cpu, DeviceClass::Fpga], p),
            System::new("cpu", vec![DeviceClass::Cpu], b),
        )
        .run();
        let s = render_text(&r);
        assert!(s.contains("principle violations"), "{s}");
        assert!(s.contains("principle 3 violation"), "{s}");
    }

    #[test]
    fn markdown_report_contains_table_and_verdict() {
        let s = render_markdown(&result());
        assert!(s.contains("| proposed |"), "{s}");
        assert!(s.contains("| baseline |"), "{s}");
        assert!(s.contains("**Verdict:**"), "{s}");
        assert!(s.contains("anchor at equal performance"), "{s}");
        assert!(s.contains("principles 1–3"), "{s}");
    }

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Csv::new(["k", "gbps", "watts"]);
        t.row_f64([1.0, 10.0, 50.0]);
        t.row_f64([2.0, 18.0, 80.0]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "k,gbps,watts");
        assert!(lines[1].starts_with("1.000000,10.000000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_characters() {
        let mut t = Csv::new(["name", "note"]);
        t.row(["a,b", "say \"hi\""]);
        let s = t.to_string();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn csv_rejects_ragged_rows() {
        let mut t = Csv::new(["a", "b"]);
        t.row(["only one"]);
    }
}
