//! Digest plumbing: FNV-1a hashing and the typed [`CacheKey`].
//!
//! PR 5 scattered the provenance digests (seed, scheduler, fault spec,
//! config, toolchain, git rev) across ad-hoc strings; the experiment
//! store needs them as a first-class value it can canonicalize, hash,
//! persist inside an artifact footer, parse back, and *diff* — the diff
//! is what lets `xp all --explain` say which component invalidated a
//! cache entry instead of just "something changed". A key is an ordered
//! list of named string components; two keys are equivalent iff their
//! canonical encodings are byte-equal, and an entry's address is the
//! FNV-1a digest of that encoding.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64-bit hash rendered as 16 lowercase hex digits — the digest
/// format every provenance field and store address uses.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// An ordered, named set of cache-key components.
///
/// Component order is insertion order and is significant: the canonical
/// encoding (and therefore the digest) depends on it, which keeps key
/// derivation deterministic and makes `parse` a true inverse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheKey {
    components: Vec<(String, String)>,
}

/// One differing component between two keys (powers `--explain`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDiff {
    /// Component name.
    pub name: String,
    /// Value in the older key (`None` = component is new).
    pub old: Option<String>,
    /// Value in the newer key (`None` = component was removed).
    pub new: Option<String>,
}

impl KeyDiff {
    /// Compact `name: old -> new` rendering.
    pub fn render(&self) -> String {
        let fmt = |v: &Option<String>| v.clone().unwrap_or_else(|| "(absent)".to_owned());
        format!("{}: {} -> {}", self.name, fmt(&self.old), fmt(&self.new))
    }
}

/// Escapes `%`, `=`, `;`, and newlines so names/values round-trip
/// through the `name=value;...` canonical encoding.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '=' => out.push_str("%3d"),
            ';' => out.push_str("%3b"),
            '\n' => out.push_str("%0a"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        match hex.as_str() {
            "25" => out.push('%'),
            "3d" => out.push('='),
            "3b" => out.push(';'),
            "0a" => out.push('\n'),
            other => return Err(format!("bad escape %{other}")),
        }
    }
    Ok(out)
}

impl CacheKey {
    /// An empty key.
    pub fn new() -> CacheKey {
        CacheKey { components: Vec::new() }
    }

    /// Builder: appends a component, or replaces an existing one with
    /// the same name in place (order is preserved).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> CacheKey {
        self.push(name, value);
        self
    }

    /// In-place variant of [`CacheKey::with`].
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let (name, value) = (name.into(), value.into());
        match self.components.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.components.push((name, value)),
        }
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&str> {
        self.components.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All components, in insertion order.
    pub fn components(&self) -> &[(String, String)] {
        &self.components
    }

    /// The canonical `name=value;name=value` encoding the digest is
    /// computed over (names and values escaped).
    pub fn canonical(&self) -> String {
        let parts: Vec<String> =
            self.components.iter().map(|(n, v)| format!("{}={}", escape(n), escape(v))).collect();
        parts.join(";")
    }

    /// Parses a canonical encoding back into a key.
    pub fn parse(src: &str) -> Result<CacheKey, String> {
        let mut key = CacheKey::new();
        if src.is_empty() {
            return Ok(key);
        }
        for part in src.split(';') {
            let (n, v) =
                part.split_once('=').ok_or_else(|| format!("component without '=': {part}"))?;
            key.components.push((unescape(n)?, unescape(v)?));
        }
        Ok(key)
    }

    /// 16-hex-digit FNV-1a digest of the canonical encoding — the
    /// content address an artifact is stored under.
    pub fn digest(&self) -> String {
        fnv1a_hex(self.canonical().as_bytes())
    }

    /// Component-level diff from `older` to `self`, in this key's
    /// component order (removed components last). Empty iff the keys
    /// are equivalent.
    pub fn diff(&self, older: &CacheKey) -> Vec<KeyDiff> {
        let mut out = Vec::new();
        for (name, new_v) in &self.components {
            match older.component(name) {
                Some(old_v) if old_v == new_v => {}
                old => out.push(KeyDiff {
                    name: name.clone(),
                    old: old.map(str::to_owned),
                    new: Some(new_v.clone()),
                }),
            }
        }
        for (name, old_v) in &older.components {
            if self.component(name).is_none() {
                out.push(KeyDiff { name: name.clone(), old: Some(old_v.clone()), new: None });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_hold() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn canonical_round_trips_including_escapes() {
        let key = CacheKey::new()
            .with("seed", "1")
            .with("toolchain", "rustc 1.75; host=x86")
            .with("odd%name", "a=b\nc");
        let parsed = CacheKey::parse(&key.canonical()).expect("round trip");
        assert_eq!(parsed, key);
        assert_eq!(parsed.digest(), key.digest());
        assert_eq!(parsed.component("toolchain"), Some("rustc 1.75; host=x86"));
    }

    #[test]
    fn with_replaces_in_place_preserving_order() {
        let key = CacheKey::new().with("a", "1").with("b", "2").with("a", "3");
        assert_eq!(key.components().len(), 2);
        assert_eq!(key.component("a"), Some("3"));
        assert_eq!(key.canonical(), "a=3;b=2");
    }

    #[test]
    fn digest_depends_on_order_and_value() {
        let ab = CacheKey::new().with("a", "1").with("b", "2");
        let ba = CacheKey::new().with("b", "2").with("a", "1");
        assert_ne!(ab.digest(), ba.digest(), "order is significant");
        assert_ne!(ab.digest(), ab.clone().with("a", "9").digest());
        assert_eq!(ab.digest(), CacheKey::new().with("a", "1").with("b", "2").digest());
    }

    #[test]
    fn diff_reports_changed_added_and_removed() {
        let old = CacheKey::new().with("seed", "1").with("fault", "none").with("gone", "x");
        let new = CacheKey::new().with("seed", "1").with("fault", "abcd").with("fresh", "y");
        let diff = new.diff(&old);
        let names: Vec<&str> = diff.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["fault", "fresh", "gone"]);
        assert_eq!(diff[0].old.as_deref(), Some("none"));
        assert_eq!(diff[0].new.as_deref(), Some("abcd"));
        assert!(diff[0].render().contains("fault: none -> abcd"));
        assert!(new.diff(&new).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_encodings() {
        assert!(CacheKey::parse("novalue").is_err());
        assert!(CacheKey::parse("a=%zz").is_err());
        assert!(CacheKey::parse("").expect("empty is the empty key").components().is_empty());
    }
}
