//! Non-scalable systems and metrics (§4.3, Principle 7).
//!
//! When the baseline cannot be scaled (or the performance metric does not
//! scale — latency, JFI), there are exactly two cases:
//!
//! - the baseline is already in the proposed system's comparison region →
//!   an objective claim is possible;
//! - it is not → the systems are *fundamentally incomparable*; report
//!   both points anyway (so readers can match the regime to their needs
//!   and future papers can use the numbers as baselines) and argue why
//!   the proposed operating regime is desirable.

use crate::dominance::{relate, Relation};
use crate::point::OperatingPoint;
use std::fmt;

/// The outcome of a Principle 7 (non-scalable) comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparability {
    /// The baseline is in the proposed system's comparison region; the
    /// contained relation is from the *proposed* system's perspective.
    Comparable(Relation),
    /// Neither system dominates: no objective superiority claim exists.
    /// Both operating points are carried so that a report can still
    /// publish them, per the paper's guidance.
    Incomparable {
        /// The proposed system's operating point.
        proposed: Box<OperatingPoint>,
        /// The baseline's operating point.
        baseline: Box<OperatingPoint>,
    },
}

impl Comparability {
    /// True when an objective claim can be made.
    pub fn is_comparable(&self) -> bool {
        matches!(self, Comparability::Comparable(_))
    }
}

impl fmt::Display for Comparability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comparability::Comparable(rel) => write!(f, "comparable: proposed {rel} baseline"),
            Comparability::Incomparable { proposed, baseline } => write!(
                f,
                "fundamentally incomparable; report both: proposed {proposed}, baseline {baseline}. \
                 Make a case for why the proposed operating regime is desirable"
            ),
        }
    }
}

/// Applies Principle 7: compares a proposed system against a baseline
/// that cannot be scaled into the comparison region.
///
/// # Examples
///
/// The two §4.3 latency cases:
///
/// ```
/// use apples_core::{compare_nonscalable, OperatingPoint};
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{micros, watts};
///
/// let lp = |us, w| OperatingPoint::new(
///     PerfMetric::latency().value(micros(us)),
///     CostMetric::power_draw().value(watts(w)),
/// );
/// // 5 us / 100 W dominates 10 us / 300 W: comparable.
/// assert!(compare_nonscalable(&lp(5.0, 100.0), &lp(10.0, 300.0)).is_comparable());
/// // 5 us / 200 W vs 8 us / 100 W: fundamentally incomparable.
/// assert!(!compare_nonscalable(&lp(5.0, 200.0), &lp(8.0, 100.0)).is_comparable());
/// ```
pub fn compare_nonscalable(proposed: &OperatingPoint, baseline: &OperatingPoint) -> Comparability {
    match relate(proposed, baseline) {
        Relation::Incomparable => Comparability::Incomparable {
            proposed: Box::new(proposed.clone()),
            baseline: Box::new(baseline.clone()),
        },
        rel => Comparability::Comparable(rel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::lp;

    #[test]
    fn section_43_comparable_case() {
        // Proposed: 5 us at 100 W; baseline: 10 us at 300 W.
        // "the proposed system is arguably superior as it improves both
        // performance and cost."
        let out = compare_nonscalable(&lp(5.0, 100.0), &lp(10.0, 300.0));
        assert_eq!(out, Comparability::Comparable(Relation::Dominates));
        assert!(out.is_comparable());
    }

    #[test]
    fn section_43_incomparable_case() {
        // Proposed: 5 us at 200 W; baseline: 8 us at 100 W.
        let out = compare_nonscalable(&lp(5.0, 200.0), &lp(8.0, 100.0));
        assert!(!out.is_comparable());
        match &out {
            Comparability::Incomparable { proposed, baseline } => {
                assert_eq!(proposed.as_ref(), &lp(5.0, 200.0));
                assert_eq!(baseline.as_ref(), &lp(8.0, 100.0));
            }
            other => panic!("expected incomparable, got {other:?}"),
        }
        // The display carries the paper's reporting guidance.
        let s = out.to_string();
        assert!(s.contains("report both"), "{s}");
        assert!(s.contains("desirable"), "{s}");
    }

    #[test]
    fn dominated_proposed_is_still_comparable() {
        // An honest evaluation can also conclude the baseline wins.
        let out = compare_nonscalable(&lp(10.0, 300.0), &lp(5.0, 100.0));
        assert_eq!(out, Comparability::Comparable(Relation::DominatedBy));
    }

    #[test]
    fn equal_points_are_comparable() {
        let out = compare_nonscalable(&lp(5.0, 100.0), &lp(5.0, 100.0));
        assert_eq!(out, Comparability::Comparable(Relation::Equivalent));
    }
}
