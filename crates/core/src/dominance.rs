//! Pareto dominance and the comparison region (Figure 2, §4.2).
//!
//! A design Pareto-dominates another "if it improves performance without
//! sacrificing cost or it improves cost without sacrificing performance".
//! The *comparison region* of a design A comprises all designs that
//! dominate or are dominated by A; only inside that region can an
//! objective superiority claim be made.

use crate::point::OperatingPoint;
use std::fmt;

/// The relation of one operating point to another in the
/// performance–cost plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a` Pareto-dominates `b` (`a ≻ b`): at least as good on both axes,
    /// strictly better on at least one.
    Dominates,
    /// `b` Pareto-dominates `a` (`b ≻ a`).
    DominatedBy,
    /// Identical on both axes.
    Equivalent,
    /// Neither dominates: `a` is better on one axis, worse on the other.
    /// Outside each other's comparison region — no objective claim.
    Incomparable,
}

impl Relation {
    /// Flips the relation to be from the other point's perspective.
    pub fn invert(self) -> Relation {
        match self {
            Relation::Dominates => Relation::DominatedBy,
            Relation::DominatedBy => Relation::Dominates,
            other => other,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relation::Dominates => "dominates (\u{227b})",
            Relation::DominatedBy => "is dominated by (\u{227a})",
            Relation::Equivalent => "is equivalent to",
            Relation::Incomparable => "is incomparable with",
        };
        f.write_str(s)
    }
}

/// Computes the Pareto relation of `a` to `b`.
///
/// Both points must share axes (same perf metric and same cost metric);
/// the metrics' improvement directions are honoured, so the function is
/// correct for lower-is-better performance metrics such as latency too.
///
/// # Examples
///
/// The §4.2 firewall: faster but costlier is incomparable.
///
/// ```
/// use apples_core::{relate, OperatingPoint, Relation};
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{gbps, watts};
///
/// let smartnic = OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(20.0)),
///     CostMetric::power_draw().value(watts(70.0)),
/// );
/// let software = OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(10.0)),
///     CostMetric::power_draw().value(watts(50.0)),
/// );
/// assert_eq!(relate(&smartnic, &software), Relation::Incomparable);
/// ```
///
/// # Panics
/// If the points use different metrics.
pub fn relate(a: &OperatingPoint, b: &OperatingPoint) -> Relation {
    a.assert_same_axes(b);
    let perf_ge = a.perf().is_at_least_as_good_as(b.perf());
    let perf_le = b.perf().is_at_least_as_good_as(a.perf());
    let cost_ge = a.cost().is_at_least_as_good_as(b.cost());
    let cost_le = b.cost().is_at_least_as_good_as(a.cost());

    match (perf_ge && cost_ge, perf_le && cost_le) {
        (true, true) => Relation::Equivalent,
        (true, false) => Relation::Dominates,
        (false, true) => Relation::DominatedBy,
        (false, false) => Relation::Incomparable,
    }
}

/// True when `candidate` lies inside the comparison region of `anchor`
/// (Figure 2): it dominates the anchor, is dominated by it, or coincides
/// with it.
pub fn in_comparison_region(candidate: &OperatingPoint, anchor: &OperatingPoint) -> bool {
    relate(candidate, anchor) != Relation::Incomparable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::{lp, tp};

    #[test]
    fn strict_improvement_on_both_axes_dominates() {
        // 20 Gbps at 50 W dominates 10 Gbps at 70 W.
        assert_eq!(relate(&tp(20.0, 50.0), &tp(10.0, 70.0)), Relation::Dominates);
        assert_eq!(relate(&tp(10.0, 70.0), &tp(20.0, 50.0)), Relation::DominatedBy);
    }

    #[test]
    fn improvement_on_one_axis_with_tie_dominates() {
        assert_eq!(relate(&tp(20.0, 50.0), &tp(10.0, 50.0)), Relation::Dominates);
        assert_eq!(relate(&tp(10.0, 40.0), &tp(10.0, 50.0)), Relation::Dominates);
    }

    #[test]
    fn identical_points_are_equivalent() {
        assert_eq!(relate(&tp(10.0, 50.0), &tp(10.0, 50.0)), Relation::Equivalent);
    }

    #[test]
    fn perf_cost_tradeoff_is_incomparable() {
        // The §4.2 firewall: 20 Gbps/70 W vs 10 Gbps/50 W — the baseline
        // "has worse performance but better cost".
        assert_eq!(relate(&tp(20.0, 70.0), &tp(10.0, 50.0)), Relation::Incomparable);
        assert_eq!(relate(&tp(10.0, 50.0), &tp(20.0, 70.0)), Relation::Incomparable);
    }

    #[test]
    fn latency_direction_is_respected() {
        // 5 us at 100 W dominates 10 us at 300 W (§4.3's comparable case).
        assert_eq!(relate(&lp(5.0, 100.0), &lp(10.0, 300.0)), Relation::Dominates);
        // 5 us at 200 W vs 8 us at 100 W: incomparable (§4.3's other case).
        assert_eq!(relate(&lp(5.0, 200.0), &lp(8.0, 100.0)), Relation::Incomparable);
    }

    #[test]
    fn comparison_region_membership_matches_figure_2() {
        let a = tp(50.0, 100.0);
        // Up-left of A (better perf, lower cost): dominates A — in region.
        assert!(in_comparison_region(&tp(60.0, 90.0), &a));
        // Down-right (worse perf, higher cost): dominated — in region.
        assert!(in_comparison_region(&tp(40.0, 110.0), &a));
        // Up-right and down-left: the "?" quadrants — outside.
        assert!(!in_comparison_region(&tp(60.0, 110.0), &a));
        assert!(!in_comparison_region(&tp(40.0, 90.0), &a));
        // A itself is in its own region.
        assert!(in_comparison_region(&a, &a));
    }

    #[test]
    fn invert_is_an_involution() {
        for r in [
            Relation::Dominates,
            Relation::DominatedBy,
            Relation::Equivalent,
            Relation::Incomparable,
        ] {
            assert_eq!(r.invert().invert(), r);
        }
    }

    #[test]
    fn relation_is_antisymmetric() {
        let pairs = [
            (tp(20.0, 50.0), tp(10.0, 70.0)),
            (tp(10.0, 50.0), tp(20.0, 70.0)),
            (tp(10.0, 50.0), tp(10.0, 50.0)),
        ];
        for (a, b) in pairs {
            assert_eq!(relate(&a, &b), relate(&b, &a).invert());
        }
    }

    #[test]
    #[should_panic(expected = "different axes")]
    fn cross_axes_relation_rejected() {
        let _ = relate(&tp(10.0, 50.0), &lp(5.0, 50.0));
    }
}
