//! Multi-metric evaluation: one performance axis, several cost axes.
//!
//! §3.4 ends with "any cost metric that meets our three requirements can
//! be substituted" for power. Real evaluations often must report several
//! at once (watts *and* rack space *and* die area). A [`MultiPoint`]
//! carries them all; [`relate_multi`] lifts Pareto dominance to the full
//! vector, and [`evaluate_multi`] runs the per-axis analysis side by
//! side so a report can show where the conclusion is metric-sensitive —
//! which is itself a finding the paper wants surfaced, not averaged
//! away.

use crate::dominance::Relation;
use crate::evaluate::{Evaluation, EvaluationResult};
use crate::point::{OperatingPoint, System};
use crate::regime::Tolerance;
use apples_metrics::cost::CostValue;
use apples_metrics::cost::DeviceClass;
use apples_metrics::perf::PerfValue;

/// A performance measurement paired with costs under several metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPoint {
    perf: PerfValue,
    costs: Vec<CostValue>,
}

impl MultiPoint {
    /// Creates a multi-cost point.
    ///
    /// # Panics
    /// If `costs` is empty or contains two values of the same metric.
    pub fn new(perf: PerfValue, costs: Vec<CostValue>) -> Self {
        assert!(!costs.is_empty(), "need at least one cost metric");
        for (i, a) in costs.iter().enumerate() {
            for b in &costs[i + 1..] {
                assert_ne!(
                    a.metric().name(),
                    b.metric().name(),
                    "duplicate cost metric '{}'",
                    a.metric().name()
                );
            }
        }
        MultiPoint { perf, costs }
    }

    /// The performance coordinate.
    pub fn perf(&self) -> &PerfValue {
        &self.perf
    }

    /// The cost coordinates.
    pub fn costs(&self) -> &[CostValue] {
        &self.costs
    }

    /// Number of cost axes.
    pub fn cost_axes(&self) -> usize {
        self.costs.len()
    }

    /// Projects onto one cost axis as a 2-D operating point.
    pub fn project(&self, axis: usize) -> OperatingPoint {
        OperatingPoint::new(self.perf.clone(), self.costs[axis].clone())
    }

    fn assert_same_axes(&self, other: &MultiPoint) {
        assert_eq!(
            self.costs.len(),
            other.costs.len(),
            "multi-points have different numbers of cost axes"
        );
        for (a, b) in self.costs.iter().zip(&other.costs) {
            assert_eq!(
                a.metric(),
                b.metric(),
                "cost axes disagree: '{}' vs '{}'",
                a.metric().name(),
                b.metric().name()
            );
        }
        assert_eq!(self.perf.metric(), other.perf.metric(), "performance metrics differ");
    }
}

/// Pareto relation over the full (perf, cost…) vector: `a` dominates `b`
/// only when it is at least as good on *every* axis and strictly better
/// on at least one.
pub fn relate_multi(a: &MultiPoint, b: &MultiPoint) -> Relation {
    a.assert_same_axes(b);
    let mut at_least_as_good = a.perf.is_at_least_as_good_as(&b.perf);
    let mut at_most_as_good = b.perf.is_at_least_as_good_as(&a.perf);
    for (ca, cb) in a.costs.iter().zip(&b.costs) {
        at_least_as_good &= ca.is_at_least_as_good_as(cb);
        at_most_as_good &= cb.is_at_least_as_good_as(ca);
    }
    match (at_least_as_good, at_most_as_good) {
        (true, true) => Relation::Equivalent,
        (true, false) => Relation::Dominates,
        (false, true) => Relation::DominatedBy,
        (false, false) => Relation::Incomparable,
    }
}

/// One per-axis result inside a [`MultiResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct AxisResult {
    /// The cost metric's name.
    pub metric: &'static str,
    /// The full 2-D evaluation on this axis.
    pub result: EvaluationResult,
}

/// The outcome of a multi-metric evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiResult {
    /// Vector dominance over all axes at once.
    pub joint_relation: Relation,
    /// The per-axis 2-D evaluations.
    pub axes: Vec<AxisResult>,
}

impl MultiResult {
    /// True when every axis's verdict favors the proposed system —
    /// the only situation licensing an unqualified superiority claim
    /// across the reported metrics.
    pub fn unanimous_for_proposed(&self) -> bool {
        self.axes.iter().all(|a| a.result.verdict.favors_proposed())
    }

    /// Axes whose verdicts disagree with the first axis — the
    /// metric-sensitivity a report must surface.
    pub fn divergent_axes(&self) -> Vec<&'static str> {
        let Some(first) = self.axes.first() else {
            return Vec::new();
        };
        let lead = first.result.verdict.favors_proposed();
        self.axes
            .iter()
            .filter(|a| a.result.verdict.favors_proposed() != lead)
            .map(|a| a.metric)
            .collect()
    }
}

/// Runs the 2-D evaluation on every cost axis (no scaling — scaling
/// factors are not comparable across metrics; run a scaled
/// [`Evaluation`] per axis when needed) plus the joint vector relation.
pub fn evaluate_multi(
    name_proposed: &str,
    devices_proposed: &[DeviceClass],
    proposed: &MultiPoint,
    name_baseline: &str,
    devices_baseline: &[DeviceClass],
    baseline: &MultiPoint,
    tol: Tolerance,
) -> MultiResult {
    proposed.assert_same_axes(baseline);
    let joint_relation = relate_multi(proposed, baseline);
    let axes = (0..proposed.cost_axes())
        .map(|i| {
            let metric = proposed.costs()[i].metric().name();
            let result = Evaluation::new(
                System::new(name_proposed, devices_proposed.to_vec(), proposed.project(i)),
                System::new(name_baseline, devices_baseline.to_vec(), baseline.project(i)),
            )
            .with_tolerance(tol)
            .run();
            AxisResult { metric, result }
        })
        .collect();
    MultiResult { joint_relation, axes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_metrics::perf::PerfMetric;
    use apples_metrics::quantity::{gbps, rack_units, watts};
    use apples_metrics::CostMetric;

    fn mp(g: f64, w: f64, ru: f64) -> MultiPoint {
        MultiPoint::new(
            PerfMetric::throughput_bps().value(gbps(g)),
            vec![
                CostMetric::power_draw().value(watts(w)),
                CostMetric::rack_space().value(rack_units(ru)),
            ],
        )
    }

    #[test]
    fn vector_dominance_requires_every_axis() {
        // Better perf, better watts, equal rack: dominates.
        assert_eq!(relate_multi(&mp(20.0, 40.0, 1.0), &mp(10.0, 50.0, 1.0)), Relation::Dominates);
        // Better perf, better watts, worse rack: incomparable.
        assert_eq!(
            relate_multi(&mp(20.0, 40.0, 2.0), &mp(10.0, 50.0, 1.0)),
            Relation::Incomparable
        );
        assert_eq!(relate_multi(&mp(10.0, 50.0, 1.0), &mp(10.0, 50.0, 1.0)), Relation::Equivalent);
        assert_eq!(relate_multi(&mp(5.0, 60.0, 2.0), &mp(10.0, 50.0, 1.0)), Relation::DominatedBy);
    }

    #[test]
    fn projection_recovers_two_dimensional_points() {
        let p = mp(20.0, 40.0, 2.0);
        assert_eq!(p.project(0).cost().metric().name(), "power draw");
        assert_eq!(p.project(1).cost().metric().name(), "rack space");
        assert_eq!(p.cost_axes(), 2);
    }

    #[test]
    fn per_axis_verdicts_can_diverge() {
        // Proposed wins on watts (dominates on that axis) but occupies
        // an extra rack unit (incomparable there): metric-sensitive.
        let proposed = mp(20.0, 40.0, 2.0);
        let baseline = mp(10.0, 50.0, 1.0);
        let r = evaluate_multi(
            "p",
            &[DeviceClass::Cpu, DeviceClass::SmartNic],
            &proposed,
            "b",
            &[DeviceClass::Cpu],
            &baseline,
            Tolerance::default(),
        );
        assert_eq!(r.joint_relation, Relation::Incomparable);
        assert_eq!(r.axes.len(), 2);
        assert!(r.axes[0].result.verdict.favors_proposed(), "power axis dominates");
        assert!(!r.axes[1].result.verdict.favors_proposed(), "rack axis incomparable");
        assert!(!r.unanimous_for_proposed());
        assert_eq!(r.divergent_axes(), vec!["rack space"]);
    }

    #[test]
    fn unanimity_licenses_the_joint_claim() {
        let r = evaluate_multi(
            "p",
            &[DeviceClass::Cpu],
            &mp(20.0, 40.0, 0.5),
            "b",
            &[DeviceClass::Cpu],
            &mp(10.0, 50.0, 1.0),
            Tolerance::default(),
        );
        assert_eq!(r.joint_relation, Relation::Dominates);
        assert!(r.unanimous_for_proposed());
        assert!(r.divergent_axes().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cost metric")]
    fn duplicate_metrics_rejected() {
        let _ = MultiPoint::new(
            PerfMetric::throughput_bps().value(gbps(1.0)),
            vec![
                CostMetric::power_draw().value(watts(1.0)),
                CostMetric::power_draw().value(watts(2.0)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "cost axes disagree")]
    fn axis_order_must_match() {
        let a = MultiPoint::new(
            PerfMetric::throughput_bps().value(gbps(1.0)),
            vec![
                CostMetric::power_draw().value(watts(1.0)),
                CostMetric::rack_space().value(rack_units(1.0)),
            ],
        );
        let b = MultiPoint::new(
            PerfMetric::throughput_bps().value(gbps(1.0)),
            vec![
                CostMetric::rack_space().value(rack_units(1.0)),
                CostMetric::power_draw().value(watts(1.0)),
            ],
        );
        let _ = relate_multi(&a, &b);
    }

    #[test]
    #[should_panic(expected = "at least one cost metric")]
    fn empty_costs_rejected() {
        let _ = MultiPoint::new(PerfMetric::throughput_bps().value(gbps(1.0)), vec![]);
    }
}
