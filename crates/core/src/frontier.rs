//! Pareto frontiers over many operating points.
//!
//! The paper frames two-system comparisons, but its machinery generalizes
//! "when comparing larger numbers of systems" (§4). The frontier is the
//! set of designs not dominated by any other — the menu of defensible
//! choices a survey should present.

use crate::dominance::{relate, Relation};
use crate::point::OperatingPoint;

/// Returns the indices of the points on the Pareto frontier (not
/// dominated by any other point), in input order.
///
/// Duplicated (equivalent) points all stay on the frontier: dominance is
/// strict, so equals do not eliminate each other.
///
/// Complexity is O(n log n) via a sort on the cost axis followed by a
/// single sweep, rather than the naive O(n²) pairwise check.
///
/// # Examples
///
/// ```
/// use apples_core::{pareto_frontier, OperatingPoint};
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{gbps, watts};
///
/// let tp = |g, w| OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(g)),
///     CostMetric::power_draw().value(watts(w)),
/// );
/// let designs = vec![
///     tp(10.0, 50.0),  // cheap and slow: on the frontier
///     tp(30.0, 90.0),  // fast and costly: on the frontier
///     tp(9.0, 60.0),   // dominated by the first
/// ];
/// assert_eq!(pareto_frontier(&designs), vec![0, 1]);
/// ```
pub fn pareto_frontier(points: &[OperatingPoint]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    for p in &points[1..] {
        points[0].assert_same_axes(p);
    }

    // Sort by cost ascending (cheapest first); among equal costs, best
    // performance first so the sweep sees the strongest candidate first.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        let a = &points[i];
        let b = &points[j];
        let cost_cmp =
            // lint: allow(P1, reason = "invariant: all points share axes, validated by assert_same_axes at frontier entry")
            a.cost().quantity().partial_cmp_checked(b.cost().quantity()).expect("same axes");
        cost_cmp.then_with(|| {
            // Better perf first.
            if a.perf().is_better_than(b.perf()) {
                std::cmp::Ordering::Less
            } else if b.perf().is_better_than(a.perf()) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        })
    });

    // Sweep: a point is dominated iff some cheaper-or-equal point has
    // better-or-equal performance (with at least one strict). Track the
    // best performance seen so far; equal-cost ties need the pairwise
    // check against the current best to handle exact duplicates.
    let mut frontier = Vec::new();
    let mut best_so_far: Option<usize> = None;
    for &i in &order {
        let dominated = match best_so_far {
            None => false,
            Some(j) => relate(&points[j], &points[i]) == Relation::Dominates,
        };
        if !dominated {
            frontier.push(i);
            let better = match best_so_far {
                None => true,
                Some(j) => points[i].perf().is_better_than(points[j].perf()),
            };
            if better {
                best_so_far = Some(i);
            }
        }
    }
    frontier.sort_unstable();
    frontier
}

/// Convenience: true when `points[i]` is on the frontier of `points`.
pub fn is_pareto_optimal(points: &[OperatingPoint], i: usize) -> bool {
    pareto_frontier(points).contains(&i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::tp;

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_frontier(&[tp(10.0, 50.0)]), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![
            tp(10.0, 50.0), // frontier
            tp(20.0, 70.0), // frontier
            tp(9.0, 60.0),  // dominated by 0
            tp(15.0, 90.0), // dominated by 1
        ];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn tradeoff_chain_is_fully_optimal() {
        let pts = vec![tp(10.0, 50.0), tp(20.0, 70.0), tp(35.0, 100.0), tp(100.0, 200.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicates_all_survive() {
        let pts = vec![tp(10.0, 50.0), tp(10.0, 50.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn equal_cost_worse_perf_is_dominated() {
        let pts = vec![tp(10.0, 50.0), tp(12.0, 50.0)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn equal_perf_higher_cost_is_dominated() {
        let pts = vec![tp(10.0, 50.0), tp(10.0, 60.0)];
        assert_eq!(pareto_frontier(&pts), vec![0]);
    }

    #[test]
    fn frontier_matches_naive_quadratic_check() {
        // Deterministic pseudo-random point cloud.
        let mut pts = Vec::new();
        let mut state = 0x2545F4914F6CDD1D_u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let g = 1.0 + (state >> 40) as f64 / 1e4;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = 10.0 + (state >> 40) as f64 / 1e3;
            pts.push(tp(g, w));
        }
        let fast = pareto_frontier(&pts);
        let naive: Vec<usize> = (0..pts.len())
            .filter(|&i| {
                !(0..pts.len()).any(|j| j != i && relate(&pts[j], &pts[i]) == Relation::Dominates)
            })
            .collect();
        assert_eq!(fast, naive);
    }

    #[test]
    fn membership_helper() {
        let pts = vec![tp(10.0, 50.0), tp(9.0, 60.0)];
        assert!(is_pareto_optimal(&pts, 0));
        assert!(!is_pareto_optimal(&pts, 1));
    }
}
