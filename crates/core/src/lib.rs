//! # apples-core
//!
//! The fair-comparison methodology engine from *"Of Apples and Oranges:
//! Fair Comparisons in Heterogenous Systems Evaluation"* (HotNets 2023),
//! as an executable library.
//!
//! The paper's seven principles map onto this crate as follows:
//!
//! | Principle | Where |
//! |---|---|
//! | P1 context-independent cost metrics | enforced via `apples-metrics` + [`evaluate::Evaluation`] validation |
//! | P2 quantifiable cost metrics | same |
//! | P3 end-to-end cost coverage | same |
//! | P4 same-regime comparisons are unidimensional | [`regime`] |
//! | P5 scale scalable baselines into the comparison region | [`scaling`] |
//! | P6 ideal (linear) scaling as a generous bound | [`scaling::IdealLinear`] + pitfall guards |
//! | P7 non-scalable baselines compare only inside the region | [`nonscalable`] |
//!
//! The central objects are [`point::OperatingPoint`] — a (performance,
//! cost) pair in the plane of the paper's Figures 1–3 — and
//! [`evaluate::Evaluation`], which takes a proposed system, a baseline,
//! an optional scaling model, and produces a [`verdict::Verdict`] plus a
//! report rendered by [`report::render_text`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checklist;
pub mod digest;
pub mod dominance;
pub mod efficiency;
pub mod evaluate;
pub mod frontier;
pub mod json;
pub mod multi;
pub mod nonscalable;
pub mod point;
pub mod regime;
pub mod report;
pub mod scaling;
pub mod stats;
pub mod verdict;

pub use checklist::{audit, render_checklist, ChecklistItem};
pub use digest::{fnv1a, fnv1a_hex, CacheKey, KeyDiff};
pub use dominance::{in_comparison_region, relate, Relation};
pub use efficiency::{perf_per_cost, rank_by_efficiency};
pub use evaluate::Evaluation;
pub use frontier::pareto_frontier;
pub use multi::{evaluate_multi, relate_multi, MultiPoint, MultiResult};
pub use nonscalable::{compare_nonscalable, Comparability};
pub use point::{OperatingPoint, System};
pub use regime::{detect_regime, Regime, Tolerance};
pub use scaling::{
    Amdahl, CostCoverage, IdealLinear, MeasuredCurve, Saturating, ScalingError, ScalingModel,
};
pub use stats::{bootstrap_mean_ci, BootstrapCi, Summary};
pub use verdict::Verdict;
