//! The end-to-end evaluation pipeline: metric validation, regime
//! detection, dominance, scaling, and verdict.
//!
//! [`Evaluation`] is the crate's main entry point. It wires the paper's
//! principles together in order:
//!
//! 1. validate the cost metric against P1–P3 for the systems at hand;
//! 2. if the systems share a regime, emit the unidimensional claim (P4);
//! 3. if one Pareto-dominates, emit that;
//! 4. otherwise, if a scaling model was supplied and the metric scales,
//!    scale the *baseline* (never the proposed system — P6 pitfall 1)
//!    into the comparison region and compare at the anchors (P5/P6);
//! 5. otherwise apply the non-scalable rules (P7).

use crate::dominance::{relate, Relation};
use crate::point::System;
use crate::regime::{detect_regime, unidimensional_claim, Regime, Tolerance};
use crate::scaling::{CostCoverage, ScalingError, ScalingModel};
use crate::verdict::{AnchorKind, ScaledAnchor, ScaledOutcome, Verdict};
use apples_metrics::cost::{validate_cost_metric, PrincipleViolation};

/// A configured comparison of a proposed system against a baseline.
///
/// # Examples
///
/// The §4.2.1 switch example end to end:
///
/// ```
/// use apples_core::{Evaluation, IdealLinear, OperatingPoint, System};
/// use apples_metrics::cost::DeviceClass;
/// use apples_metrics::{perf::PerfMetric, CostMetric};
/// use apples_metrics::quantity::{gbps, watts};
///
/// let tp = |g, w| OperatingPoint::new(
///     PerfMetric::throughput_bps().value(gbps(g)),
///     CostMetric::power_draw().value(watts(w)),
/// );
/// let result = Evaluation::new(
///     System::new("fw+switch", vec![DeviceClass::Cpu, DeviceClass::ProgrammableSwitch], tp(100.0, 200.0)),
///     System::new("fw", vec![DeviceClass::Cpu, DeviceClass::Nic], tp(35.0, 100.0)),
/// )
/// .with_baseline_scaling(&IdealLinear)
/// .run();
///
/// assert!(result.violations.is_empty());          // power passes P1–P3
/// assert!(result.verdict.favors_proposed());       // A ≻ ideally scaled B
/// ```
pub struct Evaluation<'a> {
    proposed: System,
    baseline: System,
    tolerance: Tolerance,
    scaling: Option<&'a dyn ScalingModel>,
    baseline_coverage: CostCoverage,
}

/// Everything an evaluation produced, ready for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationResult {
    /// The proposed system as supplied.
    pub proposed: System,
    /// The baseline as supplied.
    pub baseline: System,
    /// P1–P3 violations of the chosen cost metric for these systems.
    /// Non-empty violations do not abort the evaluation — the paper asks
    /// for the discussion, not a refusal — but they are always reported.
    pub violations: Vec<PrincipleViolation>,
    /// The detected operating regime.
    pub regime: Regime,
    /// The raw Pareto relation of proposed to baseline.
    pub relation: Relation,
    /// The methodology's verdict.
    pub verdict: Verdict,
}

impl<'a> Evaluation<'a> {
    /// Starts an evaluation of `proposed` against `baseline`.
    ///
    /// # Panics
    /// If the two systems' operating points use different metrics.
    pub fn new(proposed: System, baseline: System) -> Self {
        proposed.point().assert_same_axes(baseline.point());
        Evaluation {
            proposed,
            baseline,
            tolerance: Tolerance::default(),
            scaling: None,
            baseline_coverage: CostCoverage::FullSystem,
        }
    }

    /// Sets the regime-equality tolerance (default 1%).
    pub fn with_tolerance(mut self, tol: Tolerance) -> Self {
        self.tolerance = tol;
        self
    }

    /// Supplies a scaling model for the *baseline* (Principles 5/6).
    ///
    /// By construction there is no way to scale the proposed system —
    /// that is P6's first pitfall, prevented by the API shape.
    pub fn with_baseline_scaling(mut self, model: &'a dyn ScalingModel) -> Self {
        self.scaling = Some(model);
        self
    }

    /// Declares how much of the baseline's host its reported cost covers
    /// (default: the full system). Scaling a partially-used host at
    /// whole-host cost trips the §4.2.1 guard.
    pub fn with_baseline_cost_coverage(mut self, coverage: CostCoverage) -> Self {
        self.baseline_coverage = coverage;
        self
    }

    /// Runs the pipeline.
    pub fn run(self) -> EvaluationResult {
        let p = self.proposed.point().clone();
        let b = self.baseline.point().clone();

        // P1–P3: validate the cost metric for both systems' inventories.
        let violations = validate_cost_metric(
            p.cost().metric(),
            &[
                (self.proposed.name(), self.proposed.devices()),
                (self.baseline.name(), self.baseline.devices()),
            ],
        );

        let regime = detect_regime(&p, &b, self.tolerance);
        let relation = relate(&p, &b);

        // P4: same regime -> unidimensional claim.
        if regime != Regime::Different {
            let claim = unidimensional_claim(&p, &b, self.tolerance)
                // lint: allow(P1, reason = "invariant: unidimensional_claim returns Some whenever detect_regime found a shared regime, checked on the line above")
                .expect("same-regime points always yield a claim");
            return self.result(
                violations,
                regime,
                relation,
                Verdict::SameRegime { regime, claim },
            );
        }

        // Direct dominance needs no scaling.
        match relation {
            Relation::Dominates => {
                return self.result(violations, regime, relation, Verdict::ProposedDominates)
            }
            Relation::DominatedBy => {
                return self.result(violations, regime, relation, Verdict::BaselineDominates)
            }
            Relation::Equivalent | Relation::Incomparable => {}
        }

        // Incomparable: try scaling the baseline into the region.
        let verdict = match self.scaling {
            Some(model) => match self.scaled_verdict(model) {
                Ok(v) => v,
                Err(e) => Verdict::Incomparable { reason: e.to_string() },
            },
            None => Verdict::Incomparable {
                reason: "no scaling model supplied for the baseline (principle 7 applies)"
                    .to_owned(),
            },
        };
        self.result(violations, regime, relation, verdict)
    }

    fn scaled_verdict(&self, model: &dyn ScalingModel) -> Result<Verdict, ScalingError> {
        self.baseline_coverage.check()?;
        let p = self.proposed.point();
        let b = self.baseline.point();

        // Each anchor may independently be unreachable (a measured curve
        // ends, an Amdahl ceiling bites). Unreachable anchors become
        // notes; the verdict is drawn from the anchors that exist. Both
        // unreachable means the baseline cannot be brought into the
        // region at all.
        let mut anchors = Vec::new();
        let mut notes = Vec::new();
        match model.scale_to_match_perf(b, p) {
            Ok((k, at_perf)) => anchors.push(ScaledAnchor {
                kind: AnchorKind::MatchPerf,
                factor: k,
                relation: relate(p, &at_perf),
                scaled_baseline: at_perf,
            }),
            Err(e) => notes.push(format!("equal-performance anchor unreachable: {e}")),
        }
        match model.scale_to_match_cost(b, p) {
            Ok((k, at_cost)) => anchors.push(ScaledAnchor {
                kind: AnchorKind::MatchCost,
                factor: k,
                relation: relate(p, &at_cost),
                scaled_baseline: at_cost,
            }),
            Err(e) => notes.push(format!("equal-cost anchor unreachable: {e}")),
        }
        if anchors.is_empty() {
            return Ok(Verdict::Incomparable {
                reason: format!(
                    "the baseline cannot be scaled into the comparison region under the \
                     {} model ({})",
                    model.name(),
                    notes.join("; ")
                ),
            });
        }

        let proposed_ok = |r: Relation| matches!(r, Relation::Dominates | Relation::Equivalent);
        let baseline_ok = |r: Relation| matches!(r, Relation::DominatedBy | Relation::Equivalent);
        let all_proposed = anchors.iter().all(|a| proposed_ok(a.relation));
        let any_proposed_strict = anchors.iter().any(|a| a.relation == Relation::Dominates);
        let all_baseline = anchors.iter().all(|a| baseline_ok(a.relation));
        let any_baseline_strict = anchors.iter().any(|a| a.relation == Relation::DominatedBy);

        let outcome = if all_proposed && any_proposed_strict {
            ScaledOutcome::ProposedPrevails
        } else if all_baseline && any_baseline_strict {
            ScaledOutcome::BaselinePrevails { objective: !model.is_generous_bound() }
        } else if all_proposed && all_baseline {
            // Every anchor equivalent: the scaled baseline coincides with
            // the proposed point; treat as a baseline tie (no claim for
            // the proposed system under a generous bound).
            ScaledOutcome::BaselinePrevails { objective: false }
        } else {
            ScaledOutcome::Mixed
        };

        Ok(Verdict::Scaled {
            model: model.name(),
            generous: model.is_generous_bound(),
            anchors,
            notes,
            outcome,
        })
    }

    fn result(
        self,
        violations: Vec<PrincipleViolation>,
        regime: Regime,
        relation: Relation,
        verdict: Verdict,
    ) -> EvaluationResult {
        EvaluationResult {
            proposed: self.proposed,
            baseline: self.baseline,
            violations,
            regime,
            relation,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::{lp, tp};
    use crate::regime::UnidimensionalClaim;
    use crate::scaling::{Amdahl, IdealLinear, MeasuredCurve};
    use apples_metrics::cost::DeviceClass;

    fn sys(name: &str, devices: &[DeviceClass], point: crate::OperatingPoint) -> System {
        System::new(name, devices.to_vec(), point)
    }

    const HOST: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::Nic];
    const OFFLOAD: &[DeviceClass] = &[DeviceClass::Cpu, DeviceClass::SmartNic];

    #[test]
    fn same_cost_regime_yields_unidimensional_claim() {
        let r =
            Evaluation::new(sys("opt", HOST, tp(15.0, 50.0)), sys("base", HOST, tp(10.0, 50.0)))
                .run();
        assert_eq!(r.regime, Regime::SameCost);
        match r.verdict {
            Verdict::SameRegime {
                claim: UnidimensionalClaim::PerfImprovement { factor }, ..
            } => {
                assert!((factor - 1.5).abs() < 1e-9)
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert!(r.verdict.favors_proposed());
    }

    #[test]
    fn dominating_proposal_wins_without_scaling() {
        let r = Evaluation::new(
            sys("fast+cheap", OFFLOAD, tp(30.0, 40.0)),
            sys("base", HOST, tp(10.0, 50.0)),
        )
        .run();
        assert_eq!(r.verdict, Verdict::ProposedDominates);
    }

    #[test]
    fn dominated_proposal_is_reported_honestly() {
        let r = Evaluation::new(
            sys("worse", OFFLOAD, tp(8.0, 90.0)),
            sys("base", HOST, tp(10.0, 50.0)),
        )
        .run();
        assert_eq!(r.verdict, Verdict::BaselineDominates);
    }

    #[test]
    fn section_42_smartnic_example_with_measured_scaling() {
        // Proposed (SmartNIC): 20 Gbps / 70 W. Baseline: 10 Gbps / 50 W
        // at one core, 18 Gbps / 80 W at two. The paper concludes the
        // proposed system is better at this performance-cost target.
        let curve = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (2.0, 1.8, 1.6)]);
        let r = Evaluation::new(
            sys("firewall+smartnic", OFFLOAD, tp(20.0, 70.0)),
            sys("firewall", HOST, tp(10.0, 50.0)),
        )
        .with_baseline_scaling(&curve)
        .run();
        assert_eq!(r.relation, Relation::Incomparable);
        match &r.verdict {
            Verdict::Scaled { model, generous, outcome, anchors, notes } => {
                assert_eq!(*model, "measured");
                assert!(!generous);
                assert_eq!(*outcome, ScaledOutcome::ProposedPrevails);
                // The measured curve tops out at 18 Gbps (< 20 Gbps), so
                // the equal-performance anchor is honestly unreachable…
                assert!(anchors.iter().all(|a| a.kind != AnchorKind::MatchPerf));
                assert!(notes.iter().any(|n| n.contains("equal-performance")), "{notes:?}");
                // …and the comparison closes at the equal-cost anchor:
                // at 70 W the measured baseline reaches ~15.3 Gbps, which
                // the 20 Gbps proposed system dominates.
                let at_cost = anchors.iter().find(|a| a.kind == AnchorKind::MatchCost).unwrap();
                let scaled_gbps = at_cost.scaled_baseline.perf().quantity().value() / 1e9;
                assert!((scaled_gbps - 15.333).abs() < 0.01, "got {scaled_gbps}");
                assert_eq!(at_cost.relation, Relation::Dominates);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert!(r.verdict.favors_proposed());
    }

    #[test]
    fn section_42_conclusion_with_the_two_core_measurement() {
        // Alternatively, treat the measured 2-core deployment
        // (18 Gbps / 80 W) as a system in its own right: it is in the
        // proposed system's comparison region and dominated by it —
        // "an objective claim that the proposed system is better at this
        // performance-cost target."
        let r = Evaluation::new(
            sys("firewall+smartnic", OFFLOAD, tp(20.0, 70.0)),
            sys("firewall@2cores", HOST, tp(18.0, 80.0)),
        )
        .run();
        assert_eq!(r.verdict, Verdict::ProposedDominates);
    }

    #[test]
    fn section_421_switch_example_with_ideal_scaling() {
        // Proposed (switch): 100 Gbps / 200 W; baseline 35 Gbps / 100 W.
        // Ideal scaling brings the baseline to 70 Gbps @ 200 W or
        // 100 Gbps @ 286 W — the proposed system prevails at both.
        let r = Evaluation::new(
            sys(
                "fw+switch",
                &[DeviceClass::Cpu, DeviceClass::ProgrammableSwitch],
                tp(100.0, 200.0),
            ),
            sys("fw", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&IdealLinear)
        .run();
        match &r.verdict {
            Verdict::Scaled { generous, outcome, anchors, .. } => {
                assert!(*generous);
                assert_eq!(*outcome, ScaledOutcome::ProposedPrevails);
                let at_cost = anchors.iter().find(|a| a.kind == AnchorKind::MatchCost).unwrap();
                assert!((at_cost.scaled_baseline.perf().quantity().value() - 70e9).abs() < 1e3);
                let at_perf = anchors.iter().find(|a| a.kind == AnchorKind::MatchPerf).unwrap();
                assert!((at_perf.scaled_baseline.cost().quantity().value() - 285.714).abs() < 0.01);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn generously_scaled_baseline_win_blocks_claims_both_ways() {
        // Proposed is power-hungry: 40 Gbps / 300 W vs baseline
        // 35 Gbps / 100 W. Ideal scaling gives the baseline 105 Gbps at
        // 300 W — it prevails, but only generously, so no objective claim.
        let r = Evaluation::new(
            sys("hungry", OFFLOAD, tp(40.0, 300.0)),
            sys("base", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&IdealLinear)
        .run();
        match &r.verdict {
            Verdict::Scaled { outcome, .. } => {
                assert_eq!(*outcome, ScaledOutcome::BaselinePrevails { objective: false });
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        assert!(r.verdict.is_inconclusive());
    }

    #[test]
    fn measured_baseline_win_is_objective() {
        let curve = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (4.0, 3.8, 3.9)]);
        let r = Evaluation::new(
            sys("hungry", OFFLOAD, tp(40.0, 300.0)),
            sys("base", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&curve)
        .run();
        match &r.verdict {
            Verdict::Scaled { outcome, .. } => {
                assert_eq!(*outcome, ScaledOutcome::BaselinePrevails { objective: true });
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn amdahl_ceiling_is_noted_and_comparison_closes_at_equal_cost() {
        // The baseline can never reach the proposed 100 Gbps through an
        // Amdahl model with a 50% serial fraction (2x ceiling), but the
        // equal-cost anchor still exists: at 200 W (k = 2) it reaches
        // 35 * 1.333 = 46.7 Gbps and the proposed system dominates.
        let m = Amdahl::new(0.5);
        let r = Evaluation::new(
            sys("switch", &[DeviceClass::ProgrammableSwitch], tp(100.0, 200.0)),
            sys("base", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&m)
        .run();
        match &r.verdict {
            Verdict::Scaled { anchors, notes, outcome, .. } => {
                assert!(notes.iter().any(|n| n.contains("ceiling")), "{notes:?}");
                assert_eq!(anchors.len(), 1);
                assert_eq!(anchors[0].kind, AnchorKind::MatchCost);
                let g = anchors[0].scaled_baseline.perf().quantity().value() / 1e9;
                assert!((g - 46.6667).abs() < 0.01, "got {g}");
                assert_eq!(*outcome, ScaledOutcome::ProposedPrevails);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn fully_unreachable_scaling_is_incomparable() {
        // A measured curve that ends below the proposed system on *both*
        // axes: neither anchor is reachable, so no claim can be made.
        let curve = MeasuredCurve::from_samples(vec![(1.0, 1.0, 1.0), (1.2, 1.1, 1.1)]);
        let r = Evaluation::new(
            sys("switch", &[DeviceClass::ProgrammableSwitch], tp(100.0, 200.0)),
            sys("base", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&curve)
        .run();
        match &r.verdict {
            Verdict::Incomparable { reason } => {
                assert!(reason.contains("cannot be scaled into the comparison region"), "{reason}");
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn partial_cost_coverage_blocks_scaling() {
        let r = Evaluation::new(
            sys("switch", &[DeviceClass::ProgrammableSwitch], tp(100.0, 200.0)),
            sys("base-1of8", HOST, tp(35.0, 100.0)),
        )
        .with_baseline_scaling(&IdealLinear)
        .with_baseline_cost_coverage(CostCoverage::PartialHost { used: 1.0, paid_for: 8.0 })
        .run();
        match &r.verdict {
            Verdict::Incomparable { reason } => {
                assert!(reason.contains("not generous"), "{reason}")
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn non_scalable_latency_falls_back_to_principle_7() {
        // §4.3 incomparable latency case, even with a model supplied.
        let r = Evaluation::new(
            sys("lowlat", OFFLOAD, lp(5.0, 200.0)),
            sys("base", HOST, lp(8.0, 100.0)),
        )
        .with_baseline_scaling(&IdealLinear)
        .run();
        match &r.verdict {
            Verdict::Incomparable { reason } => {
                assert!(reason.contains("does not improve under horizontal scaling"), "{reason}")
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn no_model_means_principle_7() {
        let r = Evaluation::new(sys("a", OFFLOAD, tp(20.0, 70.0)), sys("b", HOST, tp(10.0, 50.0)))
            .run();
        match &r.verdict {
            Verdict::Incomparable { reason } => assert!(reason.contains("principle 7")),
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn cost_metric_violations_are_surfaced() {
        use apples_metrics::cost::CostMetric;
        use apples_metrics::perf::PerfMetric;
        use apples_metrics::quantity::{cores, gbps};
        // Compare a CPU system with an FPGA system under "CPU cores":
        // coverage violations must be attached to the result.
        let p = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(20.0)),
            CostMetric::cpu_cores().value(cores(2.0)),
        );
        let b = crate::OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(10.0)),
            CostMetric::cpu_cores().value(cores(4.0)),
        );
        let r = Evaluation::new(
            sys("fpga-accel", &[DeviceClass::Cpu, DeviceClass::Fpga], p),
            sys("cpu-only", HOST, b),
        )
        .run();
        assert!(
            r.violations.iter().any(|v| matches!(
                v,
                PrincipleViolation::IncompleteCoverage { device: DeviceClass::Fpga, .. }
            )),
            "expected an FPGA coverage violation, got {:?}",
            r.violations
        );
        // The comparison still runs (the proposal dominates on these axes),
        // but the report will carry the violation.
        assert_eq!(r.verdict, Verdict::ProposedDominates);
    }
}
