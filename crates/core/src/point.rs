//! Operating points in the performance–cost plane.
//!
//! Figures 1–3 of the paper live in a plane whose axes are one
//! performance metric and one cost metric. An [`OperatingPoint`] is a
//! system's measured position in that plane; a [`System`] adds the name
//! and hardware inventory needed for Principle 1–3 validation.

use apples_metrics::cost::{CostValue, DeviceClass};
use apples_metrics::perf::PerfValue;
use std::fmt;

/// A measured (performance, cost) pair for one system under one workload.
///
/// Both axes keep their metric descriptors, so direction (is higher
/// latency worse?) and scalability are always available to the engine,
/// and accidental cross-metric comparisons are caught.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    perf: PerfValue,
    cost: CostValue,
}

impl OperatingPoint {
    /// Creates an operating point from measured values.
    pub fn new(perf: PerfValue, cost: CostValue) -> Self {
        OperatingPoint { perf, cost }
    }

    /// The performance coordinate.
    pub fn perf(&self) -> &PerfValue {
        &self.perf
    }

    /// The cost coordinate.
    pub fn cost(&self) -> &CostValue {
        &self.cost
    }

    /// True when both points use the same performance metric and the same
    /// cost metric — the precondition for any comparison between them.
    pub fn same_axes(&self, other: &OperatingPoint) -> bool {
        self.perf.metric() == other.perf.metric() && self.cost.metric() == other.cost.metric()
    }

    /// Panics with a descriptive message unless [`Self::same_axes`].
    pub fn assert_same_axes(&self, other: &OperatingPoint) {
        assert!(
            self.same_axes(other),
            "operating points use different axes: ({}, {}) vs ({}, {})",
            self.perf.metric(),
            self.cost.metric(),
            other.perf.metric(),
            other.cost.metric()
        );
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.perf, self.cost)
    }
}

/// A named system under evaluation: its operating point plus the device
/// classes it uses (the input to end-to-end coverage checks).
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    name: String,
    devices: Vec<DeviceClass>,
    point: OperatingPoint,
}

impl System {
    /// Creates a named system.
    pub fn new(name: impl Into<String>, devices: Vec<DeviceClass>, point: OperatingPoint) -> Self {
        System { name: name.into(), devices, point }
    }

    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device classes the system's datapath uses.
    pub fn devices(&self) -> &[DeviceClass] {
        &self.devices
    }

    /// The measured operating point.
    pub fn point(&self) -> &OperatingPoint {
        &self.point
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.point)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared constructors for the §4 worked-example points, used across
    //! the crate's unit tests.

    use super::*;
    use apples_metrics::cost::CostMetric;
    use apples_metrics::perf::PerfMetric;
    use apples_metrics::quantity::{gbps, micros, watts};

    /// Throughput/power operating point (the paper's default axes).
    pub fn tp(gbps_v: f64, watts_v: f64) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::throughput_bps().value(gbps(gbps_v)),
            CostMetric::power_draw().value(watts(watts_v)),
        )
    }

    /// Latency/power operating point (§4.3's non-scalable example).
    pub fn lp(micros_v: f64, watts_v: f64) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::latency().value(micros(micros_v)),
            CostMetric::power_draw().value(watts(watts_v)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{lp, tp};
    use super::*;
    use apples_metrics::cost::DeviceClass;

    #[test]
    fn accessors_round_trip() {
        let p = tp(10.0, 50.0);
        assert_eq!(p.perf().quantity().value(), 10e9);
        assert_eq!(p.cost().quantity().value(), 50.0);
    }

    #[test]
    fn same_axes_detects_metric_mismatch() {
        assert!(tp(10.0, 50.0).same_axes(&tp(20.0, 70.0)));
        assert!(!tp(10.0, 50.0).same_axes(&lp(5.0, 100.0)));
    }

    #[test]
    #[should_panic(expected = "different axes")]
    fn assert_same_axes_panics() {
        tp(10.0, 50.0).assert_same_axes(&lp(5.0, 100.0));
    }

    #[test]
    fn system_carries_inventory() {
        let s = System::new(
            "fw+smartnic",
            vec![DeviceClass::Cpu, DeviceClass::SmartNic],
            tp(20.0, 70.0),
        );
        assert_eq!(s.name(), "fw+smartnic");
        assert_eq!(s.devices().len(), 2);
        assert!(s.to_string().contains("fw+smartnic"));
    }

    #[test]
    fn display_shows_both_axes() {
        let p = tp(10.0, 50.0);
        let s = p.to_string();
        assert!(s.contains("throughput"), "{s}");
        assert!(s.contains("power draw"), "{s}");
    }
}
