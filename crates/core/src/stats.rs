//! Small-sample measurement statistics.
//!
//! §2 (citing the HotOS reproducibility panel) notes that performance
//! reproducibility is itself hard; regime detection therefore uses a
//! relative tolerance. [`Summary`] gives the tools to *choose* that
//! tolerance from data: run the measurement several times (different
//! seeds) and set the tolerance from the observed coefficient of
//! variation, rather than picking 1% by folklore.

use crate::regime::Tolerance;

/// Mean / spread summary of repeated measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice of finite samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(samples.iter().all(|x| x.is_finite()), "samples must be finite");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, stddev, min, max }
    }

    /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        // lint: allow(N1, reason = "exact-zero sentinel guarding division; the mean of an all-zero sample is exactly 0.0")
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (2·stddev/√n — the normal approximation; fine for the tolerance-
    /// setting purpose, not for publication-grade inference).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            2.0 * self.stddev / (self.n as f64).sqrt()
        }
    }

    /// A regime-detection tolerance derived from the measured noise:
    /// `k` coefficients of variation, floored at 0.1% so exact synthetic
    /// data still tolerates float residue, capped below 1 as
    /// [`Tolerance`] requires.
    pub fn suggested_tolerance(&self, k: f64) -> Tolerance {
        assert!(k > 0.0, "k must be positive");
        let rel = (k * self.cv()).clamp(0.001, 0.5);
        Tolerance::new(rel)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} +- {:.4} (n={}, min {:.4}, max {:.4})",
            self.mean, self.stddev, self.n, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn tolerance_scales_with_noise_and_is_floored() {
        let noisy = Summary::from_samples(&[90.0, 100.0, 110.0]);
        let tol = noisy.suggested_tolerance(3.0);
        assert!(tol.rel > 0.2, "3 CVs of 10% noise: got {}", tol.rel);
        let exact = Summary::from_samples(&[100.0, 100.0, 100.0]);
        assert_eq!(exact.suggested_tolerance(3.0).rel, 0.001);
    }

    #[test]
    fn display_is_readable() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        assert!(s.to_string().contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn mean_is_within_bounds() {
        let mut rng = Rng::seed_from_u64(0x57A71);
        for _ in 0..500 {
            let len = rng.range_usize(1, 50);
            let xs: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e6, 1e6)).collect();
            let s = Summary::from_samples(&xs);
            assert!(s.mean >= s.min - 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.stddev >= 0.0);
        }
    }

    #[test]
    fn constant_samples_have_zero_stddev() {
        let mut rng = Rng::seed_from_u64(0x57A72);
        for _ in 0..500 {
            let x = rng.range_f64(-1e6, 1e6);
            let n = rng.range_usize(1, 20);
            let s = Summary::from_samples(&vec![x; n]);
            assert!(s.stddev.abs() < 1e-6);
        }
    }
}
