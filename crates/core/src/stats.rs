//! Small-sample measurement statistics.
//!
//! §2 (citing the HotOS reproducibility panel) notes that performance
//! reproducibility is itself hard; regime detection therefore uses a
//! relative tolerance. [`Summary`] gives the tools to *choose* that
//! tolerance from data: run the measurement several times (different
//! seeds) and set the tolerance from the observed coefficient of
//! variation, rather than picking 1% by folklore.

use crate::regime::Tolerance;
use apples_rng::Rng;

/// Mean / spread summary of repeated measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty slice of finite samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(samples.iter().all(|x| x.is_finite()), "samples must be finite");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, stddev, min, max }
    }

    /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        // lint: allow(N1, reason = "exact-zero sentinel guarding division; the mean of an all-zero sample is exactly 0.0")
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (2·stddev/√n — the normal approximation; fine for the tolerance-
    /// setting purpose, not for publication-grade inference).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            2.0 * self.stddev / (self.n as f64).sqrt()
        }
    }

    /// A regime-detection tolerance derived from the measured noise:
    /// `k` coefficients of variation, floored at 0.1% so exact synthetic
    /// data still tolerates float residue, capped below 1 as
    /// [`Tolerance`] requires.
    pub fn suggested_tolerance(&self, k: f64) -> Tolerance {
        assert!(k > 0.0, "k must be positive");
        let rel = (k * self.cv()).clamp(0.001, 0.5);
        Tolerance::new(rel)
    }
}

/// A percentile-bootstrap confidence interval on a mean.
///
/// Produced by [`bootstrap_mean_ci`]; used by the robustness experiment
/// family to report how stable a verdict-driving metric is across fault
/// replications, without assuming normality of the small samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Sample mean of the original data.
    pub mean: f64,
    /// Lower 2.5th-percentile bootstrap bound.
    pub lo: f64,
    /// Upper 97.5th-percentile bootstrap bound.
    pub hi: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

/// Deterministic percentile bootstrap for the mean: draws `resamples`
/// with-replacement resamples of `samples` using the in-repo RNG seeded
/// with `seed`, and returns the 2.5%/97.5% percentiles of the resampled
/// means. The same `(samples, resamples, seed)` triple always yields the
/// same interval, so bench reports containing CIs stay byte-identical
/// across reruns.
pub fn bootstrap_mean_ci(samples: &[f64], resamples: usize, seed: u64) -> BootstrapCi {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(resamples >= 1, "need at least one resample");
    assert!(samples.iter().all(|x| x.is_finite()), "samples must be finite");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        // Resampling a single point is a no-op; the interval collapses.
        return BootstrapCi { mean, lo: mean, hi: mean, resamples };
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += samples[rng.range_usize(0, n)];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        let idx = (q * (resamples - 1) as f64).round() as usize;
        means[idx.min(resamples - 1)]
    };
    BootstrapCi { mean, lo: pick(0.025), hi: pick(0.975), resamples }
}

impl std::fmt::Display for BootstrapCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({} resamples)",
            self.mean, self.lo, self.hi, self.resamples
        )
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} +- {:.4} (n={}, min {:.4}, max {:.4})",
            self.mean, self.stddev, self.n, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn tolerance_scales_with_noise_and_is_floored() {
        let noisy = Summary::from_samples(&[90.0, 100.0, 110.0]);
        let tol = noisy.suggested_tolerance(3.0);
        assert!(tol.rel > 0.2, "3 CVs of 10% noise: got {}", tol.rel);
        let exact = Summary::from_samples(&[100.0, 100.0, 100.0]);
        assert_eq!(exact.suggested_tolerance(3.0).rel, 0.001);
    }

    #[test]
    fn display_is_readable() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        assert!(s.to_string().contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn mean_is_within_bounds() {
        let mut rng = Rng::seed_from_u64(0x57A71);
        for _ in 0..500 {
            let len = rng.range_usize(1, 50);
            let xs: Vec<f64> = (0..len).map(|_| rng.range_f64(-1e6, 1e6)).collect();
            let s = Summary::from_samples(&xs);
            assert!(s.mean >= s.min - 1e-9);
            assert!(s.mean <= s.max + 1e-9);
            assert!(s.stddev >= 0.0);
        }
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_mean() {
        let xs = [90.0, 95.0, 100.0, 105.0, 110.0, 98.0, 102.0, 97.0];
        let a = bootstrap_mean_ci(&xs, 500, 7);
        let b = bootstrap_mean_ci(&xs, 500, 7);
        assert_eq!(a, b, "same (samples, resamples, seed) must give the same CI");
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!(a.lo >= 90.0 && a.hi <= 110.0, "resampled means stay within the data range");
        assert!(a.hi - a.lo > 0.0, "noisy data must give a non-degenerate interval");
    }

    #[test]
    fn bootstrap_ci_narrows_with_tighter_data() {
        let noisy = bootstrap_mean_ci(&[50.0, 150.0, 80.0, 120.0, 60.0, 140.0], 400, 3);
        let tight = bootstrap_mean_ci(&[99.0, 101.0, 100.0, 100.5, 99.5, 100.0], 400, 3);
        assert!(tight.hi - tight.lo < noisy.hi - noisy.lo);
    }

    #[test]
    fn bootstrap_ci_collapses_for_constant_or_single_samples() {
        let one = bootstrap_mean_ci(&[42.0], 100, 1);
        assert_eq!((one.mean, one.lo, one.hi), (42.0, 42.0, 42.0));
        let same = bootstrap_mean_ci(&[7.0; 10], 100, 1);
        assert_eq!((same.lo, same.hi), (7.0, 7.0));
    }

    #[test]
    fn bootstrap_ci_display_is_readable() {
        let ci = bootstrap_mean_ci(&[1.0, 2.0, 3.0], 100, 0);
        assert!(ci.to_string().contains("100 resamples"));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn bootstrap_rejects_empty() {
        let _ = bootstrap_mean_ci(&[], 100, 0);
    }

    #[test]
    fn constant_samples_have_zero_stddev() {
        let mut rng = Rng::seed_from_u64(0x57A72);
        for _ in 0..500 {
            let x = rng.range_f64(-1e6, 1e6);
            let n = rng.range_usize(1, 20);
            let s = Summary::from_samples(&vec![x; n]);
            assert!(s.stddev.abs() < 1e-6);
        }
    }
}
