//! A tiny hand-rolled JSON emitter.
//!
//! The workspace is hermetic (no external crates), and the only JSON it
//! ever *writes* is flat machine-readable result summaries such as the
//! bench harness's `BENCH_simnet.json`. This module covers exactly that:
//! objects, arrays, strings, numbers, and booleans, emitted with correct
//! escaping and deterministic field order (insertion order). There is
//! deliberately no parser — nothing in the workspace reads JSON back.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values emit as `null`, matching the
    /// behavior of mainstream serializers).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (builder style).
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            // lint: allow(P1, reason = "documented '# Panics' contract of the builder: field() on a non-object is a call-site bug, not a runtime condition")
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation, for human-inspectable files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values render without a trailing ".0" so counters
        // look like counters.
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(f64::from(x))
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(2.5).render(), "2.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\nd\te").render(), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj().field("b", 1u64).field("a", 2u64);
        assert_eq!(j.render(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn arrays_nest() {
        let j = Json::from(vec![1u64, 2, 3]);
        assert_eq!(j.render(), "[1,2,3]");
        let nested = Json::obj().field("xs", j);
        assert_eq!(nested.render(), "{\"xs\":[1,2,3]}");
    }

    #[test]
    fn pretty_output_is_indented_and_valid_shape() {
        let j = Json::obj()
            .field("name", "bench")
            .field("runs", Json::from(vec![Json::obj().field("pps", 1.5e6)]));
        let s = j.render_pretty();
        assert!(s.contains("  \"name\": \"bench\""), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn empty_containers_render_compactly_in_pretty_mode() {
        assert_eq!(Json::obj().render_pretty(), "{}\n");
        assert_eq!(Json::Arr(Vec::new()).render_pretty(), "[]\n");
    }

    #[test]
    fn integral_floats_render_without_decimal() {
        assert_eq!(Json::from(3.0).render(), "3");
        assert_eq!(Json::from(-7i64).render(), "-7");
    }
}
