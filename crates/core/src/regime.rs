//! Operating regimes and unidimensional analysis (§4.1, Principle 4,
//! Figure 1).
//!
//! "When systems under the same workload present the same cost or the
//! same performance, we say that they operate in the same regime."
//! Comparing same-regime systems is simple: the shared dimension drops
//! out, and the claim becomes a one-dimensional speedup (Figure 1a) or
//! cost reduction (Figure 1b).

use crate::point::OperatingPoint;
use std::fmt;

/// Relative tolerance used to decide that two measurements are "the
/// same" for regime purposes. Real measurements of two systems never
/// coincide exactly; a 1% default mirrors common throughput-measurement
/// noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum relative difference treated as equal.
    pub rel: f64,
}

impl Tolerance {
    /// A tolerance of `rel` (e.g. `0.01` for 1%).
    pub fn new(rel: f64) -> Self {
        assert!((0.0..1.0).contains(&rel), "tolerance must be in [0, 1), got {rel}");
        Tolerance { rel }
    }

    /// Exact equality — useful in tests and synthetic studies.
    pub fn exact() -> Self {
        Tolerance { rel: 0.0 }
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { rel: 0.01 }
    }
}

/// The operating-regime relation between two systems (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Same cost and same performance: the systems coincide.
    Identical,
    /// Same cost, different performance: Figure 1a; compare performance
    /// alone ("improves throughput with a single core from 10 to 15 Gbps").
    SameCost,
    /// Same performance, different cost: Figure 1b; compare cost alone
    /// ("reduces the cores needed to saturate a 100 Gbps link from 8 to 4").
    SamePerf,
    /// Different on both axes: the unidimensional shortcut does not
    /// apply; both performance and cost must be considered (§4.2).
    Different,
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Regime::Identical => "identical operating points",
            Regime::SameCost => "same cost regime (compare performance)",
            Regime::SamePerf => "same performance regime (compare cost)",
            Regime::Different => "different regimes (must compare both axes)",
        };
        f.write_str(s)
    }
}

/// Detects the operating regime of two points under `tol`.
pub fn detect_regime(a: &OperatingPoint, b: &OperatingPoint, tol: Tolerance) -> Regime {
    a.assert_same_axes(b);
    let same_perf = a.perf().approx_eq(b.perf(), tol.rel);
    let same_cost = a.cost().approx_eq(b.cost(), tol.rel);
    match (same_cost, same_perf) {
        (true, true) => Regime::Identical,
        (true, false) => Regime::SameCost,
        (false, true) => Regime::SamePerf,
        (false, false) => Regime::Different,
    }
}

/// A one-dimensional claim extracted from a same-regime comparison
/// (Principle 4).
#[derive(Debug, Clone, PartialEq)]
pub enum UnidimensionalClaim {
    /// Same cost: the proposed system changes performance by `factor`
    /// (in the improvement direction; >1 means better).
    PerfImprovement {
        /// Goodness ratio of proposed over baseline (direction-adjusted).
        factor: f64,
    },
    /// Same performance: the proposed system changes cost by `factor`
    /// (<1 means cheaper).
    CostChange {
        /// Cost ratio of proposed over baseline.
        factor: f64,
    },
}

impl fmt::Display for UnidimensionalClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnidimensionalClaim::PerfImprovement { factor } => {
                write!(f, "{factor:.2}x performance at equal cost")
            }
            UnidimensionalClaim::CostChange { factor } => {
                write!(f, "{:.2}x cost at equal performance", factor)
            }
        }
    }
}

/// Extracts the unidimensional claim for two same-regime points, or
/// `None` when they are in different regimes (use the two-dimensional
/// machinery of §4.2 instead).
pub fn unidimensional_claim(
    proposed: &OperatingPoint,
    baseline: &OperatingPoint,
    tol: Tolerance,
) -> Option<UnidimensionalClaim> {
    use apples_metrics::Direction;
    match detect_regime(proposed, baseline, tol) {
        Regime::SameCost | Regime::Identical => {
            let raw = proposed.perf().quantity().ratio_to(baseline.perf().quantity()).ok()?;
            // Normalize so that factor > 1 always means "proposed better".
            let factor = match proposed.perf().metric().direction() {
                Direction::HigherIsBetter => raw,
                Direction::LowerIsBetter => 1.0 / raw,
            };
            Some(UnidimensionalClaim::PerfImprovement { factor })
        }
        Regime::SamePerf => {
            let factor = proposed.cost().quantity().ratio_to(baseline.cost().quantity()).ok()?;
            Some(UnidimensionalClaim::CostChange { factor })
        }
        Regime::Different => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::test_support::{lp, tp};

    #[test]
    fn same_cost_regime_detected() {
        // Figure 1a / §4.1: 10 -> 15 Gbps on the same single core.
        let r = detect_regime(&tp(15.0, 50.0), &tp(10.0, 50.0), Tolerance::default());
        assert_eq!(r, Regime::SameCost);
    }

    #[test]
    fn same_perf_regime_detected() {
        // Figure 1b / §4.1: saturate 100 Gbps with 4 cores instead of 8.
        let r = detect_regime(&tp(100.0, 80.0), &tp(100.0, 160.0), Tolerance::default());
        assert_eq!(r, Regime::SamePerf);
    }

    #[test]
    fn different_regime_detected() {
        let r = detect_regime(&tp(20.0, 70.0), &tp(10.0, 50.0), Tolerance::default());
        assert_eq!(r, Regime::Different);
    }

    #[test]
    fn identical_points() {
        let r = detect_regime(&tp(10.0, 50.0), &tp(10.0, 50.0), Tolerance::exact());
        assert_eq!(r, Regime::Identical);
    }

    #[test]
    fn tolerance_absorbs_measurement_noise() {
        // 0.5% apart at 1% tolerance: same cost.
        let r = detect_regime(&tp(15.0, 50.25), &tp(10.0, 50.0), Tolerance::default());
        assert_eq!(r, Regime::SameCost);
        // Same pair at exact tolerance: different.
        let r = detect_regime(&tp(15.0, 50.25), &tp(10.0, 50.0), Tolerance::exact());
        assert_eq!(r, Regime::Different);
    }

    #[test]
    fn perf_claim_extracted_in_same_cost_regime() {
        let c =
            unidimensional_claim(&tp(15.0, 50.0), &tp(10.0, 50.0), Tolerance::default()).unwrap();
        match c {
            UnidimensionalClaim::PerfImprovement { factor } => {
                assert!((factor - 1.5).abs() < 1e-9)
            }
            other => panic!("expected perf claim, got {other:?}"),
        }
    }

    #[test]
    fn latency_perf_claim_is_direction_adjusted() {
        // Halving latency at equal cost should read as a 2x improvement.
        let c =
            unidimensional_claim(&lp(5.0, 100.0), &lp(10.0, 100.0), Tolerance::default()).unwrap();
        match c {
            UnidimensionalClaim::PerfImprovement { factor } => {
                assert!((factor - 2.0).abs() < 1e-9)
            }
            other => panic!("expected perf claim, got {other:?}"),
        }
    }

    #[test]
    fn cost_claim_extracted_in_same_perf_regime() {
        let c = unidimensional_claim(&tp(100.0, 80.0), &tp(100.0, 160.0), Tolerance::default())
            .unwrap();
        match c {
            UnidimensionalClaim::CostChange { factor } => assert!((factor - 0.5).abs() < 1e-9),
            other => panic!("expected cost claim, got {other:?}"),
        }
    }

    #[test]
    fn no_claim_across_regimes() {
        assert_eq!(
            unidimensional_claim(&tp(20.0, 70.0), &tp(10.0, 50.0), Tolerance::default()),
            None
        );
    }

    #[test]
    fn claim_display() {
        let c = UnidimensionalClaim::PerfImprovement { factor: 1.5 };
        assert_eq!(c.to_string(), "1.50x performance at equal cost");
        let c = UnidimensionalClaim::CostChange { factor: 0.5 };
        assert_eq!(c.to_string(), "0.50x cost at equal performance");
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn invalid_tolerance_rejected() {
        let _ = Tolerance::new(1.5);
    }
}
