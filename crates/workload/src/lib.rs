//! # apples-workload
//!
//! Deterministic, seeded workload generation for the packet-processing
//! simulator.
//!
//! The paper's definition of identical deployments requires "the same
//! workload" across every system in a comparison (§3.1). Synthetic
//! seeded generators guarantee that bit-for-bit: every system sees the
//! exact same packet arrival times, sizes, and flow identifiers.
//!
//! Provided building blocks:
//!
//! - [`sizes::PacketSizeDist`]: fixed sizes, the RFC 2544 sweep set,
//!   Simple IMIX, uniform, and empirical mixes;
//! - [`arrivals::ArrivalProcess`]: constant bit-rate, Poisson, and
//!   Markov on/off (bursty) arrivals;
//! - [`flows::FlowPopulation`]: Zipf-popular flows over synthetic
//!   5-tuples;
//! - [`spec::WorkloadSpec`]: the combination, iterated as a stream of
//!   [`spec::PacketStub`]s;
//! - [`trace::Trace`]: materialized packet sequences with CSV
//!   import/export, for shipping exact workloads alongside results and
//!   replaying external traces.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod flows;
pub mod sizes;
pub mod spec;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use flows::{FiveTuple, FlowPopulation};
pub use sizes::PacketSizeDist;
pub use spec::{PacketStub, WorkloadSpec};
pub use trace::Trace;
