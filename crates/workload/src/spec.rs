//! Workload specifications: the full description of what a system is fed.
//!
//! A [`WorkloadSpec`] is the unit of "same workload" in the paper's
//! definition of identical deployments: two simulations built from the
//! same spec (same seed) observe identical packet sequences.

use crate::arrivals::{ArrivalGen, ArrivalProcess};
use crate::flows::{FiveTuple, FlowPopulation};
use crate::sizes::PacketSizeDist;
use apples_rng::Rng;

/// A generated packet before it enters the simulator: arrival time,
/// wire size, and flow identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketStub {
    /// Arrival time, nanoseconds since workload start.
    pub t_ns: u64,
    /// Frame size in bytes.
    pub size_bytes: u32,
    /// Flow index within the population.
    pub flow: u32,
    /// The flow's 5-tuple.
    pub tuple: FiveTuple,
}

/// The complete, reproducible description of a packet workload.
///
/// # Examples
///
/// ```
/// use apples_workload::{ArrivalProcess, PacketSizeDist, WorkloadSpec};
///
/// let spec = WorkloadSpec {
///     sizes: PacketSizeDist::Imix,
///     arrivals: ArrivalProcess::Poisson { rate_pps: 1_000_000.0 },
///     flows: 64,
///     zipf_s: 1.0,
///     seed: 42,
/// };
/// // Identical specs generate identical packet streams — the paper's
/// // "same workload" requirement, guaranteed by construction.
/// assert_eq!(spec.packets_for(1_000_000), spec.packets_for(1_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Packet size distribution.
    pub sizes: PacketSizeDist,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of flows.
    pub flows: usize,
    /// Zipf popularity exponent over flows.
    pub zipf_s: f64,
    /// RNG seed; two specs with equal fields generate identical streams.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A convenient CBR spec: `rate_pps` packets/s of fixed-size packets
    /// over `flows` uniformly popular flows.
    pub fn cbr(rate_pps: f64, size_bytes: u32, flows: usize, seed: u64) -> Self {
        WorkloadSpec {
            sizes: PacketSizeDist::Fixed(size_bytes),
            arrivals: ArrivalProcess::Cbr { rate_pps },
            flows,
            zipf_s: 0.0,
            seed,
        }
    }

    /// The spec's average offered load in bits per second.
    pub fn offered_load_bps(&self) -> f64 {
        self.arrivals.mean_rate_pps() * self.sizes.mean_bytes() * 8.0
    }

    /// Wraps the arrival process in periodic overload windows: `surge`×
    /// the instantaneous rate for `on_ns` out of every `period_ns`.
    /// The perturbed spec is still fully reproducible from its fields —
    /// the windows are functions of simulated time, not of an extra RNG
    /// stream — so robustness experiments replay exactly.
    pub fn with_overload_bursts(mut self, surge: f64, on_ns: u64, period_ns: u64) -> Self {
        self.arrivals = ArrivalProcess::OverloadBursts {
            base: Box::new(self.arrivals),
            surge,
            on_ns,
            period_ns,
        };
        self
    }

    /// Instantiates the generator.
    pub fn stream(&self) -> PacketStream {
        let mut rng = Rng::seed_from_u64(self.seed);
        let population = FlowPopulation::zipf(self.flows.max(1), self.zipf_s, &mut rng);
        PacketStream {
            rng,
            gen: self.arrivals.generator(),
            sizes: self.sizes.clone(),
            population,
            t_ns: 0,
        }
    }

    /// Collects all packets arriving within the first `duration_ns`.
    pub fn packets_for(&self, duration_ns: u64) -> Vec<PacketStub> {
        self.stream().take_while(|p| p.t_ns < duration_ns).collect()
    }
}

/// Iterator over a workload's packets (infinite; bound it by time).
pub struct PacketStream {
    rng: Rng,
    gen: ArrivalGen,
    sizes: PacketSizeDist,
    population: FlowPopulation,
    t_ns: u64,
}

impl Iterator for PacketStream {
    type Item = PacketStub;

    fn next(&mut self) -> Option<PacketStub> {
        self.t_ns = self.t_ns.saturating_add(self.gen.next_gap_ns(&mut self.rng));
        let flow = self.population.sample_index(&mut self.rng);
        Some(PacketStub {
            t_ns: self.t_ns,
            size_bytes: self.sizes.sample(&mut self.rng),
            flow: flow as u32,
            tuple: self.population.tuple(flow),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_specs_generate_identical_streams() {
        let spec = WorkloadSpec {
            sizes: PacketSizeDist::Imix,
            arrivals: ArrivalProcess::Poisson { rate_pps: 1e6 },
            flows: 32,
            zipf_s: 1.0,
            seed: 1234,
        };
        let a = spec.packets_for(5_000_000);
        let b = spec.packets_for(5_000_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = WorkloadSpec::cbr(1e6, 64, 8, 1);
        let a = spec.packets_for(1_000_000);
        spec.seed = 2;
        let b = spec.packets_for(1_000_000);
        // CBR arrival times coincide but flows/tuples differ.
        assert_ne!(a, b);
    }

    #[test]
    fn offered_load_matches_rate_times_size() {
        let spec = WorkloadSpec::cbr(1e6, 125, 1, 0);
        assert!((spec.offered_load_bps() - 1e9).abs() < 1.0); // 1 Mpps * 1000 bit
    }

    #[test]
    fn cbr_spacing_is_even() {
        let spec = WorkloadSpec::cbr(1e6, 64, 4, 7);
        let pkts = spec.packets_for(10_000_000); // 10 ms -> ~10k packets
        assert!((pkts.len() as i64 - 10_000).abs() <= 1, "{} packets", pkts.len());
        let gaps: Vec<u64> = pkts.windows(2).map(|w| w[1].t_ns - w[0].t_ns).collect();
        assert!(gaps.iter().all(|g| *g == 1000), "uneven CBR gaps");
    }

    #[test]
    fn arrival_times_are_monotone() {
        let spec = WorkloadSpec {
            sizes: PacketSizeDist::Fixed(64),
            arrivals: ArrivalProcess::OnOff { rate_pps: 1e6, peak_pps: 10e6, mean_burst: 16.0 },
            flows: 4,
            zipf_s: 0.5,
            seed: 3,
        };
        let pkts = spec.packets_for(20_000_000);
        assert!(pkts.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn flow_indices_stay_in_range() {
        let spec = WorkloadSpec::cbr(1e6, 64, 16, 5);
        for p in spec.packets_for(1_000_000) {
            assert!(p.flow < 16);
        }
    }

    #[test]
    fn overload_bursts_deliver_more_packets_and_replay() {
        let clean = WorkloadSpec::cbr(1e6, 64, 8, 17);
        let perturbed = clean.clone().with_overload_bursts(4.0, 250_000, 1_000_000);
        let a = perturbed.packets_for(10_000_000);
        let b = perturbed.packets_for(10_000_000);
        assert_eq!(a, b, "perturbed streams must replay from the spec alone");
        let n_clean = clean.packets_for(10_000_000).len() as f64;
        let ratio = a.len() as f64 / n_clean;
        // 4x surge at 25% duty -> 1.75x mean packets.
        assert!((ratio - 1.75).abs() < 0.1, "packet ratio {ratio}");
    }
}
