//! Flow populations: synthetic 5-tuples with Zipf popularity.
//!
//! Per-flow structure matters for the fairness experiments (Jain's index
//! is computed over per-flow service) and for stateful network functions
//! (NAT tables, per-flow counters). Flow popularity on real links is
//! heavy-tailed, which Zipf captures with one parameter.

use apples_rng::Rng;

/// A synthetic IPv4 5-tuple identifying a flow.
///
/// `Ord` is derived so flow tables can use deterministic ordered maps
/// (`BTreeMap`) — lint rule D1 bans unordered containers from
/// simulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address (as a u32).
    pub src_ip: u32,
    /// Destination IPv4 address (as a u32).
    pub dst_ip: u32,
    /// Source TCP/UDP port.
    pub src_port: u16,
    /// Destination TCP/UDP port.
    pub dst_port: u16,
    /// IP protocol (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FiveTuple {
    /// A stable non-cryptographic hash of the tuple (FNV-1a), used by
    /// load balancers and sketches.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in self.src_ip.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_ip.to_be_bytes() {
            mix(b);
        }
        for b in self.src_port.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_port.to_be_bytes() {
            mix(b);
        }
        mix(self.proto);
        h
    }
}

/// A population of `n` flows whose packet-level popularity follows a
/// Zipf distribution with exponent `s` (`s = 0` is uniform; `s ≈ 1`
/// matches measured Internet flow skew).
#[derive(Debug, Clone)]
pub struct FlowPopulation {
    tuples: Vec<FiveTuple>,
    /// Cumulative popularity distribution for sampling.
    cdf: Vec<f64>,
}

impl FlowPopulation {
    /// Builds a population of `n` flows with Zipf exponent `s`, with
    /// 5-tuples drawn deterministically from `rng`.
    pub fn zipf(n: usize, s: f64, rng: &mut Rng) -> Self {
        assert!(n > 0, "need at least one flow");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let tuples = (0..n)
            .map(|_| FiveTuple {
                // Private address space on both sides; ephemeral source
                // ports and one of a few well-known destination ports.
                src_ip: 0x0A00_0000 | rng.range_u32(0, 0x00FF_FFFF),
                dst_ip: 0xC0A8_0000 | rng.range_u32(0, 0xFFFF),
                src_port: rng.range_u16(1024, u16::MAX),
                // Web traffic dominates: half the flows target port 80,
                // the rest spread over other well-known services.
                dst_port: if rng.gen_bool(0.5) {
                    80
                } else {
                    const ALT_PORTS: [u16; 4] = [443, 53, 8080, 5201];
                    ALT_PORTS[rng.range_usize(0, ALT_PORTS.len())]
                },
                proto: if rng.gen_bool(0.9) { 6 } else { 17 },
            })
            .collect();

        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        FlowPopulation { tuples, cdf }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the population is empty (never: construction requires
    /// `n > 0`; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Samples a flow index by popularity.
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.next_f64();
        // total_cmp: CDF entries and the sample are finite, and a total
        // order removes the panic path (P1).
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.tuples.len() - 1),
        }
    }

    /// The 5-tuple of flow `i`.
    pub fn tuple(&self, i: usize) -> FiveTuple {
        self.tuples[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(11)
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut r = rng();
        let pop = FlowPopulation::zipf(100, 1.0, &mut r);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[pop.sample_index(&mut r)] += 1;
        }
        // Rank-0 flow should get ~1/H(100) ~ 19% of packets; rank 99 ~0.2%.
        let p0 = f64::from(counts[0]) / 1e5;
        assert!(p0 > 0.15 && p0 < 0.25, "rank-0 share {p0}");
        assert!(counts[0] > counts[50] && counts[50] >= counts[99].saturating_sub(50));
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut r = rng();
        let pop = FlowPopulation::zipf(10, 0.0, &mut r);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[pop.sample_index(&mut r)] += 1;
        }
        for c in counts {
            let share = f64::from(c) / 1e5;
            assert!((share - 0.1).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn tuples_are_plausible_and_deterministic() {
        let a = FlowPopulation::zipf(16, 1.0, &mut Rng::seed_from_u64(5));
        let b = FlowPopulation::zipf(16, 1.0, &mut Rng::seed_from_u64(5));
        for i in 0..16 {
            assert_eq!(a.tuple(i), b.tuple(i));
            let t = a.tuple(i);
            assert_eq!(t.src_ip >> 24, 0x0A, "src in 10/8");
            assert!(t.src_port >= 1024);
            assert!(t.proto == 6 || t.proto == 17);
        }
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        let mut r = rng();
        let pop = FlowPopulation::zipf(64, 0.0, &mut r);
        let h0 = pop.tuple(0).hash64();
        assert_eq!(h0, pop.tuple(0).hash64());
        let distinct: std::collections::BTreeSet<u64> =
            (0..64).map(|i| pop.tuple(i).hash64()).collect();
        assert!(distinct.len() >= 60, "{} distinct hashes", distinct.len());
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_population_rejected() {
        let _ = FlowPopulation::zipf(0, 1.0, &mut rng());
    }
}
