//! Packet arrival processes.
//!
//! All processes are expressed as inter-arrival-time generators in
//! nanoseconds, at a configured average packet rate, so workloads at the
//! same offered load are directly interchangeable across experiments.

use apples_rng::Rng;

/// A packet arrival process at a mean rate of `rate_pps` packets/second.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Constant (deterministic) spacing — classic RFC 2544 generators.
    Cbr {
        /// Mean packet rate, packets per second.
        rate_pps: f64,
    },
    /// Poisson arrivals (exponential inter-arrival times).
    Poisson {
        /// Mean packet rate, packets per second.
        rate_pps: f64,
    },
    /// Markov-modulated on/off bursts: `burst_len` packets back-to-back
    /// at `peak_pps`, then an off period sized so the long-run average
    /// is `rate_pps`. Models the bursty arrivals that stress queues far
    /// more than CBR at the same average load.
    OnOff {
        /// Long-run average rate, packets per second.
        rate_pps: f64,
        /// Rate inside a burst, packets per second (> `rate_pps`).
        peak_pps: f64,
        /// Mean packets per burst (geometric).
        mean_burst: f64,
    },
    /// A fault-injection perturbation of any base process: periodic
    /// overload windows during which the instantaneous rate multiplies
    /// by `surge`. The windows are deterministic in simulated time
    /// (`on_ns` out of every `period_ns`), so perturbed runs replay
    /// exactly — this is the arrival-side half of the robustness suite,
    /// modelling flash crowds and failover traffic shifts.
    OverloadBursts {
        /// The unperturbed arrival process.
        base: Box<ArrivalProcess>,
        /// Rate multiplier inside an overload window (≥ 1).
        surge: f64,
        /// Window length, nanoseconds.
        on_ns: u64,
        /// Window period, nanoseconds (`on_ns` ≤ `period_ns`).
        period_ns: u64,
    },
}

impl ArrivalProcess {
    /// The process's long-run mean rate in packets per second.
    pub fn mean_rate_pps(&self) -> f64 {
        match self {
            ArrivalProcess::Cbr { rate_pps }
            | ArrivalProcess::Poisson { rate_pps }
            | ArrivalProcess::OnOff { rate_pps, .. } => *rate_pps,
            ArrivalProcess::OverloadBursts { base, surge, on_ns, period_ns } => {
                let duty = *on_ns as f64 / (*period_ns).max(1) as f64;
                base.mean_rate_pps() * (1.0 + (surge - 1.0) * duty)
            }
        }
    }

    /// Creates a stateful generator of inter-arrival gaps.
    pub fn generator(&self) -> ArrivalGen {
        match self {
            ArrivalProcess::Cbr { rate_pps } => {
                assert!(*rate_pps > 0.0, "rate must be positive");
                ArrivalGen::Cbr { gap_ns: 1e9 / rate_pps, error_ns: 0.0 }
            }
            ArrivalProcess::Poisson { rate_pps } => {
                assert!(*rate_pps > 0.0, "rate must be positive");
                ArrivalGen::Poisson { mean_gap_ns: 1e9 / rate_pps }
            }
            ArrivalProcess::OnOff { rate_pps, peak_pps, mean_burst } => {
                assert!(*rate_pps > 0.0, "rate must be positive");
                assert!(
                    peak_pps > rate_pps,
                    "peak rate ({peak_pps}) must exceed the average ({rate_pps})"
                );
                assert!(*mean_burst >= 1.0, "mean burst length must be >= 1");
                ArrivalGen::OnOff {
                    on_gap_ns: 1e9 / peak_pps,
                    mean_burst: *mean_burst,
                    // Off time per burst chosen so the mean over a
                    // burst+gap cycle equals rate_pps:
                    //   cycle packets = B, cycle time = B/peak + off
                    //   rate = B / (B/peak + off)
                    //   off = B (1/rate - 1/peak)
                    mean_off_ns_per_burst: mean_burst * (1e9 / rate_pps - 1e9 / peak_pps),
                    left_in_burst: 0,
                }
            }
            ArrivalProcess::OverloadBursts { base, surge, on_ns, period_ns } => {
                assert!(*surge >= 1.0, "surge multiplier must be >= 1");
                assert!(*period_ns > 0, "window period must be positive");
                assert!(on_ns <= period_ns, "window ({on_ns}) must fit its period ({period_ns})");
                ArrivalGen::OverloadBursts {
                    inner: Box::new(base.generator()),
                    surge: *surge,
                    on_ns: *on_ns,
                    period_ns: *period_ns,
                    t_ns: 0,
                }
            }
        }
    }
}

/// Stateful inter-arrival generator; see [`ArrivalProcess::generator`].
#[derive(Debug, Clone)]
pub enum ArrivalGen {
    /// Deterministic spacing with fractional-nanosecond error carrying.
    Cbr {
        /// Exact gap, nanoseconds (possibly fractional).
        gap_ns: f64,
        /// Accumulated sub-nanosecond error.
        error_ns: f64,
    },
    /// Exponential gaps.
    Poisson {
        /// Mean gap, nanoseconds.
        mean_gap_ns: f64,
    },
    /// Geometric bursts at peak rate with exponential off periods.
    OnOff {
        /// Gap inside a burst, nanoseconds.
        on_gap_ns: f64,
        /// Mean packets per burst.
        mean_burst: f64,
        /// Mean off time after each burst, nanoseconds.
        mean_off_ns_per_burst: f64,
        /// Packets remaining in the current burst.
        left_in_burst: u64,
    },
    /// A base generator whose gaps compress inside periodic windows.
    OverloadBursts {
        /// The unperturbed generator.
        inner: Box<ArrivalGen>,
        /// Gap divisor inside a window.
        surge: f64,
        /// Window length, nanoseconds.
        on_ns: u64,
        /// Window period, nanoseconds.
        period_ns: u64,
        /// Absolute time of the last generated arrival.
        t_ns: u64,
    },
}

impl ArrivalGen {
    /// Returns the gap in nanoseconds before the next packet.
    pub fn next_gap_ns(&mut self, rng: &mut Rng) -> u64 {
        match self {
            ArrivalGen::Cbr { gap_ns, error_ns } => {
                let exact = *gap_ns + *error_ns;
                let gap = exact.floor();
                *error_ns = exact - gap;
                gap as u64
            }
            ArrivalGen::Poisson { mean_gap_ns } => sample_exp(*mean_gap_ns, rng),
            ArrivalGen::OnOff { on_gap_ns, mean_burst, mean_off_ns_per_burst, left_in_burst } => {
                if *left_in_burst == 0 {
                    // Start a new burst: geometric length with the given
                    // mean; preceded by an exponential off period.
                    let p = 1.0 / *mean_burst;
                    let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
                    let burst = (u.ln() / (1.0 - p).max(f64::EPSILON).ln()).ceil().max(1.0) as u64;
                    *left_in_burst = burst;
                    let off = sample_exp(*mean_off_ns_per_burst, rng);
                    *left_in_burst -= 1;
                    off + *on_gap_ns as u64
                } else {
                    *left_in_burst -= 1;
                    *on_gap_ns as u64
                }
            }
            ArrivalGen::OverloadBursts { inner, surge, on_ns, period_ns, t_ns } => {
                let gap = inner.next_gap_ns(rng);
                // The window the *previous* packet landed in decides the
                // compression — a pure function of simulated time, so
                // the sequence replays exactly from the seed.
                // lint: allow(N1, reason = "exact sentinel: 1.0 is assigned verbatim, never computed")
                let unit_surge = *surge == 1.0;
                let in_window = !unit_surge && *t_ns % *period_ns < *on_ns;
                let gap = if in_window { ((gap as f64 / *surge) as u64).max(1) } else { gap };
                *t_ns = t_ns.saturating_add(gap);
                gap
            }
        }
    }
}

fn sample_exp(mean_ns: f64, rng: &mut Rng) -> u64 {
    if mean_ns <= 0.0 {
        return 0;
    }
    let u: f64 = rng.range_f64(f64::EPSILON, 1.0);
    (-u.ln() * mean_ns) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(proc_: &ArrivalProcess, n: usize) -> f64 {
        let mut rng = Rng::seed_from_u64(1);
        let mut g = proc_.generator();
        let total: u64 = (0..n).map(|_| g.next_gap_ns(&mut rng)).sum();
        n as f64 / (total as f64 * 1e-9)
    }

    #[test]
    fn cbr_hits_the_rate_exactly() {
        // 14.88 Mpps (100 GbE line rate at 64 B) has a fractional gap of
        // 67.2 ns; the error accumulator must not drift.
        let r = mean_rate(&ArrivalProcess::Cbr { rate_pps: 14.88e6 }, 100_000);
        assert!((r - 14.88e6).abs() / 14.88e6 < 1e-4, "rate {r}");
    }

    #[test]
    fn poisson_converges_to_the_rate() {
        let r = mean_rate(&ArrivalProcess::Poisson { rate_pps: 1e6 }, 200_000);
        assert!((r - 1e6).abs() / 1e6 < 0.02, "rate {r}");
    }

    #[test]
    fn onoff_long_run_average_matches() {
        let p = ArrivalProcess::OnOff { rate_pps: 1e6, peak_pps: 10e6, mean_burst: 32.0 };
        let r = mean_rate(&p, 400_000);
        assert!((r - 1e6).abs() / 1e6 < 0.05, "rate {r}");
    }

    #[test]
    fn onoff_is_burstier_than_cbr() {
        // Squared coefficient of variation of gaps: CBR ~ 0, on/off >> 0.
        let cv2 = |proc_: &ArrivalProcess| {
            let mut rng = Rng::seed_from_u64(3);
            let mut g = proc_.generator();
            let gaps: Vec<f64> = (0..100_000).map(|_| g.next_gap_ns(&mut rng) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let cbr = cv2(&ArrivalProcess::Cbr { rate_pps: 1e6 });
        let bursty =
            cv2(&ArrivalProcess::OnOff { rate_pps: 1e6, peak_pps: 10e6, mean_burst: 32.0 });
        assert!(cbr < 0.01, "CBR cv2 {cbr}");
        assert!(bursty > 1.0, "on/off cv2 {bursty}");
    }

    #[test]
    fn mean_rate_accessor() {
        assert_eq!(ArrivalProcess::Cbr { rate_pps: 5.0 }.mean_rate_pps(), 5.0);
        assert_eq!(
            ArrivalProcess::OnOff { rate_pps: 7.0, peak_pps: 70.0, mean_burst: 4.0 }
                .mean_rate_pps(),
            7.0
        );
    }

    #[test]
    #[should_panic(expected = "peak rate")]
    fn onoff_requires_peak_above_average() {
        let _ =
            ArrivalProcess::OnOff { rate_pps: 10.0, peak_pps: 5.0, mean_burst: 4.0 }.generator();
    }

    #[test]
    fn determinism_per_seed() {
        let p = ArrivalProcess::Poisson { rate_pps: 1e6 };
        let run = || {
            let mut rng = Rng::seed_from_u64(9);
            let mut g = p.generator();
            (0..100).map(|_| g.next_gap_ns(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_bursts_raise_the_mean_rate_by_the_duty_cycle() {
        // 4x surge, 25% duty: mean = base * (1 + 3 * 0.25) = 1.75x.
        let p = ArrivalProcess::OverloadBursts {
            base: Box::new(ArrivalProcess::Cbr { rate_pps: 1e6 }),
            surge: 4.0,
            on_ns: 250_000,
            period_ns: 1_000_000,
        };
        assert!((p.mean_rate_pps() - 1.75e6).abs() < 1.0);
        let r = mean_rate(&p, 400_000);
        assert!((r - 1.75e6).abs() / 1.75e6 < 0.05, "rate {r}");
    }

    #[test]
    fn overload_bursts_are_burstier_than_their_base() {
        let cv2 = |proc_: &ArrivalProcess| {
            let mut rng = Rng::seed_from_u64(5);
            let mut g = proc_.generator();
            let gaps: Vec<f64> = (0..100_000).map(|_| g.next_gap_ns(&mut rng) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let base = ArrivalProcess::Cbr { rate_pps: 1e6 };
        let perturbed = ArrivalProcess::OverloadBursts {
            base: Box::new(base.clone()),
            surge: 8.0,
            on_ns: 100_000,
            period_ns: 1_000_000,
        };
        assert!(cv2(&base) < 0.01);
        assert!(cv2(&perturbed) > 0.1, "surge windows must add gap variance");
    }

    #[test]
    fn overload_bursts_with_unit_surge_match_the_base() {
        // surge = 1 is the identity perturbation: same gaps, same RNG use.
        let base = ArrivalProcess::Poisson { rate_pps: 2e6 };
        let wrapped = ArrivalProcess::OverloadBursts {
            base: Box::new(base.clone()),
            surge: 1.0,
            on_ns: 500_000,
            period_ns: 1_000_000,
        };
        let gaps = |p: &ArrivalProcess| {
            let mut rng = Rng::seed_from_u64(11);
            let mut g = p.generator();
            (0..1_000).map(|_| g.next_gap_ns(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gaps(&base), gaps(&wrapped));
        assert_eq!(wrapped.mean_rate_pps(), base.mean_rate_pps());
    }

    #[test]
    fn overload_bursts_replay_per_seed() {
        let p = ArrivalProcess::OverloadBursts {
            base: Box::new(ArrivalProcess::OnOff {
                rate_pps: 1e6,
                peak_pps: 10e6,
                mean_burst: 16.0,
            }),
            surge: 3.0,
            on_ns: 200_000,
            period_ns: 700_000,
        };
        let run = || {
            let mut rng = Rng::seed_from_u64(21);
            let mut g = p.generator();
            (0..10_000).map(|_| g.next_gap_ns(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "must fit its period")]
    fn overload_bursts_window_must_fit_the_period() {
        let _ = ArrivalProcess::OverloadBursts {
            base: Box::new(ArrivalProcess::Cbr { rate_pps: 1e6 }),
            surge: 2.0,
            on_ns: 2_000_000,
            period_ns: 1_000_000,
        }
        .generator();
    }
}
