//! Packet-size distributions.
//!
//! §2 of the paper notes the community convention of reporting both
//! packets per second at minimum size and data rates over packet mixes;
//! these distributions supply both kinds of workload.

use apples_rng::Rng;

/// Minimum Ethernet frame size (bytes, excluding preamble/IFG).
pub const MIN_FRAME: u32 = 64;
/// Maximum standard Ethernet frame size.
pub const MAX_FRAME: u32 = 1518;

/// The RFC 2544 recommended frame sizes for Ethernet benchmarking.
pub const RFC2544_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 1280, 1518];

/// A distribution over packet sizes in bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketSizeDist {
    /// Every packet has the same size.
    Fixed(u32),
    /// Simple IMIX: 64 B (7 parts), 570 B (4 parts), 1518 B (1 part) —
    /// the classic approximation of Internet mixes.
    Imix,
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Smallest frame, bytes.
        min: u32,
        /// Largest frame, bytes.
        max: u32,
    },
    /// Weighted empirical mix of `(size, weight)` entries.
    Empirical(Vec<(u32, f64)>),
    /// Bounded Pareto over `[min, max]` with tail exponent `alpha`:
    /// the heavy-tailed size mix of real transfers (many small frames,
    /// rare large ones), truncated to valid frame sizes.
    BoundedPareto {
        /// Smallest frame, bytes.
        min: u32,
        /// Largest frame, bytes.
        max: u32,
        /// Tail exponent (smaller = heavier tail); must be positive.
        alpha: f64,
    },
}

impl PacketSizeDist {
    /// Samples a packet size.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        match self {
            PacketSizeDist::Fixed(s) => *s,
            PacketSizeDist::Imix => {
                // 7:4:1 over 64/570/1518.
                let r = rng.range_u32(0, 12);
                if r < 7 {
                    64
                } else if r < 11 {
                    570
                } else {
                    1518
                }
            }
            PacketSizeDist::Uniform { min, max } => rng.range_u32_inclusive(*min, *max),
            PacketSizeDist::Empirical(entries) => {
                assert!(!entries.is_empty(), "empirical mix must not be empty");
                let total: f64 = entries.iter().map(|(_, w)| *w).sum();
                assert!(total > 0.0, "empirical mix weights must sum to > 0");
                let mut x = rng.range_f64(0.0, total);
                for (size, w) in entries {
                    if x < *w {
                        return *size;
                    }
                    x -= w;
                }
                // lint: allow(P1, reason = "invariant: entries asserted non-empty at the top of this arm; reached only via float round-off in the weight walk")
                entries.last().expect("non-empty").0
            }
            PacketSizeDist::BoundedPareto { min, max, alpha } => {
                assert!(min <= max, "min must not exceed max");
                assert!(*alpha > 0.0, "alpha must be positive");
                // Inverse-transform sampling of the bounded Pareto CDF.
                let (l, h, a) = (f64::from(*min), f64::from(*max), *alpha);
                let u: f64 = rng.next_f64();
                let la = l.powf(a);
                let ha = h.powf(a);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
                (x.round() as u32).clamp(*min, *max)
            }
        }
    }

    /// The distribution's mean size in bytes (exact, not sampled).
    pub fn mean_bytes(&self) -> f64 {
        match self {
            PacketSizeDist::Fixed(s) => f64::from(*s),
            PacketSizeDist::Imix => (7.0 * 64.0 + 4.0 * 570.0 + 1518.0) / 12.0,
            PacketSizeDist::Uniform { min, max } => (f64::from(*min) + f64::from(*max)) / 2.0,
            PacketSizeDist::Empirical(entries) => {
                let total: f64 = entries.iter().map(|(_, w)| *w).sum();
                entries.iter().map(|(s, w)| f64::from(*s) * w).sum::<f64>() / total
            }
            PacketSizeDist::BoundedPareto { min, max, alpha } => {
                // Closed-form mean of the bounded Pareto (alpha != 1).
                let (l, h, a) = (f64::from(*min), f64::from(*max), *alpha);
                if (a - 1.0).abs() < 1e-9 {
                    // alpha = 1: L*H/(H-L) * ln(H/L).
                    l * h / (h - l) * (h / l).ln()
                } else {
                    (l.powf(a) / (1.0 - (l / h).powf(a)))
                        * (a / (a - 1.0))
                        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn fixed_always_returns_the_size() {
        let d = PacketSizeDist::Fixed(64);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 64);
        }
        assert_eq!(d.mean_bytes(), 64.0);
    }

    #[test]
    fn imix_hits_only_the_three_sizes_with_roughly_right_mix() {
        let d = PacketSizeDist::Imix;
        let mut r = rng();
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..12_000 {
            *counts.entry(d.sample(&mut r)).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3);
        let c64 = counts[&64] as f64 / 12_000.0;
        let c570 = counts[&570] as f64 / 12_000.0;
        let c1518 = counts[&1518] as f64 / 12_000.0;
        assert!((c64 - 7.0 / 12.0).abs() < 0.02, "64B fraction {c64}");
        assert!((c570 - 4.0 / 12.0).abs() < 0.02, "570B fraction {c570}");
        assert!((c1518 - 1.0 / 12.0).abs() < 0.02, "1518B fraction {c1518}");
    }

    #[test]
    fn imix_mean_matches_closed_form() {
        assert!((PacketSizeDist::Imix.mean_bytes() - 353.833).abs() < 0.01);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = PacketSizeDist::Uniform { min: 100, max: 200 };
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((100..=200).contains(&s));
        }
        assert_eq!(d.mean_bytes(), 150.0);
    }

    #[test]
    fn empirical_respects_weights() {
        let d = PacketSizeDist::Empirical(vec![(64, 0.9), (1518, 0.1)]);
        let mut r = rng();
        let small = (0..10_000).filter(|_| d.sample(&mut r) == 64).count();
        assert!((small as f64 / 10_000.0 - 0.9).abs() < 0.02);
        assert!((d.mean_bytes() - (0.9 * 64.0 + 0.1 * 1518.0)).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = PacketSizeDist::Imix;
        let a: Vec<u32> = {
            let mut r = Rng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u32> = {
            let mut r = Rng::seed_from_u64(7);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_skews_small() {
        let d = PacketSizeDist::BoundedPareto { min: 64, max: 1518, alpha: 1.2 };
        let mut r = rng();
        let mut small = 0u32;
        let mut sum = 0u64;
        const N: u32 = 20_000;
        for _ in 0..N {
            let s = d.sample(&mut r);
            assert!((64..=1518).contains(&s), "size {s} out of bounds");
            if s < 128 {
                small += 1;
            }
            sum += u64::from(s);
        }
        // Heavy tail means most packets are near the minimum…
        assert!(f64::from(small) / f64::from(N) > 0.5, "small fraction {small}/{N}");
        // …and the empirical mean matches the closed form within noise.
        let emp = sum as f64 / f64::from(N);
        let exact = d.mean_bytes();
        assert!((emp - exact).abs() / exact < 0.05, "empirical {emp} vs exact {exact}");
    }

    #[test]
    fn bounded_pareto_alpha_one_mean() {
        let d = PacketSizeDist::BoundedPareto { min: 100, max: 1000, alpha: 1.0 };
        // L*H/(H-L)*ln(H/L) = 100*1000/900 * ln(10) = 255.84.
        assert!((d.mean_bytes() - 255.843).abs() < 0.01, "{}", d.mean_bytes());
    }

    #[test]
    fn rfc2544_set_is_the_standard_seven() {
        assert_eq!(RFC2544_SIZES.len(), 7);
        assert_eq!(RFC2544_SIZES[0], MIN_FRAME);
        assert_eq!(RFC2544_SIZES[6], MAX_FRAME);
    }
}
