//! Packet-trace capture and replay.
//!
//! A [`Trace`] is a materialized packet sequence — either recorded from
//! a generator (so the *exact* workload of an experiment can be shipped
//! with a paper) or imported from CSV (so external traces can drive the
//! simulator). The CSV schema is deliberately minimal and documented:
//! `t_ns,size_bytes,flow,src_ip,dst_ip,src_port,dst_port,proto`.

use crate::flows::FiveTuple;
use crate::spec::{PacketStub, WorkloadSpec};
use std::fmt;

/// A materialized, replayable packet sequence.
///
/// # Examples
///
/// ```
/// use apples_workload::{Trace, WorkloadSpec};
///
/// let spec = WorkloadSpec::cbr(1_000_000.0, 64, 8, 7);
/// let trace = Trace::record(&spec, 1_000_000); // 1 ms of traffic
/// let csv = trace.to_csv();
/// assert_eq!(Trace::from_csv(&csv).unwrap(), trace); // lossless round trip
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    packets: Vec<PacketStub>,
    flows: usize,
}

/// Errors importing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A row did not have exactly 8 columns.
    BadColumnCount {
        /// 1-based data-row number.
        row: usize,
        /// Columns found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based data-row number.
        row: usize,
        /// Column name.
        column: &'static str,
    },
    /// Timestamps went backwards.
    NonMonotonic {
        /// 1-based data-row number where time decreased.
        row: usize,
    },
    /// The header row was missing or wrong.
    BadHeader,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadColumnCount { row, found } => {
                write!(f, "row {row}: expected 8 columns, found {found}")
            }
            TraceError::BadField { row, column } => write!(f, "row {row}: bad '{column}' field"),
            TraceError::NonMonotonic { row } => {
                write!(f, "row {row}: timestamps must be non-decreasing")
            }
            TraceError::BadHeader => write!(f, "missing or malformed header row"),
        }
    }
}

impl std::error::Error for TraceError {}

/// The CSV header emitted and required.
pub const CSV_HEADER: &str = "t_ns,size_bytes,flow,src_ip,dst_ip,src_port,dst_port,proto";

impl Trace {
    /// Records `duration_ns` of a workload spec into a trace.
    pub fn record(spec: &WorkloadSpec, duration_ns: u64) -> Self {
        let packets = spec.packets_for(duration_ns);
        Trace { packets, flows: spec.flows.max(1) }
    }

    /// Builds a trace from explicit packets (must be time-ordered).
    pub fn from_packets(packets: Vec<PacketStub>) -> Result<Self, TraceError> {
        for (i, w) in packets.windows(2).enumerate() {
            if w[1].t_ns < w[0].t_ns {
                return Err(TraceError::NonMonotonic { row: i + 2 });
            }
        }
        let flows = packets.iter().map(|p| p.flow as usize + 1).max().unwrap_or(1);
        Ok(Trace { packets, flows })
    }

    /// The packets, in arrival order.
    pub fn packets(&self) -> &[PacketStub] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Flow-index space size (for per-flow statistics).
    pub fn flows(&self) -> usize {
        self.flows
    }

    /// Trace duration (last arrival time), ns.
    pub fn duration_ns(&self) -> u64 {
        self.packets.last().map_or(0, |p| p.t_ns)
    }

    /// Average offered load in bits/second over the trace duration
    /// (wire bits, including the 20 B per-frame overhead).
    pub fn offered_load_bps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        let bits: u64 = self.packets.iter().map(|p| u64::from(p.size_bytes + 20) * 8).sum();
        bits as f64 / (d as f64 * 1e-9)
    }

    /// Serializes the trace as CSV (schema: [`CSV_HEADER`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.packets.len() * 48 + 64);
        out.push_str(CSV_HEADER);
        out.push('\n');
        for p in &self.packets {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.t_ns,
                p.size_bytes,
                p.flow,
                p.tuple.src_ip,
                p.tuple.dst_ip,
                p.tuple.src_port,
                p.tuple.dst_port,
                p.tuple.proto
            ));
        }
        out
    }

    /// Parses a CSV trace (schema: [`CSV_HEADER`]).
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == CSV_HEADER => {}
            _ => return Err(TraceError::BadHeader),
        }
        let mut packets = Vec::new();
        for (i, line) in lines.enumerate() {
            let row = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 8 {
                return Err(TraceError::BadColumnCount { row, found: cols.len() });
            }
            fn field<T: std::str::FromStr>(
                s: &str,
                row: usize,
                column: &'static str,
            ) -> Result<T, TraceError> {
                s.trim().parse().map_err(|_| TraceError::BadField { row, column })
            }
            packets.push(PacketStub {
                t_ns: field(cols[0], row, "t_ns")?,
                size_bytes: field(cols[1], row, "size_bytes")?,
                flow: field(cols[2], row, "flow")?,
                tuple: FiveTuple {
                    src_ip: field(cols[3], row, "src_ip")?,
                    dst_ip: field(cols[4], row, "dst_ip")?,
                    src_port: field(cols[5], row, "src_port")?,
                    dst_port: field(cols[6], row, "dst_port")?,
                    proto: field(cols[7], row, "proto")?,
                },
            });
        }
        Trace::from_packets(packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::cbr(1e6, 400, 8, 42)
    }

    #[test]
    fn record_materializes_the_generator_exactly() {
        let t = Trace::record(&spec(), 1_000_000);
        assert_eq!(t.packets(), spec().packets_for(1_000_000).as_slice());
        assert!((t.len() as i64 - 1000).abs() <= 1);
        assert_eq!(t.flows(), 8);
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        let t = Trace::record(&spec(), 500_000);
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv).expect("parses");
        assert_eq!(back.packets(), t.packets());
    }

    #[test]
    fn offered_load_matches_the_spec() {
        let t = Trace::record(&spec(), 10_000_000);
        // 1 Mpps * 420 wire bytes * 8 = 3.36 Gbps.
        assert!((t.offered_load_bps() - 3.36e9).abs() / 3.36e9 < 0.01, "{}", t.offered_load_bps());
    }

    #[test]
    fn bad_inputs_are_reported_with_rows() {
        assert_eq!(Trace::from_csv("nope\n1,2"), Err(TraceError::BadHeader));
        let bad_cols = format!("{CSV_HEADER}\n1,2,3\n");
        assert_eq!(
            Trace::from_csv(&bad_cols),
            Err(TraceError::BadColumnCount { row: 1, found: 3 })
        );
        let bad_field = format!("{CSV_HEADER}\n1,x,0,0,0,0,0,6\n");
        assert_eq!(
            Trace::from_csv(&bad_field),
            Err(TraceError::BadField { row: 1, column: "size_bytes" })
        );
        let backwards = format!("{CSV_HEADER}\n100,64,0,0,0,0,0,6\n50,64,0,0,0,0,0,6\n");
        assert_eq!(Trace::from_csv(&backwards), Err(TraceError::NonMonotonic { row: 2 }));
    }

    #[test]
    fn empty_and_blank_lines_are_tolerated() {
        let t = Trace::from_csv(&format!("{CSV_HEADER}\n\n")).expect("parses");
        assert!(t.is_empty());
        assert_eq!(t.duration_ns(), 0);
        assert_eq!(t.offered_load_bps(), 0.0);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = TraceError::BadField { row: 3, column: "proto" };
        assert!(e.to_string().contains("row 3"));
        assert!(e.to_string().contains("proto"));
    }
}
