//! Store property battery (seeded, deterministic):
//!
//! (a) same key → byte-identical artifact, every time;
//! (b) any single digest-component change re-addresses exactly the
//!     dependent DAG subtree and nothing else;
//! (c) GC never deletes a reachable artifact — random DAGs, random
//!     kept roots, reachability checked by ancestor closure.

use apples_core::digest::CacheKey;
use apples_rng::Rng;
use apples_store::{Dag, Lookup, NodeId, Store};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("apples-store-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn random_payload(rng: &mut Rng) -> Vec<u8> {
    let len = rng.range_usize(0, 300);
    (0..len).map(|_| rng.range_u8_inclusive(0, 255)).collect()
}

fn random_key(rng: &mut Rng) -> CacheKey {
    let mut key = CacheKey::new();
    for i in 0..rng.range_usize(1, 5) {
        key.push(format!("c{i}"), format!("{:x}", rng.next_u64()));
    }
    key
}

/// (a) Same key → byte-identical artifact; republishing under the same
/// key, or adding entries under other keys, never changes what the
/// original key serves.
#[test]
fn same_key_serves_byte_identical_payloads() {
    let store = Store::open(temp_root("identity"));
    let mut rng = Rng::seed_from_u64(0x1DE7);
    for round in 0..50 {
        let key = random_key(&mut rng);
        let payload = random_payload(&mut rng);
        let name = format!("exp{round}");
        store.publish("run", &name, &key, &payload).expect("publish");
        for _ in 0..3 {
            let (decision, got) = store.lookup("run", &name, &key);
            assert_eq!(decision, Lookup::Hit, "round {round}");
            assert_eq!(got.as_deref(), Some(payload.as_slice()), "round {round}");
        }
        // Republish the same bytes (a concurrent xp would) — still identical.
        store.publish("run", &name, &key, &payload).expect("republish");
        let (_, got) = store.lookup("run", &name, &key);
        assert_eq!(got.as_deref(), Some(payload.as_slice()));
        // A different key for the same name never shadows the original.
        let other = random_key(&mut rng).with("extra", format!("{round}"));
        store.publish("run", &name, &other, &random_payload(&mut rng)).expect("publish other");
        let (decision, got) = store.lookup("run", &name, &key);
        assert_eq!(decision, Lookup::Hit, "round {round}: other key shadowed the entry");
        assert_eq!(got.as_deref(), Some(payload.as_slice()));
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// A random layered DAG: every non-root node picks 1–3 random earlier
/// nodes as parents. Returns the dag and per-node component names so a
/// test can flip a single component.
fn random_dag(rng: &mut Rng, nodes: usize) -> Dag {
    let mut dag = Dag::new();
    for i in 0..nodes {
        let parents: Vec<NodeId> = if i == 0 {
            Vec::new()
        } else {
            let count = rng.range_usize(1, i.min(3) + 1);
            let mut picked = BTreeSet::new();
            for _ in 0..count {
                picked.insert(rng.range_usize(0, i));
            }
            picked.into_iter().map(NodeId).collect()
        };
        let own = CacheKey::new()
            .with("seed", format!("{:x}", rng.next_u64()))
            .with("config", format!("{:x}", rng.next_u64()));
        dag.add("run", format!("n{i}"), own, &parents).expect("add");
    }
    dag
}

/// (b) Flipping one component of one node re-addresses exactly that
/// node and its transitive descendants — nothing else.
#[test]
fn single_component_change_re_addresses_exactly_the_subtree() {
    let mut rng = Rng::seed_from_u64(0x5AB7);
    for round in 0..40 {
        let nodes = rng.range_usize(5, 25);
        let dag = random_dag(&mut rng, nodes);
        let before = dag.effective_keys();

        // Rebuild the same DAG with exactly one component of one node
        // flipped (DAGs are append-only, so "mutate" = reconstruct).
        let victim = rng.range_usize(0, nodes);
        let mut changed = Dag::new();
        for (i, node) in dag.nodes().iter().enumerate() {
            let own = if i == victim {
                node.own.clone().with("config", "flipped")
            } else {
                node.own.clone()
            };
            changed.add(&node.kind, &node.name, own, &node.parents).expect("rebuild");
        }
        let after = changed.effective_keys();

        let expected_changed: BTreeSet<usize> =
            std::iter::once(victim).chain(dag.descendants(NodeId(victim))).collect();
        for i in 0..nodes {
            let moved = before[i].digest() != after[i].digest();
            assert_eq!(
                moved,
                expected_changed.contains(&i),
                "round {round}: node {i} (victim {victim}) moved={moved}"
            );
        }
    }
}

/// Ancestor closure of a set of roots (the artifacts a partial rebuild
/// of those roots still needs).
fn ancestors_of(dag: &Dag, roots: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut keep = roots.clone();
    for i in (0..dag.len()).rev() {
        if keep.contains(&i) {
            for p in &dag.nodes()[i].parents {
                keep.insert(p.0);
            }
        }
    }
    keep
}

/// (c) GC never deletes a reachable artifact: populate a store from a
/// random DAG, keep the ancestor closure of random roots, gc, and
/// check every kept entry survived and every other entry (plus tmp
/// litter) is gone.
#[test]
fn gc_never_deletes_a_reachable_artifact() {
    let mut rng = Rng::seed_from_u64(0x6C6C);
    for round in 0..25 {
        let store = Store::open(temp_root(&format!("gc-{round}")));
        let nodes = rng.range_usize(5, 20);
        let dag = random_dag(&mut rng, nodes);
        let effective = dag.effective_keys();
        let names = dag.entry_names(&effective);
        for (node, key) in dag.nodes().iter().zip(&effective) {
            store.publish(&node.kind, &node.name, key, &random_payload(&mut rng)).expect("publish");
        }
        // Orphans: entries under keys nothing references anymore.
        for i in 0..rng.range_usize(1, 5) {
            store
                .publish("run", &format!("orphan{i}"), &random_key(&mut rng), b"old")
                .expect("publish orphan");
        }
        std::fs::write(store.root().join("run").join("x@0.tmp.1.2"), b"litter").expect("litter");

        let mut roots = BTreeSet::new();
        for _ in 0..rng.range_usize(1, 4) {
            roots.insert(rng.range_usize(0, nodes));
        }
        let keep = ancestors_of(&dag, &roots);
        let expected: BTreeSet<String> = keep.iter().map(|&i| names[i].clone()).collect();
        let report = store.gc(&expected).expect("gc");

        assert_eq!(report.kept, keep.len(), "round {round}");
        for &i in &keep {
            let node = &dag.nodes()[i];
            let (decision, _) = store.lookup(&node.kind, &node.name, &effective[i]);
            assert_eq!(decision, Lookup::Hit, "round {round}: reachable {} deleted", names[i]);
        }
        for i in 0..nodes {
            if !keep.contains(&i) {
                let node = &dag.nodes()[i];
                let (decision, _) = store.lookup(&node.kind, &node.name, &effective[i]);
                assert_eq!(decision, Lookup::Miss, "round {round}: orphan {} survived", names[i]);
            }
        }
        assert!(!store.root().join("run").join("x@0.tmp.1.2").exists(), "tmp litter survived");
        let _ = std::fs::remove_dir_all(store.root());
    }
}

/// (b) at the store level too: each provenance component flip lands as
/// a stale entry whose diff names exactly the flipped component.
#[test]
fn every_provenance_component_flip_is_detected_by_name() {
    let store = Store::open(temp_root("components"));
    let base = CacheKey::new()
        .with("seed", "1")
        .with("scheduler", "wheel")
        .with("fault", "none")
        .with("config", "abcd")
        .with("toolchain", "unrecorded")
        .with("rev", "unrecorded");
    store.publish("run", "exp", &base, b"artifact").expect("publish");
    for (component, flipped) in [
        ("seed", "2"),
        ("scheduler", "heap"),
        ("fault", "f00d"),
        ("config", "dcba"),
        ("toolchain", "rustc 1.99"),
        ("rev", "deadbeef"),
    ] {
        let changed = base.clone().with(component, flipped);
        let (decision, payload) = store.lookup("run", "exp", &changed);
        assert!(payload.is_none());
        match decision {
            Lookup::Stale(diff) => {
                assert_eq!(diff.len(), 1, "{component}: {diff:?}");
                assert_eq!(diff[0].name, component);
                assert_eq!(diff[0].new.as_deref(), Some(flipped));
            }
            other => panic!("{component}: expected stale, got {other:?}"),
        }
        // The unflipped key still hits.
        assert_eq!(store.lookup("run", "exp", &base).0, Lookup::Hit);
    }
    let _ = std::fs::remove_dir_all(store.root());
}
