//! Crash and concurrency battery: a writer killed mid-artifact must
//! read back as a miss (torn), never a hit; concurrent publishes on
//! the same key must leave one complete entry, never an interleaving.

use apples_core::digest::CacheKey;
use apples_rng::Rng;
use apples_store::{Lookup, Store};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("apples-store-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn key() -> CacheKey {
    CacheKey::new().with("seed", "1").with("config", "abcd")
}

/// Kill-the-writer simulation: truncate the entry at random offsets
/// under a seeded loop. Every truncation must read as torn (or, for a
/// zero-length remnant, at worst a detectable non-hit) and re-running
/// the producer must restore a clean hit.
#[test]
fn truncation_at_any_offset_is_never_served() {
    let store = Store::open(temp_root("truncate"));
    let mut rng = Rng::seed_from_u64(0x70A2);
    for round in 0..60 {
        let payload: Vec<u8> =
            (0..rng.range_usize(1, 400)).map(|_| rng.range_u8_inclusive(0, 255)).collect();
        let path = store.publish("run", "exp", &key(), &payload).expect("publish");
        let full = std::fs::read(&path).expect("read back");
        let cut = rng.range_usize(0, full.len());
        std::fs::write(&path, &full[..cut]).expect("truncate");

        let (decision, served) = store.lookup("run", "exp", &key());
        assert!(served.is_none(), "round {round}: served {} bytes from a torn entry", cut);
        assert!(
            matches!(decision, Lookup::Torn(_)),
            "round {round}: cut at {cut}/{} read as {decision:?}",
            full.len()
        );

        // The producer re-runs (a store re-publish) and the entry heals.
        store.publish("run", "exp", &key(), &payload).expect("republish");
        let (decision, served) = store.lookup("run", "exp", &key());
        assert_eq!(decision, Lookup::Hit, "round {round}");
        assert_eq!(served.as_deref(), Some(payload.as_slice()), "round {round}");
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// Single corrupted byte anywhere in the file: never a hit.
#[test]
fn bit_corruption_is_never_served() {
    let store = Store::open(temp_root("bitflip"));
    let mut rng = Rng::seed_from_u64(0xB17F);
    let payload = b"forty-two bytes of deterministic artifact".to_vec();
    for round in 0..40 {
        let path = store.publish("run", "exp", &key(), &payload).expect("publish");
        let mut bytes = std::fs::read(&path).expect("read back");
        let at = rng.range_usize(0, bytes.len());
        bytes[at] ^= 1 << rng.range_u8_inclusive(0, 7);
        std::fs::write(&path, &bytes).expect("corrupt");
        let (decision, served) = store.lookup("run", "exp", &key());
        assert!(served.is_none(), "round {round}: served a corrupted entry (byte {at})");
        assert!(
            matches!(decision, Lookup::Torn(_)),
            "round {round}: flip at {at} read as {decision:?}"
        );
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// Two concurrent `xp` invocations racing the same key (the real suite
/// publishes identical bytes; the stress variant races different bytes
/// to prove renames cannot interleave): after every race the entry is
/// complete and equals exactly one contender's payload.
#[test]
fn concurrent_publishes_on_one_key_never_corrupt_the_entry() {
    let store = Store::open(temp_root("race"));
    let a = vec![b'a'; 4096];
    let b = vec![b'b'; 4096];
    for round in 0..30 {
        let (store_a, store_b) = (store.clone(), store.clone());
        let (pa, pb) = (a.clone(), b.clone());
        std::thread::scope(|scope| {
            let ta = scope.spawn(move || store_a.publish("run", "exp", &key(), &pa));
            let tb = scope.spawn(move || store_b.publish("run", "exp", &key(), &pb));
            ta.join().expect("writer a").expect("publish a");
            tb.join().expect("writer b").expect("publish b");
        });
        let (decision, served) = store.lookup("run", "exp", &key());
        assert_eq!(decision, Lookup::Hit, "round {round}");
        let served = served.expect("payload");
        assert!(
            served == a || served == b,
            "round {round}: entry is an interleaving ({} bytes)",
            served.len()
        );
    }
    // The suite's real race: same bytes from both writers.
    let payload = b"identical artifact".to_vec();
    for _ in 0..30 {
        let (store_a, store_b) = (store.clone(), store.clone());
        let (pa, pb) = (payload.clone(), payload.clone());
        std::thread::scope(|scope| {
            scope.spawn(move || store_a.publish("run", "exp2", &key(), &pa));
            scope.spawn(move || store_b.publish("run", "exp2", &key(), &pb));
        });
        let (decision, served) = store.lookup("run", "exp2", &key());
        assert_eq!(decision, Lookup::Hit);
        assert_eq!(served.as_deref(), Some(payload.as_slice()));
    }
    let _ = std::fs::remove_dir_all(store.root());
}
