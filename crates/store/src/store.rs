//! The on-disk store: lookup, publish, invalidate, GC.
//!
//! Layout: `<root>/<kind>/<name>@<16-hex-digest>` where the digest is
//! the FNV-1a digest of the entry's *effective* cache key. Publishes go
//! through a tmp file in the same directory plus an atomic rename, so
//! two concurrent `xp` invocations racing on the same key leave one
//! complete entry, never an interleaving. A hit requires the stored
//! footer key to be component-for-component equal to the expected key —
//! the cached artifact is provably stamped with the provenance it is
//! served under, not assumed to be.

use crate::entry::{decode, encode, Decoded};
use apples_core::digest::{CacheKey, KeyDiff};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of a store lookup for one `(kind, name, key)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present under the expected key; payload is byte-valid.
    Hit,
    /// Entries exist for this `(kind, name)` but under different keys;
    /// the diff names the components that changed (newest entry wins
    /// as the comparison point).
    Stale(Vec<KeyDiff>),
    /// No entry for this `(kind, name)` at all.
    Miss,
    /// An entry file exists at the expected address but fails footer
    /// validation — a torn write. Always re-run, never serve.
    Torn(String),
}

impl Lookup {
    /// Short lowercase tag used by `--explain` and the CI greps.
    pub fn tag(&self) -> &'static str {
        match self {
            Lookup::Hit => "hit",
            Lookup::Stale(_) => "stale",
            Lookup::Miss => "miss",
            Lookup::Torn(_) => "torn",
        }
    }
}

/// What `gc` did.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Entries that matched the expected set and were kept.
    pub kept: usize,
    /// Store-relative paths removed (orphaned entries + tmp litter).
    pub removed: Vec<String>,
}

/// Handle on a store root directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// Distinguishes this process's publishes racing with each other.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens a store at `root`. No filesystem access happens until the
    /// first lookup or publish; directories are created lazily.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into() }
    }

    /// The default root: `$APPLES_STORE_DIR` (the sanctioned env
    /// override path, like `APPLES_TOOLCHAIN`), else `results/store`
    /// relative to the working directory.
    pub fn default_root() -> PathBuf {
        match std::env::var("APPLES_STORE_DIR") {
            Ok(v) if !v.is_empty() => PathBuf::from(v),
            _ => PathBuf::from("results").join("store"),
        }
    }

    /// The store root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn kind_dir(&self, kind: &str) -> PathBuf {
        self.root.join(kind)
    }

    /// Absolute path of the entry for `(kind, name)` under `digest`.
    pub fn entry_path(&self, kind: &str, name: &str, digest: &str) -> PathBuf {
        self.kind_dir(kind).join(format!("{name}@{digest}"))
    }

    /// Splits an entry file name into `(name, digest)`; `None` for
    /// files that are not entries (tmp litter, READMEs).
    fn split_entry(file_name: &str) -> Option<(&str, &str)> {
        let (name, digest) = file_name.rsplit_once('@')?;
        (digest.len() == 16 && digest.chars().all(|c| c.is_ascii_hexdigit()))
            .then_some((name, digest))
    }

    /// Entries recorded for `(kind, name)`, as `(digest, path)` pairs
    /// in ascending digest order.
    fn entries_for(&self, kind: &str, name: &str) -> Vec<(String, PathBuf)> {
        let Ok(dir) = std::fs::read_dir(self.kind_dir(kind)) else {
            return Vec::new();
        };
        let mut out: Vec<(String, PathBuf)> = dir
            .flatten()
            .filter_map(|e| {
                let file_name = e.file_name().to_string_lossy().into_owned();
                let (n, d) = Store::split_entry(&file_name)?;
                (n == name).then(|| (d.to_owned(), e.path()))
            })
            .collect();
        out.sort();
        out
    }

    /// Looks up `(kind, name)` under `key`. Returns the decision plus
    /// the payload when (and only when) the decision is a hit.
    pub fn lookup(&self, kind: &str, name: &str, key: &CacheKey) -> (Lookup, Option<Vec<u8>>) {
        let expected = key.digest();
        let path = self.entry_path(kind, name, &expected);
        match std::fs::read(&path) {
            Ok(bytes) => match decode(&bytes) {
                Decoded::Valid { payload, key: stored } => {
                    if stored.canonical() == key.canonical() {
                        (Lookup::Hit, Some(payload))
                    } else {
                        // Digest collision or a tampered footer: the
                        // address matched but the recorded key does
                        // not. Never serve it.
                        (Lookup::Torn("footer key does not match its address".to_owned()), None)
                    }
                }
                Decoded::Torn(why) => (Lookup::Torn(why), None),
            },
            Err(_) => {
                // No entry at the expected address. Older entries for
                // the same (kind, name) make this *stale* and give us a
                // concrete key to diff against; pick the
                // lexicographically last digest so the choice is
                // deterministic.
                let others = self.entries_for(kind, name);
                let Some((_, other_path)) = others.last() else {
                    return (Lookup::Miss, None);
                };
                match std::fs::read(other_path).ok().map(|b| decode(&b)) {
                    Some(Decoded::Valid { key: stored, .. }) => {
                        (Lookup::Stale(key.diff(&stored)), None)
                    }
                    _ => (Lookup::Miss, None),
                }
            }
        }
    }

    /// Publishes `payload` for `(kind, name)` under `key`: encode with
    /// footer, write to a tmp file in the same directory, then rename
    /// into place atomically. Returns the final entry path.
    pub fn publish(
        &self,
        kind: &str,
        name: &str,
        key: &CacheKey,
        payload: &[u8],
    ) -> io::Result<PathBuf> {
        let dir = self.kind_dir(kind);
        std::fs::create_dir_all(&dir)?;
        let digest = key.digest();
        let final_path = self.entry_path(kind, name, &digest);
        let tmp = dir.join(format!(
            "{name}@{digest}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, encode(payload, key))?;
        match std::fs::rename(&tmp, &final_path) {
            Ok(()) => Ok(final_path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Removes every entry whose name equals `id` or starts with
    /// `id:` (sweep points / figures of that experiment), across all
    /// kinds. Returns the store-relative paths removed. This is the
    /// `GOLDEN_REGEN=1` hook: regenerating an experiment's fixture
    /// must evict its cached artifacts.
    pub fn invalidate(&self, id: &str) -> io::Result<Vec<String>> {
        let prefix = format!("{id}:");
        let mut removed = Vec::new();
        for (kind, file_name, path) in self.walk_entries()? {
            let Some((name, _)) = Store::split_entry(&file_name) else {
                continue;
            };
            if name == id || name.starts_with(&prefix) {
                std::fs::remove_file(&path)?;
                removed.push(format!("{kind}/{file_name}"));
            }
        }
        removed.sort();
        Ok(removed)
    }

    /// Garbage collection: removes every entry file not in `expected`
    /// (store-relative `kind/name@digest` names), plus any abandoned
    /// tmp files. Files that are not entries at all (a README, notes)
    /// are never touched — GC can only delete what publish can create.
    pub fn gc(&self, expected: &BTreeSet<String>) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for (kind, file_name, path) in self.walk_entries()? {
            let relative = format!("{kind}/{file_name}");
            let is_entry = Store::split_entry(&file_name).is_some();
            let is_tmp_litter = file_name.contains(".tmp.");
            if is_entry && expected.contains(&relative) {
                report.kept += 1;
            } else if is_entry || is_tmp_litter {
                std::fs::remove_file(&path)?;
                report.removed.push(relative);
            }
        }
        report.removed.sort();
        Ok(report)
    }

    /// All files under `<root>/<kind>/` as `(kind, file_name, path)`.
    fn walk_entries(&self) -> io::Result<Vec<(String, String, PathBuf)>> {
        let mut out = Vec::new();
        let root = match std::fs::read_dir(&self.root) {
            Ok(dir) => dir,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for kind_entry in root.flatten() {
            if !kind_entry.path().is_dir() {
                continue;
            }
            let kind = kind_entry.file_name().to_string_lossy().into_owned();
            for file in std::fs::read_dir(kind_entry.path())?.flatten() {
                if file.path().is_file() {
                    out.push((
                        kind.clone(),
                        file.file_name().to_string_lossy().into_owned(),
                        file.path(),
                    ));
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let root =
            std::env::temp_dir().join(format!("apples-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Store::open(root)
    }

    fn key(config: &str) -> CacheKey {
        CacheKey::new().with("seed", "1").with("config", config)
    }

    #[test]
    fn miss_then_publish_then_hit_round_trip() {
        let store = temp_store("roundtrip");
        let k = key("abcd");
        assert_eq!(store.lookup("run", "fig1", &k).0, Lookup::Miss);
        store.publish("run", "fig1", &k, b"payload").expect("publish");
        let (decision, payload) = store.lookup("run", "fig1", &k);
        assert_eq!(decision, Lookup::Hit);
        assert_eq!(payload.as_deref(), Some(&b"payload"[..]));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn changed_key_reads_as_stale_with_component_diff() {
        let store = temp_store("stale");
        store.publish("run", "fig1", &key("old"), b"payload").expect("publish");
        let (decision, payload) = store.lookup("run", "fig1", &key("new"));
        assert!(payload.is_none());
        match decision {
            Lookup::Stale(diff) => {
                assert_eq!(diff.len(), 1);
                assert_eq!(diff[0].name, "config");
                assert_eq!(diff[0].old.as_deref(), Some("old"));
                assert_eq!(diff[0].new.as_deref(), Some("new"));
            }
            other => panic!("expected stale, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn torn_entry_is_never_served() {
        let store = temp_store("torn");
        let k = key("abcd");
        let path = store.publish("run", "fig1", &k, b"a torn tale").expect("publish");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let (decision, payload) = store.lookup("run", "fig1", &k);
        assert!(matches!(decision, Lookup::Torn(_)), "got {decision:?}");
        assert!(payload.is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn invalidate_evicts_the_id_and_its_sweep_points_only() {
        let store = temp_store("invalidate");
        let k = key("abcd");
        store.publish("run", "fig1", &k, b"a").expect("publish");
        store.publish("figure", "fig1:table", &k, b"b").expect("publish");
        store.publish("run", "fig1b", &k, b"c").expect("publish");
        let removed = store.invalidate("fig1").expect("invalidate");
        assert_eq!(removed.len(), 2, "{removed:?}");
        assert_eq!(store.lookup("run", "fig1", &k).0, Lookup::Miss);
        assert_eq!(store.lookup("run", "fig1b", &k).0, Lookup::Hit, "prefix must not overmatch");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_expected_removes_orphans_and_spares_non_entries() {
        let store = temp_store("gc");
        let k = key("abcd");
        let kept_path = store.publish("run", "fig1", &k, b"keep me").expect("publish");
        store.publish("run", "orphan", &k, b"drop me").expect("publish");
        std::fs::write(store.root().join("run").join("x@123.tmp.9.9"), b"litter")
            .expect("tmp litter");
        std::fs::write(store.root().join("run").join("README.md"), b"docs").expect("readme");
        let expected: BTreeSet<String> = [format!("run/fig1@{}", k.digest())].into_iter().collect();
        let report = store.gc(&expected).expect("gc");
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed.len(), 2, "{:?}", report.removed);
        assert!(kept_path.exists());
        assert!(store.root().join("run").join("README.md").exists());
        let _ = std::fs::remove_dir_all(store.root());
    }
}
