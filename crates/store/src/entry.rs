//! On-disk entry format: payload + trailing length/digest footer.
//!
//! An entry is the artifact's exact payload bytes followed by a footer
//! that records the cache key the payload was produced under, the
//! payload length, and an FNV-1a digest of the payload. The footer
//! *trails* the payload deliberately: a writer killed mid-flight leaves
//! a file whose footer is absent, truncated, or describes bytes that
//! are no longer all there — every one of those reads as *torn*, never
//! as a hit. (Writes also go through tmp-file + atomic rename, so a
//! torn final path only appears if the filesystem itself loses the
//! rename; the footer is the belt to that suspender.)

use apples_core::digest::{fnv1a_hex, CacheKey};

/// Marker line that separates payload from footer. An entry is valid
/// only when the `len` field points exactly at the marker, so payloads
/// that happen to *contain* the marker still round-trip.
pub const FOOTER_MARKER: &str = "\n==apples-store v1==\n";

/// Result of decoding an entry file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// Footer present and consistent: payload digest and length match.
    Valid {
        /// The artifact bytes exactly as published.
        payload: Vec<u8>,
        /// The cache key recorded in the footer.
        key: CacheKey,
    },
    /// Anything else — missing/truncated footer, length or digest
    /// mismatch, unparseable key. The reason is for `--explain`.
    Torn(String),
}

/// Encodes `payload` + footer for `key` into the bytes written to disk.
pub fn encode(payload: &[u8], key: &CacheKey) -> Vec<u8> {
    let footer = format!(
        "{FOOTER_MARKER}key: {}\nlen: {}\nfnv: {}\n",
        key.canonical(),
        payload.len(),
        fnv1a_hex(payload)
    );
    let mut out = Vec::with_capacity(payload.len() + footer.len());
    out.extend_from_slice(payload);
    out.extend_from_slice(footer.as_bytes());
    out
}

fn footer_line<'a>(footer: &'a str, label: &str) -> Result<&'a str, String> {
    footer
        .lines()
        .find_map(|l| l.strip_prefix(label))
        .ok_or_else(|| format!("footer missing `{label}` line"))
}

/// Decodes entry bytes, validating the footer against the payload.
pub fn decode(bytes: &[u8]) -> Decoded {
    let torn = |why: String| Decoded::Torn(why);
    // The declared length tells us where the marker must sit; search
    // from the *end* so payload bytes containing the marker cannot
    // shadow the real footer.
    let marker = FOOTER_MARKER.as_bytes();
    let Some(marker_at) = rfind(bytes, marker) else {
        return torn("no footer marker (truncated write?)".to_owned());
    };
    let footer = match std::str::from_utf8(&bytes[marker_at + marker.len()..]) {
        Ok(s) => s,
        Err(_) => return torn("footer is not UTF-8".to_owned()),
    };
    let len_str = match footer_line(footer, "len: ") {
        Ok(s) => s,
        Err(e) => return torn(e),
    };
    let Ok(len) = len_str.trim().parse::<usize>() else {
        return torn(format!("unparseable len field: {len_str}"));
    };
    if len != marker_at {
        return torn(format!("len field says {len} but footer sits at byte {marker_at}"));
    }
    let payload = &bytes[..len];
    let fnv = match footer_line(footer, "fnv: ") {
        Ok(s) => s.trim(),
        Err(e) => return torn(e),
    };
    if fnv != fnv1a_hex(payload) {
        return torn(format!("payload digest mismatch (footer {fnv})"));
    }
    let key_str = match footer_line(footer, "key: ") {
        Ok(s) => s,
        Err(e) => return torn(e),
    };
    let key = match CacheKey::parse(key_str.trim_end()) {
        Ok(k) => k,
        Err(e) => return torn(format!("unparseable footer key: {e}")),
    };
    if !footer.ends_with('\n') {
        return torn("footer not newline-terminated (truncated write?)".to_owned());
    }
    Decoded::Valid { payload: payload.to_vec(), key }
}

/// Last occurrence of `needle` in `haystack` (std has no byte rfind).
fn rfind(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).rev().find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CacheKey {
        CacheKey::new().with("seed", "1").with("config", "abcd")
    }

    #[test]
    fn encode_decode_round_trips() {
        let payload = b"report body\nwith lines\n";
        let bytes = encode(payload, &key());
        match decode(&bytes) {
            Decoded::Valid { payload: p, key: k } => {
                assert_eq!(p, payload);
                assert_eq!(k, key());
            }
            Decoded::Torn(why) => panic!("torn: {why}"),
        }
    }

    #[test]
    fn payload_containing_the_marker_still_round_trips() {
        let payload = format!("prefix{FOOTER_MARKER}key: fake=1\nlen: 6\nfnv: 0\nsuffix");
        let bytes = encode(payload.as_bytes(), &key());
        match decode(&bytes) {
            Decoded::Valid { payload: p, .. } => assert_eq!(p, payload.as_bytes()),
            Decoded::Torn(why) => panic!("torn: {why}"),
        }
    }

    #[test]
    fn every_truncation_is_torn_never_valid_with_wrong_payload() {
        let payload = b"0123456789abcdef";
        let bytes = encode(payload, &key());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Decoded::Valid { payload: p, .. } => {
                    panic!("cut at {cut} decoded as valid ({} bytes)", p.len())
                }
                Decoded::Torn(_) => {}
            }
        }
    }

    #[test]
    fn corrupted_payload_byte_is_torn() {
        let mut bytes = encode(b"hello world", &key());
        bytes[3] ^= 0x40;
        assert!(matches!(decode(&bytes), Decoded::Torn(_)));
    }

    #[test]
    fn empty_payload_is_fine() {
        let bytes = encode(b"", &key());
        assert!(matches!(decode(&bytes), Decoded::Valid { .. }));
    }
}
