//! Planning: resolve a DAG against a store into per-node decisions.
//!
//! A plan walks the DAG once, computes every node's effective key, and
//! asks the store for a decision per node. Hits carry their payload so
//! the driver can serve cached artifacts without a second read; every
//! other decision means the node's producer must re-run. The rendered
//! form is the `--explain` output: one line per node with the decision
//! tag and, for stale nodes, the digest components that changed.

use crate::dag::Dag;
use crate::store::{Lookup, Store};
use apples_core::digest::CacheKey;

/// One node's resolution against the store.
#[derive(Debug, Clone)]
pub struct PlannedNode {
    /// Index into the DAG's node vector.
    pub index: usize,
    /// The node's effective cache key (own + parent digests).
    pub effective: CacheKey,
    /// The store's decision for this node.
    pub decision: Lookup,
    /// Cached payload — present iff the decision is [`Lookup::Hit`].
    pub payload: Option<Vec<u8>>,
}

/// A resolved plan over a whole DAG, in topological node order.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Per-node resolutions, index-aligned with the DAG.
    pub nodes: Vec<PlannedNode>,
}

/// Resolves `dag` against `store`. With `assume_miss` (the `--no-cache`
/// path) every node is planned as a miss without touching the store.
pub fn plan(dag: &Dag, store: &Store, assume_miss: bool) -> Plan {
    let effective = dag.effective_keys();
    let nodes = dag
        .nodes()
        .iter()
        .zip(effective)
        .enumerate()
        .map(|(index, (node, effective))| {
            let (decision, payload) = if assume_miss {
                (Lookup::Miss, None)
            } else {
                store.lookup(&node.kind, &node.name, &effective)
            };
            PlannedNode { index, effective, decision, payload }
        })
        .collect();
    Plan { nodes }
}

impl Plan {
    /// Count of nodes with the given decision tag.
    pub fn count(&self, tag: &str) -> usize {
        self.nodes.iter().filter(|n| n.decision.tag() == tag).count()
    }

    /// True when every node is a hit.
    pub fn is_full_hit(&self) -> bool {
        self.count("hit") == self.nodes.len()
    }

    /// `--explain` rendering: one `  <tag> <kind>/<name> @<digest>`
    /// line per node in topological order, stale nodes annotated with
    /// the changed components, torn nodes with the detection reason.
    pub fn render_explain(&self, dag: &Dag) -> String {
        let mut out = String::new();
        for planned in &self.nodes {
            let node = dag.node(crate::dag::NodeId(planned.index));
            out.push_str(&format!(
                "  {:<5} {} @{}",
                planned.decision.tag(),
                node.label(),
                planned.effective.digest()
            ));
            match &planned.decision {
                Lookup::Stale(diff) => {
                    let parts: Vec<String> = diff.iter().map(|d| d.render()).collect();
                    out.push_str(&format!(" ({})", parts.join(", ")));
                }
                Lookup::Torn(why) => out.push_str(&format!(" ({why})")),
                _ => {}
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let root =
            std::env::temp_dir().join(format!("apples-store-plan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Store::open(root)
    }

    fn chain() -> Dag {
        let mut dag = Dag::new();
        let a = dag.add("scenario", "calib", CacheKey::new().with("calib", "1"), &[]).unwrap();
        let b = dag.add("run", "fig1", CacheKey::new().with("seed", "1"), &[a]).unwrap();
        dag.add("report", "fig1", CacheKey::new().with("fmt", "md"), &[b]).unwrap();
        dag
    }

    #[test]
    fn cold_plan_is_all_miss_and_warms_to_full_hit() {
        let store = temp_store("warm");
        let dag = chain();
        let cold = plan(&dag, &store, false);
        assert_eq!(cold.count("miss"), 3);
        for planned in &cold.nodes {
            let node = dag.node(crate::dag::NodeId(planned.index));
            store
                .publish(&node.kind, &node.name, &planned.effective, b"artifact")
                .expect("publish");
        }
        let warm = plan(&dag, &store, false);
        assert!(warm.is_full_hit(), "{}", warm.render_explain(&dag));
        assert_eq!(warm.nodes[1].payload.as_deref(), Some(&b"artifact"[..]));
        // --no-cache ignores the warm store entirely.
        assert_eq!(plan(&dag, &store, true).count("miss"), 3);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn explain_names_the_changed_component() {
        let store = temp_store("explain");
        let dag = chain();
        for planned in &plan(&dag, &store, false).nodes {
            let node = dag.node(crate::dag::NodeId(planned.index));
            store
                .publish(&node.kind, &node.name, &planned.effective, b"artifact")
                .expect("publish");
        }
        // Same DAG shape, but the run's seed component flipped.
        let mut dag2 = Dag::new();
        let a2 = dag2.add("scenario", "calib", CacheKey::new().with("calib", "1"), &[]).unwrap();
        let b2 = dag2.add("run", "fig1", CacheKey::new().with("seed", "2"), &[a2]).unwrap();
        dag2.add("report", "fig1", CacheKey::new().with("fmt", "md"), &[b2]).unwrap();
        let replanned = plan(&dag2, &store, false);
        let explain = replanned.render_explain(&dag2);
        assert_eq!(replanned.count("hit"), 1, "{explain}");
        assert_eq!(replanned.count("stale"), 2, "{explain}");
        assert!(explain.contains("seed: 1 -> 2"), "{explain}");
        assert!(explain.contains("stale run/fig1"), "{explain}");
        let _ = std::fs::remove_dir_all(store.root());
    }
}
