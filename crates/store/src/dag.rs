//! The experiment DAG: typed nodes, effective keys, subtree queries.
//!
//! `xp all` models one suite run as a DAG of `kind/name` nodes
//! (scenario → fault sweep points → run → report → figure). Each node
//! carries an *own* key (the digest components it directly depends on);
//! its *effective* key folds in every parent's effective digest, so a
//! change anywhere upstream re-addresses exactly the downstream subtree
//! and nothing else. Nodes are added parents-first, which makes the
//! node vector a topological order by construction — no cycle check or
//! sort pass needed.

use apples_core::digest::CacheKey;
use std::collections::BTreeMap;

/// Opaque handle to a node in a [`Dag`]. Indices are topological:
/// a parent's id is always smaller than any child's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One DAG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Artifact kind (`scenario`, `fault`, `run`, `report`, `figure`).
    pub kind: String,
    /// Artifact name within the kind (experiment id, `id:sweep-point`).
    pub name: String,
    /// Digest components this node contributes itself.
    pub own: CacheKey,
    /// Direct parents (always lower-indexed).
    pub parents: Vec<NodeId>,
}

impl Node {
    /// `kind/name` — the store path stem for this node's artifact.
    pub fn label(&self) -> String {
        format!("{}/{}", self.kind, self.name)
    }
}

/// A parents-first DAG of cache-keyed artifacts.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    nodes: Vec<Node>,
    index: BTreeMap<(String, String), usize>,
}

impl Dag {
    /// An empty DAG.
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Adds a node. Parents must already be in the DAG (their `NodeId`s
    /// came from earlier `add` calls), which is what keeps indices
    /// topological.
    ///
    /// Re-adding an existing `(kind, name)` with the *same* own key and
    /// parents returns the existing id — this is how shared upstream
    /// nodes (the calibration scenario, a fault sweep point used by two
    /// experiments) are deduplicated. Re-adding with a *different* key
    /// or parent set is a construction bug and errors out.
    pub fn add(
        &mut self,
        kind: impl Into<String>,
        name: impl Into<String>,
        own: CacheKey,
        parents: &[NodeId],
    ) -> Result<NodeId, String> {
        let (kind, name) = (kind.into(), name.into());
        for p in parents {
            if p.0 >= self.nodes.len() {
                return Err(format!("{kind}/{name}: parent id {} not in dag", p.0));
            }
        }
        if let Some(&existing) = self.index.get(&(kind.clone(), name.clone())) {
            let node = &self.nodes[existing];
            if node.own == own && node.parents == parents {
                return Ok(NodeId(existing));
            }
            return Err(format!("{kind}/{name}: re-added with different key or parents"));
        }
        let id = self.nodes.len();
        self.index.insert((kind.clone(), name.clone()), id);
        self.nodes.push(Node { kind, name, own, parents: to_vec(parents) });
        Ok(NodeId(id))
    }

    /// Sweep expansion: one node per sweep point, named `base:point`,
    /// all sharing `parents`. Returns the node ids in point order.
    pub fn sweep(
        &mut self,
        kind: &str,
        base: &str,
        points: &[(String, CacheKey)],
        parents: &[NodeId],
    ) -> Result<Vec<NodeId>, String> {
        points
            .iter()
            .map(|(point, own)| self.add(kind, format!("{base}:{point}"), own.clone(), parents))
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node id by `(kind, name)`.
    pub fn find(&self, kind: &str, name: &str) -> Option<NodeId> {
        self.index.get(&(kind.to_owned(), name.to_owned())).map(|&i| NodeId(i))
    }

    /// Effective key per node: own components plus one
    /// `parent/<kind>/<name>` component per parent carrying the
    /// parent's *effective* digest. Single forward pass — topological
    /// order guarantees parents are resolved first.
    pub fn effective_keys(&self) -> Vec<CacheKey> {
        let mut effective: Vec<CacheKey> = Vec::with_capacity(self.nodes.len());
        let mut digests: Vec<String> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut key = node.own.clone();
            for p in &node.parents {
                key.push(format!("parent/{}", self.nodes[p.0].label()), digests[p.0].clone());
            }
            digests.push(key.digest());
            effective.push(key);
        }
        effective
    }

    /// Transitive descendants of `id` (excluding `id` itself), as node
    /// indices in ascending order.
    pub fn descendants(&self, id: NodeId) -> Vec<usize> {
        let mut reached = vec![false; self.nodes.len()];
        reached[id.0] = true;
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate().skip(id.0 + 1) {
            if node.parents.iter().any(|p| reached[p.0]) {
                reached[i] = true;
                out.push(i);
            }
        }
        out
    }

    /// Store-relative entry file names (`kind/name@digest`) for every
    /// node, given the effective keys from [`Dag::effective_keys`].
    pub fn entry_names(&self, effective: &[CacheKey]) -> Vec<String> {
        self.nodes
            .iter()
            .zip(effective)
            .map(|(node, key)| format!("{}@{}", node.label(), key.digest()))
            .collect()
    }
}

fn to_vec(parents: &[NodeId]) -> Vec<NodeId> {
    parents.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str, value: &str) -> CacheKey {
        CacheKey::new().with(name, value)
    }

    fn diamond() -> (Dag, NodeId, NodeId, NodeId, NodeId) {
        let mut dag = Dag::new();
        let a = dag.add("scenario", "calib", k("calib", "1"), &[]).unwrap();
        let b = dag.add("run", "left", k("seed", "1"), &[a]).unwrap();
        let c = dag.add("run", "right", k("seed", "2"), &[a]).unwrap();
        let d = dag.add("report", "joint", k("fmt", "md"), &[b, c]).unwrap();
        (dag, a, b, c, d)
    }

    #[test]
    fn dedup_returns_existing_id_and_conflict_errors() {
        let (mut dag, a, b, ..) = diamond();
        assert_eq!(dag.add("run", "left", k("seed", "1"), &[a]).unwrap(), b);
        assert_eq!(dag.len(), 4);
        assert!(dag.add("run", "left", k("seed", "9"), &[a]).is_err(), "key conflict");
        assert!(dag.add("run", "left", k("seed", "1"), &[]).is_err(), "parent conflict");
    }

    #[test]
    fn forward_parent_references_are_rejected() {
        let mut dag = Dag::new();
        assert!(dag.add("run", "x", k("a", "1"), &[NodeId(0)]).is_err());
    }

    #[test]
    fn effective_keys_fold_parent_digests() {
        let (dag, a, b, ..) = diamond();
        let eff = dag.effective_keys();
        assert_eq!(eff[a.0].digest(), k("calib", "1").digest(), "root = own key");
        let expected_b = k("seed", "1").with("parent/scenario/calib", eff[a.0].digest());
        assert_eq!(eff[b.0].digest(), expected_b.digest());
    }

    #[test]
    fn upstream_change_re_addresses_exactly_the_subtree() {
        let (dag, a, b, c, d) = diamond();
        let before = dag.effective_keys();
        let mut changed = dag.clone();
        // Flip the left run's seed: left + joint move, calib + right stay.
        changed.nodes[b.0].own = k("seed", "99");
        let after = changed.effective_keys();
        assert_eq!(before[a.0].digest(), after[a.0].digest());
        assert_eq!(before[c.0].digest(), after[c.0].digest());
        assert_ne!(before[b.0].digest(), after[b.0].digest());
        assert_ne!(before[d.0].digest(), after[d.0].digest());
        assert_eq!(dag.descendants(b), vec![d.0]);
    }

    #[test]
    fn sweep_expands_one_node_per_point_and_dedups() {
        let mut dag = Dag::new();
        let root = dag.add("scenario", "calib", k("calib", "1"), &[]).unwrap();
        let points =
            vec![("light".to_owned(), k("sev", "0.25")), ("severe".to_owned(), k("sev", "1"))];
        let ids = dag.sweep("fault", "exp", &points, &[root]).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(dag.node(ids[0]).name, "exp:light");
        // A second experiment sharing the same sweep point dedups it.
        let again = dag.sweep("fault", "exp", &points, &[root]).unwrap();
        assert_eq!(again, ids);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn entry_names_embed_effective_digests() {
        let (dag, a, ..) = diamond();
        let eff = dag.effective_keys();
        let names = dag.entry_names(&eff);
        assert_eq!(names[a.0], format!("scenario/calib@{}", eff[a.0].digest()));
        assert!(names.iter().all(|n| n.len() > 17 && n.contains('@')));
    }
}
