//! # apples-store
//!
//! Content-addressed experiment store (ROADMAP item 2, after repx's
//! incremental pipelines): artifacts are cached under the FNV-1a digest
//! of a typed [`CacheKey`](apples_core::digest::CacheKey) built from
//! the PR-5 provenance stamp (seed, scheduler, fault digest, config
//! digest, toolchain, git rev), plus the upstream structure of a
//! hand-rolled DAG (scenario → fault sweep points → run → report →
//! figure). A warm `xp all` short-circuits every hit; any single digest
//! component change re-addresses exactly the dependent subtree.
//!
//! Guarantees, each carried by a module and gated by tests:
//!
//! - [`entry`] — a trailing length+digest footer makes torn writes
//!   detectable: a killed writer can only produce a *miss*, never a
//!   corrupt hit. Hits additionally require the footer's recorded key
//!   to equal the expected key component-for-component, so a cache hit
//!   is provably stamped with the provenance it is served under.
//! - [`store`] — publishes are tmp-file + atomic rename, so concurrent
//!   `xp` invocations on the same key cannot interleave; GC removes
//!   only unreachable entry files (things `publish` could have made),
//!   never documentation or foreign files.
//! - [`dag`] — parents-first construction keeps node order topological;
//!   effective keys fold parent digests, which is what scopes
//!   invalidation to a subtree. Sweep expansion dedups shared nodes.
//! - [`plan`] — one pass resolving DAG × store into hit/stale/miss/torn
//!   per node; the rendered form is `xp all --explain`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dag;
pub mod entry;
pub mod plan;
pub mod store;

pub use dag::{Dag, Node, NodeId};
pub use entry::{decode, encode, Decoded, FOOTER_MARKER};
pub use plan::{plan, Plan, PlannedNode};
pub use store::{GcReport, Lookup, Store};
