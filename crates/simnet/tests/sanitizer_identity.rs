//! The order-sanitizer's own identity gate: a sanitized run — with or
//! without the interleaving perturber — must produce **byte-identical**
//! measurements to a plain run, under both scheduler disciplines, with
//! batching, multi-stage offload pipelines, and fault plans in play.
//!
//! This is the oracle a future sharded engine will be held to: the
//! perturber delivers every same-timestamp equivalence class in a
//! shuffled (but seeded) order and restores canonical order with the
//! seq-keyed merge — exactly the epoch-barrier merge a sharded dispatch
//! would run. If any engine path secretly depends on pre-merge buffer
//! order, these tests break today instead of during that refactor.

use apples_simnet::fault::FaultSpec;
use apples_simnet::nf::firewall::{synth_rules, Action, Firewall};
use apples_simnet::nf::NfChain;
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::{Deployment, Measurement};
use apples_workload::WorkloadSpec;

const RUN_NS: u64 = 10_000_000;
const WARMUP_NS: u64 = 1_000_000;

fn firewall_chain(rules: usize) -> impl Fn() -> NfChain {
    move || NfChain::new(vec![Box::new(Firewall::new(synth_rules(rules, 0.05, 7), Action::Deny))])
}

type Contender = (&'static str, Box<dyn Fn() -> Deployment>);

/// The three contender shapes the worked example compares.
fn deployments() -> Vec<Contender> {
    vec![
        ("base-2c", Box::new(|| Deployment::cpu_host("base-2c", 2, firewall_chain(100)))),
        (
            "smartnic",
            Box::new(|| {
                Deployment::smartnic_offload("smartnic", 4, firewall_chain(100), 1, NfChain::empty)
            }),
        ),
        (
            "switch-2c",
            Box::new(|| {
                Deployment::switch_frontend("switch-2c", firewall_chain(100), 2, NfChain::empty)
            }),
        ),
    ]
}

fn assert_identical(name: &str, plain: &Measurement, sanitized: &Measurement, mode: &str) {
    assert_eq!(
        plain.throughput_bps.to_bits(),
        sanitized.throughput_bps.to_bits(),
        "{name}/{mode}: throughput diverged"
    );
    assert_eq!(
        plain.mean_latency_ns.to_bits(),
        sanitized.mean_latency_ns.to_bits(),
        "{name}/{mode}: mean latency diverged"
    );
    assert_eq!(
        plain.p99_latency_ns.to_bits(),
        sanitized.p99_latency_ns.to_bits(),
        "{name}/{mode}: p99 diverged"
    );
    assert_eq!(plain.policy_drops, sanitized.policy_drops, "{name}/{mode}: drops diverged");
    assert_eq!(plain.stages, sanitized.stages, "{name}/{mode}: stage reports diverged");
}

#[test]
fn sanitized_runs_are_byte_identical_across_contenders_and_schedulers() {
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    for (name, mk) in deployments() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let plain = mk().with_scheduler(kind).run(&wl, RUN_NS, WARMUP_NS);
            // Check-only sanitizer.
            let (checked, rep) =
                mk().with_scheduler(kind).run_sanitized(&wl, RUN_NS, WARMUP_NS, None);
            assert_identical(name, &plain, &checked, "check");
            assert!(rep.events > 0, "{name}: sanitizer saw no events");
            assert_eq!(rep.perturbed, 0, "{name}: check-only mode must not perturb");
            // Perturbed sanitizer: shuffled equivalence classes, same bytes.
            let (perturbed, _) =
                mk().with_scheduler(kind).run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(0xD15F));
            assert_identical(name, &plain, &perturbed, "perturb");
        }
    }
}

#[test]
fn batched_pipelines_exercise_the_perturber_on_multi_event_classes() {
    // A GPU batcher with unfused hops is the worst case a sharded merge
    // faces: every kernel completion re-enqueues its whole batch at one
    // timestamp, so the walk's re-drain tails are genuinely multi-event
    // and the perturber has real equivalence classes to shuffle.
    use apples_simnet::engine::BatchPolicy;
    let wl = WorkloadSpec::cbr(8e6, 1500, 16, 5);
    let mk = |fused: bool| {
        move || {
            Deployment::gpu_offload(
                "gpu-batch",
                BatchPolicy::new(32, 100_000, 15_000),
                firewall_chain(50),
            )
            .with_fusion(fused)
        }
    };
    for fused in [true, false] {
        let make = mk(fused);
        let plain = make().run(&wl, RUN_NS, WARMUP_NS);
        let (perturbed, rep) = make().run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(0xBEEF));
        assert_identical("gpu-batch", &plain, &perturbed, "perturb");
        if !fused {
            assert!(rep.max_bucket > 1, "batch completions must collide timestamps");
            assert!(rep.perturbed > 0, "perturber must have shuffled at least one class");
        }
    }
}

#[test]
fn sanitized_runs_survive_fault_plans_and_unfused_hops() {
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    let mk = || {
        Deployment::cpu_host("faulted", 2, firewall_chain(50))
            .with_faults(FaultSpec::at_severity(0.8))
    };
    let plain = mk().run(&wl, RUN_NS, WARMUP_NS);
    let (perturbed, _) = mk().run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(7));
    assert_identical("faulted", &plain, &perturbed, "perturb");
    assert_eq!(plain.injected_drops, perturbed.injected_drops);
    assert_eq!(plain.fault_drops, perturbed.fault_drops);

    // Unfused hops re-enqueue through the scheduler: a different event
    // population for the sanitizer to check, same bytes out.
    let mk2 = || {
        Deployment::smartnic_offload("unfused", 4, firewall_chain(50), 1, NfChain::empty)
            .with_fusion(false)
    };
    let unfused_plain = mk2().run(&wl, RUN_NS, WARMUP_NS);
    let (unfused_perturbed, rep) = mk2().run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(7));
    assert_identical("unfused", &unfused_plain, &unfused_perturbed, "perturb");
    assert!(rep.events > 0);
}

#[test]
fn perturbation_seed_does_not_leak_into_results() {
    // Different perturbation seeds shuffle differently but must land on
    // the same canonical order — and therefore the same bytes.
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    let mk = || Deployment::cpu_host("seeds", 2, firewall_chain(100));
    let (a, ra) = mk().run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(1));
    let (b, rb) = mk().run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(0xFFFF_FFFF));
    assert_identical("seeds", &a, &b, "cross-seed");
    // Both perturbed the same population of events.
    assert_eq!(ra.events, rb.events);
    assert_eq!(ra.buckets, rb.buckets);
}
