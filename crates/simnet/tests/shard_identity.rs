//! The sharded engine's identity gate: a run at any shard count must
//! produce **byte-identical** measurements to the serial engine —
//! across scheduler disciplines, fusion modes, fault severities, and
//! deployment shapes. This is the contract DESIGN.md §12 commits to;
//! the sanitizer-identity suite proved the seq-keyed merge discipline
//! canonicalizes any same-timestamp interleaving, and these tests hold
//! the epoch-barrier merge to exactly that oracle.

use apples_simnet::engine::BatchPolicy;
use apples_simnet::fault::FaultSpec;
use apples_simnet::nf::firewall::{synth_rules, Action, Firewall};
use apples_simnet::nf::NfChain;
use apples_simnet::sched::SchedulerKind;
use apples_simnet::system::{Deployment, Measurement};
use apples_workload::WorkloadSpec;

const RUN_NS: u64 = 10_000_000;
const WARMUP_NS: u64 = 1_000_000;

fn firewall_chain(rules: usize) -> impl Fn() -> NfChain {
    move || NfChain::new(vec![Box::new(Firewall::new(synth_rules(rules, 0.05, 7), Action::Deny))])
}

/// Bitwise equality over every field a run produces — floats compared
/// by to_bits so a single ULP of drift fails loudly.
fn assert_identical(name: &str, serial: &Measurement, sharded: &Measurement, mode: &str) {
    assert_eq!(
        serial.throughput_bps.to_bits(),
        sharded.throughput_bps.to_bits(),
        "{name}/{mode}: throughput_bps diverged"
    );
    assert_eq!(
        serial.throughput_pps.to_bits(),
        sharded.throughput_pps.to_bits(),
        "{name}/{mode}: throughput_pps diverged"
    );
    assert_eq!(
        serial.mean_latency_ns.to_bits(),
        sharded.mean_latency_ns.to_bits(),
        "{name}/{mode}: mean latency diverged"
    );
    assert_eq!(
        serial.p99_latency_ns.to_bits(),
        sharded.p99_latency_ns.to_bits(),
        "{name}/{mode}: p99 diverged"
    );
    assert_eq!(
        serial.loss_rate.to_bits(),
        sharded.loss_rate.to_bits(),
        "{name}/{mode}: loss rate diverged"
    );
    assert_eq!(
        serial.jain_index.map(f64::to_bits),
        sharded.jain_index.map(f64::to_bits),
        "{name}/{mode}: Jain index diverged"
    );
    assert_eq!(
        serial.watts.to_bits(),
        sharded.watts.to_bits(),
        "{name}/{mode}: power diverged (stage utilizations differ)"
    );
    assert_eq!(serial.policy_drops, sharded.policy_drops, "{name}/{mode}: policy drops diverged");
    assert_eq!(serial.fault_drops, sharded.fault_drops, "{name}/{mode}: fault drops diverged");
    assert_eq!(
        serial.injected_drops, sharded.injected_drops,
        "{name}/{mode}: injected drops diverged"
    );
    assert_eq!(serial.corrupted, sharded.corrupted, "{name}/{mode}: corruption count diverged");
    assert_eq!(serial.stages, sharded.stages, "{name}/{mode}: stage reports diverged");
}

type Contender = (&'static str, Box<dyn Fn() -> Deployment>);

/// Deployment shapes with genuinely shardable topology: declared-steer
/// fan-outs (cluster, RSS) and linear offload pipelines.
fn shardable_deployments() -> Vec<Contender> {
    vec![
        (
            "cluster-8x2",
            Box::new(|| {
                Deployment::replicated_cluster("cluster-8x2", 8, 2, 0.1, firewall_chain(100))
            }),
        ),
        ("rss-8c", Box::new(|| Deployment::cpu_host_rss("rss-8c", 8, firewall_chain(100)))),
        (
            "smartnic",
            Box::new(|| {
                Deployment::smartnic_offload("smartnic", 4, firewall_chain(100), 1, NfChain::empty)
            }),
        ),
        (
            "switch-2c",
            Box::new(|| {
                Deployment::switch_frontend("switch-2c", firewall_chain(100), 2, NfChain::empty)
            }),
        ),
    ]
}

#[test]
fn sharded_runs_are_byte_identical_across_shapes_schedulers_and_shard_counts() {
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    for (name, mk) in shardable_deployments() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let serial = mk().with_scheduler(kind).run(&wl, RUN_NS, WARMUP_NS);
            for shards in [1, 2, 4] {
                let sharded =
                    mk().with_scheduler(kind).with_shards(shards).run(&wl, RUN_NS, WARMUP_NS);
                assert_identical(name, &serial, &sharded, &format!("{}x{shards}", kind.label()));
            }
        }
    }
}

#[test]
fn sharded_runs_are_byte_identical_under_fault_plans_at_every_severity() {
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    for severity in [0.2, 0.5, 0.8, 1.0] {
        let mk = move || {
            Deployment::replicated_cluster("faulted-cluster", 4, 2, 0.1, firewall_chain(50))
                .with_faults(FaultSpec::at_severity(severity))
        };
        let serial = mk().run(&wl, RUN_NS, WARMUP_NS);
        for shards in [2, 4] {
            let sharded = mk().with_shards(shards).run(&wl, RUN_NS, WARMUP_NS);
            assert_identical(
                "faulted-cluster",
                &serial,
                &sharded,
                &format!("sev{severity}x{shards}"),
            );
        }
    }
}

#[test]
fn sharded_runs_are_byte_identical_with_fusion_off() {
    // Unfused hops re-enqueue through the scheduler, so cross-shard
    // merges interleave with a different local event population — the
    // bytes must not care.
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    for (name, mk) in shardable_deployments() {
        let serial = mk().with_fusion(false).run(&wl, RUN_NS, WARMUP_NS);
        let sharded = mk().with_fusion(false).with_shards(4).run(&wl, RUN_NS, WARMUP_NS);
        assert_identical(name, &serial, &sharded, "unfused-x4");
    }
}

#[test]
fn sharded_batched_pipeline_keeps_batch_timers_local_and_identical() {
    // The GPU batcher's kernel completions re-enqueue whole batches at
    // one timestamp; with the batch stage on its own shard, the timeout
    // and completion timers run on that shard's wheel alone.
    let wl = WorkloadSpec::cbr(8e6, 1500, 16, 5);
    for fused in [true, false] {
        let mk = move || {
            Deployment::gpu_offload(
                "gpu-batch",
                BatchPolicy::new(32, 100_000, 15_000),
                firewall_chain(50),
            )
            .with_fusion(fused)
        };
        let serial = mk().run(&wl, RUN_NS, WARMUP_NS);
        for shards in [2, 4] {
            let sharded = mk().with_shards(shards).run(&wl, RUN_NS, WARMUP_NS);
            assert_identical("gpu-batch", &serial, &sharded, &format!("fused={fused}x{shards}"));
        }
    }
}

#[test]
fn sanitizer_perturbation_on_a_sharded_run_keeps_the_bytes() {
    // Each shard forks the perturber with a distinct lane seed; the
    // per-shard Fisher–Yates shuffles must still canonicalize to the
    // serial bytes, and the merged report must have seen real work.
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    let mk = || Deployment::replicated_cluster("cluster-san", 8, 2, 0.1, firewall_chain(100));
    let serial = mk().run(&wl, RUN_NS, WARMUP_NS);
    for shards in [2, 4] {
        let (sharded, rep) =
            mk().with_shards(shards).run_sanitized(&wl, RUN_NS, WARMUP_NS, Some(0xD15F));
        assert_identical("cluster-san", &serial, &sharded, &format!("perturbed-x{shards}"));
        assert!(rep.events > 0, "sanitizer saw no events on the sharded run");
    }

    // An unfused batch pipeline gives the perturber genuinely
    // multi-event same-timestamp classes on the batch shard.
    let batched = WorkloadSpec::cbr(8e6, 1500, 16, 5);
    let mk2 = || {
        Deployment::gpu_offload(
            "gpu-san",
            BatchPolicy::new(32, 100_000, 15_000),
            firewall_chain(50),
        )
        .with_fusion(false)
    };
    let serial2 = mk2().run(&batched, RUN_NS, WARMUP_NS);
    let (sharded2, rep2) =
        mk2().with_shards(2).run_sanitized(&batched, RUN_NS, WARMUP_NS, Some(0xBEEF));
    assert_identical("gpu-san", &serial2, &sharded2, "perturbed-x2");
    assert!(rep2.max_bucket > 1, "batch completions must collide timestamps");
    assert!(rep2.perturbed > 0, "perturber never fired on the sharded batch run");
}

#[test]
fn randomized_scenario_severity_scheduler_shard_matrix_is_identical() {
    // Property-style sweep: a seeded xorshift walks a randomized slice
    // of the full scenario × severity × scheduler × fusion × shard-count
    // space each run of the suite (deterministically — the seed is
    // fixed), asserting serial/sharded identity at every point.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..6 {
        let r = next();
        let scenario = r % 3;
        let severity = [0.0, 0.3, 0.7, 1.0][(r >> 2) as usize % 4];
        let kind = if (r >> 4) % 2 == 0 { SchedulerKind::Wheel } else { SchedulerKind::Heap };
        let fused = (r >> 5) % 2 == 0;
        let shards = [2, 3, 4][(r >> 6) as usize % 3];
        let rate = [1e6, 2e6, 4e6][(r >> 8) as usize % 3];
        let mk = move || {
            let d = match scenario {
                0 => Deployment::replicated_cluster("rnd-cluster", 6, 2, 0.1, firewall_chain(60)),
                1 => Deployment::cpu_host_rss("rnd-rss", 6, firewall_chain(60)),
                _ => Deployment::smartnic_offload(
                    "rnd-nic",
                    4,
                    firewall_chain(60),
                    1,
                    NfChain::empty,
                ),
            };
            let d = d.with_scheduler(kind).with_fusion(fused);
            if severity > 0.0 {
                d.with_faults(FaultSpec::at_severity(severity))
            } else {
                d
            }
        };
        let wl = WorkloadSpec::cbr(rate, 1500, 16, 5);
        let serial = mk().run(&wl, RUN_NS, WARMUP_NS);
        let sharded = mk().with_shards(shards).run(&wl, RUN_NS, WARMUP_NS);
        assert_identical(
            "randomized",
            &serial,
            &sharded,
            &format!("scn{scenario}-sev{severity}-{}-fused{fused}-x{shards}", kind.label()),
        );
    }
}

#[test]
fn serial_fallback_is_silent_for_unshardable_topologies() {
    // A single-stage host cannot shard; with_shards must not change a
    // single byte (it falls back to the serial path).
    let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
    let mk = || Deployment::cpu_host("solo", 2, firewall_chain(100));
    let serial = mk().run(&wl, RUN_NS, WARMUP_NS);
    let sharded = mk().with_shards(4).run(&wl, RUN_NS, WARMUP_NS);
    assert_identical("solo", &serial, &sharded, "fallback");
}
