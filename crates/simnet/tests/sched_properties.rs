//! Property tests for the timing-wheel scheduler, with the binary heap
//! as the ordering oracle.
//!
//! The wheel's unit tests pin specific mechanisms (slot math, overflow
//! promotion); these tests instead drive *randomized fault/timer
//! schedules* — the shapes the fault-injection layer now generates —
//! through both disciplines and require identical drain streams:
//! horizon-straddling timers, events exactly at the 2^48 ns epoch
//! boundary, same-timestamp bursts, and near-`u64::MAX` wraparound.
//! Every push respects the module's one ordering contract (never push
//! earlier than the last drained bucket's timestamp).

use apples_rng::Rng;
use apples_simnet::sched::{EventScheduler, SchedulerKind};

const EPOCH: u64 = 1 << 48;

/// Drains both schedulers fully, asserting bucket-for-bucket equality,
/// and returns the total number of events drained.
fn drain_and_compare(wheel: &mut EventScheduler, heap: &mut EventScheduler, ctx: &str) -> usize {
    let mut wb = Vec::new();
    let mut hb = Vec::new();
    let mut drained = 0;
    loop {
        wheel.drain_bucket(&mut wb);
        heap.drain_bucket(&mut hb);
        assert_eq!(wb, hb, "{ctx}: drain streams diverged after {drained} events");
        if wb.is_empty() {
            assert!(wheel.is_empty() && heap.is_empty(), "{ctx}: empty bucket but events left");
            return drained;
        }
        drained += wb.len();
    }
}

/// Pushes the same `(t, seq, slot)` into both disciplines.
fn push_both(wheel: &mut EventScheduler, heap: &mut EventScheduler, t: u64, seq: u64) {
    wheel.push(t, seq, seq as usize);
    heap.push(t, seq, seq as usize);
}

fn pair() -> (EventScheduler, EventScheduler) {
    (EventScheduler::new(SchedulerKind::Wheel), EventScheduler::new(SchedulerKind::Heap))
}

#[test]
fn randomized_fault_schedules_match_the_heap_oracle() {
    // Interleaved push/drain over many seeds: the schedule mixes
    // near-term completions, fault-window timers at millisecond range,
    // and far-out recovery timers that cross the 2^48 ns horizon —
    // exactly what a FaultPlan's DeviceDown/DeviceUp events look like.
    for seed in 0..20u64 {
        let mut rng = Rng::seed_from_u64(0xFA17 ^ seed);
        let (mut wheel, mut heap) = pair();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut wb = Vec::new();
        let mut hb = Vec::new();
        for _ in 0..400 {
            // A burst of pushes at or after `now` (the contract).
            for _ in 0..rng.range_u64(1, 8) {
                let delta = match rng.range_u64(0, 10) {
                    0..=4 => rng.range_u64(0, 2_000),            // near-term service
                    5..=7 => rng.range_u64(100_000, 60_000_000), // fault windows
                    8 => rng.range_u64(EPOCH - 1_000, EPOCH + 1_000), // horizon straddle
                    _ => rng.range_u64(EPOCH, 3 * EPOCH),        // deep overflow
                };
                push_both(&mut wheel, &mut heap, now + delta, seq);
                seq += 1;
            }
            // Drain one bucket from each and compare.
            wheel.drain_bucket(&mut wb);
            heap.drain_bucket(&mut hb);
            assert_eq!(wb, hb, "seed {seed}: bucket diverged at t={now}");
            if let Some(&(t, _, _)) = wb.first() {
                now = t;
            }
        }
        drain_and_compare(&mut wheel, &mut heap, "tail");
    }
}

#[test]
fn timers_exactly_at_the_overflow_horizon() {
    // Events at EPOCH-1, EPOCH, and EPOCH+1 from a cursor at 0: the
    // first lives in the wheel, the others in the overflow tree; all
    // three must come back in (time, seq) order.
    let (mut wheel, mut heap) = pair();
    for (i, t) in [EPOCH - 1, EPOCH, EPOCH + 1, 2 * EPOCH - 1, 2 * EPOCH].iter().enumerate() {
        push_both(&mut wheel, &mut heap, *t, i as u64);
    }
    assert_eq!(drain_and_compare(&mut wheel, &mut heap, "horizon"), 5);
}

#[test]
fn same_timestamp_bursts_drain_in_seq_order_across_epochs() {
    // A same-time burst within the current epoch, another exactly on an
    // epoch boundary, and one deep in the overflow: each bucket must
    // hold the whole burst, sorted by seq, under both disciplines.
    let (mut wheel, mut heap) = pair();
    let mut seq = 0u64;
    for &t in &[7_777u64, EPOCH, 5 * EPOCH + 123] {
        // Push the burst in scrambled seq order.
        for k in [3u64, 0, 4, 1, 2] {
            push_both(&mut wheel, &mut heap, t, seq + k);
        }
        seq += 5;
    }
    let mut wb = Vec::new();
    for expect_t in [7_777u64, EPOCH, 5 * EPOCH + 123] {
        wheel.drain_bucket(&mut wb);
        let mut hb = Vec::new();
        heap.drain_bucket(&mut hb);
        assert_eq!(wb, hb);
        assert_eq!(wb.len(), 5, "burst at {expect_t} must drain as one bucket");
        assert!(wb.iter().all(|&(t, _, _)| t == expect_t));
        assert!(wb.windows(2).all(|w| w[0].1 < w[1].1), "seq order within bucket: {wb:?}");
    }
}

#[test]
fn wraparound_near_u64_max_stays_ordered() {
    // Cursors and timers in the last representable epochs: promotion
    // has no "next epoch end" to name (epoch_end overflows), and must
    // still hand back everything in order.
    let base = u64::MAX - 3 * EPOCH;
    let (mut wheel, mut heap) = pair();
    let mut rng = Rng::seed_from_u64(0xFEED);
    // An anchor event gets the cursor near the top of the range first,
    // respecting the never-push-earlier contract for what follows.
    push_both(&mut wheel, &mut heap, base, 0);
    let mut wb = Vec::new();
    let mut hb = Vec::new();
    wheel.drain_bucket(&mut wb);
    heap.drain_bucket(&mut hb);
    assert_eq!(wb, hb);
    for seq in 1..200u64 {
        let t = base + rng.range_u64(0, 3 * EPOCH);
        push_both(&mut wheel, &mut heap, t, seq);
    }
    push_both(&mut wheel, &mut heap, u64::MAX, 200);
    let drained = drain_and_compare(&mut wheel, &mut heap, "wraparound");
    assert_eq!(drained, 200);
}

#[test]
fn pushing_into_the_live_bucket_is_legal_and_ordered() {
    // The contract allows pushes at exactly the last drained timestamp;
    // both disciplines must merge them into the live bucket's position.
    let (mut wheel, mut heap) = pair();
    push_both(&mut wheel, &mut heap, 100, 0);
    push_both(&mut wheel, &mut heap, 200, 1);
    let mut wb = Vec::new();
    let mut hb = Vec::new();
    wheel.drain_bucket(&mut wb);
    heap.drain_bucket(&mut hb);
    assert_eq!(wb, hb);
    assert_eq!(wb[0].0, 100);
    // While "processing" t=100, schedule more work at t=100 and t=150.
    push_both(&mut wheel, &mut heap, 100, 2);
    push_both(&mut wheel, &mut heap, 150, 3);
    let drained = drain_and_compare(&mut wheel, &mut heap, "live-bucket");
    assert_eq!(drained, 3);
}
