//! Stage service models: how long a device takes to process a packet.
//!
//! The same NF chain costs different time on different hardware; these
//! models encode the difference:
//!
//! - [`NfService`]: a programmable core (host x86 or SmartNIC SoC core)
//!   pays the chain's cycle count at the core's clock, plus a fixed
//!   per-packet I/O overhead;
//! - [`FixedTime`]: a hardware match-action pipeline (programmable
//!   switch) executes the chain's *semantics* at a constant few-ns per
//!   packet — cycle counts do not apply to a pipelined ASIC;
//! - [`LineRate`]: a link or serializer whose service time is purely the
//!   packet's wire size over the rate.

use crate::fault::attempt_fails;
use crate::nf::{FailMode, NfChain, NfVerdict};
use crate::packet::Packet;

/// How a stage spends time on (and decides the fate of) a packet.
pub trait ServiceModel: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Processes a packet: the verdict and the service time in ns.
    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64);
}

/// Software packet processing on a programmable core.
pub struct NfService {
    chain: NfChain,
    clock_ghz: f64,
    overhead_cycles: u64,
    service_multiplier: f64,
    label: &'static str,
}

impl NfService {
    /// Creates a software service: `chain` executed at `clock_ghz` with
    /// `overhead_cycles` of per-packet I/O work (descriptor rings, cache
    /// misses) on top of the chain's own cycles.
    pub fn new(label: &'static str, chain: NfChain, clock_ghz: f64, overhead_cycles: u64) -> Self {
        assert!(clock_ghz > 0.0, "clock must be positive");
        NfService { chain, clock_ghz, overhead_cycles, service_multiplier: 1.0, label }
    }

    /// A host x86 core at 3 GHz with typical kernel-bypass I/O overhead.
    pub fn host_core(chain: NfChain) -> Self {
        NfService::new("x86-core", chain, 3.0, 300)
    }

    /// A host core in an `n`-core pool with memory/uncore contention:
    /// per-packet service inflates by `alpha` per additional active core
    /// — the standard first-order reason multi-core packet processing
    /// scales sub-linearly (the paper's 2-core baseline reaches 1.8x,
    /// not 2x).
    pub fn host_core_contended(chain: NfChain, cores: u32, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "contention factor must be non-negative");
        NfService::host_core(chain)
            .with_service_multiplier(1.0 + alpha * f64::from(cores.saturating_sub(1)))
    }

    /// A SmartNIC SoC core: lower clock, but cheaper I/O (no PCIe
    /// round-trip to reach the packet).
    pub fn smartnic_core(chain: NfChain) -> Self {
        NfService::new("smartnic-core", chain, 1.5, 100)
    }

    /// Scales every service time by `m` (contention, frequency throttling).
    pub fn with_service_multiplier(mut self, m: f64) -> Self {
        assert!(m > 0.0, "multiplier must be positive");
        self.service_multiplier = m;
        self
    }
}

impl ServiceModel for NfService {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (verdict, cycles) = self.chain.run(pkt);
        let ns = (self.overhead_cycles + cycles) as f64 / self.clock_ghz * self.service_multiplier;
        (verdict, ns.ceil() as u64)
    }
}

/// Hardware match-action processing at a fixed per-packet latency.
pub struct FixedTime {
    chain: NfChain,
    per_packet_ns: u64,
    label: &'static str,
}

impl FixedTime {
    /// Creates a fixed-latency service executing `chain` semantics.
    pub fn new(label: &'static str, chain: NfChain, per_packet_ns: u64) -> Self {
        FixedTime { chain, per_packet_ns, label }
    }

    /// A programmable-switch pipeline: ~400 ns port-to-port.
    pub fn switch_pipeline(chain: NfChain) -> Self {
        FixedTime::new("switch-pipeline", chain, 400)
    }
}

impl ServiceModel for FixedTime {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (verdict, _cycles) = self.chain.run(pkt);
        (verdict, self.per_packet_ns)
    }
}

/// A serializing link: service time = wire bits / rate.
pub struct LineRate {
    rate_bps: f64,
    label: &'static str,
}

impl LineRate {
    /// Creates a link of the given rate in bits/second.
    pub fn new(label: &'static str, rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        LineRate { rate_bps, label }
    }
}

impl ServiceModel for LineRate {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let ns = pkt.wire_bits() as f64 / self.rate_bps * 1e9;
        (NfVerdict::Forward, ns.ceil() as u64)
    }
}

/// Retry/timeout/backoff behaviour for a transiently failing device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per packet (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Probability an attempt fails transiently (device hiccup, lost
    /// completion). Decided by a per-`(seed, packet, attempt)` hash —
    /// stateless and schedule-independent.
    pub fail_prob: f64,
    /// Time charged waiting for a failed attempt to time out, ns.
    pub timeout_ns: u64,
    /// Base backoff before re-issuing; doubles per retry (exponential).
    pub backoff_ns: u64,
}

impl RetryPolicy {
    /// Creates a policy; panics on degenerate parameters.
    pub fn new(max_attempts: u32, fail_prob: f64, timeout_ns: u64, backoff_ns: u64) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!((0.0..=1.0).contains(&fail_prob), "probability in [0,1]");
        RetryPolicy { max_attempts, fail_prob, timeout_ns, backoff_ns }
    }
}

/// Wraps any [`ServiceModel`] with retry semantics: each attempt can
/// fail transiently, charging the timeout plus an exponentially growing
/// backoff; exhausting all attempts resolves by [`FailMode`] (open =
/// deliver the inner verdict anyway, closed = drop).
///
/// The inner model's NF chain runs exactly once per packet — retries
/// model *device-level* transport flakiness, not repeated NF execution,
/// so stateful NFs (NAT tables, DPI alert counters) see each packet
/// once regardless of how many attempts its delivery took.
pub struct RetryService {
    inner: Box<dyn ServiceModel>,
    policy: RetryPolicy,
    seed: u64,
    fail_mode: FailMode,
    retries: u64,
    gave_up: u64,
}

impl RetryService {
    /// Wraps `inner`. `seed` keys the per-packet failure decisions so a
    /// run is replayable from `(seed, policy)` alone.
    pub fn new(inner: Box<dyn ServiceModel>, policy: RetryPolicy, seed: u64) -> Self {
        RetryService { inner, policy, seed, fail_mode: FailMode::Open, retries: 0, gave_up: 0 }
    }

    /// What happens when every attempt fails: open delivers the inner
    /// verdict (degraded but alive), closed drops the packet.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Retries performed so far (attempts beyond each packet's first).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Packets whose attempts were exhausted.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }
}

impl ServiceModel for RetryService {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (verdict, inner_ns) = self.inner.serve(pkt);
        let mut total_ns = inner_ns;
        for attempt in 0..self.policy.max_attempts {
            if !attempt_fails(self.seed, pkt.id, attempt, self.policy.fail_prob) {
                return (verdict, total_ns);
            }
            // Failed attempt: wait out the timeout, back off, retry.
            let backoff = self.policy.backoff_ns.saturating_mul(1u64 << attempt.min(20));
            total_ns = total_ns.saturating_add(self.policy.timeout_ns).saturating_add(backoff);
            if attempt + 1 < self.policy.max_attempts {
                self.retries += 1;
            }
        }
        self.gave_up += 1;
        match self.fail_mode {
            FailMode::Open => (verdict, total_ns),
            FailMode::Closed => (NfVerdict::Drop, total_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{synth_rules, Action, Firewall};
    use apples_workload::FiveTuple;

    fn pkt(size: u32) -> Packet {
        Packet::new(
            1,
            0,
            FiveTuple {
                src_ip: 0x0A000001,
                dst_ip: 0xC0A80001,
                src_port: 9999,
                dst_port: 80,
                proto: 6,
            },
            size,
            0,
        )
    }

    #[test]
    fn host_core_charges_cycles_at_clock() {
        let fw = Firewall::new(synth_rules(100, 0.0, 1), Action::Allow);
        let mut svc = NfService::host_core(NfChain::new(vec![Box::new(fw)]));
        let (v, ns) = svc.serve(&pkt(1500));
        assert_eq!(v, NfVerdict::Forward);
        // ~(300 + 500 + scan) cycles at 3 GHz: high hundreds of ns.
        assert!(ns > 200 && ns < 2000, "service {ns} ns");
    }

    #[test]
    fn smartnic_core_is_slower_per_cycle_but_cheaper_io() {
        let mk = || {
            let fw = Firewall::new(synth_rules(100, 0.0, 1), Action::Allow);
            NfChain::new(vec![Box::new(fw) as Box<dyn crate::nf::NetworkFunction>])
        };
        let mut host = NfService::host_core(mk());
        let mut nic = NfService::smartnic_core(mk());
        let (_, h) = host.serve(&pkt(64));
        let (_, n) = nic.serve(&pkt(64));
        // Same cycle count, half the clock, lower overhead: NIC core is
        // slower per packet but not 2x slower.
        assert!(n > h, "nic {n} vs host {h}");
        assert!((n as f64) < 2.0 * h as f64);
    }

    #[test]
    fn switch_pipeline_is_size_independent() {
        let mut svc = FixedTime::switch_pipeline(NfChain::empty());
        let (_, small) = svc.serve(&pkt(64));
        let (_, large) = svc.serve(&pkt(1518));
        assert_eq!(small, 400);
        assert_eq!(large, 400);
        assert_eq!(svc.name(), "switch-pipeline");
    }

    #[test]
    fn line_rate_serialization_delay() {
        let mut link = LineRate::new("100G", 100e9);
        let (_, ns) = link.serve(&pkt(1500));
        // (1500+20)*8 bits / 100 Gbps = 121.6 ns.
        assert_eq!(ns, 122);
        let (_, ns64) = link.serve(&pkt(64));
        assert_eq!(ns64, 7); // 672 bits / 100G = 6.72 ns
    }

    #[test]
    fn verdicts_propagate_from_chain() {
        let fw = Firewall::new(vec![], Action::Deny);
        let mut svc = NfService::host_core(NfChain::new(vec![Box::new(fw)]));
        let (v, _) = svc.serve(&pkt(64));
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = NfService::new("bad", NfChain::empty(), 0.0, 0);
    }

    #[test]
    fn retry_never_fails_at_zero_probability() {
        let mut plain = NfService::host_core(NfChain::empty());
        let mut wrapped = RetryService::new(
            Box::new(NfService::host_core(NfChain::empty())),
            RetryPolicy::new(3, 0.0, 10_000, 1_000),
            42,
        );
        for i in 0..200u64 {
            let mut p = pkt(200);
            p.id = i;
            assert_eq!(plain.serve(&p), wrapped.serve(&p));
        }
        assert_eq!(wrapped.retries(), 0);
        assert_eq!(wrapped.gave_up(), 0);
    }

    #[test]
    fn retry_charges_timeout_and_backoff() {
        // fail_prob = 1: every attempt fails, so each packet pays the
        // full ladder: 3 * timeout + backoff * (1 + 2 + 4).
        let mut svc = RetryService::new(
            Box::new(FixedTime::new("fixed", NfChain::empty(), 100)),
            RetryPolicy::new(3, 1.0, 10_000, 1_000),
            42,
        );
        let (v, ns) = svc.serve(&pkt(64));
        assert_eq!(v, NfVerdict::Forward, "fail-open default delivers the inner verdict");
        assert_eq!(ns, 100 + 3 * 10_000 + 1_000 + 2_000 + 4_000);
        assert_eq!(svc.gave_up(), 1);
        assert_eq!(svc.retries(), 2);
    }

    #[test]
    fn retry_fail_closed_drops_on_exhaustion() {
        let mut svc = RetryService::new(
            Box::new(FixedTime::new("fixed", NfChain::empty(), 100)),
            RetryPolicy::new(2, 1.0, 5_000, 500),
            7,
        )
        .with_fail_mode(crate::nf::FailMode::Closed);
        let (v, _) = svc.serve(&pkt(64));
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn retry_decisions_are_replayable_and_rate_tracks_probability() {
        let run = || {
            let mut svc = RetryService::new(
                Box::new(FixedTime::new("fixed", NfChain::empty(), 100)),
                RetryPolicy::new(4, 0.2, 10_000, 1_000),
                99,
            );
            let times: Vec<u64> = (0..5_000u64)
                .map(|i| {
                    let mut p = pkt(64);
                    p.id = i;
                    svc.serve(&p).1
                })
                .collect();
            (times, svc.retries(), svc.gave_up())
        };
        let (a, retries, gave_up) = run();
        let (b, _, _) = run();
        assert_eq!(a, b, "same (seed, policy) must replay identically");
        let flaky = a.iter().filter(|&&ns| ns > 100).count() as f64 / a.len() as f64;
        assert!((flaky - 0.2).abs() < 0.03, "first-attempt failure rate {flaky} far from 0.2");
        assert!(retries > 0);
        // P(4 consecutive failures) = 0.2^4 = 0.16%: a handful of 5000.
        assert!(gave_up < 25, "gave up {gave_up}");
    }

    #[test]
    fn retry_runs_stateful_chain_once_per_packet() {
        use crate::nf::nat::Nat;
        let nat = Nat::new(0x01010101, 64);
        let mut svc = RetryService::new(
            Box::new(NfService::host_core(NfChain::new(vec![Box::new(nat)]))),
            RetryPolicy::new(3, 1.0, 1_000, 100),
            13,
        );
        // Same flow twice: the second serve must be a table *hit* even
        // though every delivery attempt failed — the chain ran once per
        // packet, not once per attempt.
        let (_, first) = svc.serve(&pkt(64));
        let (_, second) = svc.serve(&pkt(64));
        // Miss path costs more cycles than the hit path; both carry the
        // same retry penalty, so the second packet is strictly cheaper.
        assert!(second < first, "hit {second} should undercut miss {first}");
    }
}
