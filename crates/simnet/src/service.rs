//! Stage service models: how long a device takes to process a packet.
//!
//! The same NF chain costs different time on different hardware; these
//! models encode the difference:
//!
//! - [`NfService`]: a programmable core (host x86 or SmartNIC SoC core)
//!   pays the chain's cycle count at the core's clock, plus a fixed
//!   per-packet I/O overhead;
//! - [`FixedTime`]: a hardware match-action pipeline (programmable
//!   switch) executes the chain's *semantics* at a constant few-ns per
//!   packet — cycle counts do not apply to a pipelined ASIC;
//! - [`LineRate`]: a link or serializer whose service time is purely the
//!   packet's wire size over the rate.

use crate::nf::{NfChain, NfVerdict};
use crate::packet::Packet;

/// How a stage spends time on (and decides the fate of) a packet.
pub trait ServiceModel: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Processes a packet: the verdict and the service time in ns.
    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64);
}

/// Software packet processing on a programmable core.
pub struct NfService {
    chain: NfChain,
    clock_ghz: f64,
    overhead_cycles: u64,
    service_multiplier: f64,
    label: &'static str,
}

impl NfService {
    /// Creates a software service: `chain` executed at `clock_ghz` with
    /// `overhead_cycles` of per-packet I/O work (descriptor rings, cache
    /// misses) on top of the chain's own cycles.
    pub fn new(label: &'static str, chain: NfChain, clock_ghz: f64, overhead_cycles: u64) -> Self {
        assert!(clock_ghz > 0.0, "clock must be positive");
        NfService { chain, clock_ghz, overhead_cycles, service_multiplier: 1.0, label }
    }

    /// A host x86 core at 3 GHz with typical kernel-bypass I/O overhead.
    pub fn host_core(chain: NfChain) -> Self {
        NfService::new("x86-core", chain, 3.0, 300)
    }

    /// A host core in an `n`-core pool with memory/uncore contention:
    /// per-packet service inflates by `alpha` per additional active core
    /// — the standard first-order reason multi-core packet processing
    /// scales sub-linearly (the paper's 2-core baseline reaches 1.8x,
    /// not 2x).
    pub fn host_core_contended(chain: NfChain, cores: u32, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "contention factor must be non-negative");
        NfService::host_core(chain)
            .with_service_multiplier(1.0 + alpha * f64::from(cores.saturating_sub(1)))
    }

    /// A SmartNIC SoC core: lower clock, but cheaper I/O (no PCIe
    /// round-trip to reach the packet).
    pub fn smartnic_core(chain: NfChain) -> Self {
        NfService::new("smartnic-core", chain, 1.5, 100)
    }

    /// Scales every service time by `m` (contention, frequency throttling).
    pub fn with_service_multiplier(mut self, m: f64) -> Self {
        assert!(m > 0.0, "multiplier must be positive");
        self.service_multiplier = m;
        self
    }
}

impl ServiceModel for NfService {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (verdict, cycles) = self.chain.run(pkt);
        let ns = (self.overhead_cycles + cycles) as f64 / self.clock_ghz * self.service_multiplier;
        (verdict, ns.ceil() as u64)
    }
}

/// Hardware match-action processing at a fixed per-packet latency.
pub struct FixedTime {
    chain: NfChain,
    per_packet_ns: u64,
    label: &'static str,
}

impl FixedTime {
    /// Creates a fixed-latency service executing `chain` semantics.
    pub fn new(label: &'static str, chain: NfChain, per_packet_ns: u64) -> Self {
        FixedTime { chain, per_packet_ns, label }
    }

    /// A programmable-switch pipeline: ~400 ns port-to-port.
    pub fn switch_pipeline(chain: NfChain) -> Self {
        FixedTime::new("switch-pipeline", chain, 400)
    }
}

impl ServiceModel for FixedTime {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (verdict, _cycles) = self.chain.run(pkt);
        (verdict, self.per_packet_ns)
    }
}

/// A serializing link: service time = wire bits / rate.
pub struct LineRate {
    rate_bps: f64,
    label: &'static str,
}

impl LineRate {
    /// Creates a link of the given rate in bits/second.
    pub fn new(label: &'static str, rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        LineRate { rate_bps, label }
    }
}

impl ServiceModel for LineRate {
    fn name(&self) -> &'static str {
        self.label
    }

    fn serve(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let ns = pkt.wire_bits() as f64 / self.rate_bps * 1e9;
        (NfVerdict::Forward, ns.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{synth_rules, Action, Firewall};
    use apples_workload::FiveTuple;

    fn pkt(size: u32) -> Packet {
        Packet::new(
            1,
            0,
            FiveTuple {
                src_ip: 0x0A000001,
                dst_ip: 0xC0A80001,
                src_port: 9999,
                dst_port: 80,
                proto: 6,
            },
            size,
            0,
        )
    }

    #[test]
    fn host_core_charges_cycles_at_clock() {
        let fw = Firewall::new(synth_rules(100, 0.0, 1), Action::Allow);
        let mut svc = NfService::host_core(NfChain::new(vec![Box::new(fw)]));
        let (v, ns) = svc.serve(&pkt(1500));
        assert_eq!(v, NfVerdict::Forward);
        // ~(300 + 500 + scan) cycles at 3 GHz: high hundreds of ns.
        assert!(ns > 200 && ns < 2000, "service {ns} ns");
    }

    #[test]
    fn smartnic_core_is_slower_per_cycle_but_cheaper_io() {
        let mk = || {
            let fw = Firewall::new(synth_rules(100, 0.0, 1), Action::Allow);
            NfChain::new(vec![Box::new(fw) as Box<dyn crate::nf::NetworkFunction>])
        };
        let mut host = NfService::host_core(mk());
        let mut nic = NfService::smartnic_core(mk());
        let (_, h) = host.serve(&pkt(64));
        let (_, n) = nic.serve(&pkt(64));
        // Same cycle count, half the clock, lower overhead: NIC core is
        // slower per packet but not 2x slower.
        assert!(n > h, "nic {n} vs host {h}");
        assert!((n as f64) < 2.0 * h as f64);
    }

    #[test]
    fn switch_pipeline_is_size_independent() {
        let mut svc = FixedTime::switch_pipeline(NfChain::empty());
        let (_, small) = svc.serve(&pkt(64));
        let (_, large) = svc.serve(&pkt(1518));
        assert_eq!(small, 400);
        assert_eq!(large, 400);
        assert_eq!(svc.name(), "switch-pipeline");
    }

    #[test]
    fn line_rate_serialization_delay() {
        let mut link = LineRate::new("100G", 100e9);
        let (_, ns) = link.serve(&pkt(1500));
        // (1500+20)*8 bits / 100 Gbps = 121.6 ns.
        assert_eq!(ns, 122);
        let (_, ns64) = link.serve(&pkt(64));
        assert_eq!(ns64, 7); // 672 bits / 100G = 6.72 ns
    }

    #[test]
    fn verdicts_propagate_from_chain() {
        let fw = Firewall::new(vec![], Action::Deny);
        let mut svc = NfService::host_core(NfChain::new(vec![Box::new(fw)]));
        let (v, _) = svc.serve(&pkt(64));
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = NfService::new("bad", NfChain::empty(), 0.0, 0);
    }
}
