//! # apples-simnet
//!
//! A discrete-event packet-processing simulator with heterogeneous
//! device models — the measurement substrate for the fair-comparison
//! methodology.
//!
//! The paper's worked examples presuppose measurements from systems we
//! cannot build here (SmartNIC-accelerated firewalls, programmable-switch
//! preprocessing). This crate substitutes a simulator whose *shape*
//! matches those systems:
//!
//! - a [`engine::Engine`] executes a pipeline of queueing stages over a
//!   seeded packet workload (from `apples-workload`), in simulated
//!   nanoseconds;
//! - [`service`] provides the stage service models: CPU core pools
//!   running a network-function chain, SmartNIC core pools with NF
//!   offload, line-rate programmable-switch pipelines, and serializing
//!   links;
//! - [`nf`] implements the network functions themselves (ACL firewall,
//!   NAT, DPI with Aho–Corasick, a rendezvous-hash load balancer, and a
//!   count–min-sketch flow monitor), each with a cycle-cost model that
//!   determines its simulated service time;
//! - [`stats`] collects throughput, loss, a log-linear latency histogram,
//!   and per-flow byte counts (for Jain's index);
//! - [`system`] assembles named deployments (CPU-only host, SmartNIC
//!   offload, switch-preprocessed host), ties them to a power inventory
//!   from `apples-power`, and produces the `(performance, cost)`
//!   operating points consumed by `apples-core`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod fault;
pub mod nf;
pub mod packet;
pub mod sanitizer;
pub mod sched;
pub mod service;
pub mod shard;
pub mod stats;
pub mod system;

pub use engine::{Engine, StageReport};
pub use fault::{FaultAction, FaultEvent, FaultPlan, FaultSpec, OutageSpec, SlowdownSpec};
pub use packet::Packet;
pub use sanitizer::{OrderSanitizer, SanitizerReport};
pub use sched::{EventScheduler, SchedulerKind, TimingWheel};
pub use shard::{ShardDiag, ShardLane};
pub use stats::{LatencyHistogram, SinkStats};
pub use system::{Deployment, Measurement};
