//! Runtime **order sanitizer**: shadows the dispatch walk with the
//! invariant checks the static S rules cannot prove, plus a
//! deterministic interleaving perturber.
//!
//! The engine's determinism contract is a total order on events —
//! `(t_ns, seq, stage)` — and every identity gate in the test suite
//! (wheel-vs-heap, fused-vs-unfused, serial-vs-parallel measurement)
//! is downstream of it. The sanitizer turns the contract into runtime
//! assertions on a real run:
//!
//! 1. **Monotone time**: each drained timestamp bucket starts strictly
//!    after the previous one; every entry in a bucket carries the
//!    bucket's timestamp.
//! 2. **Globally unique `seq`**: no sequence number is dispatched
//!    twice in a run (tracked with a dense bitset — seqs are minted
//!    densely from zero).
//! 3. **Merged dispatch order**: within one timestamp walk, dispatched
//!    seqs are strictly ascending *across* the three merged sources
//!    (drained bucket, fused-hop FIFO, same-time re-drains) — exactly
//!    the order the serial heap engine would pop.
//! 4. **Stage sanity**: every event targets a stage inside the
//!    pipeline.
//!
//! The **perturber** is the forward-looking half: a sharded engine will
//! deliver same-timestamp events in arbitrary per-shard order and
//! restore the canonical order with an epoch-barrier merge keyed on
//! `seq`. The perturber simulates that today: it shuffles each drained
//! bucket's unconsumed tail with a seeded Fisher–Yates pass (a
//! different legal delivery order every bucket, same orders every run)
//! and then applies the merge rule — sort by `seq`. A sanitized,
//! perturbed run must therefore produce **byte-identical** results to
//! an unsanitized run; if any engine code secretly depended on
//! pre-merge buffer order, the identity gate breaks here first, not in
//! a sharded refactor two PRs later.
//!
//! Like the observer, the sanitizer is a runtime-gated `Option` on the
//! engine: `None` (the default) leaves the hot path untouched except
//! for one branch per site, and the overhead of `Some` is measured by
//! the microbench (`sanitizer_overhead` in `BENCH_simnet.json`).

use apples_rng::Rng;

/// What the sanitizer verified over a run (attached to the engine via
/// [`crate::Engine::with_sanitizer`], read back with
/// [`crate::Engine::take_sanitizer`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Timestamp buckets checked (initial drains; re-drains fold into
    /// the same walk).
    pub buckets: u64,
    /// Events dispatched under invariant checking (wheel + fused hops).
    pub events: u64,
    /// Events whose bucket tail was permuted by the perturber before
    /// the seq-keyed merge restored canonical order.
    pub perturbed: u64,
    /// Largest same-timestamp equivalence class seen (bucket length
    /// including re-drained tails) — the worst case a sharded merge
    /// would have to reorder.
    pub max_bucket: usize,
}

impl SanitizerReport {
    /// Folds a per-shard report into this one: counters sum, the
    /// worst-case equivalence class is the max across shards.
    pub fn merge(&mut self, other: &SanitizerReport) {
        self.buckets += other.buckets;
        self.events += other.events;
        self.perturbed += other.perturbed;
        self.max_bucket = self.max_bucket.max(other.max_bucket);
    }
}

/// The order sanitizer. One instance shadows one engine; state resets
/// at every run start so an engine can be reused across runs.
#[derive(Debug)]
pub struct OrderSanitizer {
    /// `Some(seed)` enables the interleaving perturber; `None` checks
    /// invariants over the engine's native order only.
    perturb: Option<Rng>,
    perturb_seed: Option<u64>,
    /// Timestamp of the previous bucket (monotonicity check).
    last_t: Option<u64>,
    /// Last seq dispatched within the current timestamp walk.
    walk_seq: Option<u64>,
    /// Dense bitset over dispatched seqs (seqs are minted from zero).
    seen: Vec<u64>,
    /// Length of the current bucket including re-drained tails.
    cur_bucket: usize,
    report: SanitizerReport,
}

impl OrderSanitizer {
    /// Check-only sanitizer: verifies the invariants, never reorders.
    pub fn new() -> Self {
        OrderSanitizer {
            perturb: None,
            perturb_seed: None,
            last_t: None,
            walk_seq: None,
            seen: Vec::new(),
            cur_bucket: 0,
            report: SanitizerReport::default(),
        }
    }

    /// Sanitizer with the interleaving perturber armed: every drained
    /// bucket tail is shuffled (seeded, so runs replay) and re-merged
    /// by `seq` before the walk consumes it.
    pub fn with_perturbation(seed: u64) -> Self {
        let mut s = Self::new();
        s.perturb = Some(Rng::seed_from_u64(seed));
        s.perturb_seed = Some(seed);
        s
    }

    /// Whether the perturber is armed.
    pub fn perturbs(&self) -> bool {
        self.perturb_seed.is_some()
    }

    /// The accumulated report.
    pub fn report(&self) -> &SanitizerReport {
        &self.report
    }

    /// Resets per-run state (the report accumulates across runs, like
    /// the observer's collections; the perturber restarts from its seed
    /// so every run sees the same perturbation schedule).
    pub fn begin_run(&mut self) {
        self.last_t = None;
        self.walk_seq = None;
        self.seen.clear();
        self.cur_bucket = 0;
        if let Some(seed) = self.perturb_seed {
            self.perturb = Some(Rng::seed_from_u64(seed));
        }
    }

    /// A fresh timestamp bucket was drained. Verifies monotone time and
    /// uniform timestamps, resets the walk cursor, and (when armed)
    /// perturbs + re-merges the bucket.
    pub fn begin_bucket(&mut self, t: u64, bucket: &mut [(u64, u64, usize)]) {
        if let Some(prev) = self.last_t {
            assert!(
                t > prev,
                "order-sanitizer: bucket time went backwards ({prev} -> {t}): \
                 the wheel must drain strictly monotone timestamps"
            );
        }
        self.last_t = Some(t);
        self.walk_seq = None;
        self.cur_bucket = 0;
        self.report.buckets += 1;
        self.check_tail(t, bucket);
    }

    /// Same-time re-drained events were appended at `bucket[from..]`
    /// mid-walk: verify and (when armed) perturb the new tail.
    pub fn on_refill(&mut self, t: u64, bucket: &mut [(u64, u64, usize)], from: usize) {
        self.check_tail(t, &mut bucket[from..]);
    }

    fn check_tail(&mut self, t: u64, tail: &mut [(u64, u64, usize)]) {
        for &(et, _, _) in tail.iter() {
            assert!(
                et == t,
                "order-sanitizer: bucket for t={t} holds an event at t={et}: \
                 a drained bucket is one same-timestamp equivalence class"
            );
        }
        self.cur_bucket += tail.len();
        if self.cur_bucket > self.report.max_bucket {
            self.report.max_bucket = self.cur_bucket;
        }
        if let Some(rng) = self.perturb.as_mut() {
            // Model a shard delivering this equivalence class in
            // arbitrary order (Fisher–Yates), then apply the
            // epoch-barrier merge rule: sort by seq. The walk must be
            // unable to tell the difference.
            let n = tail.len();
            if n > 1 {
                for i in (1..n).rev() {
                    let j = rng.bounded_u64(i as u64 + 1) as usize;
                    tail.swap(i, j);
                }
                tail.sort_unstable_by_key(|&(_, seq, _)| seq);
                self.report.perturbed += n as u64;
            }
        }
    }

    /// A per-shard child sanitizer for shard `shard` of a sharded run:
    /// same mode (check-only or perturbing), but with a seed derived
    /// from the parent's so each shard shuffles its own equivalence
    /// classes independently — and deterministically, since the
    /// derivation is pure. The child's report is folded back into the
    /// parent with [`OrderSanitizer::absorb`].
    pub fn fork(&self, shard: u64) -> OrderSanitizer {
        match self.perturb_seed {
            // SplitMix64's odd multiplicative constant keeps derived
            // seeds distinct across shards even for tiny parent seeds.
            Some(seed) => Self::with_perturbation(
                seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard.wrapping_add(1)),
            ),
            None => Self::new(),
        }
    }

    /// Folds a forked child's accumulated report into this sanitizer.
    pub fn absorb(&mut self, child: &OrderSanitizer) {
        self.report.merge(&child.report);
    }

    /// One event leaves the merged walk (wheel bucket or fused-hop
    /// FIFO). Verifies global seq uniqueness and strictly ascending
    /// dispatch order within the timestamp.
    pub fn on_dispatch(&mut self, t: u64, seq: u64, stage: usize, n_stages: usize) {
        self.report.events += 1;
        assert!(
            stage < n_stages,
            "order-sanitizer: event seq={seq} at t={t} targets stage {stage} \
             of a {n_stages}-stage pipeline"
        );
        if let Some(prev) = self.walk_seq {
            assert!(
                seq > prev,
                "order-sanitizer: dispatch order regressed at t={t} ({prev} -> {seq}): \
                 the bucket/FIFO/re-drain merge must walk seqs in ascending order"
            );
        }
        self.walk_seq = Some(seq);
        let (word, bit) = ((seq / 64) as usize, seq % 64);
        if word >= self.seen.len() {
            self.seen.resize(word + 1, 0);
        }
        assert!(
            self.seen[word] & (1 << bit) == 0,
            "order-sanitizer: seq {seq} dispatched twice: sequence numbers are \
             minted once and consumed once"
        );
        self.seen[word] |= 1 << bit;
    }
}

impl Default for OrderSanitizer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_walk_passes() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        let mut b = vec![(5u64, 0u64, 0usize), (5, 1, 0)];
        s.begin_bucket(5, &mut b);
        s.on_dispatch(5, 0, 0, 2);
        s.on_dispatch(5, 1, 1, 2);
        let mut b2 = vec![(9u64, 2u64, 0usize)];
        s.begin_bucket(9, &mut b2);
        s.on_dispatch(9, 2, 0, 2);
        assert_eq!(s.report().buckets, 2);
        assert_eq!(s.report().events, 3);
        assert_eq!(s.report().max_bucket, 2);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn time_regression_is_caught() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        s.begin_bucket(9, &mut [(9, 0, 0)]);
        s.begin_bucket(5, &mut [(5, 1, 0)]);
    }

    #[test]
    #[should_panic(expected = "dispatched twice")]
    fn duplicate_seq_is_caught() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        s.begin_bucket(5, &mut [(5, 0, 0), (5, 0, 0)]);
        s.on_dispatch(5, 0, 0, 1);
        s.begin_bucket(6, &mut [(6, 0, 0)]);
        s.on_dispatch(6, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "dispatch order regressed")]
    fn seq_regression_within_walk_is_caught() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        s.begin_bucket(5, &mut [(5, 7, 0), (5, 3, 0)]);
        s.on_dispatch(5, 7, 0, 1);
        s.on_dispatch(5, 3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "targets stage")]
    fn stage_overflow_is_caught() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        s.begin_bucket(5, &mut [(5, 0, 0)]);
        s.on_dispatch(5, 0, 3, 2);
    }

    #[test]
    #[should_panic(expected = "same-timestamp equivalence class")]
    fn mixed_timestamp_bucket_is_caught() {
        let mut s = OrderSanitizer::new();
        s.begin_run();
        s.begin_bucket(5, &mut [(5, 0, 0), (6, 1, 0)]);
    }

    #[test]
    fn perturber_is_deterministic_and_merge_restores_seq_order() {
        let run = || {
            let mut s = OrderSanitizer::with_perturbation(42);
            s.begin_run();
            let mut b: Vec<(u64, u64, usize)> = (0..16).map(|i| (5, i, 0)).collect();
            s.begin_bucket(5, &mut b);
            b
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded perturbation must replay identically");
        // The merge rule restored ascending seq order after the shuffle.
        assert!(a.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn begin_run_resets_per_run_state_but_keeps_the_report() {
        let mut s = OrderSanitizer::with_perturbation(7);
        s.begin_run();
        s.begin_bucket(5, &mut [(5, 0, 0)]);
        s.on_dispatch(5, 0, 0, 1);
        s.begin_run();
        // Same seq and an earlier time are legal again after reset.
        s.begin_bucket(2, &mut [(2, 0, 0)]);
        s.on_dispatch(2, 0, 0, 1);
        assert_eq!(s.report().buckets, 2, "report accumulates across runs");
    }
}
