//! Deterministic fault injection: seed-derived plans of packet drops,
//! packet corruption, transient device slowdowns, and full device
//! outages with recovery.
//!
//! The design splits faults into two categories with different
//! determinism mechanics:
//!
//! * **Per-packet faults** (drop, corrupt) are *hash decisions*: each
//!   packet id is hashed against the plan seed and compared to the
//!   configured probability. No RNG stream is consumed, so the decision
//!   for packet `i` is independent of how many packets came before it
//!   and of the order in which stages observe packets. This is what
//!   makes fault runs byte-identical across serial and parallel
//!   schedules.
//! * **Windowed faults** (slowdown, outage) are *pre-derived event
//!   lists*: `FaultPlan::derive` walks a forked [`apples_rng::Rng`]
//!   stream per (stage, fault-kind) pair and lays out the full schedule
//!   of start/end events before the simulation begins. The engine
//!   pushes them into the timing wheel as first-class events, so replay
//!   needs only `(seed, FaultSpec)` — or the derived plan itself.
//!
//! Either way, a fault run is fully replayable from the pair
//! `(seed, FaultPlan)` alone: there is no hidden state.

use apples_rng::{mix64, Rng};

/// Converts the top 53 bits of a hash to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Salt separating the drop decision stream from the corrupt stream;
/// without distinct salts a packet that drops at p=0.5 would also
/// always corrupt at p=0.5.
const DROP_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
/// Salt for the corruption decision stream.
const CORRUPT_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;
/// Salt for retry-failure decision streams (used by `service::RetryService`).
pub(crate) const RETRY_SALT: u64 = 0x1656_67b1_9e37_79f9;

/// A transient slowdown: the device periodically degrades, multiplying
/// every service time by `factor` for `duration_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownSpec {
    /// Mean time between slowdown onsets (exponentially distributed).
    pub mean_period_ns: u64,
    /// How long each slowdown episode lasts.
    pub duration_ns: u64,
    /// Service-time multiplier while degraded (> 1.0 slows the device).
    pub factor: f64,
}

/// A full device outage with recovery: mean-time-between-failures /
/// mean-time-to-repair, both exponentially distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Mean time between failures, in nanoseconds.
    pub mtbf_ns: u64,
    /// Mean time to repair, in nanoseconds.
    pub mttr_ns: u64,
}

/// Declarative fault configuration attached to a deployment. A spec is
/// *workload-independent*: the concrete event schedule is derived from
/// `(seed, spec)` by [`FaultPlan::derive`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability that a packet is dropped at the injection point
    /// before it reaches the first stage.
    pub drop_prob: f64,
    /// Probability that a packet is marked corrupted at the injection
    /// point (NFs then apply their fail-open/fail-closed policy).
    pub corrupt_prob: f64,
    /// Optional transient-slowdown process, applied to every stage.
    pub slowdown: Option<SlowdownSpec>,
    /// Optional full-outage process, applied to every stage.
    pub outage: Option<OutageSpec>,
}

impl FaultSpec {
    /// A spec that injects nothing. Running with `FaultSpec::none()` is
    /// observationally identical to running without a fault plan.
    pub fn none() -> Self {
        FaultSpec { drop_prob: 0.0, corrupt_prob: 0.0, slowdown: None, outage: None }
    }

    /// A severity-scaled spec for sweeps: `severity` in `[0, 1]` scales
    /// loss/corruption probabilities and shrinks fault inter-arrival
    /// times together, so a single scalar orders scenarios from benign
    /// to hostile.
    pub fn at_severity(severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        // lint: allow(N1, reason = "exact sentinel: clamp returns the bound verbatim")
        if s == 0.0 {
            return FaultSpec::none();
        }
        FaultSpec {
            drop_prob: 0.02 * s,
            corrupt_prob: 0.01 * s,
            slowdown: Some(SlowdownSpec {
                mean_period_ns: (20_000_000.0 / s) as u64,
                duration_ns: 1_000_000,
                factor: 1.0 + 2.0 * s,
            }),
            outage: Some(OutageSpec { mtbf_ns: (60_000_000.0 / s) as u64, mttr_ns: 1_500_000 }),
        }
    }

    /// True when the spec can never perturb a run.
    pub fn is_none(&self) -> bool {
        self.drop_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.slowdown.is_none()
            && self.outage.is_none()
    }

    /// Canonical content digest for provenance stamping: FNV-1a over a
    /// stable field rendering, so equal specs share a digest and any
    /// field change shows up in every artifact stamped with it.
    pub fn digest(&self) -> String {
        let mut s = format!("drop={:?};corrupt={:?}", self.drop_prob, self.corrupt_prob);
        match self.slowdown {
            Some(sd) => {
                s.push_str(&format!(
                    ";slowdown={},{},{:?}",
                    sd.mean_period_ns, sd.duration_ns, sd.factor
                ));
            }
            None => s.push_str(";slowdown=none"),
        }
        match self.outage {
            Some(o) => s.push_str(&format!(";outage={},{}", o.mtbf_ns, o.mttr_ns)),
            None => s.push_str(";outage=none"),
        }
        apples_obs::fnv1a_hex(s.as_bytes())
    }
}

/// One scheduled fault transition, applied to a single stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The stage's service times start being multiplied by the factor
    /// carried in the plan's slowdown spec.
    SlowdownStart {
        /// Index of the affected stage.
        stage: usize,
    },
    /// The stage returns to nominal service times.
    SlowdownEnd {
        /// Index of the affected stage.
        stage: usize,
    },
    /// The stage goes fully down: arrivals are dropped, in-flight work
    /// still completes, no new work is started.
    DeviceDown {
        /// Index of the affected stage.
        stage: usize,
    },
    /// The stage recovers and resumes draining its queue.
    DeviceUp {
        /// Index of the affected stage.
        stage: usize,
    },
}

impl FaultAction {
    /// Splits the action into `(stage, code)` for the engine's packed
    /// event tags: under the SoA event layout fault events carry no
    /// cold payload at all — the whole action fits in the hot slot.
    pub(crate) fn encode(self) -> (usize, usize) {
        match self {
            FaultAction::SlowdownStart { stage } => (stage, 0),
            FaultAction::SlowdownEnd { stage } => (stage, 1),
            FaultAction::DeviceDown { stage } => (stage, 2),
            FaultAction::DeviceUp { stage } => (stage, 3),
        }
    }

    /// Inverse of [`FaultAction::encode`].
    pub(crate) fn decode(stage: usize, code: usize) -> Self {
        match code {
            0 => FaultAction::SlowdownStart { stage },
            1 => FaultAction::SlowdownEnd { stage },
            2 => FaultAction::DeviceDown { stage },
            3 => FaultAction::DeviceUp { stage },
            _ => unreachable!("fault code {code} is not one encode() produces"),
        }
    }
}

/// A fault transition pinned to simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time at which the transition fires, in nanoseconds.
    pub t_ns: u64,
    /// What happens at `t_ns`.
    pub action: FaultAction,
}

/// The fully materialized fault schedule for one run: the seed, the
/// per-packet probabilities, the slowdown factor, and every windowed
/// transition in time order. `(seed, FaultPlan)` is the complete replay
/// token — two engines given equal plans produce equal `RunResult`s.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the per-packet hash decisions key off.
    pub seed: u64,
    /// Per-packet drop probability at the injection point.
    pub drop_prob: f64,
    /// Per-packet corruption probability at the injection point.
    pub corrupt_prob: f64,
    /// Service-time multiplier applied while a stage is slowed.
    pub slow_factor: f64,
    /// Windowed transitions, sorted by time (ties broken by derivation
    /// order, which is itself deterministic).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            slow_factor: 1.0,
            events: Vec::new(),
        }
    }

    /// Derives the concrete schedule for `stages` pipeline stages over
    /// `[0, horizon_ns]`. Each (stage, fault-kind) pair forks its own
    /// RNG stream from `seed`, so adding an outage spec does not shift
    /// the slowdown schedule and vice versa.
    pub fn derive(seed: u64, spec: &FaultSpec, stages: usize, horizon_ns: u64) -> Self {
        let mut root = Rng::seed_from_u64(mix64(seed ^ 0x05ca_1ab1_e0dd_ba11));
        let mut events = Vec::new();
        let mut slow_factor = 1.0;

        if let Some(sd) = spec.slowdown {
            slow_factor = sd.factor;
            for stage in 0..stages {
                let mut rng = root.fork(2 * stage as u64);
                let mut t = sample_exp(sd.mean_period_ns, &mut rng);
                while t < horizon_ns {
                    events
                        .push(FaultEvent { t_ns: t, action: FaultAction::SlowdownStart { stage } });
                    let end = t.saturating_add(sd.duration_ns);
                    events
                        .push(FaultEvent { t_ns: end, action: FaultAction::SlowdownEnd { stage } });
                    t = end.saturating_add(sample_exp(sd.mean_period_ns, &mut rng));
                }
            }
        }

        if let Some(out) = spec.outage {
            for stage in 0..stages {
                let mut rng = root.fork(2 * stage as u64 + 1);
                let mut t = sample_exp(out.mtbf_ns, &mut rng);
                while t < horizon_ns {
                    events.push(FaultEvent { t_ns: t, action: FaultAction::DeviceDown { stage } });
                    let up = t.saturating_add(sample_exp(out.mttr_ns, &mut rng).max(1));
                    events.push(FaultEvent { t_ns: up, action: FaultAction::DeviceUp { stage } });
                    t = up.saturating_add(sample_exp(out.mtbf_ns, &mut rng));
                }
            }
        }

        events.sort_by_key(|e| e.t_ns);
        FaultPlan {
            seed,
            drop_prob: spec.drop_prob.clamp(0.0, 1.0),
            corrupt_prob: spec.corrupt_prob.clamp(0.0, 1.0),
            slow_factor,
            events,
        }
    }

    /// True when the plan can never perturb a run.
    pub fn is_none(&self) -> bool {
        self.drop_prob <= 0.0 && self.corrupt_prob <= 0.0 && self.events.is_empty()
    }

    /// Hash decision: is packet `pkt_id` dropped at the injection
    /// point? Order-independent and stateless — safe to evaluate from
    /// any schedule.
    #[inline]
    pub fn drops(&self, pkt_id: u64) -> bool {
        self.drop_prob > 0.0
            && unit_f64(mix64(self.seed ^ mix64(pkt_id).wrapping_add(DROP_SALT))) < self.drop_prob
    }

    /// Hash decision: is packet `pkt_id` corrupted at the injection
    /// point?
    #[inline]
    pub fn corrupts(&self, pkt_id: u64) -> bool {
        self.corrupt_prob > 0.0
            && unit_f64(mix64(self.seed ^ mix64(pkt_id).wrapping_add(CORRUPT_SALT)))
                < self.corrupt_prob
    }
}

/// Stateless retry-failure decision shared by `service::RetryService`:
/// does attempt `attempt` on packet `pkt_id` fail transiently? Keyed by
/// its own salt so it never correlates with drop/corrupt decisions.
#[inline]
pub(crate) fn attempt_fails(seed: u64, pkt_id: u64, attempt: u32, p: f64) -> bool {
    p > 0.0
        && unit_f64(mix64(seed ^ mix64(pkt_id ^ ((attempt as u64) << 48)).wrapping_add(RETRY_SALT)))
            < p
}

/// Exponential sample with the given mean, floored at 1 ns so windows
/// always make progress.
fn sample_exp(mean_ns: u64, rng: &mut Rng) -> u64 {
    if mean_ns == 0 {
        return 1;
    }
    let u = rng.next_f64();
    // -ln(1-u) has mean 1; 1-u is in (0, 1] so ln is finite.
    let x = -(1.0 - u).ln() * mean_ns as f64;
    (x.ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for id in 0..10_000u64 {
            assert!(!p.drops(id));
            assert!(!p.corrupts(id));
        }
    }

    #[test]
    fn derive_is_deterministic() {
        let spec = FaultSpec::at_severity(0.7);
        let a = FaultPlan::derive(42, &spec, 3, 50_000_000);
        let b = FaultPlan::derive(42, &spec, 3, 50_000_000);
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "severity 0.7 over 50ms must schedule windows");
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::at_severity(0.7);
        let a = FaultPlan::derive(1, &spec, 2, 50_000_000);
        let b = FaultPlan::derive(2, &spec, 2, 50_000_000);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_time_sorted_and_in_horizon_windows() {
        let spec = FaultSpec::at_severity(1.0);
        let plan = FaultPlan::derive(9, &spec, 4, 80_000_000);
        let mut last = 0u64;
        for e in &plan.events {
            assert!(e.t_ns >= last, "events must be sorted");
            last = e.t_ns;
        }
        // Starts land inside the horizon; ends may spill past it.
        for e in &plan.events {
            match e.action {
                FaultAction::SlowdownStart { .. } | FaultAction::DeviceDown { .. } => {
                    assert!(e.t_ns < 80_000_000)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn windows_are_balanced_per_stage() {
        let spec = FaultSpec::at_severity(1.0);
        let plan = FaultPlan::derive(5, &spec, 3, 100_000_000);
        for stage in 0..3 {
            let mut slow_depth = 0i64;
            let mut down_depth = 0i64;
            for e in &plan.events {
                match e.action {
                    FaultAction::SlowdownStart { stage: s } if s == stage => slow_depth += 1,
                    FaultAction::SlowdownEnd { stage: s } if s == stage => slow_depth -= 1,
                    FaultAction::DeviceDown { stage: s } if s == stage => down_depth += 1,
                    FaultAction::DeviceUp { stage: s } if s == stage => down_depth -= 1,
                    _ => {}
                }
                assert!((0..=1).contains(&slow_depth), "windows must not nest");
                assert!((0..=1).contains(&down_depth), "outages must not nest");
            }
            assert_eq!(slow_depth, 0, "every slowdown must end");
            assert_eq!(down_depth, 0, "every outage must recover");
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            seed: 77,
            drop_prob: 0.1,
            corrupt_prob: 0.05,
            slow_factor: 1.0,
            events: Vec::new(),
        };
        let n = 200_000u64;
        let dropped = (0..n).filter(|&id| plan.drops(id)).count() as f64 / n as f64;
        let corrupted = (0..n).filter(|&id| plan.corrupts(id)).count() as f64 / n as f64;
        assert!((dropped - 0.1).abs() < 0.01, "drop rate {dropped} far from 0.1");
        assert!((corrupted - 0.05).abs() < 0.01, "corrupt rate {corrupted} far from 0.05");
    }

    #[test]
    fn drop_and_corrupt_streams_are_decorrelated() {
        let plan = FaultPlan {
            seed: 3,
            drop_prob: 0.5,
            corrupt_prob: 0.5,
            slow_factor: 1.0,
            events: Vec::new(),
        };
        let n = 100_000u64;
        let both = (0..n).filter(|&id| plan.drops(id) && plan.corrupts(id)).count() as f64;
        let frac = both / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "joint rate {frac} should be ~0.25 if independent");
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = FaultSpec::at_severity(0.5);
        assert_eq!(a.digest(), FaultSpec::at_severity(0.5).digest());
        assert_ne!(a.digest(), FaultSpec::at_severity(0.6).digest());
        assert_ne!(a.digest(), FaultSpec::none().digest());
        assert_eq!(a.digest().len(), 16, "digest is a 64-bit hex string");
    }

    #[test]
    fn severity_zero_is_none() {
        assert!(FaultSpec::at_severity(0.0).is_none());
        assert!(FaultPlan::derive(1, &FaultSpec::at_severity(0.0), 4, 1_000_000_000).is_none());
    }

    #[test]
    fn retry_decisions_vary_by_attempt() {
        let n = 50_000u64;
        let p = 0.3;
        let first = (0..n).filter(|&id| attempt_fails(11, id, 0, p)).count();
        let second = (0..n).filter(|&id| attempt_fails(11, id, 1, p)).count();
        let rate0 = first as f64 / n as f64;
        let rate1 = second as f64 / n as f64;
        assert!((rate0 - p).abs() < 0.02);
        assert!((rate1 - p).abs() < 0.02);
        // The two attempt streams must not be identical.
        let agree = (0..n)
            .filter(|&id| attempt_fails(11, id, 0, p) == attempt_fails(11, id, 1, p))
            .count() as f64
            / n as f64;
        assert!(agree < 0.9, "attempt streams look identical (agreement {agree})");
    }

    #[test]
    fn fault_actions_round_trip_through_tag_codes() {
        // The SoA event layout carries fault actions as (stage, code)
        // pairs inside the packed event tag; the round trip must be
        // lossless for every variant and for large stage indices.
        for stage in [0usize, 1, 7, 4095] {
            for action in [
                FaultAction::SlowdownStart { stage },
                FaultAction::SlowdownEnd { stage },
                FaultAction::DeviceDown { stage },
                FaultAction::DeviceUp { stage },
            ] {
                let (s, code) = action.encode();
                assert_eq!(s, stage);
                assert!(code < 4);
                assert_eq!(FaultAction::decode(s, code), action);
            }
        }
    }
}
