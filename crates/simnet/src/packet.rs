//! Simulated packets.
//!
//! A [`Packet`] carries its wire size, flow identity (an IPv4 5-tuple
//! from the workload generator), arrival timestamp, and — only when a
//! payload-inspecting function is in the pipeline — synthesized payload
//! bytes. Payloads use the in-repo [`Payload`] type: clones inside the
//! pipeline are reference-counted, not copied, and the (overwhelmingly
//! common) empty payload allocates nothing at all.

use apples_rng::Rng;
use apples_workload::FiveTuple;
use std::ops::Deref;
use std::sync::Arc;

/// Reference-counted, immutable packet payload bytes.
///
/// The hot path (header-only processing) carries the empty payload,
/// which is a `None` internally — no allocation, no refcount traffic.
/// DPI workloads attach a shared `Arc<[u8]>` so per-stage packet clones
/// stay O(1) regardless of payload length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Payload(Option<Arc<[u8]>>);

impl Payload {
    /// The empty payload. Allocation-free.
    pub const fn empty() -> Self {
        Payload(None)
    }

    /// Wraps owned bytes (one allocation, shared by all clones).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        if buf.is_empty() {
            Payload(None)
        } else {
            Payload(Some(Arc::from(buf.into_boxed_slice())))
        }
    }

    /// Copies a slice into a new payload.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Payload::from_vec(bytes.to_vec())
    }

    /// The payload bytes (empty slice when no payload is attached).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Some(bytes) => bytes,
            None => &[],
        }
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(buf: Vec<u8>) -> Self {
        Payload::from_vec(buf)
    }
}

/// A packet traversing the simulated pipeline.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Monotonic packet id (generation order).
    pub id: u64,
    /// Flow index within the workload's population.
    pub flow: u32,
    /// The flow's 5-tuple.
    pub tuple: FiveTuple,
    /// Frame size on the wire, bytes.
    pub size_bytes: u32,
    /// Arrival time at the first stage, simulated nanoseconds.
    pub t_arrival_ns: u64,
    /// L4 payload bytes (empty unless synthesized for DPI workloads).
    pub payload: Payload,
    /// Set by the fault-injection layer when the packet was corrupted
    /// in transit; NFs apply their fail-open/fail-closed policy to it.
    pub corrupted: bool,
}

impl Packet {
    /// Creates a packet without payload bytes (header-only processing).
    pub fn new(id: u64, flow: u32, tuple: FiveTuple, size_bytes: u32, t_arrival_ns: u64) -> Self {
        Packet {
            id,
            flow,
            tuple,
            size_bytes,
            t_arrival_ns,
            payload: Payload::empty(),
            corrupted: false,
        }
    }

    /// Attaches a synthesized payload of `len` bytes, deterministic in
    /// `(seed, id)`. With probability `attack_prob`, one of `needles` is
    /// embedded at a random offset — the DPI experiments' ground truth.
    pub fn with_payload(
        mut self,
        len: usize,
        seed: u64,
        attack_prob: f64,
        needles: &[&[u8]],
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ self.id.wrapping_mul(0x9E3779B97F4A7C15));
        let mut buf = vec![0u8; len];
        // Printable-ish filler so needles are unambiguous.
        for b in buf.iter_mut() {
            *b = rng.range_u8_inclusive(b'a', b'z');
        }
        if !needles.is_empty() && len > 0 && rng.gen_bool(attack_prob) {
            let needle = needles[rng.range_usize(0, needles.len())];
            if needle.len() <= len {
                let off = rng.range_usize(0, len - needle.len() + 1);
                buf[off..off + needle.len()].copy_from_slice(needle);
            }
        }
        self.payload = Payload::from_vec(buf);
        self
    }

    /// Wire bits including Ethernet preamble + inter-frame gap (20 B),
    /// the quantity that occupies a link. Per-event on the engine's hot
    /// path, hence the inline hint.
    #[inline]
    pub fn wire_bits(&self) -> u64 {
        u64::from(self.size_bytes + 20) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple { src_ip: 0x0A000001, dst_ip: 0xC0A80001, src_port: 1234, dst_port: 80, proto: 6 }
    }

    #[test]
    fn header_only_packets_have_empty_payload() {
        let p = Packet::new(1, 0, tuple(), 64, 100);
        assert!(p.payload.is_empty());
        assert_eq!(p.size_bytes, 64);
    }

    #[test]
    fn wire_bits_include_overhead() {
        let p = Packet::new(1, 0, tuple(), 64, 0);
        assert_eq!(p.wire_bits(), (64 + 20) * 8);
    }

    #[test]
    fn payload_is_deterministic_per_seed_and_id() {
        let a = Packet::new(7, 0, tuple(), 256, 0).with_payload(200, 99, 0.0, &[]);
        let b = Packet::new(7, 0, tuple(), 256, 0).with_payload(200, 99, 0.0, &[]);
        assert_eq!(a.payload, b.payload);
        let c = Packet::new(8, 0, tuple(), 256, 0).with_payload(200, 99, 0.0, &[]);
        assert_ne!(a.payload, c.payload);
    }

    #[test]
    fn attack_probability_controls_needle_insertion() {
        let needles: &[&[u8]] = &[b"EVILPATTERN"];
        let contains = |prob: f64| {
            (0..500)
                .filter(|i| {
                    let p = Packet::new(*i, 0, tuple(), 512, 0).with_payload(400, 1, prob, needles);
                    p.payload.windows(11).any(|w| w == b"EVILPATTERN")
                })
                .count()
        };
        assert_eq!(contains(0.0), 0);
        let hits = contains(0.5);
        assert!(hits > 150 && hits < 350, "hits {hits}");
    }

    #[test]
    fn needle_longer_than_payload_is_skipped() {
        let needles: &[&[u8]] = &[b"AVERYLONGNEEDLE"];
        let p = Packet::new(1, 0, tuple(), 64, 0).with_payload(4, 1, 1.0, needles);
        assert_eq!(p.payload.len(), 4);
    }

    #[test]
    fn payload_clone_is_cheap_reference() {
        let p = Packet::new(1, 0, tuple(), 1500, 0).with_payload(1400, 5, 0.0, &[]);
        let q = p.clone();
        // Clones share the underlying Arc'd buffer.
        assert_eq!(p.payload.as_ptr(), q.payload.as_ptr());
    }

    #[test]
    fn empty_payload_is_allocation_free_and_shared() {
        let a = Payload::empty();
        let b = Payload::from_vec(Vec::new());
        assert_eq!(a, b);
        assert!(a.as_slice().is_empty());
    }
}
