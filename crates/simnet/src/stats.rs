//! Measurement collection: throughput, loss, latency, per-flow service.
//!
//! The sink computes exactly the performance metrics the methodology
//! consumes: delivered bits/packets per second, loss fraction, latency
//! percentiles from a log-linear histogram (HDR-style: bounded relative
//! error at every magnitude), and per-flow byte counts for Jain's
//! fairness index.

use apples_metrics::fairness::jains_index;

/// A log-linear latency histogram over nanoseconds.
///
/// Buckets have 64 linear sub-buckets per power-of-two magnitude, giving
/// ≤ ~1.6% relative error across the full `u64` range with a fixed,
/// allocation-free footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
    sum_ns: u128,
}

const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // Magnitudes 0..=57 cover the u64 range above the linear region.
        LatencyHistogram {
            counts: vec![0; (58 * SUB_BUCKETS) as usize],
            total: 0,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let mag = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = mag - SUB_BITS + 1;
        let sub = (v >> shift) - SUB_BUCKETS / 2 + SUB_BUCKETS / 2; // top bits
        let base = (u64::from(mag) - SUB_BITS as u64 + 1) * SUB_BUCKETS;
        (base + (sub - SUB_BUCKETS / 2)) as usize
    }

    fn bucket_value(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let mag = i / SUB_BUCKETS + SUB_BITS as u64 - 1;
        let sub = i % SUB_BUCKETS + SUB_BUCKETS / 2;
        let shift = mag - SUB_BITS as u64 + 1;
        // Midpoint of the bucket.
        (sub << shift) + (1 << (shift - 1))
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        let idx = Self::index(ns).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns += u128::from(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// The maximum recorded value (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Folds another histogram into this one. All-integer state, so the
    /// merge is exact: a histogram merged from disjoint shards is
    /// bit-identical to one that recorded every observation serially
    /// (counts and sums are commutative and associative; the max is a
    /// lattice join).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns += other.sum_ns;
    }

    /// Approximate latency at quantile `q` in `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a packet failed to reach the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A stage's queue was full (overload loss).
    QueueFull,
    /// A network function's policy dropped it (firewall deny, IDS block).
    Policy,
    /// The fault-injection layer lost it (injection-point loss or a
    /// device outage while the packet queued for a down stage).
    Fault,
}

/// Aggregated sink-side statistics for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkStats {
    delivered_packets: u64,
    delivered_bits: u64,
    queue_drops: u64,
    policy_drops: u64,
    fault_drops: u64,
    latency: LatencyHistogram,
    per_flow_bytes: Vec<u64>,
}

impl SinkStats {
    /// Creates stats for a workload with `flows` flows.
    pub fn new(flows: usize) -> Self {
        SinkStats {
            delivered_packets: 0,
            delivered_bits: 0,
            queue_drops: 0,
            policy_drops: 0,
            fault_drops: 0,
            latency: LatencyHistogram::new(),
            per_flow_bytes: vec![0; flows],
        }
    }

    /// Records a delivered packet and its end-to-end latency.
    pub fn deliver(&mut self, flow: u32, wire_bits: u64, latency_ns: u64) {
        self.delivered_packets += 1;
        self.delivered_bits += wire_bits;
        self.latency.record(latency_ns);
        if let Some(b) = self.per_flow_bytes.get_mut(flow as usize) {
            *b += wire_bits / 8;
        }
    }

    /// Records a dropped packet.
    pub fn drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::QueueFull => self.queue_drops += 1,
            DropReason::Policy => self.policy_drops += 1,
            DropReason::Fault => self.fault_drops += 1,
        }
    }

    /// Delivered packets.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets dropped due to queue overflow.
    pub fn queue_drops(&self) -> u64 {
        self.queue_drops
    }

    /// Packets dropped by NF policy (these are *work done*, not loss).
    pub fn policy_drops(&self) -> u64 {
        self.policy_drops
    }

    /// Packets lost to injected faults (injection-point loss plus
    /// outage-window drops).
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Delivered throughput in bits/second over `duration_ns`.
    pub fn throughput_bps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.delivered_bits as f64 / (duration_ns as f64 * 1e-9)
    }

    /// Delivered packet rate in packets/second over `duration_ns`.
    pub fn throughput_pps(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.delivered_packets as f64 / (duration_ns as f64 * 1e-9)
    }

    /// Overload loss fraction (queue drops over packets offered to
    /// queues, i.e. excluding policy drops).
    pub fn loss_rate(&self) -> f64 {
        let offered = self.delivered_packets + self.queue_drops;
        if offered == 0 {
            0.0
        } else {
            self.queue_drops as f64 / offered as f64
        }
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Jain's fairness index over per-flow delivered bytes, or `None`
    /// when nothing was delivered.
    pub fn jain_index(&self) -> Option<f64> {
        let alloc: Vec<f64> = self.per_flow_bytes.iter().map(|b| *b as f64).collect();
        jains_index(&alloc)
    }

    /// Per-flow delivered bytes.
    pub fn per_flow_bytes(&self) -> &[u64] {
        &self.per_flow_bytes
    }

    /// Folds another sink's statistics into this one. Every field is an
    /// integer counter (or a histogram of them), so merging per-shard
    /// sinks is exact — byte-identical to a single serial sink that saw
    /// every delivery and drop.
    pub fn merge(&mut self, other: &SinkStats) {
        debug_assert_eq!(self.per_flow_bytes.len(), other.per_flow_bytes.len());
        self.delivered_packets += other.delivered_packets;
        self.delivered_bits += other.delivered_bits;
        self.queue_drops += other.queue_drops;
        self.policy_drops += other.policy_drops;
        self.fault_drops += other.fault_drops;
        self.latency.merge(&other.latency);
        for (a, b) in self.per_flow_bytes.iter_mut().zip(other.per_flow_bytes.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        // Rank 1 lands in the exact linear region: value 0.
        assert_eq!(h.quantile_ns(0.0), 0);
        assert!(h.quantile_ns(1.0) >= 63);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let v = 1_234_567_890u64;
        h.record(v);
        let q = h.quantile_ns(0.5);
        let err = (q as f64 - v as f64).abs() / v as f64;
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x % 10_000_000);
        }
        let p50 = h.quantile_ns(0.5);
        let p90 = h.quantile_ns(0.9);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn sink_throughput_and_loss() {
        let mut s = SinkStats::new(2);
        // Two delivered packets of 84 wire-bytes each over 1 ms.
        s.deliver(0, 84 * 8, 1000);
        s.deliver(1, 84 * 8, 2000);
        s.drop(DropReason::QueueFull);
        s.drop(DropReason::Policy);
        let dur = 1_000_000; // 1 ms
        assert!((s.throughput_bps(dur) - 2.0 * 84.0 * 8.0 / 1e-3).abs() < 1.0);
        assert!((s.throughput_pps(dur) - 2000.0).abs() < 1e-9);
        assert!((s.loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.policy_drops(), 1);
        assert_eq!(s.delivered_packets(), 2);
    }

    #[test]
    fn jain_index_reflects_flow_balance() {
        let mut s = SinkStats::new(2);
        s.deliver(0, 800, 10);
        s.deliver(1, 800, 10);
        assert!((s.jain_index().unwrap() - 1.0).abs() < 1e-12);
        let mut skewed = SinkStats::new(2);
        skewed.deliver(0, 800, 10);
        assert!((skewed.jain_index().unwrap() - 0.5).abs() < 1e-12);
        let empty = SinkStats::new(2);
        assert_eq!(empty.jain_index(), None);
    }

    #[test]
    fn zero_duration_rates_are_zero() {
        let s = SinkStats::new(1);
        assert_eq!(s.throughput_bps(0), 0.0);
        assert_eq!(s.throughput_pps(0), 0.0);
    }

    #[test]
    fn histogram_quantile_error_bounded_everywhere() {
        let mut rng = Rng::seed_from_u64(0x41571);
        for _ in 0..1000 {
            let v = rng.range_u64(1, u64::MAX / 4);
            let mut h = LatencyHistogram::new();
            h.record(v);
            let q = h.quantile_ns(0.5);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.02, "v={v} q={q} err={err}");
        }
    }

    #[test]
    fn histogram_count_matches_records() {
        let mut rng = Rng::seed_from_u64(0x41572);
        for _ in 0..500 {
            let vs: Vec<u64> =
                (0..rng.range_usize(0, 200)).map(|_| rng.range_u64(0, 1_000_000)).collect();
            let mut h = LatencyHistogram::new();
            for v in &vs {
                h.record(*v);
            }
            assert_eq!(h.count(), vs.len() as u64);
            if let Some(max) = vs.iter().max() {
                assert_eq!(h.max_ns(), *max);
                assert!(h.quantile_ns(1.0) <= *max);
            }
        }
    }
}
