//! Deployments: named hardware configurations that can be measured.
//!
//! A [`Deployment`] couples a simulation pipeline (what processes
//! packets, in what order, with how many servers) with a power inventory
//! (which devices draw watts, keyed to stage utilizations). Running one
//! against a workload yields a [`Measurement`], which converts directly
//! into the `(performance, cost)` [`OperatingPoint`]s and [`System`]s
//! the methodology engine consumes.
//!
//! Three presets cover the paper's §4 cast:
//!
//! - [`Deployment::cpu_host`]: the software baseline — an NF chain on
//!   `n` host cores;
//! - [`Deployment::smartnic_offload`]: part of the chain runs on
//!   SmartNIC cores, the rest on host cores (§4.2's proposed system);
//! - [`Deployment::switch_frontend`]: a programmable switch executes a
//!   preprocessing chain at line rate in front of the host (§4.2.1).

use crate::engine::{Engine, PayloadConfig, StageConfig, StageReport};
use crate::fault::{FaultPlan, FaultSpec};
use crate::nf::NfChain;
use crate::sanitizer::{OrderSanitizer, SanitizerReport};
use crate::sched::SchedulerKind;
use crate::service::{FixedTime, NfService};
use apples_core::{OperatingPoint, System};
use apples_metrics::cost::{CostMetric, DeviceClass};
use apples_metrics::perf::PerfMetric;
use apples_metrics::quantity::{bps, micros, pps as pps_q, ratio, watts};
use apples_obs::{ObsConfig, Provenance, RunObserver};
use apples_power::devices::DeviceSpec;
use apples_workload::WorkloadSpec;

/// Decouples the fault-plan seed stream from the workload's own RNG
/// stream: the same workload seed drives both, but through different
/// hash paths.
const FAULT_SEED_SALT: u64 = 0xfa17_ab1e_5eed_0001;

/// Where a power line's utilization comes from after a run.
#[derive(Debug, Clone, Copy)]
pub enum UtilSource {
    /// A fixed utilization (always-on components).
    Fixed(f64),
    /// The utilization of pipeline stage `i`.
    Stage(usize),
}

struct PowerLine {
    device: DeviceSpec,
    count: u32,
    source: UtilSource,
}

/// Builds custom [`Deployment`]s: arbitrary stage topologies paired with
/// an explicit power inventory. The presets cover the paper's cast; this
/// is for everything else (and for sensitivity studies that perturb the
/// device constants).
pub struct DeploymentBuilder {
    name: String,
    stage_factories: Vec<StageFactory>,
    power_lines: Vec<PowerLine>,
    payload: Option<(f64, Vec<Vec<u8>>)>,
}

impl DeploymentBuilder {
    /// Starts a builder for a named deployment.
    pub fn new(name: impl Into<String>) -> Self {
        DeploymentBuilder {
            name: name.into(),
            stage_factories: Vec::new(),
            power_lines: Vec::new(),
            payload: None,
        }
    }

    /// Appends a pipeline stage (constructed fresh for every run, since
    /// stages hold mutable NF state).
    pub fn stage(mut self, factory: impl Fn() -> StageConfig + 'static) -> Self {
        self.stage_factories.push(Box::new(factory));
        self
    }

    /// Adds `count` instances of `device` whose utilization comes from
    /// `source` (Principle 3: list *everything* the datapath needs).
    pub fn power(mut self, device: DeviceSpec, count: u32, source: UtilSource) -> Self {
        self.power_lines.push(PowerLine { device, count, source });
        self
    }

    /// Enables payload synthesis for DPI pipelines.
    pub fn payloads(mut self, attack_prob: f64, needles: Vec<Vec<u8>>) -> Self {
        self.payload = Some((attack_prob, needles));
        self
    }

    /// Finishes the deployment.
    ///
    /// # Panics
    /// If no stages were added, or a power line references a
    /// nonexistent stage.
    pub fn build(self) -> Deployment {
        assert!(!self.stage_factories.is_empty(), "a deployment needs at least one stage");
        for l in &self.power_lines {
            if let UtilSource::Stage(i) = l.source {
                assert!(
                    i < self.stage_factories.len(),
                    "power line '{}' references nonexistent stage {i}",
                    l.device.name
                );
            }
        }
        Deployment {
            name: self.name,
            stage_factories: self.stage_factories,
            power_lines: self.power_lines,
            payload: self.payload,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }
}

type ChainFactory = Box<dyn Fn() -> NfChain>;
type StageFactory = Box<dyn Fn() -> StageConfig>;

/// A named, runnable hardware configuration.
///
/// # Examples
///
/// Measure a one-core host and read off its (throughput, power) point:
///
/// ```
/// use apples_simnet::nf::NfChain;
/// use apples_simnet::system::Deployment;
/// use apples_workload::WorkloadSpec;
///
/// let d = Deployment::cpu_host("fwd", 1, NfChain::empty);
/// let m = d.run(&WorkloadSpec::cbr(100_000.0, 64, 4, 1), 2_000_000, 200_000);
/// assert!(m.throughput_bps > 0.0);
/// assert!(m.watts > 20.0); // at least the chassis floor
/// let point = m.throughput_power_point();
/// assert_eq!(point.cost().metric().name(), "power draw");
/// ```
pub struct Deployment {
    name: String,
    stage_factories: Vec<StageFactory>,
    power_lines: Vec<PowerLine>,
    payload: Option<(f64, Vec<Vec<u8>>)>,
    scheduler: SchedulerKind,
    faults: Option<FaultSpec>,
    fused: bool,
    shards: usize,
}

impl Deployment {
    /// A CPU-only host: `cores` cores running `chain` (built fresh per
    /// run), behind a conventional NIC.
    pub fn cpu_host(
        name: impl Into<String>,
        cores: u32,
        chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let chain: ChainFactory = Box::new(chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![Box::new(move || {
                StageConfig::new("host-cores", cores, 1024, Box::new(NfService::host_core(chain())))
            })],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: cores,
                    source: UtilSource::Stage(0),
                },
                PowerLine {
                    device: DeviceSpec::dumb_nic_100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A CPU-only host whose cores contend for memory bandwidth: service
    /// inflates by `alpha` per extra active core, so throughput scales
    /// sub-linearly in `cores` — the realistic baseline the paper's
    /// measured 2-core point (1.8x, not 2x) reflects.
    pub fn cpu_host_contended(
        name: impl Into<String>,
        cores: u32,
        alpha: f64,
        chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let chain: ChainFactory = Box::new(chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![Box::new(move || {
                StageConfig::new(
                    "host-cores",
                    cores,
                    1024,
                    Box::new(NfService::host_core_contended(chain(), cores, alpha)),
                )
            })],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: cores,
                    source: UtilSource::Stage(0),
                },
                PowerLine {
                    device: DeviceSpec::dumb_nic_100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A SmartNIC-accelerated host: `nic_chain` runs on `nic_cores`
    /// SmartNIC cores first; survivors continue to `host_chain` on
    /// `host_cores` host cores.
    pub fn smartnic_offload(
        name: impl Into<String>,
        nic_cores: u32,
        nic_chain: impl Fn() -> NfChain + 'static,
        host_cores: u32,
        host_chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let nic_chain: ChainFactory = Box::new(nic_chain);
        let host_chain: ChainFactory = Box::new(host_chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![
                Box::new(move || {
                    StageConfig::new(
                        "smartnic-cores",
                        nic_cores,
                        2048,
                        Box::new(NfService::smartnic_core(nic_chain())),
                    )
                }),
                Box::new(move || {
                    StageConfig::new(
                        "host-cores",
                        host_cores,
                        1024,
                        Box::new(NfService::host_core(host_chain())),
                    )
                }),
            ],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: host_cores,
                    source: UtilSource::Stage(1),
                },
                PowerLine {
                    device: DeviceSpec::smartnic_100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A host behind a programmable switch: the switch executes
    /// `switch_chain` semantics at line rate (fixed 400 ns pipeline
    /// latency); survivors hit `host_chain` on the host cores.
    pub fn switch_frontend(
        name: impl Into<String>,
        switch_chain: impl Fn() -> NfChain + 'static,
        host_cores: u32,
        host_chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let switch_chain: ChainFactory = Box::new(switch_chain);
        let host_chain: ChainFactory = Box::new(host_chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![
                Box::new(move || {
                    StageConfig::new(
                        "switch-pipeline",
                        1024,
                        4096,
                        Box::new(FixedTime::switch_pipeline(switch_chain())),
                    )
                }),
                Box::new(move || {
                    StageConfig::new(
                        "host-cores",
                        host_cores,
                        1024,
                        Box::new(NfService::host_core(host_chain())),
                    )
                }),
            ],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::programmable_switch_32x100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: host_cores,
                    source: UtilSource::Stage(1),
                },
                PowerLine {
                    device: DeviceSpec::dumb_nic_100g(),
                    count: 1,
                    source: UtilSource::Stage(1),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A GPU-offloaded host: a host RX core batches packets to a GPU
    /// that executes `gpu_chain` semantics with a per-kernel launch cost
    /// amortized over the batch. The defining trade: enormous throughput
    /// at a latency floor set by batch formation (§4.3's non-scalable
    /// latency, in accelerator form).
    pub fn gpu_offload(
        name: impl Into<String>,
        batch: crate::engine::BatchPolicy,
        gpu_chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let gpu_chain: ChainFactory = Box::new(gpu_chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![
                // RX core: cheap per-packet handoff into the batcher.
                Box::new(move || {
                    StageConfig::new(
                        "rx-core",
                        1,
                        4096,
                        Box::new(NfService::new("rx-core", NfChain::empty(), 3.0, 150)),
                    )
                }),
                // The GPU: 2 concurrent kernel streams, 30 ns marginal
                // per packet inside a kernel.
                Box::new(move || {
                    StageConfig::new(
                        "gpu",
                        2,
                        8192,
                        Box::new(FixedTime::new("gpu-kernel", gpu_chain(), 30)),
                    )
                    .with_batching(batch)
                }),
            ],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
                PowerLine {
                    device: DeviceSpec::gpu_accelerator(),
                    count: 1,
                    source: UtilSource::Stage(1),
                },
                PowerLine {
                    device: DeviceSpec::dumb_nic_100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A horizontally scaled cluster: `replicas` identical CPU hosts
    /// behind a line-rate flow splitter (a plain L2 switch doing ECMP by
    /// flow hash — *not* a programmable offload; it costs its own watts
    /// but does no NF work).
    ///
    /// This is Principle 5 made literal: instead of *assuming* how the
    /// baseline scales, provision it at `replicas` hosts and measure.
    /// The cluster's cost includes every chassis, every core, every NIC,
    /// and the splitter — the end-to-end coverage Principle 3 demands
    /// when scaling (§4.2.1's second pitfall is charging less).
    pub fn replicated_cluster(
        name: impl Into<String>,
        replicas: u32,
        cores_per_host: u32,
        alpha: f64,
        chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        use crate::engine::NextHop;
        assert!(replicas > 0, "need at least one replica");
        let chain: ChainFactory = Box::new(chain);
        let chain = std::rc::Rc::new(chain);
        let mut stage_factories: Vec<StageFactory> = Vec::new();
        // Stage 0: the ECMP splitter — line-rate, no NF semantics.
        stage_factories.push(Box::new(move || {
            StageConfig::new(
                "ecmp-splitter",
                1024,
                8192,
                Box::new(FixedTime::new("ecmp-splitter", NfChain::empty(), 400)),
            )
            .with_next(NextHop::Steer(Box::new(move |pkt| {
                Some(1 + (pkt.tuple.hash64() % u64::from(replicas)) as usize)
            })))
            .with_steer_targets((1..=replicas as usize).collect())
        }));
        let mut power_lines = vec![PowerLine {
            // The splitter is a (non-programmable) switch; model its
            // envelope with the same class of box.
            device: DeviceSpec::programmable_switch_32x100g(),
            count: 1,
            source: UtilSource::Stage(0),
        }];
        for i in 0..replicas {
            let chain = chain.clone();
            stage_factories.push(Box::new(move || {
                StageConfig::new(
                    "host",
                    cores_per_host,
                    1024,
                    Box::new(NfService::host_core_contended(chain(), cores_per_host, alpha)),
                )
                .with_next(NextHop::Sink)
            }));
            let host_stage = 1 + i as usize;
            power_lines.push(PowerLine {
                device: DeviceSpec::host_chassis(),
                count: 1,
                source: UtilSource::Fixed(1.0),
            });
            power_lines.push(PowerLine {
                device: DeviceSpec::xeon_core(),
                count: cores_per_host,
                source: UtilSource::Stage(host_stage),
            });
            power_lines.push(PowerLine {
                device: DeviceSpec::dumb_nic_100g(),
                count: 1,
                source: UtilSource::Stage(host_stage),
            });
        }
        Deployment {
            name: name.into(),
            stage_factories,
            power_lines,
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// A CPU host with RSS (receive-side scaling): the NIC hashes each
    /// flow to one of `cores` single-core queues, instead of all cores
    /// sharing one queue.
    ///
    /// This is how real multi-core packet processing is actually wired
    /// (per-core queues, flow affinity, no cross-core locking). The
    /// trade-off against the shared-queue model used by
    /// [`Deployment::cpu_host`] is classical queueing theory: a shared
    /// queue (M/M/c-like) pools capacity and wins on tail latency, while
    /// RSS suffers head-of-line blocking on whichever core the popular
    /// flows hash to — measurable with skewed (Zipf) flow populations.
    pub fn cpu_host_rss(
        name: impl Into<String>,
        cores: u32,
        chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        use crate::engine::NextHop;
        assert!(cores > 0, "need at least one core");
        let chain: ChainFactory = Box::new(chain);
        let chain = std::rc::Rc::new(chain);
        let mut stage_factories: Vec<StageFactory> = Vec::new();
        // Stage 0: the NIC's RSS demux — line-rate hashing, steers by
        // flow hash to core stage 1..=cores.
        stage_factories.push(Box::new(move || {
            StageConfig::new(
                "nic-rss-demux",
                256,
                4096,
                Box::new(FixedTime::new("nic-rss-demux", NfChain::empty(), 50)),
            )
            .with_next(NextHop::Steer(Box::new(move |pkt| {
                Some(1 + (pkt.tuple.hash64() % u64::from(cores)) as usize)
            })))
            .with_steer_targets((1..=cores as usize).collect())
        }));
        let mut power_lines = vec![
            PowerLine {
                device: DeviceSpec::host_chassis(),
                count: 1,
                source: UtilSource::Fixed(1.0),
            },
            PowerLine {
                device: DeviceSpec::dumb_nic_100g(),
                count: 1,
                source: UtilSource::Stage(0),
            },
        ];
        for i in 0..cores {
            let chain = chain.clone();
            stage_factories.push(Box::new(move || {
                StageConfig::new("rss-core", 1, 1024, Box::new(NfService::host_core(chain())))
                    .with_next(NextHop::Sink)
            }));
            power_lines.push(PowerLine {
                device: DeviceSpec::xeon_core(),
                count: 1,
                source: UtilSource::Stage(1 + i as usize),
            });
        }
        Deployment {
            name: name.into(),
            stage_factories,
            power_lines,
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// An FPGA-NIC-accelerated host (a Pigasus-style IPS shape, cf. the
    /// paper's reference 42): the FPGA pipeline executes `fpga_chain` (typically
    /// DPI) at a fixed per-packet latency regardless of payload length;
    /// survivors continue to `host_chain` on the host cores.
    pub fn fpga_offload(
        name: impl Into<String>,
        fpga_chain: impl Fn() -> NfChain + 'static,
        host_cores: u32,
        host_chain: impl Fn() -> NfChain + 'static,
    ) -> Self {
        let fpga_chain: ChainFactory = Box::new(fpga_chain);
        let host_chain: ChainFactory = Box::new(host_chain);
        Deployment {
            name: name.into(),
            stage_factories: vec![
                Box::new(move || {
                    StageConfig::new(
                        "fpga-pipeline",
                        512,
                        4096,
                        Box::new(FixedTime::new("fpga-pipeline", fpga_chain(), 1_000)),
                    )
                }),
                Box::new(move || {
                    StageConfig::new(
                        "host-cores",
                        host_cores,
                        1024,
                        Box::new(NfService::host_core(host_chain())),
                    )
                }),
            ],
            power_lines: vec![
                PowerLine {
                    device: DeviceSpec::host_chassis(),
                    count: 1,
                    source: UtilSource::Fixed(1.0),
                },
                PowerLine {
                    device: DeviceSpec::xeon_core(),
                    count: host_cores,
                    source: UtilSource::Stage(1),
                },
                PowerLine {
                    device: DeviceSpec::fpga_nic_100g(),
                    count: 1,
                    source: UtilSource::Stage(0),
                },
            ],
            payload: None,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            fused: true,
            shards: 1,
        }
    }

    /// Enables payload synthesis (for DPI pipelines).
    pub fn with_payloads(mut self, attack_prob: f64, needles: Vec<Vec<u8>>) -> Self {
        self.payload = Some((attack_prob, needles));
        self
    }

    /// Selects the event-queue discipline for runs of this deployment.
    /// The timing wheel is the default; the heap baseline exists for
    /// A/B determinism checks — results are byte-identical either way.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Selects whether zero-latency stage hops are fused (processed in
    /// the same timestamp walk, the default) or re-enqueued through the
    /// event scheduler one hop at a time. The unfused path is the
    /// reference oracle for the fusion optimization — results are
    /// byte-identical either way.
    pub fn with_fusion(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Requests sharded execution: partition the pipeline across `n`
    /// shards (threads) with conservative epoch-barrier synchronization
    /// — see DESIGN.md §12. Results are byte-identical to the serial
    /// engine; deployments whose topology cannot be validly partitioned
    /// (or `n = 1`) silently run serially, because falling back is
    /// always correct under that contract. Sharding never affects the
    /// config digest: the same deployment at any shard count is the
    /// same experiment.
    pub fn with_shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        self.shards = n;
        self
    }

    /// Attaches a fault spec: every run derives a [`FaultPlan`] from
    /// `(workload seed, spec)` and injects it. A [`FaultSpec::none`]
    /// spec leaves runs bit-for-bit unchanged.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// The concrete fault plan a run against `workload_seed` over
    /// `duration_ns` would inject — the replay token for
    /// determinism-under-faults tests. `None` when the deployment has
    /// no fault spec.
    pub fn fault_plan(&self, workload_seed: u64, duration_ns: u64) -> Option<FaultPlan> {
        self.faults.as_ref().map(|spec| {
            FaultPlan::derive(
                apples_rng::mix64(workload_seed ^ FAULT_SEED_SALT),
                spec,
                self.stage_factories.len(),
                duration_ns,
            )
        })
    }

    /// The deployment's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device classes in the power inventory (for Principle 3).
    pub fn device_classes(&self) -> Vec<DeviceClass> {
        let mut v: Vec<DeviceClass> = self.power_lines.iter().map(|l| l.device.class).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Runs the deployment against a workload and measures it.
    pub fn run(&self, workload: &WorkloadSpec, duration_ns: u64, warmup_ns: u64) -> Measurement {
        self.run_inner(workload, duration_ns, warmup_ns, None, None).0
    }

    /// Runs the deployment with the runtime order sanitizer shadowing
    /// the dispatch walk (see [`crate::sanitizer::OrderSanitizer`]).
    /// `perturb_seed` arms the interleaving perturber: every
    /// same-timestamp equivalence class is shuffled and re-merged by
    /// `seq` before dispatch. Either way the simulated numbers must be
    /// byte-identical to [`Deployment::run`] — the `xp sanitize` gate
    /// and the sanitizer tests assert that identity.
    pub fn run_sanitized(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
        perturb_seed: Option<u64>,
    ) -> (Measurement, SanitizerReport) {
        let san = match perturb_seed {
            Some(seed) => OrderSanitizer::with_perturbation(seed),
            None => OrderSanitizer::new(),
        };
        let (m, _, san, _) = self.run_inner_full(workload, duration_ns, warmup_ns, None, Some(san));
        // The engine hands the sanitizer back exactly when one was
        // attached; the fallback keeps this total.
        (m, san.map(|s| s.report().clone()).unwrap_or_default())
    }

    /// Runs the deployment with observability attached: same simulated
    /// numbers as [`Deployment::run`] (the observer never feeds back
    /// into the simulation), plus the trace/telemetry/span state the
    /// run accumulated.
    pub fn run_observed(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
        cfg: &ObsConfig,
    ) -> (Measurement, RunObserver) {
        let (m, obs) =
            self.run_inner(workload, duration_ns, warmup_ns, Some(RunObserver::new(cfg)), None);
        // The engine hands the observer back exactly when one was
        // attached; the fallback is unreachable but keeps this total.
        (m, obs.unwrap_or_else(|| RunObserver::new(cfg)))
    }

    /// Runs the deployment with observability attached and also returns
    /// the scaling diagnosis ([`crate::shard::ShardDiag`]) when the run
    /// actually sharded: the per-shard wall-time decomposition
    /// (compute / barrier-stall / merge), barrier-wait histograms, and
    /// mailbox traffic. Serial runs (including silent fallbacks — an
    /// unpartitionable pipeline, a non-shardable observer) return
    /// `None`. Simulated numbers are byte-identical to
    /// [`Deployment::run`] either way.
    pub fn run_diagnosed(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
        cfg: &ObsConfig,
    ) -> (Measurement, RunObserver, Option<crate::shard::ShardDiag>) {
        let (m, obs, _, diag) = self.run_inner_full(
            workload,
            duration_ns,
            warmup_ns,
            Some(RunObserver::new(cfg)),
            None,
        );
        (m, obs.unwrap_or_else(|| RunObserver::new(cfg)), diag)
    }

    fn run_inner(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
        observer: Option<RunObserver>,
        sanitizer: Option<OrderSanitizer>,
    ) -> (Measurement, Option<RunObserver>) {
        let (m, obs, _, _) =
            self.run_inner_full(workload, duration_ns, warmup_ns, observer, sanitizer);
        (m, obs)
    }

    #[allow(clippy::type_complexity)]
    fn run_inner_full(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
        observer: Option<RunObserver>,
        sanitizer: Option<OrderSanitizer>,
    ) -> (Measurement, Option<RunObserver>, Option<OrderSanitizer>, Option<crate::shard::ShardDiag>)
    {
        let stages: Vec<StageConfig> = self.stage_factories.iter().map(|f| f()).collect();
        let mut engine = Engine::new(stages)
            .with_scheduler(self.scheduler)
            .with_fusion(self.fused)
            .with_shards(self.shards);
        if let Some((prob, needles)) = &self.payload {
            engine = engine
                .with_payloads(PayloadConfig { attack_prob: *prob, needles: needles.clone() });
        }
        if let Some(plan) = self.fault_plan(workload.seed, duration_ns) {
            engine = engine.with_fault_plan(plan);
        }
        if let Some(obs) = observer {
            engine = engine.with_observer(obs);
        }
        if let Some(san) = sanitizer {
            engine = engine.with_sanitizer(san);
        }
        let result = engine.run(workload, duration_ns, warmup_ns);
        let observer = engine.take_observer();
        let sanitizer = engine.take_sanitizer();
        let shard_diag = engine.take_shard_diag();

        let total_watts: f64 = self
            .power_lines
            .iter()
            .map(|l| {
                let u = match l.source {
                    UtilSource::Fixed(u) => u,
                    UtilSource::Stage(i) => result.stages.get(i).map_or(0.0, |s| s.utilization),
                };
                f64::from(l.count) * l.device.watts_at(u)
            })
            .sum();

        let measurement = Measurement {
            name: self.name.clone(),
            device_classes: self.device_classes(),
            throughput_bps: result.sink.throughput_bps(result.window_ns),
            throughput_pps: result.sink.throughput_pps(result.window_ns),
            mean_latency_ns: result.sink.latency().mean_ns(),
            p99_latency_ns: result.sink.latency().quantile_ns(0.99) as f64,
            loss_rate: result.sink.loss_rate(),
            jain_index: result.sink.jain_index(),
            policy_drops: result.sink.policy_drops(),
            fault_drops: result.sink.fault_drops(),
            injected_drops: result.injected_drops,
            corrupted: result.corrupted,
            watts: total_watts,
            stages: result.stages,
        };
        (measurement, observer, sanitizer, shard_diag)
    }

    /// Canonical digest of everything that determines a run's simulated
    /// outputs: the deployment shape, scheduler, fault spec, payload
    /// switch, workload spec, and measurement window.
    pub fn config_digest(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> String {
        let s = format!(
            "name={};stages={};sched={};faults={:?};payload={};wl={:?};dur={};warm={}",
            self.name,
            self.stage_factories.len(),
            self.scheduler.label(),
            self.faults,
            self.payload.is_some(),
            workload,
            duration_ns,
            warmup_ns
        );
        apples_obs::fnv1a_hex(s.as_bytes())
    }

    /// The provenance stamp a run of this deployment against `workload`
    /// over the given window carries.
    pub fn provenance(
        &self,
        workload: &WorkloadSpec,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> Provenance {
        let fault_digest = match &self.faults {
            Some(spec) => spec.digest(),
            None => "none".to_owned(),
        };
        Provenance::new(
            workload.seed,
            self.scheduler.label(),
            fault_digest,
            self.config_digest(workload, duration_ns, warmup_ns),
        )
    }
}

/// Everything a run measured, plus conversions to methodology inputs.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Deployment name.
    pub name: String,
    /// Device classes used (Principle 3 input).
    pub device_classes: Vec<DeviceClass>,
    /// Delivered throughput, bits/second.
    pub throughput_bps: f64,
    /// Delivered throughput, packets/second.
    pub throughput_pps: f64,
    /// Mean end-to-end latency, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile latency, ns.
    pub p99_latency_ns: f64,
    /// Overload loss fraction.
    pub loss_rate: f64,
    /// Jain's fairness index over per-flow bytes (None if nothing ran).
    pub jain_index: Option<f64>,
    /// Packets dropped by NF policy (work done, not loss).
    pub policy_drops: u64,
    /// Packets lost to injected faults in the measurement window.
    pub fault_drops: u64,
    /// Packets the fault plan dropped at the injection point (whole run).
    pub injected_drops: u64,
    /// Packets the fault plan marked corrupted (whole run).
    pub corrupted: u64,
    /// End-to-end power at measured utilizations, watts.
    pub watts: f64,
    /// Per-stage reports.
    pub stages: Vec<StageReport>,
}

impl Measurement {
    /// Energy per delivered bit, in joules/bit — the JouleSort-style
    /// (the paper's reference 28) energy-efficiency figure: average power over
    /// delivered throughput. `None` when nothing was delivered.
    ///
    /// Note this is the reciprocal of
    /// [`apples_core::efficiency::perf_per_cost`] on the
    /// (throughput, power) axes, so rankings by either agree.
    pub fn joules_per_bit(&self) -> Option<f64> {
        if self.throughput_bps <= 0.0 {
            None
        } else {
            Some(self.watts / self.throughput_bps)
        }
    }

    /// (throughput, power) operating point — the paper's default axes.
    pub fn throughput_power_point(&self) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::throughput_bps().value(bps(self.throughput_bps)),
            CostMetric::power_draw().value(watts(self.watts)),
        )
    }

    /// (packet rate, power) operating point.
    pub fn pps_power_point(&self) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::throughput_pps().value(pps_q(self.throughput_pps)),
            CostMetric::power_draw().value(watts(self.watts)),
        )
    }

    /// (mean latency, power) operating point — §4.3's non-scalable axes.
    pub fn latency_power_point(&self) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::latency().value(micros(self.mean_latency_ns / 1000.0)),
            CostMetric::power_draw().value(watts(self.watts)),
        )
    }

    /// (p99 latency, power) operating point.
    pub fn p99_power_point(&self) -> OperatingPoint {
        OperatingPoint::new(
            PerfMetric::p99_latency().value(micros(self.p99_latency_ns / 1000.0)),
            CostMetric::power_draw().value(watts(self.watts)),
        )
    }

    /// (Jain's index, power) operating point — the other §4.3 metric.
    pub fn jain_power_point(&self) -> Option<OperatingPoint> {
        self.jain_index.map(|j| {
            OperatingPoint::new(
                PerfMetric::jains_fairness_index().value(ratio(j)),
                CostMetric::power_draw().value(watts(self.watts)),
            )
        })
    }

    /// A methodology [`System`] on the (throughput, power) axes.
    pub fn as_system(&self) -> System {
        System::new(self.name.clone(), self.device_classes.clone(), self.throughput_power_point())
    }

    /// A methodology [`System`] on the (latency, power) axes.
    pub fn as_latency_system(&self) -> System {
        System::new(self.name.clone(), self.device_classes.clone(), self.latency_power_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{synth_rules, Action, Firewall};

    fn firewall_chain(rules: usize) -> impl Fn() -> NfChain {
        move || {
            NfChain::new(vec![Box::new(Firewall::new(synth_rules(rules, 0.05, 7), Action::Deny))])
        }
    }

    fn light_workload() -> WorkloadSpec {
        WorkloadSpec::cbr(200_000.0, 1500, 16, 5)
    }

    #[test]
    fn cpu_host_measures_throughput_and_power() {
        let d = Deployment::cpu_host("baseline-fw", 1, firewall_chain(100));
        let m = d.run(&light_workload(), 20_000_000, 2_000_000);
        assert!(m.throughput_bps > 0.0);
        // Light load: power near idle floor (20 + ~1 + ~4 = ~25 W).
        assert!(m.watts > 24.0 && m.watts < 40.0, "watts {}", m.watts);
        assert_eq!(m.device_classes, vec![DeviceClass::Cpu, DeviceClass::Nic]);
    }

    #[test]
    fn saturated_cpu_host_draws_full_core_power() {
        let d = Deployment::cpu_host("baseline-fw", 1, firewall_chain(100));
        // Offered load far above one core's capacity.
        let wl = WorkloadSpec::cbr(5e6, 1500, 16, 5);
        let m = d.run(&wl, 20_000_000, 2_000_000);
        // chassis 20 + core ~30 + NIC ~6 = ~56 W at saturation.
        assert!(m.watts > 50.0, "watts {}", m.watts);
        assert!(m.loss_rate > 0.1, "loss {}", m.loss_rate);
    }

    #[test]
    fn smartnic_offload_outperforms_host_at_same_workload() {
        // Full firewall offloaded to 8 NIC cores vs 1 host core.
        let host = Deployment::cpu_host("host-fw", 1, firewall_chain(100));
        let nic = Deployment::smartnic_offload("nic-fw", 8, firewall_chain(100), 1, NfChain::empty);
        let wl = WorkloadSpec::cbr(3e6, 1500, 16, 5);
        let mh = host.run(&wl, 20_000_000, 2_000_000);
        let mn = nic.run(&wl, 20_000_000, 2_000_000);
        assert!(
            mn.throughput_bps > 1.5 * mh.throughput_bps,
            "nic {} vs host {}",
            mn.throughput_bps,
            mh.throughput_bps
        );
        // Note: whether the offload also costs more watts depends on the
        // saturation point — that question is exactly what the fair-
        // comparison engine decides; here we only check the substrate's
        // shape (more throughput, SmartNIC inventory present).
        assert!(mn.device_classes.contains(&DeviceClass::SmartNic));
    }

    #[test]
    fn switch_frontend_sheds_host_load() {
        // Switch denies ~half the flows at line rate; host sees less work.
        let deny_rules = || {
            // Deny all TCP to port 80 (a large share of synth flows).
            let rules = vec![
                crate::nf::firewall::Rule {
                    src: (0, 0),
                    dst: (0, 0),
                    dst_ports: (80, 80),
                    proto: Some(6),
                    action: Action::Deny,
                },
                crate::nf::firewall::Rule::any(Action::Allow),
            ];
            NfChain::new(vec![Box::new(Firewall::new(rules, Action::Allow))
                as Box<dyn crate::nf::NetworkFunction>])
        };
        let plain = Deployment::cpu_host("host-only", 1, firewall_chain(100));
        let fronted =
            Deployment::switch_frontend("switch+host", deny_rules, 1, firewall_chain(100));
        let wl = WorkloadSpec::cbr(2e6, 1500, 64, 5);
        let mp = plain.run(&wl, 20_000_000, 2_000_000);
        let mf = fronted.run(&wl, 20_000_000, 2_000_000);
        assert!(mf.policy_drops > 0, "switch should drop some flows");
        // The fronted host is less utilized for the surviving traffic.
        let host_util =
            |m: &Measurement| m.stages.iter().find(|s| s.name == "host-cores").unwrap().utilization;
        assert!(host_util(&mf) < host_util(&mp), "switch should shed host load");
        // And it costs far more watts (the switch's idle floor).
        assert!(mf.watts > mp.watts + 90.0);
    }

    #[test]
    fn operating_points_use_the_right_axes() {
        let d = Deployment::cpu_host("x", 1, NfChain::empty);
        let m = d.run(&light_workload(), 10_000_000, 1_000_000);
        let tp = m.throughput_power_point();
        assert_eq!(tp.perf().metric().name(), "throughput");
        assert_eq!(tp.cost().metric().name(), "power draw");
        let lp = m.latency_power_point();
        assert_eq!(lp.perf().metric().name(), "latency");
        let s = m.as_system();
        assert_eq!(s.name(), "x");
        assert!(m.pps_power_point().perf().quantity().value() > 0.0);
        assert!(m.p99_power_point().perf().quantity().value() > 0.0);
        assert!(m.jain_power_point().is_some());
        assert_eq!(m.as_latency_system().devices(), s.devices());
    }

    #[test]
    fn builder_composes_custom_deployments() {
        use crate::service::LineRate;
        let d = DeploymentBuilder::new("custom-wan-fw")
            .stage(|| StageConfig::new("wan-link", 1, 2048, Box::new(LineRate::new("10G", 10e9))))
            .stage(move || {
                StageConfig::new(
                    "fw-core",
                    2,
                    1024,
                    Box::new(NfService::host_core(firewall_chain(100)())),
                )
            })
            .power(DeviceSpec::host_chassis(), 1, UtilSource::Fixed(1.0))
            .power(DeviceSpec::xeon_core(), 2, UtilSource::Stage(1))
            .build();
        let m = d.run(&WorkloadSpec::cbr(200_000.0, 1500, 8, 5), 10_000_000, 1_000_000);
        assert_eq!(m.name, "custom-wan-fw");
        assert_eq!(m.stages.len(), 2);
        assert!(m.throughput_bps > 0.0);
        assert!(m.watts > 20.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent stage")]
    fn builder_rejects_dangling_power_lines() {
        let _ = DeploymentBuilder::new("bad")
            .stage(|| {
                StageConfig::new("only", 1, 8, Box::new(NfService::host_core(NfChain::empty())))
            })
            .power(DeviceSpec::xeon_core(), 1, UtilSource::Stage(5))
            .build();
    }

    #[test]
    fn power_scaling_lever_for_sensitivity_studies() {
        let base = DeviceSpec::smartnic_100g();
        let hot = DeviceSpec::smartnic_100g().with_power_scaled(2.0);
        assert!((hot.watts_at(1.0) - 2.0 * base.watts_at(1.0)).abs() < 1e-9);
        assert!((hot.watts_at(0.0) - 2.0 * base.watts_at(0.0)).abs() < 1e-9);
    }

    #[test]
    fn gpu_offload_trades_latency_for_throughput() {
        use crate::engine::BatchPolicy;
        let policy = BatchPolicy::new(256, 100_000, 15_000);
        // Heavy load: the GPU's amortized kernels crush the host core.
        let heavy = WorkloadSpec::cbr(4e6, 1500, 64, 5);
        let host_heavy = Deployment::cpu_host("host-fw", 1, firewall_chain(100))
            .run(&heavy, 20_000_000, 2_000_000);
        let gpu_heavy = Deployment::gpu_offload("gpu-fw", policy, firewall_chain(100))
            .run(&heavy, 20_000_000, 2_000_000);
        assert!(
            gpu_heavy.throughput_bps > 3.0 * host_heavy.throughput_bps,
            "gpu {} vs host {}",
            gpu_heavy.throughput_bps,
            host_heavy.throughput_bps
        );
        assert!(gpu_heavy.device_classes.contains(&DeviceClass::Gpu));
        // Light load: both keep up, but the GPU pays the batch-formation
        // floor (timeout + kernel) the host never has.
        let light = WorkloadSpec::cbr(100_000.0, 1500, 64, 5);
        let host_light = Deployment::cpu_host("host-fw", 1, firewall_chain(100))
            .run(&light, 20_000_000, 2_000_000);
        let gpu_light = Deployment::gpu_offload("gpu-fw", policy, firewall_chain(100))
            .run(&light, 20_000_000, 2_000_000);
        assert!(
            gpu_light.mean_latency_ns > 10.0 * host_light.mean_latency_ns,
            "gpu {} ns vs host {} ns",
            gpu_light.mean_latency_ns,
            host_light.mean_latency_ns
        );
    }

    #[test]
    fn replicated_cluster_scales_throughput_and_charges_every_host() {
        let wl = WorkloadSpec::cbr(8e6, 1500, 256, 5);
        let one = Deployment::replicated_cluster("cluster-1", 1, 2, 0.1, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        let three = Deployment::replicated_cluster("cluster-3", 3, 2, 0.1, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        let gain = three.throughput_bps / one.throughput_bps;
        // Sub-ideal: flow-hash imbalance keeps it below 3x.
        assert!(gain > 2.0 && gain < 3.0, "3-replica gain {gain}");
        // Cost covers every chassis: at least 2 extra idle chassis
        // (+40 W) over the 1-replica cluster.
        assert!(three.watts > one.watts + 40.0, "{} vs {}", three.watts, one.watts);
        // Splitter + 3 hosts = 4 stages.
        assert_eq!(three.stages.len(), 4);
    }

    #[test]
    fn rss_host_spreads_flows_across_core_stages() {
        let d = Deployment::cpu_host_rss("rss-4c", 4, firewall_chain(100));
        let wl = WorkloadSpec::cbr(2e6, 1500, 128, 5);
        let m = d.run(&wl, 20_000_000, 2_000_000);
        // 5 stages: demux + 4 cores.
        assert_eq!(m.stages.len(), 5);
        let core_served: Vec<u64> = m.stages[1..].iter().map(|s| s.served).collect();
        assert!(core_served.iter().all(|&s| s > 0), "every core got flows: {core_served:?}");
        // Everything the demux forwarded arrived at some core queue.
        let core_arrivals: u64 = m.stages[1..].iter().map(|s| s.arrivals).sum();
        assert_eq!(core_arrivals, m.stages[0].served - m.stages[0].policy_drops);
        assert!(m.throughput_bps > 0.0);
    }

    #[test]
    fn shared_queue_beats_rss_on_tail_latency_under_skew() {
        // Same 4 cores, same Zipf-skewed workload near saturation: the
        // pooled queue keeps p99 lower than per-core RSS queues, where
        // popular flows pile onto one core.
        let wl = WorkloadSpec {
            sizes: apples_workload::PacketSizeDist::Fixed(1500),
            arrivals: apples_workload::ArrivalProcess::Poisson { rate_pps: 2.2e6 },
            flows: 64,
            zipf_s: 1.2,
            seed: 5,
        };
        let shared = Deployment::cpu_host("shared-4c", 4, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        let rss = Deployment::cpu_host_rss("rss-4c", 4, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        assert!(
            rss.p99_latency_ns > 2.0 * shared.p99_latency_ns,
            "rss p99 {} ns vs shared p99 {} ns",
            rss.p99_latency_ns,
            shared.p99_latency_ns
        );
    }

    #[test]
    fn fpga_ips_outpaces_host_ips_on_payload_heavy_traffic() {
        use crate::nf::dpi::{Dpi, MatchPolicy};
        let ips_chain = || {
            NfChain::new(vec![Box::new(Dpi::new(&Dpi::demo_signatures(), MatchPolicy::Block))
                as Box<dyn crate::nf::NetworkFunction>])
        };
        let needles: Vec<Vec<u8>> = Dpi::demo_signatures().iter().map(|s| s.to_vec()).collect();
        let wl = WorkloadSpec::cbr(2.5e6, 1500, 32, 5);
        let host = Deployment::cpu_host("host-ips", 1, ips_chain)
            .with_payloads(0.01, needles.clone())
            .run(&wl, 4_000_000, 500_000);
        let fpga = Deployment::fpga_offload("fpga-ips", ips_chain, 1, NfChain::empty)
            .with_payloads(0.01, needles)
            .run(&wl, 4_000_000, 500_000);
        // Per-byte DPI swamps a single core; the FPGA pipeline is
        // payload-size independent.
        assert!(
            fpga.throughput_bps > 3.0 * host.throughput_bps,
            "fpga {} vs host {}",
            fpga.throughput_bps,
            host.throughput_bps
        );
        assert!(fpga.device_classes.contains(&DeviceClass::Fpga));
        // Both block some attack traffic.
        assert!(fpga.policy_drops > 0);
        assert!(host.policy_drops > 0);
    }

    #[test]
    fn contended_cores_scale_sublinearly() {
        // Saturating load; 2 contended cores should deliver < 2x of 1.
        let wl = WorkloadSpec::cbr(5e6, 1500, 16, 5);
        let one = Deployment::cpu_host_contended("c1", 1, 0.1, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        let two = Deployment::cpu_host_contended("c2", 2, 0.1, firewall_chain(100))
            .run(&wl, 20_000_000, 2_000_000);
        let gain = two.throughput_bps / one.throughput_bps;
        assert!(gain > 1.5 && gain < 1.95, "2-core gain {gain}");
    }

    #[test]
    fn joules_per_bit_is_inverse_efficiency() {
        let d = Deployment::cpu_host("jpb", 1, firewall_chain(100));
        let m = d.run(&WorkloadSpec::cbr(2e6, 1500, 16, 5), 10_000_000, 1_000_000);
        let jpb = m.joules_per_bit().expect("traffic flowed");
        assert!((jpb - m.watts / m.throughput_bps).abs() < 1e-18);
        let eff = apples_core::perf_per_cost(&m.throughput_power_point()).expect("throughput axes");
        assert!((jpb * eff - 1.0).abs() < 1e-9, "jpb and perf-per-watt are reciprocals");
        // An idle-ish run delivers nothing -> undefined.
        let idle = Deployment::cpu_host("idle", 1, firewall_chain(100));
        let mi = idle.run(&WorkloadSpec::cbr(1.0, 1500, 1, 5), 2_000_000, 1_000_000);
        // Exact-zero sentinel: a run that delivered no packets stores
        // exactly 0.0, not a computed value (test code, so N1 does not
        // apply).
        if mi.throughput_bps == 0.0 {
            assert_eq!(mi.joules_per_bit(), None);
        }
    }

    #[test]
    fn measurements_are_deterministic() {
        let d = Deployment::cpu_host("det", 2, firewall_chain(50));
        let wl = light_workload();
        let a = d.run(&wl, 10_000_000, 1_000_000);
        let b = d.run(&wl, 10_000_000, 1_000_000);
        assert_eq!(a.throughput_bps, b.throughput_bps);
        assert_eq!(a.watts, b.watts);
        assert_eq!(a.p99_latency_ns, b.p99_latency_ns);
    }

    #[test]
    fn faulted_deployments_are_deterministic_and_degraded() {
        use crate::fault::FaultSpec;
        let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
        let mk = || {
            Deployment::cpu_host("faulted", 2, firewall_chain(50))
                .with_faults(FaultSpec::at_severity(0.8))
        };
        let a = mk().run(&wl, 10_000_000, 1_000_000);
        let b = mk().run(&wl, 10_000_000, 1_000_000);
        assert_eq!(a.throughput_bps.to_bits(), b.throughput_bps.to_bits());
        assert_eq!(a.injected_drops, b.injected_drops);
        assert_eq!(a.fault_drops, b.fault_drops);
        assert!(a.injected_drops > 0, "severity 0.8 must drop packets at the injection point");
        let clean =
            Deployment::cpu_host("clean", 2, firewall_chain(50)).run(&wl, 10_000_000, 1_000_000);
        assert!(a.throughput_bps < clean.throughput_bps, "faults must cost throughput");
        assert_eq!(clean.injected_drops, 0);
        assert_eq!(clean.fault_drops, 0);
        assert_eq!(clean.corrupted, 0);
    }

    #[test]
    fn none_fault_spec_is_bit_identical_to_no_spec() {
        use crate::fault::FaultSpec;
        let wl = light_workload();
        let clean =
            Deployment::cpu_host("a", 2, firewall_chain(50)).run(&wl, 10_000_000, 1_000_000);
        let nulled = Deployment::cpu_host("a", 2, firewall_chain(50))
            .with_faults(FaultSpec::none())
            .run(&wl, 10_000_000, 1_000_000);
        assert_eq!(clean.throughput_bps.to_bits(), nulled.throughput_bps.to_bits());
        assert_eq!(clean.mean_latency_ns.to_bits(), nulled.mean_latency_ns.to_bits());
        assert_eq!(clean.watts.to_bits(), nulled.watts.to_bits());
    }

    #[test]
    fn observed_runs_match_unobserved_numbers_exactly() {
        let wl = WorkloadSpec::cbr(2e6, 1500, 16, 5);
        let mk = || {
            Deployment::cpu_host("obs", 2, firewall_chain(50))
                .with_faults(FaultSpec::at_severity(0.5))
        };
        let plain = mk().run(&wl, 10_000_000, 1_000_000);
        let (observed, obs) = mk().run_observed(&wl, 10_000_000, 1_000_000, &ObsConfig::full());
        assert_eq!(plain.throughput_bps.to_bits(), observed.throughput_bps.to_bits());
        assert_eq!(plain.p99_latency_ns.to_bits(), observed.p99_latency_ns.to_bits());
        assert_eq!(plain.fault_drops, observed.fault_drops);
        let tracer = obs.tracer.as_ref().unwrap();
        assert!(tracer.emitted() > 0, "a loaded run must emit trace events");
        let tel = obs.telemetry.as_ref().unwrap();
        assert!(tel.stages[0].arrivals > 0);
        assert!(obs.sched.pushes > 0, "scheduler counters must accumulate");
        assert!(obs.spans.as_ref().unwrap().total_spans() > 0);
    }

    #[test]
    fn provenance_and_config_digest_are_reproducible() {
        let wl = light_workload();
        let d = Deployment::cpu_host("prov", 1, firewall_chain(10))
            .with_faults(FaultSpec::at_severity(0.3));
        let a = d.provenance(&wl, 10_000_000, 1_000_000);
        let b = d.provenance(&wl, 10_000_000, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.scheduler, "wheel");
        assert_ne!(a.fault_digest, "none");
        // The digest must react to any replay-determining change.
        let longer = d.config_digest(&wl, 20_000_000, 1_000_000);
        assert_ne!(a.config_digest, longer);
        let clean = Deployment::cpu_host("prov", 1, firewall_chain(10));
        assert_eq!(clean.provenance(&wl, 10_000_000, 1_000_000).fault_digest, "none");
    }

    #[test]
    fn fault_plan_accessor_matches_the_injected_plan() {
        use crate::fault::FaultSpec;
        let d = Deployment::cpu_host("p", 1, firewall_chain(10))
            .with_faults(FaultSpec::at_severity(1.0));
        let p1 = d.fault_plan(5, 10_000_000).expect("spec attached");
        let p2 = d.fault_plan(5, 10_000_000).expect("spec attached");
        assert_eq!(p1, p2, "the replay token must be reproducible");
        assert!(d.fault_plan(6, 10_000_000).expect("spec attached") != p1, "seed must matter");
        let clean = Deployment::cpu_host("c", 1, firewall_chain(10));
        assert!(clean.fault_plan(5, 10_000_000).is_none());
    }
}
