//! Token-bucket rate policing.
//!
//! Polices traffic to a committed rate with a burst allowance; packets
//! beyond the profile are dropped (the classic srTCM red action). The
//! bucket is refilled lazily from packet timestamps, so the NF stays a
//! pure per-packet function of simulated time — no timers needed.

use super::{NetworkFunction, NfVerdict};
use crate::packet::Packet;

/// Cycles per policing decision (one refill computation + compare).
pub const POLICE_CYCLES: u64 = 80;

/// A single-rate token-bucket policer over wire bytes.
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill_ns: u64,
    conforming: u64,
    dropped: u64,
}

impl TokenBucket {
    /// Creates a policer with a committed rate (bits/s) and a burst
    /// budget (bytes). The bucket starts full.
    pub fn new(rate_bps: f64, burst_bytes: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive");
        assert!(burst_bytes > 0.0, "burst must be positive");
        TokenBucket {
            rate_bytes_per_sec: rate_bps / 8.0,
            burst_bytes,
            tokens: burst_bytes,
            last_refill_ns: 0,
            conforming: 0,
            dropped: 0,
        }
    }

    /// Packets that conformed so far.
    pub fn conforming(&self) -> u64 {
        self.conforming
    }

    /// Packets dropped as out-of-profile so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_refill_ns {
            let dt = (now_ns - self.last_refill_ns) as f64 * 1e-9;
            self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
            self.last_refill_ns = now_ns;
        }
    }

    /// Polices one packet of `bytes` wire bytes arriving at `now_ns`.
    pub fn police(&mut self, now_ns: u64, bytes: f64) -> bool {
        self.refill(now_ns);
        if self.tokens >= bytes {
            self.tokens -= bytes;
            self.conforming += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }
}

impl NetworkFunction for TokenBucket {
    fn name(&self) -> &'static str {
        "token-bucket-policer"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let ok = self.police(pkt.t_arrival_ns, f64::from(pkt.size_bytes + 20));
        let verdict = if ok { NfVerdict::Forward } else { NfVerdict::Drop };
        (verdict, POLICE_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_workload::FiveTuple;

    fn pkt(id: u64, t_ns: u64, size: u32) -> Packet {
        Packet::new(
            id,
            0,
            FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 80, proto: 6 },
            size,
            t_ns,
        )
    }

    #[test]
    fn burst_is_admitted_then_policed() {
        // 8 Mbit/s = 1 MB/s; burst 3000 B. Four 1000-B packets at t=0:
        // three fit the burst, the fourth is dropped.
        let mut tb = TokenBucket::new(8e6, 3000.0);
        let mut verdicts = Vec::new();
        for i in 0..4 {
            let (v, _) = tb.process(&pkt(i, 0, 980)); // 1000 wire bytes
            verdicts.push(v);
        }
        assert_eq!(
            verdicts,
            vec![NfVerdict::Forward, NfVerdict::Forward, NfVerdict::Forward, NfVerdict::Drop]
        );
        assert_eq!(tb.conforming(), 3);
        assert_eq!(tb.dropped(), 1);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut tb = TokenBucket::new(8e6, 1000.0); // 1 MB/s, 1000 B burst
        assert!(tb.police(0, 1000.0));
        assert!(!tb.police(0, 1000.0), "bucket empty");
        // 1 ms later: 1000 B refilled.
        assert!(tb.police(1_000_000, 1000.0));
        // 0.5 ms later: only 500 B.
        assert!(!tb.police(1_500_000, 1000.0));
        assert!(tb.police(1_500_000, 500.0));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(8e9, 2000.0);
        // A long idle period must not bank unbounded credit.
        assert!(tb.police(1_000_000_000, 2000.0));
        assert!(!tb.police(1_000_000_000, 1.0));
    }

    #[test]
    fn long_run_rate_is_enforced() {
        // Offer 2x the committed rate; about half must be dropped.
        let mut tb = TokenBucket::new(80e6, 10_000.0); // 10 MB/s
        let mut t = 0u64;
        for i in 0..10_000u64 {
            // 1000-B packets every 50 us = 20 MB/s offered.
            tb.process(&pkt(i, t, 980));
            t += 50_000;
        }
        let total = tb.conforming() + tb.dropped();
        let accept = tb.conforming() as f64 / total as f64;
        assert!((accept - 0.5).abs() < 0.02, "accept fraction {accept}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0, 100.0);
    }
}
