//! ACL firewall: the paper's running example workload (§4.2).
//!
//! Two matcher implementations share one rule format:
//!
//! - [`Firewall`] scans rules first-match-first in order — the classic
//!   O(n) ACL, whose cycle cost grows with the number of rules scanned;
//! - [`BucketedFirewall`] pre-indexes rules by protocol and destination
//!   port so most packets scan a small bucket — the "software
//!   optimization on the same hardware" used by the Figure 1a
//!   experiment (better performance at identical cost).

use super::{FailMode, NetworkFunction, NfVerdict};
use crate::packet::Packet;
use apples_rng::Rng;
use apples_workload::FiveTuple;
use std::collections::BTreeMap;

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Let the packet through.
    Allow,
    /// Drop the packet.
    Deny,
}

/// One ACL rule: prefix matches on addresses, a destination port range,
/// and an optional protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Source prefix as (address, prefix length 0–32).
    pub src: (u32, u8),
    /// Destination prefix as (address, prefix length 0–32).
    pub dst: (u32, u8),
    /// Inclusive destination port range.
    pub dst_ports: (u16, u16),
    /// Protocol to match, or `None` for any.
    pub proto: Option<u8>,
    /// Action on match.
    pub action: Action,
}

impl Rule {
    /// The match-anything rule with the given action.
    pub fn any(action: Action) -> Self {
        Rule { src: (0, 0), dst: (0, 0), dst_ports: (0, u16::MAX), proto: None, action }
    }

    /// Whether the rule matches a 5-tuple.
    pub fn matches(&self, t: &FiveTuple) -> bool {
        prefix_match(self.src, t.src_ip)
            && prefix_match(self.dst, t.dst_ip)
            && (self.dst_ports.0..=self.dst_ports.1).contains(&t.dst_port)
            && self.proto.is_none_or(|p| p == t.proto)
    }
}

fn prefix_match((addr, len): (u32, u8), ip: u32) -> bool {
    if len == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - u32::from(len));
    (ip & mask) == (addr & mask)
}

/// Cycle-cost constants shared by both matchers, calibrated so that a
/// ~100-rule linear firewall on one 3 GHz core forwards ~10 Gbps of
/// 1500 B traffic (the §4.2 baseline): parse + checksum + I/O descriptor
/// work, plus a per-rule compare.
pub const BASE_CYCLES: u64 = 500;
/// Cycles per rule compared.
pub const PER_RULE_CYCLES: u64 = 28;

/// First-match linear ACL firewall.
pub struct Firewall {
    rules: Vec<Rule>,
    default: Action,
    fail_mode: FailMode,
}

impl Firewall {
    /// Creates a firewall from an ordered rule list and a default action
    /// for packets matching no rule. Fails closed on corrupted packets
    /// (a firewall that cannot parse a packet must not pass it).
    pub fn new(rules: Vec<Rule>, default: Action) -> Self {
        Firewall { rules, default, fail_mode: FailMode::Closed }
    }

    /// Overrides the degradation policy for corrupted packets.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn decide(&self, t: &FiveTuple) -> (Action, u64) {
        for (i, r) in self.rules.iter().enumerate() {
            if r.matches(t) {
                return (r.action, (i as u64 + 1) * PER_RULE_CYCLES);
            }
        }
        (self.default, self.rules.len() as u64 * PER_RULE_CYCLES)
    }
}

impl NetworkFunction for Firewall {
    fn name(&self) -> &'static str {
        "acl-firewall"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (action, scan_cycles) = self.decide(&pkt.tuple);
        let verdict = match action {
            Action::Allow => NfVerdict::Forward,
            Action::Deny => NfVerdict::Drop,
        };
        (verdict, BASE_CYCLES + scan_cycles)
    }

    fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }
}

/// Bucket-indexed ACL firewall: rules are grouped by `(proto, dst_port)`
/// when they match exactly one port and one protocol; remaining rules go
/// to a fallback list. Same semantics as [`Firewall`] when rule priority
/// does not interleave buckets (enforced by construction order per
/// bucket), far fewer compares on typical rule sets.
pub struct BucketedFirewall {
    // Ordered map: bucket iteration order (debugging, future stats
    // export) must never depend on hash seeds.
    buckets: BTreeMap<(u8, u16), Vec<(usize, Rule)>>,
    fallback: Vec<(usize, Rule)>,
    default: Action,
    rules_total: usize,
    fail_mode: FailMode,
}

impl BucketedFirewall {
    /// Compiles the same rule list a [`Firewall`] would use.
    pub fn new(rules: Vec<Rule>, default: Action) -> Self {
        let mut buckets: BTreeMap<(u8, u16), Vec<(usize, Rule)>> = BTreeMap::new();
        let mut fallback = Vec::new();
        let rules_total = rules.len();
        for (prio, r) in rules.into_iter().enumerate() {
            match (r.proto, r.dst_ports.0 == r.dst_ports.1) {
                (Some(p), true) => buckets.entry((p, r.dst_ports.0)).or_default().push((prio, r)),
                _ => fallback.push((prio, r)),
            }
        }
        BucketedFirewall { buckets, fallback, default, rules_total, fail_mode: FailMode::Closed }
    }

    /// Overrides the degradation policy for corrupted packets.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Total rules compiled.
    pub fn len(&self) -> usize {
        self.rules_total
    }

    /// True when no rules were compiled.
    pub fn is_empty(&self) -> bool {
        self.rules_total == 0
    }

    fn decide(&self, t: &FiveTuple) -> (Action, u64) {
        // First match by original priority across bucket + fallback.
        let mut best: Option<(usize, Action)> = None;
        let mut compared = 0u64;
        if let Some(bucket) = self.buckets.get(&(t.proto, t.dst_port)) {
            for (prio, r) in bucket {
                compared += 1;
                if r.matches(t) {
                    best = Some((*prio, r.action));
                    break;
                }
            }
        }
        for (prio, r) in &self.fallback {
            if let Some((bp, _)) = best {
                if *prio > bp {
                    break;
                }
            }
            compared += 1;
            if r.matches(t) {
                match best {
                    Some((bp, _)) if bp < *prio => {}
                    _ => best = Some((*prio, r.action)),
                }
                break;
            }
        }
        let action = best.map(|(_, a)| a).unwrap_or(self.default);
        // Hash-bucket lookup costs ~2 rule-compares of work.
        (action, (compared + 2) * PER_RULE_CYCLES)
    }
}

impl NetworkFunction for BucketedFirewall {
    fn name(&self) -> &'static str {
        "bucketed-firewall"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (action, scan_cycles) = self.decide(&pkt.tuple);
        let verdict = match action {
            Action::Allow => NfVerdict::Forward,
            Action::Deny => NfVerdict::Drop,
        };
        (verdict, BASE_CYCLES + scan_cycles)
    }

    fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }
}

/// Generates a deterministic synthetic rule set: `n` rules of which
/// `deny_fraction` deny traffic to one exact `(TCP, port)` pair drawn
/// from the experiment's port space, the rest allowing address ranges.
/// Ends with a terminal allow-any so the default rarely fires.
pub fn synth_rules(n: usize, deny_fraction: f64, seed: u64) -> Vec<Rule> {
    assert!((0.0..=1.0).contains(&deny_fraction), "fraction in [0,1]");
    let mut rng = Rng::seed_from_u64(seed);
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n.saturating_sub(1) {
        if rng.gen_bool(deny_fraction) {
            rules.push(Rule {
                src: (0x0A00_0000 | rng.range_u32(0, 0xFFFF) << 8, 24),
                dst: (0, 0),
                dst_ports: {
                    const DENY_PORTS: [u16; 5] = [80, 443, 53, 8080, 5201];
                    let p = DENY_PORTS[rng.range_usize(0, DENY_PORTS.len())];
                    (p, p)
                },
                proto: Some(6),
                action: Action::Deny,
            });
        } else {
            rules.push(Rule {
                src: (0x0A00_0000 | rng.range_u32(0, 0xFF) << 16, 16),
                dst: (0xC0A8_0000, 16),
                dst_ports: (0, u16::MAX),
                proto: None,
                action: Action::Allow,
            });
        }
    }
    if n > 0 {
        rules.push(Rule::any(Action::Allow));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src_ip: u32, dst_port: u16, proto: u8) -> FiveTuple {
        FiveTuple { src_ip, dst_ip: 0xC0A80001, src_port: 40000, dst_port, proto }
    }

    fn pkt(t: FiveTuple) -> Packet {
        Packet::new(1, 0, t, 64, 0)
    }

    #[test]
    fn prefix_matching_works() {
        assert!(prefix_match((0x0A000000, 8), 0x0A123456));
        assert!(!prefix_match((0x0A000000, 8), 0x0B123456));
        assert!(prefix_match((0, 0), 0xFFFFFFFF));
        assert!(prefix_match((0x0A0B0C0D, 32), 0x0A0B0C0D));
        assert!(!prefix_match((0x0A0B0C0D, 32), 0x0A0B0C0E));
    }

    #[test]
    fn first_match_wins() {
        let rules = vec![
            Rule {
                src: (0, 0),
                dst: (0, 0),
                dst_ports: (80, 80),
                proto: Some(6),
                action: Action::Deny,
            },
            Rule::any(Action::Allow),
        ];
        let mut fw = Firewall::new(rules, Action::Deny);
        let (v, _) = fw.process(&pkt(tuple(1, 80, 6)));
        assert_eq!(v, NfVerdict::Drop);
        let (v, _) = fw.process(&pkt(tuple(1, 443, 6)));
        assert_eq!(v, NfVerdict::Forward);
    }

    #[test]
    fn default_action_applies_without_match() {
        let mut fw = Firewall::new(vec![], Action::Deny);
        assert!(fw.is_empty());
        let (v, c) = fw.process(&pkt(tuple(1, 80, 6)));
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(c, BASE_CYCLES);
    }

    #[test]
    fn cycle_cost_grows_with_scan_depth() {
        let mut rules = vec![];
        for _ in 0..99 {
            rules.push(Rule {
                src: (0xDEAD0000, 16), // never matches 10.x sources
                dst: (0, 0),
                dst_ports: (0, u16::MAX),
                proto: None,
                action: Action::Deny,
            });
        }
        rules.push(Rule::any(Action::Allow));
        let mut fw = Firewall::new(rules, Action::Deny);
        let (v, c) = fw.process(&pkt(tuple(0x0A000001, 80, 6)));
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(c, BASE_CYCLES + 100 * PER_RULE_CYCLES);
    }

    #[test]
    fn bucketed_agrees_with_linear_on_synth_rules() {
        let rules = synth_rules(200, 0.3, 42);
        let mut linear = Firewall::new(rules.clone(), Action::Deny);
        let mut bucketed = BucketedFirewall::new(rules, Action::Deny);
        assert_eq!(linear.len(), bucketed.len());
        let mut rng = Rng::seed_from_u64(7);
        for i in 0..2000 {
            let t = FiveTuple {
                src_ip: 0x0A00_0000 | rng.range_u32(0, 0xFFFFFF),
                dst_ip: 0xC0A8_0000 | rng.range_u32(0, 0xFFFF),
                src_port: rng.range_u16(1024, u16::MAX),
                dst_port: *[80u16, 443, 53, 8080, 5201, 9999]
                    .get(rng.range_usize(0, 6))
                    .expect("in range"),
                proto: if rng.gen_bool(0.9) { 6 } else { 17 },
            };
            let (lv, _) = linear.process(&pkt(t));
            let (bv, _) = bucketed.process(&pkt(t));
            assert_eq!(lv, bv, "disagreement on packet {i}: {t:?}");
        }
    }

    #[test]
    fn bucketed_is_cheaper_on_average() {
        // A deny-heavy ACL (the case port-bucketing exists for): most
        // rules are exact-port denies the bucketed matcher can skip.
        let rules = synth_rules(200, 0.9, 42);
        let mut linear = Firewall::new(rules.clone(), Action::Deny);
        let mut bucketed = BucketedFirewall::new(rules, Action::Deny);
        let mut rng = Rng::seed_from_u64(9);
        let (mut lc, mut bc) = (0u64, 0u64);
        for _ in 0..2000 {
            let t = tuple(0x0A00_0000 | rng.range_u32(0, 0xFFFFFF), 443, 6);
            lc += linear.process(&pkt(t)).1;
            bc += bucketed.process(&pkt(t)).1;
        }
        assert!(
            bc * 2 < lc,
            "bucketed should be at least 2x cheaper: linear {lc} vs bucketed {bc}"
        );
    }

    #[test]
    fn synth_rules_deterministic_and_terminated() {
        let a = synth_rules(50, 0.2, 1);
        let b = synth_rules(50, 0.2, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(a.last().unwrap(), &Rule::any(Action::Allow));
    }
}
