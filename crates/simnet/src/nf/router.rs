//! Longest-prefix-match IPv4 forwarding.
//!
//! The canonical per-packet lookup: a binary trie over destination
//! prefixes, with a deliberately naive linear scan kept as the semantic
//! reference (and for cost comparison — trie lookups cost O(32) while
//! linear scans cost O(n·32), which is why real routers never scan).

use super::{NetworkFunction, NfVerdict};
use crate::packet::Packet;
use apples_rng::Rng;

/// Cycles per trie node visited (pointer chase, likely cache miss).
pub const PER_NODE_CYCLES: u64 = 12;
/// Cycles per prefix compared in the linear reference.
pub const PER_PREFIX_CYCLES: u64 = 10;
/// Fixed per-packet lookup overhead.
pub const BASE_CYCLES: u64 = 150;

/// A routing-table entry: destination prefix → next hop id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Prefix address.
    pub prefix: u32,
    /// Prefix length 0–32.
    pub len: u8,
    /// Opaque next-hop identifier.
    pub next_hop: u32,
}

/// A binary (unibit) trie over IPv4 prefixes.
#[derive(Debug, Clone)]
pub struct LpmTrie {
    // Node: [left child, right child], next_hop if a prefix ends here.
    children: Vec<[u32; 2]>,
    next_hop: Vec<Option<u32>>,
    routes: usize,
}

const NO_CHILD: u32 = u32::MAX;

impl LpmTrie {
    /// Builds a trie from routes. Later duplicates of the same exact
    /// prefix overwrite earlier ones (last write wins, like a FIB).
    pub fn new(routes: &[Route]) -> Self {
        let mut t = LpmTrie { children: vec![[NO_CHILD; 2]], next_hop: vec![None], routes: 0 };
        for r in routes {
            t.insert(*r);
        }
        t
    }

    /// Inserts one route.
    pub fn insert(&mut self, r: Route) {
        assert!(r.len <= 32, "prefix length must be <= 32");
        let mut node = 0usize;
        for i in 0..r.len {
            let bit = ((r.prefix >> (31 - i)) & 1) as usize;
            let child = self.children[node][bit];
            node = if child == NO_CHILD {
                self.children.push([NO_CHILD; 2]);
                self.next_hop.push(None);
                let idx = self.children.len() - 1;
                self.children[node][bit] = idx as u32;
                idx
            } else {
                child as usize
            };
        }
        if self.next_hop[node].is_none() {
            self.routes += 1;
        }
        self.next_hop[node] = Some(r.next_hop);
    }

    /// Number of distinct prefixes stored.
    pub fn len(&self) -> usize {
        self.routes
    }

    /// True when no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes == 0
    }

    /// Longest-prefix-match lookup: `(next_hop, nodes_visited)`.
    pub fn lookup(&self, addr: u32) -> (Option<u32>, u64) {
        let mut node = 0usize;
        let mut best = self.next_hop[0];
        let mut visited = 1u64;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            let child = self.children[node][bit];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            visited += 1;
            if let Some(nh) = self.next_hop[node] {
                best = Some(nh);
            }
        }
        (best, visited)
    }
}

/// The router NF: LPM lookup per packet; packets with no matching route
/// are dropped (no default route unless one is installed).
pub struct Router {
    trie: LpmTrie,
    no_route_drops: u64,
}

impl Router {
    /// Builds a router from a route list.
    pub fn new(routes: &[Route]) -> Self {
        Router { trie: LpmTrie::new(routes), no_route_drops: 0 }
    }

    /// Packets dropped for lack of a route so far.
    pub fn no_route_drops(&self) -> u64 {
        self.no_route_drops
    }

    /// Access to the FIB.
    pub fn trie(&self) -> &LpmTrie {
        &self.trie
    }
}

impl NetworkFunction for Router {
    fn name(&self) -> &'static str {
        "lpm-router"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let (hop, visited) = self.trie.lookup(pkt.tuple.dst_ip);
        let cycles = BASE_CYCLES + visited * PER_NODE_CYCLES;
        match hop {
            Some(_) => (NfVerdict::Forward, cycles),
            None => {
                self.no_route_drops += 1;
                (NfVerdict::Drop, cycles)
            }
        }
    }
}

/// The linear-scan reference: finds the longest matching prefix by
/// checking every route. Semantically identical to the trie; kept for
/// equivalence testing and as the "unoptimized software" cost model.
pub struct LinearRouter {
    routes: Vec<Route>,
}

impl LinearRouter {
    /// Builds the reference router.
    pub fn new(routes: &[Route]) -> Self {
        LinearRouter { routes: routes.to_vec() }
    }

    /// LPM by exhaustive scan. With duplicate prefixes, the *last* one
    /// wins (FIB overwrite semantics, matching the trie).
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut best: Option<(u8, u32)> = None;
        for r in &self.routes {
            let matches = if r.len == 0 {
                true
            } else {
                let mask = u32::MAX << (32 - u32::from(r.len));
                (addr & mask) == (r.prefix & mask)
            };
            if matches {
                match best {
                    Some((blen, _)) if blen > r.len => {}
                    _ => best = Some((r.len, r.next_hop)),
                }
            }
        }
        best.map(|(_, nh)| nh)
    }
}

impl NetworkFunction for LinearRouter {
    fn name(&self) -> &'static str {
        "linear-router"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let cycles = BASE_CYCLES + self.routes.len() as u64 * PER_PREFIX_CYCLES;
        match self.lookup(pkt.tuple.dst_ip) {
            Some(_) => (NfVerdict::Forward, cycles),
            None => (NfVerdict::Drop, cycles),
        }
    }
}

/// Synthesizes a deterministic routing table of `n` prefixes (mix of
/// /8–/28 lengths over 10/8 and 192.168/16 space) plus an optional
/// default route.
pub fn synth_routes(n: usize, with_default: bool, seed: u64) -> Vec<Route> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut routes = Vec::with_capacity(n + 1);
    if with_default {
        routes.push(Route { prefix: 0, len: 0, next_hop: 0 });
    }
    for i in 0..n {
        let len = rng.range_u8_inclusive(8, 28);
        let prefix = if rng.gen_bool(0.7) {
            0x0A00_0000 | (rng.next_u32() & 0x00FF_FFFF)
        } else {
            0xC0A8_0000 | (rng.next_u32() & 0xFFFF)
        };
        let mask = u32::MAX << (32 - u32::from(len));
        routes.push(Route { prefix: prefix & mask, len, next_hop: i as u32 + 1 });
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_workload::FiveTuple;

    fn pkt(dst: u32) -> Packet {
        Packet::new(
            1,
            0,
            FiveTuple { src_ip: 1, dst_ip: dst, src_port: 2, dst_port: 80, proto: 6 },
            64,
            0,
        )
    }

    #[test]
    fn longest_prefix_wins() {
        let routes = [
            Route { prefix: 0x0A000000, len: 8, next_hop: 1 },
            Route { prefix: 0x0A0A0000, len: 16, next_hop: 2 },
            Route { prefix: 0x0A0A0A00, len: 24, next_hop: 3 },
        ];
        let t = LpmTrie::new(&routes);
        assert_eq!(t.lookup(0x0A0A0A01).0, Some(3));
        assert_eq!(t.lookup(0x0A0A0B01).0, Some(2));
        assert_eq!(t.lookup(0x0A0B0B01).0, Some(1));
        assert_eq!(t.lookup(0x0B000001).0, None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route_catches_everything() {
        let t = LpmTrie::new(&[Route { prefix: 0, len: 0, next_hop: 42 }]);
        assert_eq!(t.lookup(0xDEADBEEF).0, Some(42));
        assert_eq!(t.lookup(0).0, Some(42));
    }

    #[test]
    fn exact_duplicate_prefix_overwrites() {
        let t = LpmTrie::new(&[
            Route { prefix: 0x0A000000, len: 8, next_hop: 1 },
            Route { prefix: 0x0A000000, len: 8, next_hop: 9 },
        ]);
        assert_eq!(t.lookup(0x0A123456).0, Some(9));
        assert_eq!(t.len(), 1, "overwrite is not a new route");
    }

    #[test]
    fn host_route_matches_only_itself() {
        let t = LpmTrie::new(&[Route { prefix: 0x0A0B0C0D, len: 32, next_hop: 7 }]);
        assert_eq!(t.lookup(0x0A0B0C0D).0, Some(7));
        assert_eq!(t.lookup(0x0A0B0C0E).0, None);
    }

    #[test]
    fn router_nf_drops_unroutable_packets() {
        let mut r = Router::new(&[Route { prefix: 0x0A000000, len: 8, next_hop: 1 }]);
        let (v, _) = r.process(&pkt(0x0A123456));
        assert_eq!(v, NfVerdict::Forward);
        let (v, _) = r.process(&pkt(0xC0000001));
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(r.no_route_drops(), 1);
    }

    #[test]
    fn trie_is_much_cheaper_than_linear_scan() {
        let routes = synth_routes(1000, true, 5);
        let mut trie = Router::new(&routes);
        let mut linear = LinearRouter::new(&routes);
        let (_, tc) = trie.process(&pkt(0x0A123456));
        let (_, lc) = linear.process(&pkt(0x0A123456));
        assert!(tc * 10 < lc, "trie {tc} cycles vs linear {lc}");
    }

    #[test]
    fn synth_routes_are_deterministic_and_masked() {
        let a = synth_routes(100, true, 3);
        let b = synth_routes(100, true, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 101);
        for r in &a[1..] {
            let mask = u32::MAX << (32 - u32::from(r.len));
            assert_eq!(r.prefix & !mask, 0, "prefix has host bits set");
        }
    }

    /// The trie agrees with the exhaustive linear reference on every
    /// address, for arbitrary route tables (seeded random exploration).
    #[test]
    fn trie_matches_linear_reference() {
        let mut rng = Rng::seed_from_u64(0x707E1);
        for _ in 0..500 {
            let n_routes = rng.range_usize(0, 40);
            let routes: Vec<Route> = (0..n_routes)
                .map(|_| {
                    let l = rng.range_u8_inclusive(0, 32);
                    let mask = if l == 0 { 0 } else { u32::MAX << (32 - u32::from(l)) };
                    Route { prefix: rng.next_u32() & mask, len: l, next_hop: rng.next_u32() }
                })
                .collect();
            let trie = LpmTrie::new(&routes);
            let linear = LinearRouter::new(&routes);
            for _ in 0..rng.range_usize(1, 40) {
                let a = rng.next_u32();
                assert_eq!(trie.lookup(a).0, linear.lookup(a), "addr {a:#x} routes {routes:?}");
            }
        }
    }
}
