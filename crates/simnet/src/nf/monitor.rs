//! Flow monitoring with a count–min sketch and heavy-hitter detection.
//!
//! Telemetry is the NF most often pushed into programmable switches
//! (sketches fit match-action pipelines); having it in software gives
//! the offload experiments a second, state-heavy workload besides the
//! firewall.

use super::{NetworkFunction, NfVerdict};
use crate::packet::Packet;
use apples_workload::FiveTuple;

/// Cycles per sketch row updated.
pub const PER_ROW_CYCLES: u64 = 40;
/// Fixed per-packet cycles.
pub const BASE_CYCLES: u64 = 100;

/// A count–min sketch over flow byte counts.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    cols: usize,
    counters: Vec<u64>,
    salts: Vec<u64>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `rows` hash rows and `cols` counters each.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "sketch dimensions must be positive");
        CountMinSketch {
            rows,
            cols,
            counters: vec![0; rows * cols],
            salts: (0..rows as u64).map(|i| i.wrapping_mul(0xD6E8FEB86659FD93) | 1).collect(),
            total: 0,
        }
    }

    fn col(&self, row: usize, key: u64) -> usize {
        let mut x = key ^ self.salts[row];
        x = (x ^ (x >> 33)).wrapping_mul(0xFF51AFD7ED558CCD);
        x = (x ^ (x >> 33)).wrapping_mul(0xC4CEB9FE1A85EC53);
        (x ^ (x >> 33)) as usize % self.cols
    }

    /// Adds `amount` to a flow's estimate.
    pub fn add(&mut self, key: u64, amount: u64) {
        for r in 0..self.rows {
            let c = self.col(r, key);
            self.counters[r * self.cols + c] += amount;
        }
        self.total += amount;
    }

    /// Point estimate for a flow (an overestimate, never an under-).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows).map(|r| self.counters[r * self.cols + self.col(r, key)]).min().unwrap_or(0)
    }

    /// Total of all additions.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The flow-monitor NF: updates the sketch per packet and tracks flows
/// whose estimate crosses the heavy-hitter threshold.
pub struct FlowMonitor {
    sketch: CountMinSketch,
    threshold_bytes: u64,
    heavy: Vec<FiveTuple>,
}

impl FlowMonitor {
    /// Creates a monitor with sketch dimensions and a byte threshold.
    pub fn new(rows: usize, cols: usize, threshold_bytes: u64) -> Self {
        FlowMonitor { sketch: CountMinSketch::new(rows, cols), threshold_bytes, heavy: Vec::new() }
    }

    /// Flows flagged as heavy hitters so far, in flag order.
    pub fn heavy_hitters(&self) -> &[FiveTuple] {
        &self.heavy
    }

    /// Access to the underlying sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }
}

impl NetworkFunction for FlowMonitor {
    fn name(&self) -> &'static str {
        "flow-monitor"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let key = pkt.tuple.hash64();
        let before = self.sketch.estimate(key);
        self.sketch.add(key, u64::from(pkt.size_bytes));
        let after = self.sketch.estimate(key);
        if before < self.threshold_bytes && after >= self.threshold_bytes {
            self.heavy.push(pkt.tuple);
        }
        (NfVerdict::Forward, BASE_CYCLES + self.sketch.rows as u64 * PER_ROW_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    #[test]
    fn estimates_never_underestimate() {
        let mut s = CountMinSketch::new(4, 64);
        for k in 0..200u64 {
            s.add(k, k + 1);
        }
        for k in 0..200u64 {
            assert!(s.estimate(k) > k, "underestimate for key {k}");
        }
        assert_eq!(s.total(), (1..=200).sum::<u64>());
    }

    #[test]
    fn sparse_keys_are_exact() {
        let mut s = CountMinSketch::new(4, 4096);
        s.add(42, 100);
        s.add(43, 50);
        assert_eq!(s.estimate(42), 100);
        assert_eq!(s.estimate(43), 50);
        assert_eq!(s.estimate(99), 0);
    }

    fn pkt(n: u32, size: u32) -> Packet {
        Packet::new(
            u64::from(n),
            n,
            FiveTuple { src_ip: n, dst_ip: 1, src_port: 2, dst_port: 80, proto: 6 },
            size,
            0,
        )
    }

    #[test]
    fn heavy_hitters_flagged_once_at_threshold() {
        let mut m = FlowMonitor::new(4, 1024, 3000);
        for _ in 0..4 {
            m.process(&pkt(7, 1000)); // crosses 3000 on the third packet
        }
        assert_eq!(m.heavy_hitters().len(), 1);
        assert_eq!(m.heavy_hitters()[0].src_ip, 7);
        // Light flow never flagged.
        m.process(&pkt(8, 100));
        assert_eq!(m.heavy_hitters().len(), 1);
    }

    #[test]
    fn monitor_cycle_cost_tracks_rows() {
        let mut m3 = FlowMonitor::new(3, 64, 1 << 40);
        let mut m8 = FlowMonitor::new(8, 64, 1 << 40);
        let (_, c3) = m3.process(&pkt(1, 64));
        let (_, c8) = m8.process(&pkt(1, 64));
        assert_eq!(c3, BASE_CYCLES + 3 * PER_ROW_CYCLES);
        assert_eq!(c8, BASE_CYCLES + 8 * PER_ROW_CYCLES);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dimensions_rejected() {
        let _ = CountMinSketch::new(0, 8);
    }

    /// CMS estimates never undershoot the true count, for arbitrary
    /// add sequences (seeded random exploration).
    #[test]
    fn cms_overestimate_property() {
        let mut rng = Rng::seed_from_u64(0xC350);
        for _ in 0..500 {
            let mut s = CountMinSketch::new(3, 32);
            let mut truth = std::collections::BTreeMap::new();
            for _ in 0..rng.range_usize(1, 200) {
                let k = rng.range_u64(0, 64);
                let v = rng.range_u64(1, 1000);
                s.add(k, v);
                *truth.entry(k).or_insert(0u64) += v;
            }
            for (k, v) in truth {
                assert!(s.estimate(k) >= v, "underestimate for key {k}");
            }
        }
    }
}
