//! Deep packet inspection with an Aho–Corasick multi-pattern automaton.
//!
//! The payload-touching NF: cycle cost is per-byte, so packet size (not
//! just packet rate) drives the work — this is what makes DPI the
//! classic candidate for FPGA/SmartNIC offload (cf. Pigasus, the paper's reference 42).

use super::{FailMode, NetworkFunction, NfVerdict};
use crate::packet::Packet;
use std::collections::BTreeMap;

/// Cycles per payload byte scanned (automaton transition + load).
pub const PER_BYTE_CYCLES: u64 = 4;
/// Fixed per-packet cycles (setup, verdict bookkeeping).
pub const BASE_CYCLES: u64 = 300;

/// What to do when a pattern matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchPolicy {
    /// Intrusion *prevention*: drop matching packets.
    Block,
    /// Intrusion *detection*: count but forward.
    Alert,
}

/// A classical Aho–Corasick automaton over byte patterns.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    // goto function: per-state byte -> state. Ordered map so automaton
    // construction (BFS over transitions) is insertion-order
    // independent and fully deterministic.
    goto_: Vec<BTreeMap<u8, u32>>,
    fail: Vec<u32>,
    // number of patterns ending at each state (via output links).
    out: Vec<u32>,
}

impl AhoCorasick {
    /// Builds the automaton from the given patterns (empty patterns are
    /// ignored).
    pub fn build(patterns: &[&[u8]]) -> Self {
        let mut goto_: Vec<BTreeMap<u8, u32>> = vec![BTreeMap::new()];
        let mut out: Vec<u32> = vec![0];

        for pat in patterns {
            if pat.is_empty() {
                continue;
            }
            let mut state = 0u32;
            for &b in *pat {
                let next = goto_[state as usize].get(&b).copied();
                state = match next {
                    Some(s) => s,
                    None => {
                        goto_.push(BTreeMap::new());
                        out.push(0);
                        let s = (goto_.len() - 1) as u32;
                        goto_[state as usize].insert(b, s);
                        s
                    }
                };
            }
            out[state as usize] += 1;
        }

        // BFS failure links.
        let mut fail = vec![0u32; goto_.len()];
        let mut queue: std::collections::VecDeque<u32> = goto_[0].values().copied().collect();
        while let Some(s) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> =
                goto_[s as usize].iter().map(|(b, t)| (*b, *t)).collect();
            for (b, t) in transitions {
                queue.push_back(t);
                let mut f = fail[s as usize];
                loop {
                    if let Some(&next) = goto_[f as usize].get(&b) {
                        if next != t {
                            fail[t as usize] = next;
                        }
                        break;
                    }
                    if f == 0 {
                        break;
                    }
                    f = fail[f as usize];
                }
                out[t as usize] += out[fail[t as usize] as usize];
            }
        }
        AhoCorasick { goto_, fail, out }
    }

    /// Number of automaton states.
    pub fn states(&self) -> usize {
        self.goto_.len()
    }

    /// Counts pattern occurrences in `haystack`.
    pub fn count_matches(&self, haystack: &[u8]) -> u64 {
        let mut state = 0u32;
        let mut matches = 0u64;
        for &b in haystack {
            loop {
                if let Some(&next) = self.goto_[state as usize].get(&b) {
                    state = next;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.fail[state as usize];
            }
            matches += u64::from(self.out[state as usize]);
        }
        matches
    }
}

/// The DPI network function.
pub struct Dpi {
    automaton: AhoCorasick,
    policy: MatchPolicy,
    alerts: u64,
    fail_mode: FailMode,
}

impl Dpi {
    /// Builds a DPI engine for the given signature set and match policy.
    /// Fails closed on corrupted packets: a payload that cannot be
    /// scanned cannot be cleared.
    pub fn new(patterns: &[&[u8]], policy: MatchPolicy) -> Self {
        Dpi {
            automaton: AhoCorasick::build(patterns),
            policy,
            alerts: 0,
            fail_mode: FailMode::Closed,
        }
    }

    /// Overrides the degradation policy for corrupted packets.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Total alerts raised so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// A small representative signature set for experiments.
    pub fn demo_signatures() -> Vec<&'static [u8]> {
        vec![
            b"EVILPATTERN".as_slice(),
            b"DROP TABLE".as_slice(),
            b"/etc/passwd".as_slice(),
            b"\x90\x90\x90\x90".as_slice(),
            b"cmd.exe".as_slice(),
        ]
    }
}

impl NetworkFunction for Dpi {
    fn name(&self) -> &'static str {
        "dpi"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let cycles = BASE_CYCLES + pkt.payload.len() as u64 * PER_BYTE_CYCLES;
        let matches = self.automaton.count_matches(&pkt.payload);
        if matches > 0 {
            self.alerts += matches;
            match self.policy {
                MatchPolicy::Block => (NfVerdict::Drop, cycles),
                MatchPolicy::Alert => (NfVerdict::Forward, cycles),
            }
        } else {
            (NfVerdict::Forward, cycles)
        }
    }

    fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use apples_workload::FiveTuple;

    fn pkt_with(payload: &[u8]) -> Packet {
        let mut p = Packet::new(
            1,
            0,
            FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6 },
            1500,
            0,
        );
        p.payload = Payload::copy_from_slice(payload);
        p
    }

    #[test]
    fn finds_single_pattern() {
        let ac = AhoCorasick::build(&[b"abc"]);
        assert_eq!(ac.count_matches(b"xxabcxxabc"), 2);
        assert_eq!(ac.count_matches(b"xxabxcx"), 0);
    }

    #[test]
    fn finds_overlapping_patterns() {
        let ac = AhoCorasick::build(&[b"he", b"she", b"his", b"hers"]);
        // "ushers" contains she, he, hers.
        assert_eq!(ac.count_matches(b"ushers"), 3);
    }

    #[test]
    fn suffix_patterns_via_failure_links() {
        let ac = AhoCorasick::build(&[b"abcd", b"bcd", b"cd"]);
        assert_eq!(ac.count_matches(b"abcd"), 3);
    }

    #[test]
    fn empty_patterns_and_haystacks() {
        let ac = AhoCorasick::build(&[b"".as_slice(), b"x".as_slice()]);
        assert_eq!(ac.count_matches(b""), 0);
        assert_eq!(ac.count_matches(b"x"), 1);
    }

    #[test]
    fn repeated_pattern_counts_every_occurrence() {
        let ac = AhoCorasick::build(&[b"aa"]);
        assert_eq!(ac.count_matches(b"aaaa"), 3);
    }

    #[test]
    fn block_policy_drops_alert_policy_forwards() {
        let mut ips = Dpi::new(&[b"EVIL"], MatchPolicy::Block);
        let (v, _) = ips.process(&pkt_with(b"xxEVILxx"));
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(ips.alerts(), 1);

        let mut ids = Dpi::new(&[b"EVIL"], MatchPolicy::Alert);
        let (v, _) = ids.process(&pkt_with(b"xxEVILxx"));
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(ids.alerts(), 1);
    }

    #[test]
    fn cycle_cost_scales_with_payload_length() {
        let mut dpi = Dpi::new(&[b"EVIL"], MatchPolicy::Alert);
        let (_, c_small) = dpi.process(&pkt_with(&[b'a'; 100]));
        let (_, c_large) = dpi.process(&pkt_with(&[b'a'; 1400]));
        assert_eq!(c_small, BASE_CYCLES + 100 * PER_BYTE_CYCLES);
        assert_eq!(c_large, BASE_CYCLES + 1400 * PER_BYTE_CYCLES);
    }

    #[test]
    fn demo_signatures_compile() {
        let sigs = Dpi::demo_signatures();
        let ac = AhoCorasick::build(&sigs);
        assert!(ac.states() > sigs.len());
        assert_eq!(ac.count_matches(b"please DROP TABLE users"), 1);
    }
}
