//! L4 load balancer using rendezvous (highest-random-weight) hashing.
//!
//! Rendezvous hashing gives flow affinity without a flow table and
//! minimal disruption when the backend set changes — properties worth
//! testing, since the fairness experiments depend on how evenly flows
//! spread across backends.

use super::{NetworkFunction, NfVerdict};
use crate::packet::Packet;
use apples_workload::FiveTuple;

/// Cycles per backend considered (one hash + compare each).
pub const PER_BACKEND_CYCLES: u64 = 30;
/// Fixed per-packet cycles.
pub const BASE_CYCLES: u64 = 150;

/// Rendezvous-hash load balancer across `n` backends.
pub struct LoadBalancer {
    backends: Vec<u64>, // backend identity salts
    per_backend_packets: Vec<u64>,
}

impl LoadBalancer {
    /// Creates a balancer over `n` backends (ids 0..n).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one backend");
        LoadBalancer {
            backends: (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xA5A5A5A5)
                .collect(),
            per_backend_packets: vec![0; n],
        }
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when there are no backends (never by construction).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Chooses the backend for a tuple (pure function of tuple+backend).
    pub fn pick(&self, t: &FiveTuple) -> usize {
        let base = t.hash64();
        let mut best = 0usize;
        let mut best_w = u64::MIN;
        for (i, salt) in self.backends.iter().enumerate() {
            let w = xorshift_mix(base ^ salt);
            if w > best_w {
                best_w = w;
                best = i;
            }
        }
        best
    }

    /// Packets sent to each backend so far.
    pub fn per_backend_packets(&self) -> &[u64] {
        &self.per_backend_packets
    }
}

fn xorshift_mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: good avalanche for HRW weights.
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl NetworkFunction for LoadBalancer {
    fn name(&self) -> &'static str {
        "rendezvous-lb"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let b = self.pick(&pkt.tuple);
        self.per_backend_packets[b] += 1;
        (NfVerdict::Forward, BASE_CYCLES + self.backends.len() as u64 * PER_BACKEND_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_metrics::fairness::jains_index;
    use apples_rng::Rng;

    fn tuples(n: usize) -> Vec<FiveTuple> {
        let mut rng = Rng::seed_from_u64(4);
        let pop = apples_workload::FlowPopulation::zipf(n, 0.0, &mut rng);
        (0..n).map(|i| pop.tuple(i)).collect()
    }

    #[test]
    fn same_flow_always_same_backend() {
        let lb = LoadBalancer::new(8);
        for t in tuples(64) {
            let a = lb.pick(&t);
            assert_eq!(a, lb.pick(&t));
            assert!(a < 8);
        }
    }

    #[test]
    fn flows_spread_roughly_evenly() {
        let lb = LoadBalancer::new(8);
        let mut counts = vec![0f64; 8];
        for t in tuples(4000) {
            counts[lb.pick(&t)] += 1.0;
        }
        let j = jains_index(&counts).unwrap();
        assert!(j > 0.97, "JFI over backends {j}");
    }

    #[test]
    fn removing_a_backend_only_moves_its_flows() {
        // Rendezvous property: flows not mapped to the removed backend
        // keep their assignment.
        let big = LoadBalancer::new(8);
        let small = LoadBalancer::new(7); // drops backend 7
        for t in tuples(2000) {
            let a = big.pick(&t);
            if a != 7 {
                assert_eq!(a, small.pick(&t), "flow moved unnecessarily");
            } else {
                assert!(small.pick(&t) < 7);
            }
        }
    }

    #[test]
    fn cycle_cost_scales_with_backend_count() {
        let mut small = LoadBalancer::new(2);
        let mut large = LoadBalancer::new(16);
        let t = tuples(1)[0];
        let p = Packet::new(1, 0, t, 64, 0);
        let (_, c2) = small.process(&p);
        let (_, c16) = large.process(&p);
        assert_eq!(c2, BASE_CYCLES + 2 * PER_BACKEND_CYCLES);
        assert_eq!(c16, BASE_CYCLES + 16 * PER_BACKEND_CYCLES);
    }

    #[test]
    fn counters_track_processing() {
        let mut lb = LoadBalancer::new(4);
        for (i, t) in tuples(100).into_iter().enumerate() {
            lb.process(&Packet::new(i as u64, 0, t, 64, 0));
        }
        assert_eq!(lb.per_backend_packets().iter().sum::<u64>(), 100);
        assert_eq!(lb.len(), 4);
        assert!(!lb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_rejected() {
        let _ = LoadBalancer::new(0);
    }
}
