//! Network functions and their cycle-cost models.
//!
//! Each NF decides a packet's fate *and* reports how many CPU cycles the
//! decision cost; the service models in [`crate::service`] turn cycles
//! into simulated service time on whichever device executes the NF
//! (host core, SmartNIC core). This is the standard way software
//! packet-processing performance is modelled: cycles/packet dominates,
//! and accelerators change the cycle budget or the clock.

pub mod dpi;
pub mod firewall;
pub mod lb;
pub mod monitor;
pub mod nat;
pub mod policer;
pub mod router;

use crate::packet::Packet;

/// What an NF decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Pass to the next function / stage.
    Forward,
    /// Drop by policy (firewall deny, IPS block).
    Drop,
}

/// What an NF does with a packet it cannot validate (fault-injected
/// corruption): security functions fail *closed* (drop what you cannot
/// inspect), connectivity functions fail *open* (pass what you cannot
/// transform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Pass unverifiable packets through (availability over safety).
    Open,
    /// Drop unverifiable packets (safety over availability).
    Closed,
}

/// A network function: a packet transform with an explicit cycle cost.
pub trait NetworkFunction: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Processes one packet, returning the verdict and the cycles spent.
    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64);

    /// Degradation policy for corrupted packets. Security functions
    /// default to failing closed; override to fail open.
    fn fail_mode(&self) -> FailMode {
        FailMode::Closed
    }

    /// Cycles spent recognizing a corrupted packet (checksum/parse
    /// failure detection) before the fail-mode policy applies.
    fn corrupt_handling_cycles(&self) -> u64 {
        40
    }
}

/// A chain of NFs executed in order; the first `Drop` short-circuits.
pub struct NfChain {
    functions: Vec<Box<dyn NetworkFunction>>,
}

impl NfChain {
    /// Builds a chain from boxed functions.
    pub fn new(functions: Vec<Box<dyn NetworkFunction>>) -> Self {
        NfChain { functions }
    }

    /// An empty (pure-forwarding) chain.
    pub fn empty() -> Self {
        NfChain { functions: Vec::new() }
    }

    /// Number of functions in the chain.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when the chain has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Runs the chain on a packet: total cycles of the functions that
    /// executed, and the final verdict.
    ///
    /// Corrupted packets (fault injection) never execute NF logic —
    /// each function charges its detection cost, and the first
    /// fail-closed function drops the packet; a chain of fail-open
    /// functions passes it through degraded.
    ///
    /// `#[inline]`: called once per packet per stage from the engine's
    /// fused dispatch walk; inlining lets the empty-chain case (pure
    /// forwarding) collapse to a constant.
    #[inline]
    pub fn run(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        let mut total = 0;
        if pkt.corrupted {
            for f in &mut self.functions {
                total += f.corrupt_handling_cycles();
                if f.fail_mode() == FailMode::Closed {
                    return (NfVerdict::Drop, total);
                }
            }
            return (NfVerdict::Forward, total);
        }
        for f in &mut self.functions {
            let (verdict, cycles) = f.process(pkt);
            total += cycles;
            if verdict == NfVerdict::Drop {
                return (NfVerdict::Drop, total);
            }
        }
        (NfVerdict::Forward, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_workload::FiveTuple;

    struct FixedNf {
        verdict: NfVerdict,
        cycles: u64,
        calls: u64,
    }

    impl NetworkFunction for FixedNf {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn process(&mut self, _pkt: &Packet) -> (NfVerdict, u64) {
            self.calls += 1;
            (self.verdict, self.cycles)
        }
    }

    fn pkt() -> Packet {
        Packet::new(
            1,
            0,
            FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6 },
            64,
            0,
        )
    }

    #[test]
    fn chain_sums_cycles_on_forward() {
        let mut chain = NfChain::new(vec![
            Box::new(FixedNf { verdict: NfVerdict::Forward, cycles: 100, calls: 0 }),
            Box::new(FixedNf { verdict: NfVerdict::Forward, cycles: 50, calls: 0 }),
        ]);
        let (v, c) = chain.run(&pkt());
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(c, 150);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn chain_short_circuits_on_drop() {
        let mut chain = NfChain::new(vec![
            Box::new(FixedNf { verdict: NfVerdict::Drop, cycles: 100, calls: 0 }),
            Box::new(FixedNf { verdict: NfVerdict::Forward, cycles: 50, calls: 0 }),
        ]);
        let (v, c) = chain.run(&pkt());
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(c, 100, "the dropping NF's work is counted; later NFs never run");
    }

    #[test]
    fn empty_chain_forwards_for_free() {
        let mut chain = NfChain::empty();
        assert!(chain.is_empty());
        let (v, c) = chain.run(&pkt());
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(c, 0);
    }

    struct OpenNf;
    impl NetworkFunction for OpenNf {
        fn name(&self) -> &'static str {
            "open"
        }
        fn process(&mut self, _pkt: &Packet) -> (NfVerdict, u64) {
            (NfVerdict::Forward, 10)
        }
        fn fail_mode(&self) -> FailMode {
            FailMode::Open
        }
    }

    #[test]
    fn corrupted_packet_drops_at_first_fail_closed_nf() {
        // Open NF passes the corrupted packet (charging detection
        // cycles); the fail-closed FixedNf drops it without running.
        let mut chain = NfChain::new(vec![
            Box::new(OpenNf),
            Box::new(FixedNf { verdict: NfVerdict::Forward, cycles: 100, calls: 0 }),
        ]);
        let mut p = pkt();
        p.corrupted = true;
        let (v, c) = chain.run(&p);
        assert_eq!(v, NfVerdict::Drop);
        assert_eq!(c, 80, "two detection charges (40 each), no NF logic cycles");
    }

    #[test]
    fn corrupted_packet_survives_an_all_open_chain() {
        let mut chain = NfChain::new(vec![Box::new(OpenNf), Box::new(OpenNf)]);
        let mut p = pkt();
        p.corrupted = true;
        let (v, c) = chain.run(&p);
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(c, 80);
    }

    #[test]
    fn corrupted_packet_never_executes_nf_logic() {
        let mut chain = NfChain::new(vec![Box::new(FixedNf {
            verdict: NfVerdict::Forward,
            cycles: 9,
            calls: 0,
        })]);
        let mut p = pkt();
        p.corrupted = true;
        let (_, c) = chain.run(&p);
        assert_eq!(c, 40, "detection cost only — process() must not run");
    }
}
