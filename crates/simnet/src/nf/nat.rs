//! Source NAT with a bounded flow table.
//!
//! Models the canonical stateful NF: per-flow state created on first
//! sight, hit on every subsequent packet. The cycle cost separates the
//! cheap hit path from the expensive miss path (allocation + insertion),
//! so workloads with more flows or more churn cost more — exactly the
//! behaviour that motivates state-offload systems.

use super::{FailMode, NetworkFunction, NfVerdict};
use crate::packet::Packet;
use apples_workload::FiveTuple;
use std::collections::{BTreeMap, VecDeque};

/// Cycles for a flow-table hit (hash + compare).
pub const HIT_CYCLES: u64 = 120;
/// Additional cycles for a miss (port allocation + insertion).
pub const MISS_CYCLES: u64 = 800;

/// A translated address/port binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// Public source address.
    pub ip: u32,
    /// Public source port.
    pub port: u16,
}

/// Source NAT: rewrites (conceptually) the source address/port of every
/// flow to a public binding, evicting the oldest flow when the table is
/// full.
pub struct Nat {
    public_ip: u32,
    table: BTreeMap<FiveTuple, Binding>,
    order: VecDeque<FiveTuple>,
    capacity: usize,
    next_port: u16,
    hits: u64,
    misses: u64,
    evictions: u64,
    fail_mode: FailMode,
}

impl Nat {
    /// Creates a NAT with a flow-table capacity.
    pub fn new(public_ip: u32, capacity: usize) -> Self {
        assert!(capacity > 0, "NAT table capacity must be positive");
        Nat {
            public_ip,
            table: BTreeMap::new(),
            order: VecDeque::with_capacity(capacity),
            capacity,
            next_port: 1024,
            hits: 0,
            misses: 0,
            evictions: 0,
            // Connectivity function: an untranslatable packet passes
            // through untranslated rather than blackholing the flow.
            fail_mode: FailMode::Open,
        }
    }

    /// Overrides the degradation policy for corrupted packets.
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Current number of tracked flows.
    pub fn flows(&self) -> usize {
        self.table.len()
    }

    /// Flow-table hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Flow-table misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions forced by capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The binding for a tuple, if present.
    pub fn binding(&self, t: &FiveTuple) -> Option<Binding> {
        self.table.get(t).copied()
    }

    fn allocate(&mut self, t: FiveTuple) -> Binding {
        if self.table.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.table.remove(&oldest);
                self.evictions += 1;
            }
        }
        let b = Binding { ip: self.public_ip, port: self.next_port };
        self.next_port = if self.next_port == u16::MAX { 1024 } else { self.next_port + 1 };
        self.table.insert(t, b);
        self.order.push_back(t);
        b
    }
}

impl NetworkFunction for Nat {
    fn name(&self) -> &'static str {
        "source-nat"
    }

    fn process(&mut self, pkt: &Packet) -> (NfVerdict, u64) {
        if self.table.contains_key(&pkt.tuple) {
            self.hits += 1;
            (NfVerdict::Forward, HIT_CYCLES)
        } else {
            self.misses += 1;
            self.allocate(pkt.tuple);
            (NfVerdict::Forward, HIT_CYCLES + MISS_CYCLES)
        }
    }

    fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(n: u32) -> FiveTuple {
        FiveTuple { src_ip: n, dst_ip: 0xC0A80001, src_port: 1000, dst_port: 80, proto: 6 }
    }

    fn pkt(t: FiveTuple) -> Packet {
        Packet::new(1, 0, t, 64, 0)
    }

    #[test]
    fn first_packet_misses_then_hits() {
        let mut nat = Nat::new(0xC0A80101, 16);
        let (v, c) = nat.process(&pkt(tuple(1)));
        assert_eq!(v, NfVerdict::Forward);
        assert_eq!(c, HIT_CYCLES + MISS_CYCLES);
        let (_, c) = nat.process(&pkt(tuple(1)));
        assert_eq!(c, HIT_CYCLES);
        assert_eq!(nat.hits(), 1);
        assert_eq!(nat.misses(), 1);
        assert_eq!(nat.flows(), 1);
    }

    #[test]
    fn bindings_are_distinct_per_flow() {
        let mut nat = Nat::new(0xC0A80101, 16);
        nat.process(&pkt(tuple(1)));
        nat.process(&pkt(tuple(2)));
        let b1 = nat.binding(&tuple(1)).unwrap();
        let b2 = nat.binding(&tuple(2)).unwrap();
        assert_ne!(b1.port, b2.port);
        assert_eq!(b1.ip, 0xC0A80101);
    }

    #[test]
    fn capacity_forces_fifo_eviction() {
        let mut nat = Nat::new(1, 2);
        nat.process(&pkt(tuple(1)));
        nat.process(&pkt(tuple(2)));
        nat.process(&pkt(tuple(3))); // evicts flow 1
        assert_eq!(nat.flows(), 2);
        assert_eq!(nat.evictions(), 1);
        assert!(nat.binding(&tuple(1)).is_none());
        assert!(nat.binding(&tuple(3)).is_some());
        // Re-seeing flow 1 is a miss again.
        let (_, c) = nat.process(&pkt(tuple(1)));
        assert_eq!(c, HIT_CYCLES + MISS_CYCLES);
    }

    #[test]
    fn port_allocation_wraps() {
        let mut nat = Nat::new(1, 4);
        nat.next_port = u16::MAX;
        nat.process(&pkt(tuple(1)));
        assert_eq!(nat.binding(&tuple(1)).unwrap().port, u16::MAX);
        nat.process(&pkt(tuple(2)));
        assert_eq!(nat.binding(&tuple(2)).unwrap().port, 1024);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Nat::new(1, 0);
    }
}
