//! Sharded conservative-PDES execution: one engine run split across
//! N shards (threads), each owning a subset of stages with its own
//! timing wheel and SoA event pools, synchronized by conservative
//! epoch barriers — **byte-identical to the serial engine**.
//!
//! ## Why this is hard
//!
//! Zero-latency stage hops mean the pipeline has no classic lookahead:
//! a packet settling at stage `i` at time `t` arrives at stage `j` at
//! the *same* `t`. Classic conservative PDES (null messages, lookahead
//! windows) degenerates. Instead we exploit the pipelines' feed-forward
//! structure: partition the stage DAG so cross-shard edges only point
//! "downstream", and run the shards *pipelined over epochs* — while
//! the upstream shard processes epoch `e`, each downstream shard
//! processes epoch `e-1`, whose complete cross-shard inbox it already
//! holds. One barrier separates inbox reads from outbox writes, a
//! second separates the slots.
//!
//! ## The identity contract (DESIGN.md §12 has the proof sketch)
//!
//! The planner only accepts partitions where every shard's event
//! processing is a *serial projection* of the one-engine run:
//!
//! - **C1** the shard graph is acyclic;
//! - **C2** all predecessors of any stage share a shard (so one stage's
//!   inbox is one sender's outbox, in the sender's walk order);
//! - **C3** every shard has at most one upstream shard (the shard
//!   graph is a forest), so merged hops arrive in exactly the serial
//!   hop-production order;
//! - **C4** a shard *with* an upstream has no internal stage edges
//!   (its stages forward only to the sink or to remote stages) —
//!   hop-minted and locally-cascaded events can then never interleave
//!   differently than they would serially;
//! - **C5** the shard owning stage 0 has no upstream, so workload
//!   arrival injection interleaves with local events exactly as the
//!   serial loop interleaves them.
//!
//! Any pipeline that violates these (or steers through an undeclared
//! closure) simply runs serially — falling back is always correct
//! because the contract is byte-identity with the serial engine.
//!
//! ## Seq allocation and the outbox merge
//!
//! Shards mint `seq`s from independent per-shard counters. An outbound
//! hop mints *nothing* at the source: the destination's epoch merge
//! feeds it through [`EventCore::enqueue_arrive`], minting a local seq
//! in mailbox order (= the sender's walk order). Because merge-minted
//! seqs land above every local seq from earlier epochs and below every
//! seq the shard mints while walking the epoch, the per-shard
//! `(t, seq)` walk order equals the serial engine's projection onto
//! that shard's stages — the same canonicalization the order
//! sanitizer's Fisher–Yates perturber proves the walk cannot
//! distinguish. Sink statistics and stage counters are all integers,
//! so the final merge is exact.

use crate::engine::{
    arrive, walk_bucket, Engine, EventCore, RunResult, StageConfig, StageReport, StageState,
};
use crate::fault::{FaultAction, FaultPlan};
use crate::nf::NfVerdict;
use crate::packet::Packet;
use crate::sanitizer::OrderSanitizer;
use crate::service::ServiceModel;
use crate::stats::{DropReason, SinkStats};
use apples_core::json::Json;
use apples_obs::span::SpanToken;
use apples_obs::{LogHistogram, Phase, RunObserver, TraceFault};
use std::collections::BTreeSet;
// lint: allow(S1, reason = "epoch-barrier shard runtime: Barrier separates mailbox writers from readers; Mutex makes the per-(dst,src) outboxes Sync — each is written by one shard and drained by one shard in barrier-separated phases")
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// Epoch width in simulated nanoseconds. Any width is *correct* (the
/// barrier schedule, not the width, carries the ordering argument); it
/// only trades barrier frequency against mailbox batching. 2^17 ns ≈
/// 131 µs keeps a 10 ms run at ~77 epochs — barrier overhead well under
/// a percent of a multi-million-event run.
const EPOCH_NS: u64 = 1 << 17;

/// A cross-shard hop: `(t_ns, destination stage, packet)`.
type Hop = (u64, usize, Packet);

/// Wall-clock read for the scaling diagnosis. Wall time measured in
/// this module is *reported only* — it decomposes where the parallel
/// run's real time went (compute vs barrier stall vs merge) and never
/// flows into simulated results, which stay byte-identical to serial.
#[inline]
fn wall_now() -> Instant {
    // lint: allow(D2, reason = "shard-diagnosis wall read; reported only, never flows into simulated results or trace files (mirrors the span profiler)")
    Instant::now()
}

/// One shard's wall-time decomposition and mailbox traffic for a run —
/// the raw material of the `scaling_diagnosis` bench section.
#[derive(Debug, Clone, Default)]
pub struct ShardLane {
    /// Shard index.
    pub shard: usize,
    /// Wall ns inside `process_epoch` (useful work).
    pub compute_ns: u128,
    /// Wall ns blocked on the two slot barriers.
    pub barrier_ns: u128,
    /// Wall ns merging inboxes and flushing outboxes.
    pub merge_ns: u128,
    /// Distribution of individual barrier-wait times, ns.
    pub barrier_wait_ns: LogHistogram,
    /// Slots in which this shard had an epoch to process.
    pub active_epochs: u64,
    /// Total barrier slots executed (identical across shards).
    pub total_slots: u64,
    /// Hops sent, indexed by destination shard.
    pub sent: Vec<u64>,
    /// Hops received, indexed by source shard.
    pub recv: Vec<u64>,
    /// Deepest mailbox (pending-hop backlog) observed at flush time.
    pub peak_mailbox_depth: u64,
}

impl ShardLane {
    /// Wall ns accounted to any phase.
    pub fn total_ns(&self) -> u128 {
        self.compute_ns + self.barrier_ns + self.merge_ns
    }

    /// Deterministic-shape JSON (values are wall-clock measurements).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("shard", self.shard as u64)
            .field("compute_ms", self.compute_ns as f64 / 1e6)
            .field("barrier_ms", self.barrier_ns as f64 / 1e6)
            .field("merge_ms", self.merge_ns as f64 / 1e6)
            .field("barrier_waits", self.barrier_wait_ns.count())
            .field("barrier_wait_p50_ns", self.barrier_wait_ns.quantile(0.50))
            .field("barrier_wait_p99_ns", self.barrier_wait_ns.quantile(0.99))
            .field("active_epochs", self.active_epochs)
            .field("total_slots", self.total_slots)
            .field("hops_sent", self.sent.iter().sum::<u64>())
            .field("hops_recv", self.recv.iter().sum::<u64>())
            .field("peak_mailbox_depth", self.peak_mailbox_depth)
    }
}

/// The scaling diagnosis for one sharded run: per-shard lanes plus the
/// attribution math (wall-time fractions, Jain fairness over per-shard
/// compute, and the Amdahl-style speedup bound they imply).
#[derive(Debug, Clone, Default)]
pub struct ShardDiag {
    /// Shards the run actually used.
    pub shards: usize,
    /// Epoch width the barrier schedule ran at, sim ns.
    pub epoch_ns: u64,
    /// Per-shard decompositions, ascending by shard index.
    pub lanes: Vec<ShardLane>,
}

impl ShardDiag {
    /// Wall-time fractions `(compute, barrier, merge)` of the total
    /// accounted time, summing to 1 (all zeros when nothing was
    /// accounted). The barrier fraction is the conservative-PDES tax;
    /// compute is the ceiling parallelism can mine.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total: u128 = self.lanes.iter().map(ShardLane::total_ns).sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let frac = |ns: u128| ns as f64 / total as f64;
        (
            frac(self.lanes.iter().map(|l| l.compute_ns).sum()),
            frac(self.lanes.iter().map(|l| l.barrier_ns).sum()),
            frac(self.lanes.iter().map(|l| l.merge_ns).sum()),
        )
    }

    /// Jain's fairness index over per-shard compute time:
    /// `(Σx)² / (n·Σx²)`, 1.0 for perfect balance, `1/n` when one
    /// shard does all the work. 1.0 when nothing was accounted.
    pub fn jain_index(&self) -> f64 {
        let n = self.lanes.len();
        if n == 0 || self.lanes.iter().all(|l| l.compute_ns == 0) {
            return 1.0;
        }
        let sum: f64 = self.lanes.iter().map(|l| l.compute_ns as f64).sum();
        let sq_sum: f64 = self.lanes.iter().map(|l| (l.compute_ns as f64).powi(2)).sum();
        sum * sum / (n as f64 * sq_sum)
    }

    /// An upper bound on the speedup this partition could reach with
    /// the measured overheads and imbalance: `shards × compute-fraction
    /// × JFI`, capped at the shard count. A 1-core container reports a
    /// bound well under the shard count — which is the quantified form
    /// of the "cores_available" caveat.
    pub fn predicted_max_speedup(&self) -> f64 {
        let (compute, _, _) = self.fractions();
        (self.shards as f64 * compute * self.jain_index()).min(self.shards as f64)
    }

    /// Total cross-shard hops exchanged.
    pub fn hops_exchanged(&self) -> u64 {
        self.lanes.iter().map(|l| l.sent.iter().sum::<u64>()).sum()
    }

    /// Deterministic-shape JSON (values are wall-clock measurements).
    pub fn to_json(&self) -> Json {
        let (compute, barrier, merge) = self.fractions();
        Json::obj()
            .field("shards", self.shards as u64)
            .field("epoch_ns", self.epoch_ns)
            .field("compute_fraction", compute)
            .field("barrier_fraction", barrier)
            .field("merge_fraction", merge)
            .field("jain_index", self.jain_index())
            .field("predicted_max_speedup", self.predicted_max_speedup())
            .field("hops_exchanged", self.hops_exchanged())
            .field("lanes", Json::Arr(self.lanes.iter().map(ShardLane::to_json).collect()))
    }
}

/// Per-(destination, source) mailboxes: `mailbox[dst][src]` is written
/// only by shard `src` (outbox flush) and drained only by shard `dst`
/// (epoch merge), in phases separated by the slot barrier.
// lint: allow(S1, reason = "epoch-barrier shard runtime: each (dst,src) cell has one writer and one reader in barrier-separated phases, so the lock is never contended and order never depends on scheduling")
type Mailbox = Vec<Vec<Mutex<Vec<Hop>>>>;

/// The routing table a sharded [`EventCore`] carries: stage ownership
/// plus this shard's per-destination outboxes.
pub(crate) struct ShardRoute {
    /// Stage index → owning shard.
    pub(crate) owner: Vec<usize>,
    /// This shard's index.
    pub(crate) me: usize,
    /// Outboxes, indexed by destination shard. Hops accumulate in walk
    /// order over one epoch and are flushed at the epoch's end.
    pub(crate) out: Vec<Vec<Hop>>,
}

/// A validated partition of the pipeline across shards.
pub(crate) struct ShardPlan {
    /// Stage index → owning shard (dense shard ids, every shard
    /// non-empty).
    pub(crate) owner: Vec<usize>,
    /// Shard index → pipeline depth: roots at 0, a shard one hop
    /// downstream of its upstream shard. Shard `s` processes epoch `e`
    /// at barrier slot `e + offset[s]`.
    pub(crate) offset: Vec<usize>,
    /// Number of shards actually used (≤ the requested count).
    pub(crate) n_shards: usize,
}

/// Union-find find with path halving.
fn uf_find(uf: &mut [usize], mut x: usize) -> usize {
    while uf[x] != x {
        uf[x] = uf[uf[x]];
        x = uf[x];
    }
    x
}

/// Union-find union by root index (smaller root wins, for determinism).
fn uf_union(uf: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (uf_find(uf, a), uf_find(uf, b));
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        uf[hi] = lo;
    }
}

/// Attempts to partition the pipeline across `n_shards` shards.
/// Returns `None` — run serially — unless every validity condition
/// (C1–C5 above) holds for the computed assignment.
pub(crate) fn plan(stages: &[StageState], n_shards: usize) -> Option<ShardPlan> {
    let n = stages.len();
    if n_shards < 2 || n < 2 {
        return None;
    }
    // Stage edge set; an undeclared steering closure is opaque, so the
    // pipeline cannot be partitioned.
    let mut succ: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, st) in stages.iter().enumerate() {
        let s = st.successors(i, n)?;
        if s.iter().any(|&j| j >= n || j == i) {
            return None;
        }
        succ.push(s);
    }
    // C2: co-locate all predecessors of every stage.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ss) in succ.iter().enumerate() {
        for &j in ss {
            preds[j].push(i);
        }
    }
    let mut uf: Vec<usize> = (0..n).collect();
    for ps in &preds {
        for w in ps.windows(2) {
            uf_union(&mut uf, w[0], w[1]);
        }
    }
    // Dense group ids in stage order (deterministic).
    let mut group_of = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let r = uf_find(&mut uf, i);
        if group_of[r] == usize::MAX {
            group_of[r] = groups.len();
            groups.push(Vec::new());
        }
        group_of[i] = group_of[r];
        groups[group_of[i]].push(i);
    }
    // Group DAG; C1 (acyclic) via Kahn's algorithm.
    let n_groups = groups.len();
    let mut gedges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, ss) in succ.iter().enumerate() {
        for &j in ss {
            let (gu, gv) = (group_of[i], group_of[j]);
            if gu != gv {
                gedges.insert((gu, gv));
            }
        }
    }
    let mut indeg = vec![0usize; n_groups];
    for &(_, gv) in &gedges {
        indeg[gv] += 1;
    }
    let mut topo: Vec<usize> = Vec::with_capacity(n_groups);
    let mut ready: Vec<usize> = (0..n_groups).filter(|&g| indeg[g] == 0).collect();
    while let Some(g) = ready.pop() {
        topo.push(g);
        for &(gu, gv) in gedges.range((g, 0)..(g + 1, 0)) {
            debug_assert_eq!(gu, g);
            indeg[gv] -= 1;
            if indeg[gv] == 0 {
                ready.push(gv);
            }
        }
    }
    if topo.len() != n_groups {
        return None; // cycle between co-location groups
    }
    // Longest-path level per group (roots at 0), in topological order.
    let mut level = vec![0usize; n_groups];
    for &g in &topo {
        for &(gu, gv) in gedges.range((g, 0)..(g + 1, 0)) {
            debug_assert_eq!(gu, g);
            level[gv] = level[gv].max(level[g] + 1);
        }
    }
    // Greedy assignment: groups in (level, lowest-stage) order onto the
    // least-loaded shard (weight = stage count; ties → lowest index).
    let mut order: Vec<usize> = (0..n_groups).collect();
    order.sort_by_key(|&g| (level[g], groups[g][0]));
    let mut load = vec![0usize; n_shards];
    let mut shard_of_group = vec![0usize; n_groups];
    for &g in &order {
        let mut best = 0;
        for s in 1..n_shards {
            if load[s] < load[best] {
                best = s;
            }
        }
        shard_of_group[g] = best;
        load[best] += groups[g].len();
    }
    // Compact away empty shards (requested count may exceed the group
    // count), keeping relative shard order.
    let mut remap = vec![usize::MAX; n_shards];
    let mut used = 0usize;
    for s in 0..n_shards {
        if load[s] > 0 {
            remap[s] = used;
            used += 1;
        }
    }
    if used < 2 {
        return None; // everything co-located: sharding buys nothing
    }
    let owner: Vec<usize> = (0..n).map(|i| remap[shard_of_group[group_of[i]]]).collect();
    // Shard-level edges and validity: C3 (≤1 upstream), C4 (downstream
    // shards have no internal edges), C5 (the entry shard is a root).
    let mut upstream: Vec<Option<usize>> = vec![None; used];
    let mut internal = vec![false; used];
    for (i, ss) in succ.iter().enumerate() {
        for &j in ss {
            let (a, b) = (owner[i], owner[j]);
            if a == b {
                internal[a] = true;
            } else {
                match upstream[b] {
                    None => upstream[b] = Some(a),
                    Some(prev) if prev == a => {}
                    Some(_) => return None, // C3: two upstream shards
                }
            }
        }
    }
    for (up, internal) in upstream.iter().zip(&internal).take(used) {
        if up.is_some() && *internal {
            return None; // C4
        }
    }
    if upstream[owner[0]].is_some() {
        return None; // C5
    }
    // Offsets: depth along the upstream chain (a forest by C3; the
    // walk is bounded, so a longer chain means a cycle → reject).
    let mut offset = vec![0usize; used];
    for (s, off) in offset.iter_mut().enumerate() {
        let (mut cur, mut depth) = (s, 0usize);
        while let Some(up) = upstream[cur] {
            depth += 1;
            if depth > used {
                return None; // upstream cycle
            }
            cur = up;
        }
        *off = depth;
    }
    Some(ShardPlan { owner, offset, n_shards: used })
}

/// Placeholder service for the remote-stage slots of a shard's
/// full-length stage vector. The route map diverts every packet bound
/// for a remote stage into the outbox before arrival, so it can never
/// be asked to serve.
struct NullService;

impl ServiceModel for NullService {
    fn name(&self) -> &'static str {
        "shard-remote"
    }

    fn serve(&mut self, _pkt: &Packet) -> (NfVerdict, u64) {
        unreachable!("placeholder service for a remote stage received a packet")
    }
}

fn placeholder_stage() -> StageState {
    StageState::from_cfg(StageConfig::new("shard-remote", 1, 0, Box::new(NullService)))
}

/// One shard's complete run state. Workers own theirs for the whole
/// run; everything inside is thread-local except the core's outboxes,
/// which are flushed into the shared mailboxes under their mutexes.
struct ShardCtx {
    me: usize,
    offset: usize,
    stages: Vec<StageState>,
    core: EventCore,
    sink: SinkStats,
    batch_pool: Vec<Vec<(Packet, NfVerdict)>>,
    bucket: Vec<(u64, u64, usize)>,
    redrain: Vec<(u64, u64, usize)>,
    /// This shard's slice of a shardable observer (telemetry / spans /
    /// time series — never a trace ring), folded back into the parent
    /// at the end of the run. `None` on unobserved runs.
    obs: Option<RunObserver>,
    san: Option<OrderSanitizer>,
    faults: Option<FaultPlan>,
    /// Sim-time of this shard's previous bucket, for span attribution.
    last_t: u64,
    /// Wall-time decomposition and mailbox traffic (always collected:
    /// a handful of clock reads per barrier slot, reported only).
    lane: ShardLane,
    /// This epoch's merged-but-not-yet-minted inbound hops, in mailbox
    /// order. Minting is deferred to the bucket walk (see
    /// [`process_epoch`]): a hop at `t` must take its seq *after*
    /// everything the shard mints while walking buckets earlier than
    /// `t` — exactly when the serial engine would have minted it.
    inbox: std::collections::VecDeque<Hop>,
}

/// Workload injection for the entry shard; workers use [`NoArrivals`].
/// Trait-object form so the worker loop stays non-generic (the real
/// injector is generic over the stub iterator, which never leaves the
/// calling thread).
trait ArrivalSource {
    /// Serial interleave rule: the next arrival goes first when it is
    /// inside the epoch and at-or-before the next scheduled event.
    fn want_inject(&self, peek: Option<u64>, epoch_end: u64) -> bool;
    /// Injects the next arrival (injection-point fault gating included).
    fn inject_next(&mut self, ctx: &mut ShardCtx, warmup_ns: u64);
}

struct NoArrivals;

impl ArrivalSource for NoArrivals {
    fn want_inject(&self, _peek: Option<u64>, _epoch_end: u64) -> bool {
        false
    }

    fn inject_next(&mut self, _ctx: &mut ShardCtx, _warmup_ns: u64) {
        unreachable!("worker shards have no arrival source")
    }
}

/// Lazy arrival injection for the entry shard — the serial loop's
/// logic verbatim: one pending stub at a time, packet ids in stub
/// order, payload synthesis, and the plan's injection-point hash
/// decisions (drops / corruption).
struct EntryArrivals<I: Iterator<Item = apples_workload::PacketStub>> {
    stubs: I,
    next: Option<Packet>,
    pkt_id: u64,
    payload_seed: u64,
    attack_prob: Option<f64>,
    needles: Vec<Vec<u8>>,
    faults: Option<FaultPlan>,
    injected_drops: u64,
    corrupted: u64,
}

impl<I: Iterator<Item = apples_workload::PacketStub>> EntryArrivals<I> {
    fn new(
        stubs: I,
        payload_seed: u64,
        attack_prob: Option<f64>,
        needles: Vec<Vec<u8>>,
        faults: Option<FaultPlan>,
    ) -> Self {
        let mut ea = EntryArrivals {
            stubs,
            next: None,
            pkt_id: 0,
            payload_seed,
            attack_prob,
            needles,
            faults,
            injected_drops: 0,
            corrupted: 0,
        };
        ea.next = ea.stubs.next().map(|s| ea.make(s));
        ea
    }

    fn make(&mut self, stub: apples_workload::PacketStub) -> Packet {
        let id = self.pkt_id;
        self.pkt_id += 1;
        let mut pkt = Packet::new(id, stub.flow, stub.tuple, stub.size_bytes, stub.t_ns);
        if let Some(prob) = self.attack_prob {
            let len = (stub.size_bytes as usize).saturating_sub(54); // L2-L4 headers
            let refs: Vec<&[u8]> = self.needles.iter().map(|n| n.as_slice()).collect();
            pkt = pkt.with_payload(len, self.payload_seed, prob, &refs);
        }
        pkt
    }
}

impl<I: Iterator<Item = apples_workload::PacketStub>> ArrivalSource for EntryArrivals<I> {
    fn want_inject(&self, peek: Option<u64>, epoch_end: u64) -> bool {
        match (&self.next, peek) {
            (Some(a), Some(t)) => a.t_arrival_ns < epoch_end && a.t_arrival_ns <= t,
            (Some(a), None) => a.t_arrival_ns < epoch_end,
            _ => false,
        }
    }

    fn inject_next(&mut self, ctx: &mut ShardCtx, warmup_ns: u64) {
        // lint: allow(P1, reason = "invariant: the driver only calls inject_next when want_inject saw Some(next)")
        let mut pkt = self.next.take().expect("checked by want_inject");
        let t = pkt.t_arrival_ns;
        self.next = self.stubs.next().map(|s| self.make(s));
        if let Some(plan) = &self.faults {
            if plan.drops(pkt.id) {
                self.injected_drops += 1;
                if let Some(o) = ctx.obs.as_mut() {
                    o.on_fault(t, pkt.id, 0, TraceFault::InjectedDrop);
                }
                if t >= warmup_ns {
                    ctx.sink.drop(DropReason::Fault);
                }
                return;
            }
            if plan.corrupts(pkt.id) {
                pkt.corrupted = true;
                self.corrupted += 1;
                if let Some(o) = ctx.obs.as_mut() {
                    o.on_fault(t, pkt.id, 0, TraceFault::Corrupt);
                }
            }
        }
        arrive(
            &mut ctx.stages,
            0,
            pkt,
            t,
            warmup_ns,
            &mut ctx.sink,
            &mut ctx.core,
            &mut ctx.batch_pool,
            &mut ctx.obs,
        );
    }
}

/// Drains this shard's mailboxes into the local inbox queue, in
/// mailbox order (C3 guarantees a single writer, so mailbox order *is*
/// the upstream walk order — the serial hop-production order). Seqs
/// are *not* minted here: the walk mints each hop at its own
/// timestamp, interleaved with local processing.
fn merge_inbox(ctx: &mut ShardCtx, mailbox: &Mailbox, n_shards: usize) {
    if ctx.lane.recv.len() < n_shards {
        ctx.lane.recv.resize(n_shards, 0);
    }
    for (src, cell) in mailbox[ctx.me].iter().enumerate().take(n_shards) {
        // lint: allow(P1, reason = "a poisoned mailbox lock means a sibling shard already panicked; propagating the panic is the only sound option")
        let mut mb = cell.lock().expect("sibling shard panicked");
        ctx.lane.recv[src] += mb.len() as u64;
        ctx.inbox.extend(mb.drain(..));
    }
}

/// Flushes this shard's outboxes into the destination mailboxes.
fn flush_outbox(ctx: &mut ShardCtx, mailbox: &Mailbox, n_shards: usize) {
    // lint: allow(P1, reason = "invariant: every sharded EventCore is constructed with Some(route)")
    let route = ctx.core.route.as_mut().expect("sharded core carries a route");
    if ctx.lane.sent.len() < n_shards {
        ctx.lane.sent.resize(n_shards, 0);
    }
    for (dst, row) in mailbox.iter().enumerate().take(n_shards) {
        if dst == ctx.me || route.out[dst].is_empty() {
            continue;
        }
        ctx.lane.sent[dst] += route.out[dst].len() as u64;
        // lint: allow(P1, reason = "a poisoned mailbox lock means a sibling shard already panicked; propagating the panic is the only sound option")
        let mut mb = row[ctx.me].lock().expect("sibling shard panicked");
        mb.append(&mut route.out[dst]);
        ctx.lane.peak_mailbox_depth = ctx.lane.peak_mailbox_depth.max(mb.len() as u64);
    }
}

/// Processes one epoch: every local event with `t < epoch_end` (and
/// within the run), interleaved with arrival injection on the entry
/// shard exactly as the serial loop interleaves them.
///
/// Inbound hops are minted here, not at the epoch merge: a hop at `t`
/// takes its seq only once the wheel's next event is at-or-past `t`,
/// i.e. after every seq this shard mints while walking buckets earlier
/// than `t`. Serially those walk-mints happened at sim-times before
/// `t` and the hop was minted at `t` — deferring keeps the two seq
/// streams in the same relative order, which is what makes the bucket
/// walk's `(t, seq)` order the serial order's projection.
fn process_epoch(
    ctx: &mut ShardCtx,
    arrivals: &mut dyn ArrivalSource,
    epoch_end: u64,
    duration_ns: u64,
    warmup_ns: u64,
) {
    loop {
        let peek = ctx.core.events.peek_time();
        if let Some(&(ht, _, _)) = ctx.inbox.front() {
            debug_assert!(ht < epoch_end, "hop escaped its source epoch");
            if peek.is_none_or(|pt| ht <= pt) {
                // lint: allow(P1, reason = "invariant: front() was Some on the line above")
                let (ht, stage, pkt) = ctx.inbox.pop_front().expect("checked front");
                ctx.core.enqueue_arrive(ht, stage, pkt);
                continue;
            }
        }
        if arrivals.want_inject(peek, epoch_end) {
            arrivals.inject_next(ctx, warmup_ns);
            continue;
        }
        let Some(pt) = peek else { break };
        if pt >= epoch_end || pt > duration_ns {
            // Next epoch's work — or, in the final epoch, events past
            // the end of the run, which the serial loop also leaves
            // unprocessed (drained but never dispatched).
            break;
        }
        let adv_tok = match ctx.obs.as_mut() {
            Some(o) => o.span_begin(Phase::WheelAdvance),
            None => SpanToken::noop(),
        };
        ctx.core.events.drain_bucket(&mut ctx.bucket);
        let Some(&(t, _, _)) = ctx.bucket.first() else { break };
        if let Some(o) = ctx.obs.as_mut() {
            o.span_end(Phase::WheelAdvance, adv_tok, t.saturating_sub(ctx.last_t));
            // Per-bucket gauge sample, as in the serial loop; live and
            // occupancy gauges are per-shard here, so the merged series
            // bounds (rather than equals) the serial gauges.
            o.on_tick(t, ctx.core.live_now() as u64, ctx.core.events.len() as u64);
        }
        ctx.last_t = t;
        if let Some(s) = ctx.san.as_mut() {
            s.begin_bucket(t, &mut ctx.bucket);
        }
        let disp_tok = match ctx.obs.as_mut() {
            Some(o) => o.span_begin(Phase::Dispatch),
            None => SpanToken::noop(),
        };
        walk_bucket(
            &mut ctx.stages,
            t,
            warmup_ns,
            &mut ctx.bucket,
            &mut ctx.redrain,
            &mut ctx.core,
            &mut ctx.sink,
            &mut ctx.batch_pool,
            ctx.faults.as_ref(),
            &mut ctx.obs,
            &mut ctx.san,
        );
        if let Some(o) = ctx.obs.as_mut() {
            o.span_end(Phase::Dispatch, disp_tok, 0);
        }
    }
}

/// One shard's barrier-slot loop. All shards execute the same slot
/// count; shard `s` is active in slots `[offset, offset + n_epochs)`,
/// processing epoch `slot - offset`. The first barrier separates
/// mailbox reads (epoch merge) from the writes of the *current* slot;
/// the second separates this slot's writes from the next slot's reads.
#[allow(clippy::too_many_arguments)]
fn drive_shard(
    ctx: &mut ShardCtx,
    arrivals: &mut dyn ArrivalSource,
    // lint: allow(S1, reason = "epoch-barrier shard runtime: the slot barrier is the sanctioned blocking primitive separating mailbox writes from reads (DESIGN.md §12)")
    barrier: &Barrier,
    mailbox: &Mailbox,
    n_shards: usize,
    n_epochs: u64,
    total_slots: u64,
    duration_ns: u64,
    warmup_ns: u64,
) {
    // Every slot is decomposed into merge (mailbox traffic), barrier
    // (stall), and compute (epoch processing) wall time on the shard's
    // lane. A wait on an uncontended barrier still costs one recorded
    // (near-zero) sample, so the histogram's count is exactly
    // `2 × total_slots` on every shard.
    let wait = |lane: &mut ShardLane| {
        let t0 = wall_now();
        barrier.wait();
        let ns = t0.elapsed().as_nanos();
        lane.barrier_ns += ns;
        lane.barrier_wait_ns.record(u64::try_from(ns).unwrap_or(u64::MAX));
    };
    for slot in 0..total_slots {
        let epoch = slot.checked_sub(ctx.offset as u64).filter(|&e| e < n_epochs);
        if epoch.is_some() {
            let t0 = wall_now();
            merge_inbox(ctx, mailbox, n_shards);
            ctx.lane.merge_ns += t0.elapsed().as_nanos();
        }
        wait(&mut ctx.lane);
        if let Some(e) = epoch {
            let t0 = wall_now();
            process_epoch(ctx, arrivals, (e + 1).saturating_mul(EPOCH_NS), duration_ns, warmup_ns);
            ctx.lane.compute_ns += t0.elapsed().as_nanos();
            debug_assert!(ctx.inbox.is_empty(), "an epoch's merged hops must all be minted in it");
            let t0 = wall_now();
            flush_outbox(ctx, mailbox, n_shards);
            ctx.lane.merge_ns += t0.elapsed().as_nanos();
            ctx.lane.active_epochs += 1;
        }
        wait(&mut ctx.lane);
    }
    ctx.lane.total_slots = total_slots;
}

/// Executes one run under a validated [`ShardPlan`], returning a
/// result byte-identical (modulo `peak_live_events`, which becomes the
/// sum of per-shard peaks) to what the serial engine would produce.
pub(crate) fn run_sharded(
    engine: &mut Engine,
    plan: &ShardPlan,
    stubs: impl Iterator<Item = apples_workload::PacketStub>,
    flows: usize,
    payload_seed: u64,
    duration_ns: u64,
    warmup_ns: u64,
) -> RunResult {
    let n = plan.n_shards;
    let n_stages = engine.stages.len();
    let window_ns = duration_ns - warmup_ns;
    let fault_plan = engine.fault_plan.take();
    let mut parent_san = engine.sanitizer.take();

    // Distribute the engine's stages: each shard holds a full-length
    // stage vector — owned stages moved in, placeholders elsewhere —
    // so stage indices stay global and the dispatch walk is untouched.
    let owned_stages = std::mem::take(&mut engine.stages);
    let mut shard_stages: Vec<Vec<StageState>> =
        (0..n).map(|_| Vec::with_capacity(n_stages)).collect();
    for (i, st) in owned_stages.into_iter().enumerate() {
        let home = plan.owner[i];
        for (s, v) in shard_stages.iter_mut().enumerate() {
            if s != home {
                v.push(placeholder_stage());
            }
        }
        shard_stages[home].push(st);
    }

    let mut ctxs: Vec<Option<ShardCtx>> = shard_stages
        .into_iter()
        .enumerate()
        .map(|(s, mut stages)| {
            for st in &mut stages {
                st.reset();
            }
            let route = ShardRoute { owner: plan.owner.clone(), me: s, out: vec![Vec::new(); n] };
            let mut core = EventCore::new_for_run(engine.scheduler, engine.fused, Some(route));
            // The shard's slice of the fault plan gets its lowest local
            // seqs, mirroring the serial engine pushing the whole plan
            // first; plan order within a shard is preserved.
            if let Some(fp) = &fault_plan {
                for e in fp.events.iter().filter(|e| e.t_ns <= duration_ns) {
                    let stage = match e.action {
                        FaultAction::SlowdownStart { stage }
                        | FaultAction::SlowdownEnd { stage }
                        | FaultAction::DeviceDown { stage }
                        | FaultAction::DeviceUp { stage } => stage,
                    };
                    if plan.owner[stage] == s {
                        core.push_fault(e.t_ns, e.action);
                    }
                }
            }
            let san = parent_san.as_ref().map(|p| {
                let mut child = p.fork(s as u64);
                child.begin_run();
                child
            });
            // Shardable observers (engine gate: no trace ring) get one
            // same-shape empty slice per shard, folded back at the end.
            let obs = engine.observer.as_ref().map(|p| {
                let mut child = p.fresh_shard();
                child.ensure_stages(n_stages);
                child
            });
            Some(ShardCtx {
                me: s,
                offset: plan.offset[s],
                stages,
                core,
                sink: SinkStats::new(flows),
                batch_pool: Vec::new(),
                bucket: Vec::new(),
                redrain: Vec::new(),
                obs,
                san,
                faults: fault_plan.clone(),
                inbox: std::collections::VecDeque::new(),
                last_t: 0,
                lane: ShardLane { shard: s, ..ShardLane::default() },
            })
        })
        .collect();

    let entry = plan.owner[0];
    // lint: allow(P1, reason = "invariant: ctxs was just built with one Some per shard and entry < n by construction")
    let mut entry_ctx = ctxs[entry].take().expect("entry shard context exists");

    let n_epochs = duration_ns / EPOCH_NS + 1;
    let max_offset = plan.offset.iter().copied().max().unwrap_or(0) as u64;
    let total_slots = n_epochs + max_offset;
    // lint: allow(S1, reason = "epoch-barrier shard runtime: one barrier per run, two waits per slot; every shard reaches both or the run deadlocks loudly")
    let barrier = Barrier::new(n);
    let mailbox: Mailbox =
        // lint: allow(S1, reason = "epoch-barrier shard runtime: mailbox cells are single-writer single-reader per phase; the Mutex only satisfies Sync across the scope spawn")
        (0..n).map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect()).collect();

    let mut entry_arrivals = EntryArrivals::new(
        stubs.take_while(|stub| stub.t_ns < duration_ns),
        payload_seed,
        engine.payload.as_ref().map(|p| p.attack_prob),
        engine.payload.as_ref().map(|p| p.needles.clone()).unwrap_or_default(),
        fault_plan.clone(),
    );

    // lint: allow(D3, reason = "epoch-barrier shard workers: scoped threads joined before return; every cross-thread interaction is barrier-ordered and the merge discipline makes results byte-identical to the serial engine")
    let finished: Vec<(usize, ShardCtx)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slot in ctxs.iter_mut() {
            let Some(mut ctx) = slot.take() else { continue };
            let (barrier, mailbox) = (&barrier, &mailbox);
            handles.push(scope.spawn(move || {
                let mut none = NoArrivals;
                drive_shard(
                    &mut ctx,
                    &mut none,
                    barrier,
                    mailbox,
                    n,
                    n_epochs,
                    total_slots,
                    duration_ns,
                    warmup_ns,
                );
                ctx
            }));
        }
        drive_shard(
            &mut entry_ctx,
            &mut entry_arrivals,
            &barrier,
            &mailbox,
            n,
            n_epochs,
            total_slots,
            duration_ns,
            warmup_ns,
        );
        let mut finished = vec![(entry, entry_ctx)];
        for h in handles {
            // lint: allow(P1, reason = "a worker panic is a broken invariant inside the shard loop; re-raising it on the caller is the only sound option")
            let ctx = h.join().expect("shard worker panicked");
            finished.push((ctx.me, ctx));
        }
        finished
    });

    // Exact aggregation: integer sink counters merge bit-identically;
    // stage state returns to the engine for the normal report path.
    // Shards fold in ascending id order so the diag lanes (and every
    // merged artifact) come out in a deterministic order.
    let mut finished = finished;
    finished.sort_by_key(|f| f.0);
    let mut stages_back: Vec<Option<StageState>> = (0..n_stages).map(|_| None).collect();
    let mut sink = SinkStats::new(flows);
    let mut total_events = 0u64;
    let mut peak_live = 0usize;
    let mut lanes: Vec<ShardLane> = Vec::with_capacity(n);
    for (s, mut ctx) in finished {
        sink.merge(&ctx.sink);
        total_events += ctx.core.total;
        peak_live += ctx.core.peak_live;
        if let (Some(child), Some(parent)) = (&ctx.san, parent_san.as_mut()) {
            parent.absorb(child);
        }
        if let (Some(child), Some(parent)) = (ctx.obs.as_mut(), engine.observer.as_mut()) {
            // Each shard's scheduler counters fold into its own slice
            // first (as the serial path does at the end of a run), then
            // the slice merges into the parent observer.
            child.merge_sched(ctx.core.events.counters());
            parent.absorb_shard(child);
        }
        lanes.push(ctx.lane);
        for (i, st) in ctx.stages.into_iter().enumerate() {
            if plan.owner[i] == s {
                stages_back[i] = Some(st);
            }
        }
    }
    engine.shard_diag = Some(ShardDiag { shards: n, epoch_ns: EPOCH_NS, lanes });
    engine.stages = stages_back
        .into_iter()
        // lint: allow(P1, reason = "invariant: every stage index has exactly one owner in a validated plan")
        .map(|o| o.expect("every stage has an owning shard"))
        .collect();
    engine.fault_plan = fault_plan;
    engine.sanitizer = parent_san;

    let stages = engine
        .stages
        .iter()
        .map(|s| StageReport {
            name: s.cfg.name,
            utilization: (s.busy_ns as f64 / (duration_ns as f64 * f64::from(s.cfg.servers)))
                .min(1.0),
            arrivals: s.arrivals,
            served: s.served,
            queue_drops: s.queue_drops,
            policy_drops: s.policy_drops,
            fault_drops: s.fault_drops,
            in_flight: s.queue.len() as u64 + s.in_service_pkts,
        })
        .collect();
    let injected = engine.stages[0].arrivals;
    RunResult {
        sink,
        stages,
        window_ns,
        injected,
        injected_drops: entry_arrivals.injected_drops,
        corrupted: entry_arrivals.corrupted,
        total_events: total_events + injected,
        // The one documented divergence from the serial engine: each
        // shard tracks its own high-water mark, so the global figure is
        // the sum of per-shard peaks (an upper bound on the serial
        // peak, not the same number).
        peak_live_events: peak_live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{NextHop, StageConfig};
    use crate::nf::NfChain;
    use crate::sched::SchedulerKind;
    use crate::service::NfService;

    fn stage(name: &'static str) -> StageConfig {
        StageConfig::new(name, 1, 64, Box::new(NfService::host_core(NfChain::empty())))
    }

    fn test_tuple() -> apples_workload::FiveTuple {
        apples_workload::FiveTuple {
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0001,
            src_port: 1234,
            dst_port: 80,
            proto: 6,
        }
    }

    fn states(cfgs: Vec<StageConfig>) -> Vec<StageState> {
        cfgs.into_iter().map(StageState::from_cfg).collect()
    }

    #[test]
    fn linear_two_stage_pipeline_forms_a_two_shard_pipeline() {
        let st = states(vec![stage("a"), stage("b")]);
        let p = plan(&st, 2).expect("partitions");
        assert_eq!(p.n_shards, 2);
        assert_ne!(p.owner[0], p.owner[1]);
        assert_eq!(p.offset[p.owner[0]], 0, "the entry shard is a root");
        assert_eq!(p.offset[p.owner[1]], 1, "the downstream shard trails by one slot");
    }

    #[test]
    fn single_stage_and_single_shard_fall_back() {
        let st = states(vec![stage("only")]);
        assert!(plan(&st, 4).is_none(), "one stage cannot shard");
        let st2 = states(vec![stage("a"), stage("b")]);
        assert!(plan(&st2, 1).is_none(), "one shard is the serial engine");
    }

    #[test]
    fn undeclared_steer_closures_fall_back() {
        let st = states(vec![
            stage("demux").with_next(NextHop::Steer(Box::new(|_| Some(1)))),
            stage("worker"),
        ]);
        assert!(plan(&st, 2).is_none(), "opaque steering cannot be partitioned");
    }

    #[test]
    fn declared_steer_fanout_shards_like_a_cluster() {
        // splitter -> 4 workers -> sink: the replicated-cluster shape.
        let mut cfgs = vec![stage("split")
            .with_next(NextHop::Steer(Box::new(|_| Some(1))))
            .with_steer_targets(vec![1, 2, 3, 4])];
        for _ in 0..4 {
            cfgs.push(stage("worker").with_next(NextHop::Sink));
        }
        let st = states(cfgs);
        let p = plan(&st, 2).expect("partitions");
        assert_eq!(p.n_shards, 2);
        assert_eq!(p.owner[0], p.offset.iter().position(|&o| o == 0).expect("root exists"));
        // Workers spread across both shards; the entry shard's workers
        // are its internal successors only via the splitter (allowed:
        // the entry shard has no upstream).
        let entry = p.owner[0];
        assert!(p.owner[1..].iter().any(|&s| s != entry), "fan-out must actually spread");
    }

    #[test]
    fn back_edges_fall_back() {
        let st = states(vec![
            stage("a"),
            stage("b").with_next(NextHop::Stage(0)), // cycle a -> b -> a
        ]);
        assert!(plan(&st, 2).is_none(), "cyclic pipelines cannot shard");
    }

    #[test]
    fn shared_successor_predecessors_are_colocated() {
        // a -> c, b -> c: a and b must share a shard (C2), and c's
        // shard then has a single upstream (C3).
        let st = states(vec![
            stage("a").with_next(NextHop::Stage(2)),
            stage("b").with_next(NextHop::Stage(2)),
            stage("c").with_next(NextHop::Sink),
        ]);
        if let Some(p) = plan(&st, 2) {
            assert_eq!(p.owner[0], p.owner[1], "predecessors of c must be co-located");
        }
        // (a,b) have no incoming edge from stage 0's shard... stage 0
        // is `a`, so C5 holds iff a's shard is a root — guaranteed
        // because a and b hold every edge into c.
    }

    #[test]
    fn outbox_merge_mints_ascending_seqs_in_mailbox_order() {
        // The merge rule in miniature: local events first (minted in
        // earlier epochs), then merged hops in sender walk order, then
        // anything minted during the walk. Adversarial same-timestamp
        // classes: every event lands at t=1000.
        let route = ShardRoute { owner: vec![0, 0], me: 0, out: vec![Vec::new()] };
        let mut core = EventCore::new_for_run(SchedulerKind::Wheel, true, Some(route));
        let tuple = test_tuple();
        // "Earlier epoch" local events.
        core.enqueue_arrive(1000, 0, Packet::new(0, 0, tuple, 64, 900));
        core.enqueue_arrive(1000, 0, Packet::new(1, 0, tuple, 64, 900));
        // Epoch merge: hops from the (single) upstream in mailbox order.
        for id in [7u64, 3, 9] {
            core.enqueue_arrive(1000, 1, Packet::new(id, 0, tuple, 64, 1000));
        }
        let mut bucket = Vec::new();
        core.events.drain_bucket(&mut bucket);
        assert_eq!(bucket.len(), 5, "one same-timestamp equivalence class");
        let seqs: Vec<u64> = bucket.iter().map(|&(_, s, _)| s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "drained bucket must already be seq-sorted");
        // Hop payload order follows mint order, i.e. mailbox order.
        let stages: Vec<usize> =
            bucket.iter().map(|&(_, _, tag)| crate::engine::tag_stage(tag)).collect();
        assert_eq!(stages, vec![0, 0, 1, 1, 1], "locals precede merged hops");
    }

    #[test]
    fn remote_forwards_divert_to_the_outbox_without_minting() {
        let route = ShardRoute { owner: vec![0, 1], me: 0, out: vec![Vec::new(), Vec::new()] };
        let mut core = EventCore::new_for_run(SchedulerKind::Wheel, true, Some(route));
        let tuple = test_tuple();
        let before = core.total;
        core.forward(500, 1, Packet::new(0, 0, tuple, 64, 500));
        assert_eq!(core.total, before, "outbound hops must not mint a seq at the source");
        let route = core.route.as_ref().expect("route");
        assert_eq!(route.out[1].len(), 1, "the hop sits in the destination outbox");
        assert_eq!(core.events.peek_time(), None, "nothing was scheduled locally");
    }
}
