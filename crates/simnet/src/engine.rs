//! The discrete-event simulation engine.
//!
//! A deployment is a pipeline of queueing stages. Each stage has a
//! bounded FIFO, `servers` parallel executors (cores, NIC cores, or a
//! pipeline slot), and a [`ServiceModel`] that decides each packet's
//! verdict and service time. Packets flow source → stage 0 → stage 1 →
//! … → sink; stage queues drop on overflow (overload loss), NF verdicts
//! drop by policy (counted separately — a firewall denying a packet did
//! its job).
//!
//! Time is `u64` nanoseconds. Events are totally ordered by
//! `(time, sequence)` so runs are exactly reproducible.
//!
//! ## Memory discipline
//!
//! The hot path is allocation-free in steady state. Event payloads live
//! in a free-list slab ([`EventSlab`]) whose slots are reclaimed the
//! moment an event is dispatched, so resident memory is O(live events),
//! not O(total events). Workload arrivals are injected lazily from the
//! stub iterator (arrival times are monotone), so a week-long simulated
//! run holds one pending arrival at a time instead of the whole packet
//! sequence. Batch result buffers are pooled and reused across kernel
//! invocations.

use crate::fault::{FaultAction, FaultPlan};
use crate::nf::NfVerdict;
use crate::packet::Packet;
use crate::sched::{EventScheduler, SchedulerKind};
use crate::service::ServiceModel;
use crate::stats::{DropReason, SinkStats};
use apples_obs::span::SpanToken;
use apples_obs::{Phase, RunObserver, TraceDrop, TraceFault};
use apples_workload::WorkloadSpec;
use std::collections::VecDeque;

/// A per-packet steering function: maps a packet to the next stage
/// index, or `None` for the sink.
pub type SteerFn = Box<dyn Fn(&Packet) -> Option<usize> + Send>;

/// Where a stage's forwarded packets go next.
pub enum NextHop {
    /// The next stage in configuration order, or the sink after the
    /// last stage (the default linear pipeline).
    Linear,
    /// A fixed stage index.
    Stage(usize),
    /// Straight to the sink.
    Sink,
    /// Per-packet steering (e.g. RSS: hash the flow to one of several
    /// core stages). Returning `None` sends the packet to the sink.
    Steer(SteerFn),
}

/// Batch-processing policy for vector accelerators (GPUs, wide SIMD
/// engines): packets accumulate until `max_batch` are waiting or the
/// head of the buffer has waited `timeout_ns`, then a server processes
/// the whole batch in one `kernel_overhead_ns + per-packet` invocation.
///
/// Batching trades latency (packets wait for the batch to form) for
/// throughput (the kernel overhead amortizes) — the defining shape of
/// GPU packet processing, and a natural §4.3 subject: no amount of
/// batching hardware buys back the formation delay.
///
/// The formation timer is measured from the *head packet's enqueue
/// time*: when a server is available, no packet waits in the formation
/// buffer longer than `timeout_ns` before its batch launches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum packets per batch.
    pub max_batch: usize,
    /// Flush a partial batch once its head packet has waited this long.
    pub timeout_ns: u64,
    /// Fixed per-invocation cost (kernel launch, DMA setup).
    pub kernel_overhead_ns: u64,
}

impl BatchPolicy {
    /// Creates a policy; panics on degenerate parameters.
    pub fn new(max_batch: usize, timeout_ns: u64, kernel_overhead_ns: u64) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        assert!(timeout_ns > 0, "timeout must be positive");
        BatchPolicy { max_batch, timeout_ns, kernel_overhead_ns }
    }
}

/// Configuration for one pipeline stage.
pub struct StageConfig {
    /// Stage name for reports.
    pub name: &'static str,
    /// Parallel servers (cores).
    pub servers: u32,
    /// Queue capacity in packets (excluding those in service).
    pub queue_capacity: usize,
    /// The service model.
    pub service: Box<dyn ServiceModel>,
    /// Forwarding target for packets this stage passes.
    pub next: NextHop,
    /// Batch-processing policy; `None` = serve packets one at a time.
    pub batch: Option<BatchPolicy>,
}

impl StageConfig {
    /// Creates a stage that forwards linearly (to the next stage, or the
    /// sink if it is the last one).
    pub fn new(
        name: &'static str,
        servers: u32,
        queue_capacity: usize,
        service: Box<dyn ServiceModel>,
    ) -> Self {
        StageConfig { name, servers, queue_capacity, service, next: NextHop::Linear, batch: None }
    }

    /// Overrides the forwarding target.
    pub fn with_next(mut self, next: NextHop) -> Self {
        self.next = next;
        self
    }

    /// Enables batch processing on this stage.
    pub fn with_batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = Some(policy);
        self
    }
}

struct StageState {
    cfg: StageConfig,
    /// Waiting packets, each with its enqueue timestamp (the batch
    /// formation timer is measured from the head's enqueue time).
    queue: VecDeque<(u64, Packet)>,
    busy: u32,
    busy_ns: u128,
    arrivals: u64,
    served: u64,
    queue_drops: u64,
    policy_drops: u64,
    /// Packets currently inside servers (equals `busy` for per-packet
    /// stages; a multiple for batch stages).
    in_service_pkts: u64,
    /// Invalidates stale batch timers.
    batch_epoch: u64,
    /// A batch timeout fired while all servers were busy; flush a
    /// partial batch as soon as one frees.
    batch_flush_pending: bool,
    /// Service-time multiplier from the fault plan (1.0 = nominal).
    slow_factor: f64,
    /// The stage is in an outage window: arrivals drop, in-flight work
    /// completes, no new work starts until recovery.
    down: bool,
    /// Packets lost to faults at this stage (outage-window arrivals).
    fault_drops: u64,
}

/// Per-stage outcome of a run, for utilization-driven power accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: &'static str,
    /// Fraction of server-time spent busy, `[0, 1]`.
    pub utilization: f64,
    /// Packets that arrived at this stage.
    pub arrivals: u64,
    /// Packets that completed service here.
    pub served: u64,
    /// Packets dropped at this stage's queue.
    pub queue_drops: u64,
    /// Packets dropped here by NF policy.
    pub policy_drops: u64,
    /// Packets lost to injected faults at this stage (arrivals during
    /// an outage window).
    pub fault_drops: u64,
    /// Packets still queued or in service when the run ended.
    pub in_flight: u64,
}

impl StageReport {
    /// Packet-conservation check: every arrival is served, dropped at
    /// the queue, lost to a fault, or still in flight at cutoff.
    pub fn conserves_packets(&self) -> bool {
        self.arrivals == self.served + self.queue_drops + self.fault_drops + self.in_flight
    }
}

/// Optional payload synthesis for payload-inspecting pipelines.
pub struct PayloadConfig {
    /// Probability a packet carries one of the needles.
    pub attack_prob: f64,
    /// Patterns to embed (the DPI experiments' ground truth).
    pub needles: Vec<Vec<u8>>,
}

#[derive(Debug)]
enum EventKind {
    Arrive { stage: usize, pkt: Packet },
    Done { stage: usize, pkt: Packet, verdict: NfVerdict, svc_ns: u64 },
    BatchTimeout { stage: usize, epoch: u64 },
    BatchDone { stage: usize, results: Vec<(Packet, NfVerdict)>, total_ns: u64 },
    Fault(FaultAction),
}

/// Free-list slab of event payloads, keyed by the heap's
/// `(time, seq, slot)` entries.
///
/// Dispatching an event returns its slot to the free list, so the slab's
/// footprint tracks the number of *live* events (in-service completions,
/// pending timers, the handful of same-time forwards) rather than every
/// event ever scheduled. The previous grow-forever arena retained one
/// slot per event for the whole run — O(total events) memory.
struct EventSlab {
    slots: Vec<Option<EventKind>>,
    free: Vec<usize>,
    live: usize,
    peak_live: usize,
    total: u64,
}

impl EventSlab {
    fn new() -> Self {
        EventSlab { slots: Vec::new(), free: Vec::new(), live: 0, peak_live: 0, total: 0 }
    }

    fn insert(&mut self, kind: EventKind) -> usize {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.total += 1;
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot].is_none(), "free list pointed at a live slot");
                self.slots[slot] = Some(kind);
                slot
            }
            None => {
                self.slots.push(Some(kind));
                self.slots.len() - 1
            }
        }
    }

    fn take(&mut self, slot: usize) -> EventKind {
        // lint: allow(P1, reason = "invariant: heap keys are minted by alloc() and consumed exactly once; a vacant slot here is heap/slab corruption")
        let kind = self.slots[slot].take().expect("heap key referenced a vacant slot");
        self.free.push(slot);
        self.live -= 1;
        kind
    }
}

/// Bytes per event slot in the engine's slab (for memory accounting in
/// the bench harness: old-arena bytes = `total_events * event_slot_bytes`,
/// slab peak bytes = `peak_live_events * event_slot_bytes`).
pub fn event_slot_bytes() -> usize {
    std::mem::size_of::<Option<EventKind>>()
}

/// The simulator.
pub struct Engine {
    stages: Vec<StageState>,
    payload: Option<PayloadConfig>,
    scheduler: SchedulerKind,
    /// Fault plan applied to every run; `None` = fault-free.
    fault_plan: Option<FaultPlan>,
    /// Pooled batch-result buffers, persisted across `run` calls so a
    /// reused engine's steady state allocates nothing (the old per-run
    /// pool started empty every run and reallocated from scratch).
    batch_pool: Vec<Vec<(Packet, NfVerdict)>>,
    /// Persisted timestamp-bucket buffer for the dispatch loop.
    bucket_buf: Vec<(u64, u64, usize)>,
    /// Optional observability hooks (tracing / telemetry / spans).
    /// `None` — the default — leaves the hot path byte-identical to an
    /// uninstrumented engine: every site is a single `Option` branch.
    observer: Option<RunObserver>,
}

/// The raw result of a run.
///
/// `PartialEq` compares every field (histogram counts included) — the
/// A/B scheduler tests lean on it to assert byte-identical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Sink-side statistics over the measurement window.
    pub sink: SinkStats,
    /// Per-stage reports.
    pub stages: Vec<StageReport>,
    /// Measurement window length, ns.
    pub window_ns: u64,
    /// Packets injected into stage 0 over the whole run.
    pub injected: u64,
    /// Packets the fault plan dropped at the injection point (these
    /// never reached stage 0 and are not part of `injected`).
    pub injected_drops: u64,
    /// Packets the fault plan marked corrupted at the injection point.
    pub corrupted: u64,
    /// Total events scheduled over the run (what the old grow-forever
    /// arena would have held in memory).
    pub total_events: u64,
    /// High-water mark of simultaneously live events — the slab's
    /// actual footprint.
    pub peak_live_events: usize,
}

type EventQueue = EventScheduler;

fn push_event(
    events: &mut EventQueue,
    slab: &mut EventSlab,
    seq: &mut u64,
    t: u64,
    kind: EventKind,
) {
    let slot = slab.insert(kind);
    events.push(t, *seq, slot);
    *seq += 1;
}

/// Applies a stage's fault slowdown factor to a service time. The
/// nominal case takes the exact identity path so fault-free runs are
/// bit-for-bit unchanged.
#[inline]
fn scaled(svc_ns: u64, factor: f64) -> u64 {
    // lint: allow(N1, reason = "exact sentinel: 1.0 is assigned verbatim, never computed")
    if factor == 1.0 {
        svc_ns
    } else {
        (svc_ns as f64 * factor).ceil() as u64
    }
}

/// Maps a fault-plan action to its trace representation.
fn fault_trace(action: FaultAction) -> (usize, TraceFault) {
    match action {
        FaultAction::SlowdownStart { stage } => (stage, TraceFault::SlowdownStart),
        FaultAction::SlowdownEnd { stage } => (stage, TraceFault::SlowdownEnd),
        FaultAction::DeviceDown { stage } => (stage, TraceFault::DeviceDown),
        FaultAction::DeviceUp { stage } => (stage, TraceFault::DeviceUp),
    }
}

/// Starts as many batches as servers and buffered packets allow.
/// `force_partial` flushes a below-max batch (the formation timer fired).
#[allow(clippy::too_many_arguments)]
fn try_flush_batches(
    st: &mut StageState,
    stage: usize,
    t: u64,
    force_partial: bool,
    events: &mut EventQueue,
    slab: &mut EventSlab,
    seq: &mut u64,
    batch_pool: &mut Vec<Vec<(Packet, NfVerdict)>>,
    obs: &mut Option<RunObserver>,
) {
    let Some(policy) = st.cfg.batch else { return };
    if st.down {
        // No new kernels launch during an outage; a pending flush (or
        // queued packets) will be picked up again at DeviceUp.
        return;
    }
    let force = force_partial || st.batch_flush_pending;
    let mut launched = false;
    while st.busy < st.cfg.servers
        && (st.queue.len() >= policy.max_batch || (force && !st.queue.is_empty()))
    {
        let n = st.queue.len().min(policy.max_batch);
        let mut total_ns = policy.kernel_overhead_ns;
        let mut results = batch_pool.pop().unwrap_or_default();
        results.reserve(n);
        for _ in 0..n {
            // lint: allow(P1, reason = "invariant: loop condition just checked the queue holds at least max_batch (or is non-empty under force)")
            let (enq_t, pkt) = st.queue.pop_front().expect("checked non-empty");
            if let Some(o) = obs.as_mut() {
                o.on_dispatch(t, pkt.id, stage, t - enq_t);
            }
            let (verdict, svc_ns) = st.cfg.service.serve(&pkt);
            total_ns += svc_ns;
            results.push((pkt, verdict));
        }
        let total_ns = scaled(total_ns, st.slow_factor);
        st.busy += 1;
        st.in_service_pkts += n as u64;
        st.busy_ns += u128::from(total_ns);
        st.batch_epoch += 1;
        launched = true;
        push_event(
            events,
            slab,
            seq,
            t + total_ns,
            EventKind::BatchDone { stage, results, total_ns },
        );
    }
    st.batch_flush_pending = force && !st.queue.is_empty() && st.busy >= st.cfg.servers;
    // A launch invalidated the head's timer (epoch bump). If packets
    // remain, re-arm for the new head — measured from *its* enqueue
    // time, so no packet waits more than timeout_ns while a server is
    // free. (Timers for an unchanged head are still in the heap and
    // stay valid: the epoch has not moved.)
    if launched && !st.queue.is_empty() && !st.batch_flush_pending {
        // lint: allow(P1, reason = "invariant: guarded by the !st.queue.is_empty() conjunct on the if directly above")
        let head_enqueued = st.queue.front().expect("checked non-empty").0;
        let deadline = (head_enqueued + policy.timeout_ns).max(t);
        push_event(
            events,
            slab,
            seq,
            deadline,
            EventKind::BatchTimeout { stage, epoch: st.batch_epoch },
        );
    }
}

impl Engine {
    /// Builds an engine from stage configurations (source feeds stage 0).
    pub fn new(stages: Vec<StageConfig>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        for (i, s) in stages.iter().enumerate() {
            assert!(s.servers > 0, "stage '{}' needs at least one server", s.name);
            if let NextHop::Stage(j) = s.next {
                assert!(j < stages.len(), "stage '{}' forwards to nonexistent stage {j}", s.name);
                assert_ne!(i, j, "stage '{}' must not forward to itself", s.name);
            }
        }
        Engine {
            stages: stages
                .into_iter()
                .map(|cfg| StageState {
                    cfg,
                    queue: VecDeque::new(),
                    busy: 0,
                    busy_ns: 0,
                    arrivals: 0,
                    served: 0,
                    queue_drops: 0,
                    policy_drops: 0,
                    in_service_pkts: 0,
                    batch_epoch: 0,
                    batch_flush_pending: false,
                    slow_factor: 1.0,
                    down: false,
                    fault_drops: 0,
                })
                .collect(),
            payload: None,
            scheduler: SchedulerKind::Wheel,
            fault_plan: None,
            batch_pool: Vec::new(),
            bucket_buf: Vec::new(),
            observer: None,
        }
    }

    /// Attaches observability hooks for subsequent runs. The observer
    /// accumulates across runs until taken with [`Engine::take_observer`].
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Removes and returns the observer (with everything it collected).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&RunObserver> {
        self.observer.as_ref()
    }

    /// Stage names in pipeline order (labels for telemetry and traces).
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.cfg.name.to_owned()).collect()
    }

    /// Selects the event-queue discipline. The timing wheel is the
    /// default; the heap baseline exists for A/B determinism tests —
    /// both produce byte-identical results on every workload.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Attaches a fault plan: its windowed transitions become timing-
    /// wheel events and its per-packet hash decisions gate the
    /// injection point. An empty plan leaves runs bit-for-bit
    /// unchanged; `(seed, plan)` fully determines the perturbation.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Routes a packet that finished service at `stage` according to its
    /// verdict: policy drop, next stage, or sink delivery.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        stage: usize,
        pkt: Packet,
        verdict: NfVerdict,
        t: u64,
        warmup_ns: u64,
        sink: &mut SinkStats,
        events: &mut EventQueue,
        slab: &mut EventSlab,
        seq: &mut u64,
        obs: &mut Option<RunObserver>,
    ) {
        match verdict {
            NfVerdict::Drop => {
                if let Some(o) = obs.as_mut() {
                    o.on_drop(t, pkt.id, stage, TraceDrop::Policy);
                }
                if t >= warmup_ns {
                    sink.drop(DropReason::Policy);
                }
            }
            NfVerdict::Forward => {
                let dest = match &self.stages[stage].cfg.next {
                    NextHop::Linear => {
                        if stage + 1 < self.stages.len() {
                            Some(stage + 1)
                        } else {
                            None
                        }
                    }
                    NextHop::Stage(i) => Some(*i),
                    NextHop::Sink => None,
                    NextHop::Steer(f) => f(&pkt),
                };
                match dest {
                    Some(next_stage) => {
                        assert!(
                            next_stage < self.stages.len(),
                            "stage '{}' steered to nonexistent stage {next_stage}",
                            self.stages[stage].cfg.name
                        );
                        push_event(
                            events,
                            slab,
                            seq,
                            t,
                            EventKind::Arrive { stage: next_stage, pkt },
                        );
                    }
                    None => {
                        if t >= warmup_ns && pkt.t_arrival_ns >= warmup_ns {
                            sink.deliver(pkt.flow, pkt.wire_bits(), t - pkt.t_arrival_ns);
                        }
                    }
                }
            }
        }
    }

    /// Enables payload synthesis (needed when the pipeline contains DPI).
    pub fn with_payloads(mut self, cfg: PayloadConfig) -> Self {
        self.payload = Some(cfg);
        self
    }

    /// Runs `workload` for `duration_ns` of simulated time, measuring
    /// from `warmup_ns` on. Deliveries and drops before warmup are not
    /// counted; events after `duration_ns` are not processed.
    pub fn run(&mut self, workload: &WorkloadSpec, duration_ns: u64, warmup_ns: u64) -> RunResult {
        let stream = workload.stream();
        self.run_stubs(stream, workload.flows, workload.seed, duration_ns, warmup_ns)
    }

    /// Replays a recorded or imported [`apples_workload::Trace`] instead
    /// of a generator.
    /// Payload synthesis (when enabled) derives from `payload_seed`.
    pub fn run_trace(
        &mut self,
        trace: &apples_workload::Trace,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        self.run_stubs(
            trace.packets().iter().copied(),
            trace.flows(),
            payload_seed,
            duration_ns,
            warmup_ns,
        )
    }

    /// Handles one arrival at `stage`: start service, enqueue, or drop.
    #[allow(clippy::too_many_arguments)]
    fn arrive(
        &mut self,
        stage: usize,
        pkt: Packet,
        t: u64,
        warmup_ns: u64,
        sink: &mut SinkStats,
        events: &mut EventQueue,
        slab: &mut EventSlab,
        seq: &mut u64,
        batch_pool: &mut Vec<Vec<(Packet, NfVerdict)>>,
        obs: &mut Option<RunObserver>,
    ) {
        let st = &mut self.stages[stage];
        st.arrivals += 1;
        if let Some(o) = obs.as_mut() {
            o.on_stage_enter(t, pkt.id, stage);
        }
        if st.down {
            // Outage window: the device is gone; packets addressed to
            // it are lost rather than queued.
            st.fault_drops += 1;
            if let Some(o) = obs.as_mut() {
                o.on_drop(t, pkt.id, stage, TraceDrop::Fault);
            }
            if t >= warmup_ns {
                sink.drop(DropReason::Fault);
            }
        } else if st.cfg.batch.is_some() {
            if st.queue.len() < st.cfg.queue_capacity {
                let was_empty = st.queue.is_empty();
                let pkt_id = pkt.id;
                st.queue.push_back((t, pkt));
                if let Some(o) = obs.as_mut() {
                    o.on_enqueue(t, pkt_id, stage, st.queue.len());
                }
                if was_empty {
                    // New head: the formation timer runs from its
                    // enqueue time (which is now).
                    // lint: allow(P1, reason = "invariant: inside the st.cfg.batch.is_some() branch entered a few lines up")
                    let timeout = st.cfg.batch.expect("checked").timeout_ns;
                    let epoch = st.batch_epoch;
                    push_event(
                        events,
                        slab,
                        seq,
                        t + timeout,
                        EventKind::BatchTimeout { stage, epoch },
                    );
                }
                try_flush_batches(st, stage, t, false, events, slab, seq, batch_pool, obs);
            } else {
                st.queue_drops += 1;
                if let Some(o) = obs.as_mut() {
                    o.on_drop(t, pkt.id, stage, TraceDrop::QueueFull);
                }
                if t >= warmup_ns {
                    sink.drop(DropReason::QueueFull);
                }
            }
        } else if st.busy < st.cfg.servers {
            st.busy += 1;
            st.in_service_pkts += 1;
            if let Some(o) = obs.as_mut() {
                o.on_dispatch(t, pkt.id, stage, 0);
            }
            let (verdict, svc_ns) = st.cfg.service.serve(&pkt);
            let svc_ns = scaled(svc_ns, st.slow_factor);
            st.busy_ns += u128::from(svc_ns);
            push_event(
                events,
                slab,
                seq,
                t + svc_ns,
                EventKind::Done { stage, pkt, verdict, svc_ns },
            );
        } else if st.queue.len() < st.cfg.queue_capacity {
            let pkt_id = pkt.id;
            st.queue.push_back((t, pkt));
            if let Some(o) = obs.as_mut() {
                o.on_enqueue(t, pkt_id, stage, st.queue.len());
            }
        } else {
            st.queue_drops += 1;
            if let Some(o) = obs.as_mut() {
                o.on_drop(t, pkt.id, stage, TraceDrop::QueueFull);
            }
            if t >= warmup_ns {
                sink.drop(DropReason::QueueFull);
            }
        }
    }

    fn run_stubs(
        &mut self,
        stubs: impl Iterator<Item = apples_workload::PacketStub>,
        flows: usize,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        assert!(warmup_ns < duration_ns, "warmup must precede the end of the run");
        let window_ns = duration_ns - warmup_ns;
        let mut sink = SinkStats::new(flows);

        // Reset per-run state so an Engine can be reused safely.
        for st in &mut self.stages {
            st.queue.clear();
            st.busy = 0;
            st.busy_ns = 0;
            st.arrivals = 0;
            st.served = 0;
            st.queue_drops = 0;
            st.policy_drops = 0;
            st.in_service_pkts = 0;
            st.batch_epoch = 0;
            st.batch_flush_pending = false;
            st.slow_factor = 1.0;
            st.down = false;
            st.fault_drops = 0;
        }

        let mut events = EventScheduler::new(self.scheduler);
        let mut slab = EventSlab::new();
        let mut seq = 0u64;

        // The observer travels alongside the sink through the helpers;
        // taking it out of `self` keeps the borrows disjoint.
        let mut obs = self.observer.take();
        if let Some(o) = obs.as_mut() {
            o.ensure_stages(self.stages.len());
        }

        // Materialize the fault plan's windowed transitions as ordinary
        // events before anything else runs: they get the lowest seqs, so
        // their relative order is fixed under both scheduler kinds.
        let fault_plan = self.fault_plan.take();
        if let Some(plan) = &fault_plan {
            for e in plan.events.iter().filter(|e| e.t_ns <= duration_ns) {
                push_event(&mut events, &mut slab, &mut seq, e.t_ns, EventKind::Fault(e.action));
            }
        }
        let mut injected_drops = 0u64;
        let mut corrupted = 0u64;
        // Scratch buffers persist on the engine across runs: a reused
        // engine's batch kernels and bucket drains allocate nothing in
        // steady state.
        let mut batch_pool = std::mem::take(&mut self.batch_pool);
        let mut bucket = std::mem::take(&mut self.bucket_buf);
        bucket.clear();

        // Arrivals are injected lazily: workload arrival times are
        // monotone, so holding the single next stub (rather than the
        // whole packet sequence) preserves event order exactly while
        // keeping memory independent of run length. Packet ids number
        // arrivals in stub order.
        let needle_refs: Vec<Vec<u8>> =
            self.payload.as_ref().map(|p| p.needles.clone()).unwrap_or_default();
        let refs: Vec<&[u8]> = needle_refs.iter().map(|n| n.as_slice()).collect();
        let attack_prob = self.payload.as_ref().map(|p| p.attack_prob);
        let mut pkt_id = 0u64;
        let mut stubs = stubs.take_while(|stub| stub.t_ns < duration_ns);
        let make_packet = |stub: apples_workload::PacketStub, id: u64| {
            let mut pkt = Packet::new(id, stub.flow, stub.tuple, stub.size_bytes, stub.t_ns);
            if let Some(prob) = attack_prob {
                let len = (stub.size_bytes as usize).saturating_sub(54); // L2-L4 headers
                pkt = pkt.with_payload(len, payload_seed, prob, &refs);
            }
            pkt
        };
        let mut next_arrival: Option<Packet> = stubs.next().map(|s| {
            let p = make_packet(s, pkt_id);
            pkt_id += 1;
            p
        });
        // Sim-time of the previous bucket, for span attribution.
        let mut last_t = 0u64;

        loop {
            // Arrivals sort before simulation events at the same time
            // (they were scheduled first in program order).
            let take_arrival = match (&next_arrival, events.peek_time()) {
                (Some(a), Some(t)) => a.t_arrival_ns <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };

            if take_arrival {
                // lint: allow(P1, reason = "invariant: take_arrival is only true when next_arrival matched Some in the selection above")
                let mut pkt = next_arrival.take().expect("checked above");
                let t = pkt.t_arrival_ns;
                next_arrival = stubs.next().map(|s| {
                    let p = make_packet(s, pkt_id);
                    pkt_id += 1;
                    p
                });
                // Injection-point faults: hash decisions on the packet
                // id, independent of schedule and of each other.
                if let Some(plan) = &fault_plan {
                    if plan.drops(pkt.id) {
                        injected_drops += 1;
                        if let Some(o) = obs.as_mut() {
                            o.on_fault(t, pkt.id, 0, TraceFault::InjectedDrop);
                        }
                        if t >= warmup_ns {
                            sink.drop(DropReason::Fault);
                        }
                        continue;
                    }
                    if plan.corrupts(pkt.id) {
                        pkt.corrupted = true;
                        corrupted += 1;
                        if let Some(o) = obs.as_mut() {
                            o.on_fault(t, pkt.id, 0, TraceFault::Corrupt);
                        }
                    }
                }
                self.arrive(
                    0,
                    pkt,
                    t,
                    warmup_ns,
                    &mut sink,
                    &mut events,
                    &mut slab,
                    &mut seq,
                    &mut batch_pool,
                    &mut obs,
                );
                continue;
            }

            // Drain the whole earliest-timestamp bucket and dispatch it
            // in one pass. All entries share one time, so the cutoff is
            // checked once per bucket; events an entry schedules at the
            // same time get fresh (higher) seqs and come back as the
            // next bucket, exactly where the heap would pop them. All
            // arrivals at <= this time were injected above, so order
            // across the arrival/event interleave is unchanged.
            let adv_tok = match obs.as_mut() {
                Some(o) => o.span_begin(Phase::WheelAdvance),
                None => SpanToken::noop(),
            };
            events.drain_bucket(&mut bucket);
            let t = match bucket.first() {
                Some(&(t, _, _)) => t,
                // peek_time returned Some, so the bucket cannot be
                // empty; keep the engine total rather than panicking.
                None => break,
            };
            if let Some(o) = obs.as_mut() {
                o.span_end(Phase::WheelAdvance, adv_tok, t.saturating_sub(last_t));
            }
            last_t = t;
            if t > duration_ns {
                break;
            }
            let disp_tok = match obs.as_mut() {
                Some(o) => o.span_begin(Phase::Dispatch),
                None => SpanToken::noop(),
            };
            for &(_, eseq, slot) in &bucket {
                match slab.take(slot) {
                    EventKind::Arrive { stage, pkt } => {
                        self.arrive(
                            stage,
                            pkt,
                            t,
                            warmup_ns,
                            &mut sink,
                            &mut events,
                            &mut slab,
                            &mut seq,
                            &mut batch_pool,
                            &mut obs,
                        );
                    }
                    EventKind::BatchTimeout { stage, epoch } => {
                        let st = &mut self.stages[stage];
                        if st.batch_epoch == epoch && !st.queue.is_empty() {
                            st.batch_flush_pending = true;
                            try_flush_batches(
                                st,
                                stage,
                                t,
                                true,
                                &mut events,
                                &mut slab,
                                &mut seq,
                                &mut batch_pool,
                                &mut obs,
                            );
                        }
                    }
                    EventKind::BatchDone { stage, mut results, total_ns } => {
                        {
                            let st = &mut self.stages[stage];
                            st.busy -= 1;
                            st.in_service_pkts -= results.len() as u64;
                            st.served += results.len() as u64;
                            st.policy_drops +=
                                results.iter().filter(|(_, v)| *v == NfVerdict::Drop).count()
                                    as u64;
                            if let Some(o) = obs.as_mut() {
                                // Every batch member shares the batch's
                                // wall of service: the kernel is the
                                // unit of work.
                                for (pkt, verdict) in results.iter() {
                                    o.on_stage_exit(
                                        t,
                                        pkt.id,
                                        stage,
                                        total_ns,
                                        *verdict == NfVerdict::Forward,
                                    );
                                }
                            }
                            try_flush_batches(
                                st,
                                stage,
                                t,
                                false,
                                &mut events,
                                &mut slab,
                                &mut seq,
                                &mut batch_pool,
                                &mut obs,
                            );
                        }
                        for (pkt, verdict) in results.drain(..) {
                            self.settle(
                                stage,
                                pkt,
                                verdict,
                                t,
                                warmup_ns,
                                &mut sink,
                                &mut events,
                                &mut slab,
                                &mut seq,
                                &mut obs,
                            );
                        }
                        batch_pool.push(results);
                    }
                    EventKind::Done { stage, pkt, verdict, svc_ns } => {
                        {
                            let st = &mut self.stages[stage];
                            st.busy -= 1;
                            st.in_service_pkts -= 1;
                            st.served += 1;
                            if verdict == NfVerdict::Drop {
                                st.policy_drops += 1;
                            }
                            if let Some(o) = obs.as_mut() {
                                o.on_stage_exit(
                                    t,
                                    pkt.id,
                                    stage,
                                    svc_ns,
                                    verdict == NfVerdict::Forward,
                                );
                            }
                            // Pull the next queued packet into service
                            // (unless an outage window is open — queued
                            // work resumes at DeviceUp).
                            if !st.down {
                                if let Some((enq_t, next)) = st.queue.pop_front() {
                                    st.busy += 1;
                                    st.in_service_pkts += 1;
                                    if let Some(o) = obs.as_mut() {
                                        o.on_dispatch(t, next.id, stage, t - enq_t);
                                    }
                                    let (v, svc_ns) = st.cfg.service.serve(&next);
                                    let svc_ns = scaled(svc_ns, st.slow_factor);
                                    st.busy_ns += u128::from(svc_ns);
                                    push_event(
                                        &mut events,
                                        &mut slab,
                                        &mut seq,
                                        t + svc_ns,
                                        EventKind::Done { stage, pkt: next, verdict: v, svc_ns },
                                    );
                                }
                            }
                        }
                        self.settle(
                            stage,
                            pkt,
                            verdict,
                            t,
                            warmup_ns,
                            &mut sink,
                            &mut events,
                            &mut slab,
                            &mut seq,
                            &mut obs,
                        );
                    }
                    EventKind::Fault(action) => {
                        let fault_tok = match obs.as_mut() {
                            Some(o) => o.span_begin(Phase::FaultApply),
                            None => SpanToken::noop(),
                        };
                        if let Some(o) = obs.as_mut() {
                            let (stage, kind) = fault_trace(action);
                            o.on_fault(t, eseq, stage, kind);
                        }
                        match action {
                            FaultAction::SlowdownStart { stage } => {
                                if let Some(plan) = &fault_plan {
                                    self.stages[stage].slow_factor = plan.slow_factor;
                                }
                            }
                            FaultAction::SlowdownEnd { stage } => {
                                self.stages[stage].slow_factor = 1.0;
                            }
                            FaultAction::DeviceDown { stage } => {
                                self.stages[stage].down = true;
                            }
                            FaultAction::DeviceUp { stage } => {
                                let st = &mut self.stages[stage];
                                st.down = false;
                                if st.cfg.batch.is_some() {
                                    try_flush_batches(
                                        st,
                                        stage,
                                        t,
                                        false,
                                        &mut events,
                                        &mut slab,
                                        &mut seq,
                                        &mut batch_pool,
                                        &mut obs,
                                    );
                                } else {
                                    // Resume draining the backlog that
                                    // accumulated before the outage.
                                    while st.busy < st.cfg.servers {
                                        let Some((enq_t, next)) = st.queue.pop_front() else {
                                            break;
                                        };
                                        st.busy += 1;
                                        st.in_service_pkts += 1;
                                        if let Some(o) = obs.as_mut() {
                                            o.on_dispatch(t, next.id, stage, t - enq_t);
                                        }
                                        let (v, svc_ns) = st.cfg.service.serve(&next);
                                        let svc_ns = scaled(svc_ns, st.slow_factor);
                                        st.busy_ns += u128::from(svc_ns);
                                        push_event(
                                            &mut events,
                                            &mut slab,
                                            &mut seq,
                                            t + svc_ns,
                                            EventKind::Done {
                                                stage,
                                                pkt: next,
                                                verdict: v,
                                                svc_ns,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        if let Some(o) = obs.as_mut() {
                            o.span_end(Phase::FaultApply, fault_tok, 0);
                        }
                    }
                }
            }
            if let Some(o) = obs.as_mut() {
                o.span_end(Phase::Dispatch, disp_tok, 0);
            }
        }

        // Hand the scratch buffers back to the engine for the next run.
        self.batch_pool = batch_pool;
        self.bucket_buf = bucket;
        self.fault_plan = fault_plan;
        if let Some(o) = obs.as_mut() {
            // Fold in the scheduler's structural counters (deterministic:
            // pure functions of the event schedule).
            o.merge_sched(events.counters());
        }
        self.observer = obs;

        let stages = self
            .stages
            .iter()
            .map(|s| StageReport {
                name: s.cfg.name,
                utilization: (s.busy_ns as f64 / (duration_ns as f64 * f64::from(s.cfg.servers)))
                    .min(1.0),
                arrivals: s.arrivals,
                served: s.served,
                queue_drops: s.queue_drops,
                policy_drops: s.policy_drops,
                fault_drops: s.fault_drops,
                in_flight: s.queue.len() as u64 + s.in_service_pkts,
            })
            .collect();

        let injected = self.stages[0].arrivals;
        RunResult {
            sink,
            stages,
            window_ns,
            injected,
            injected_drops,
            corrupted,
            total_events: slab.total + injected,
            peak_live_events: slab.peak_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{Action, Firewall};
    use crate::nf::NfChain;
    use crate::service::{LineRate, NfService};

    fn forwarding_stage(servers: u32) -> StageConfig {
        StageConfig::new("core", servers, 256, Box::new(NfService::host_core(NfChain::empty())))
    }

    #[test]
    fn underloaded_pipeline_delivers_everything() {
        // 100 kpps of 64 B on one core (100 ns/packet service): ~1% load.
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert_eq!(r.sink.queue_drops(), 0);
        let expected = 100_000.0 * 0.05; // 5000 packets in 50 ms
        let got = r.sink.delivered_packets() as f64;
        assert!((got - expected).abs() / expected < 0.01, "delivered {got}");
        assert!(r.stages[0].utilization < 0.05);
    }

    #[test]
    fn overloaded_stage_saturates_and_drops() {
        // Service ~100 ns => capacity ~10 Mpps; offer 20 Mpps.
        let mut engine = Engine::new(vec![StageConfig::new(
            "core",
            1,
            64,
            Box::new(NfService::host_core(NfChain::empty())),
        )]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 1_000_000);
        assert!(r.sink.queue_drops() > 0, "expected overload drops");
        assert!(r.sink.loss_rate() > 0.3, "loss {}", r.sink.loss_rate());
        assert!(r.stages[0].utilization > 0.95, "util {}", r.stages[0].utilization);
        // Delivered rate ~ capacity, not offered rate.
        let pps = r.sink.throughput_pps(r.window_ns);
        assert!(pps < 12e6, "delivered {pps} pps");
    }

    #[test]
    fn more_servers_raise_capacity() {
        let run_with = |servers: u32| {
            let mut engine = Engine::new(vec![forwarding_stage(servers)]);
            // Offer well above even 4 cores' capacity (~40 Mpps).
            let wl = WorkloadSpec::cbr(60e6, 64, 4, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(four > 3.0 * one, "1 core {one} pps, 4 cores {four} pps");
    }

    #[test]
    fn policy_drops_are_not_loss() {
        // A deny-all firewall: every packet dropped by policy, none lost.
        let fw = Firewall::new(vec![], Action::Deny);
        let mut engine = Engine::new(vec![StageConfig::new(
            "fw",
            1,
            256,
            Box::new(NfService::host_core(NfChain::new(vec![Box::new(fw)]))),
        )]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 0);
        assert_eq!(r.sink.delivered_packets(), 0);
        assert_eq!(r.sink.queue_drops(), 0);
        assert!(r.sink.policy_drops() > 900);
        assert_eq!(r.sink.loss_rate(), 0.0);
        assert_eq!(r.stages[0].policy_drops, r.sink.policy_drops());
    }

    #[test]
    fn latency_includes_queueing_under_load() {
        let lat_at = |rate: f64| {
            let mut engine = Engine::new(vec![forwarding_stage(1)]);
            let wl = WorkloadSpec {
                sizes: apples_workload::PacketSizeDist::Fixed(64),
                arrivals: apples_workload::ArrivalProcess::Poisson { rate_pps: rate },
                flows: 4,
                zipf_s: 0.0,
                seed: 3,
            };
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let light = lat_at(1e6); // ~10% load
        let heavy = lat_at(9e6); // ~90% load
        assert!(heavy > 2 * light, "p99 light {light} ns vs heavy {heavy} ns");
    }

    #[test]
    fn multi_stage_pipelines_accumulate_latency() {
        let mk = || StageConfig::new("link", 1, 1024, Box::new(LineRate::new("10G", 10e9)));
        let mut one = Engine::new(vec![mk()]);
        let mut three = Engine::new(vec![mk(), mk(), mk()]);
        let wl = WorkloadSpec::cbr(10_000.0, 1500, 2, 1);
        let l1 = one.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        let l3 = three.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        assert!((l3 / l1 - 3.0).abs() < 0.1, "l1 {l1} l3 {l3}");
    }

    fn batch_stage(max_batch: usize, timeout_ns: u64, kernel_ns: u64) -> StageConfig {
        StageConfig::new(
            "gpu",
            1,
            4096,
            // 30 ns marginal per packet once the kernel is launched.
            Box::new(crate::service::FixedTime::new("gpu-kernel", NfChain::empty(), 30)),
        )
        .with_batching(BatchPolicy::new(max_batch, timeout_ns, kernel_ns))
    }

    #[test]
    fn full_batches_flush_immediately() {
        // 8 packets arrive back-to-back; batch size 4 -> two batches,
        // each kernel 10 us + 4*30 ns.
        let mut engine = Engine::new(vec![batch_stage(4, 1_000_000, 10_000)]);
        let wl = WorkloadSpec::cbr(100e6, 64, 4, 1); // 10 ns spacing
        let r = engine.run(&wl, 60_000, 0);
        assert!(r.sink.delivered_packets() >= 16, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
        // Latency of the first delivered packets ~ one kernel, far below
        // the 1 ms timeout: the size trigger fired, not the timer.
        assert!(r.sink.latency().quantile_ns(0.01) < 100_000);
    }

    #[test]
    fn lone_packet_waits_for_the_timeout() {
        let mut engine = Engine::new(vec![batch_stage(64, 50_000, 10_000)]);
        // One packet per 10 ms: every batch is a timeout flush of 1.
        let wl = WorkloadSpec::cbr(100.0, 64, 1, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert!(r.sink.delivered_packets() >= 4);
        let lat = r.sink.latency().quantile_ns(0.5);
        // ~ timeout (50 us) + kernel (10 us) + marginal, within the
        // histogram's ~1.6% bucket error.
        assert!((58_000..75_000).contains(&lat), "median latency {lat} ns");
    }

    #[test]
    fn remainder_after_a_full_batch_waits_from_its_own_enqueue_time() {
        // The documented bound: with a server free, no packet waits in
        // the formation buffer longer than timeout_ns. Regression test
        // for the old behavior of re-arming the timer from the *flush*
        // time, which overcharged remainder packets by however long the
        // previous batch took.
        use apples_workload::Trace;
        const TIMEOUT: u64 = 50_000;
        const KERNEL: u64 = 10_000;
        // Exactly 9 packets, 100 ns apart (t = 100 .. 900), then silence:
        // batch 1 = packets 1-4 (size trigger), batch 2 = packets 5-8
        // (size trigger on BatchDone), packet 9 = a timer flush.
        let wl = WorkloadSpec::cbr(10e6, 64, 1, 1);
        let trace = Trace::record(&wl, 1_000);
        assert_eq!(trace.packets().len(), 9);
        let mut engine = Engine::new(vec![batch_stage(4, TIMEOUT, KERNEL)]);
        let r = engine.run_trace(&trace, 0, 5_000_000, 0);
        assert_eq!(r.sink.delivered_packets(), 9);
        // Packet 9 enqueues at t=900 while batch 2 is in flight; its
        // timer must run from t=900, so its latency is timeout + kernel
        // + marginal — NOT timeout + the in-flight batch's completion.
        let worst = r.sink.latency().quantile_ns(1.0);
        let bound = TIMEOUT + KERNEL + 4 * 30;
        assert!(
            u128::from(worst) <= u128::from(bound) * 102 / 100,
            "worst latency {worst} ns exceeds head-wait bound {bound} ns (+2% histogram error)"
        );
        assert!(worst >= TIMEOUT, "worst latency {worst} ns should include the full timeout");
    }

    #[test]
    fn batching_amortizes_kernel_overhead() {
        // Same kernel cost; batch 1 vs batch 256 at a load the former
        // cannot carry.
        let tput = |max_batch: usize| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, 100_000, 10_000)]);
            let wl = WorkloadSpec::cbr(1e6, 64, 16, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let unbatched = tput(1); // 10.03 us per packet -> ~0.1 Mpps
        let batched = tput(256); // ~17.7 us per 256 packets -> >> 1 Mpps
        assert!(unbatched < 0.15e6, "unbatched {unbatched}");
        assert!(batched > 0.9e6, "batched {batched}");
    }

    #[test]
    fn batching_trades_latency_for_throughput() {
        // At a light load both configurations keep up, but the large
        // batch makes packets wait for the formation timeout.
        let p99 = |max_batch: usize, timeout: u64| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, timeout, 10_000)]);
            let wl = WorkloadSpec::cbr(10_000.0, 64, 4, 1);
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let small = p99(1, 200_000);
        let large = p99(64, 200_000);
        assert!(
            large > small + 150_000,
            "large-batch p99 {large} should exceed small-batch {small} by ~the timeout"
        );
    }

    #[test]
    fn batch_stage_conserves_packets_under_overload() {
        let mut engine = Engine::new(vec![batch_stage(32, 10_000, 50_000)]);
        let wl = WorkloadSpec::cbr(5e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.stages[0].queue_drops > 0, "overload expected");
        assert!(r.stages[0].conserves_packets(), "{:?}", r.stages[0]);
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn batch_runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![batch_stage(16, 30_000, 5_000)]);
            let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (r.sink.delivered_packets(), r.sink.latency().quantile_ns(0.99))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn packets_are_conserved_at_every_stage() {
        // Overloaded two-stage pipeline: drops, queues, and in-flight
        // packets must all be accounted for.
        let mut engine = Engine::new(vec![
            StageConfig::new("front", 1, 32, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", 1, 8, Box::new(LineRate::new("1G", 1e9))),
        ]);
        let wl = WorkloadSpec::cbr(15e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.injected > 0);
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks packets: {s:?}", s.name);
        }
        // Cross-stage conservation: what the front forwards equals what
        // the back receives.
        let front = &r.stages[0];
        let back = &r.stages[1];
        assert_eq!(front.served - front.policy_drops, back.arrivals);
        // Global: delivered + drops + in-flight across stages == injected.
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn trace_replay_matches_the_generator_bit_for_bit() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(2e6, 700, 16, 9);
        let trace = Trace::record(&wl, 5_000_000);

        let mut live = Engine::new(vec![forwarding_stage(2)]);
        let a = live.run(&wl, 5_000_000, 500_000);

        let mut replay = Engine::new(vec![forwarding_stage(2)]);
        let b = replay.run_trace(&trace, wl.seed, 5_000_000, 500_000);

        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.sink.latency().quantile_ns(0.99), b.sink.latency().quantile_ns(0.99));
        assert_eq!(a.stages[0].served, b.stages[0].served);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn csv_imported_trace_drives_the_engine() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(1e6, 400, 4, 3);
        let csv = Trace::record(&wl, 2_000_000).to_csv();
        let imported = Trace::from_csv(&csv).expect("parses");
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let r = engine.run_trace(&imported, 0, 2_000_000, 0);
        assert!(r.sink.delivered_packets() > 1900, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
    }

    #[test]
    fn engine_reuse_resets_state() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let a = engine.run(&wl, 5_000_000, 0);
        let b = engine.run(&wl, 5_000_000, 0);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.stages[0].queue_drops, b.stages[0].queue_drops);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![forwarding_stage(2)]);
            let wl = WorkloadSpec::cbr(5e6, 200, 16, 9);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (r.sink.delivered_packets(), r.sink.latency().quantile_ns(0.999), r.stages[0].served)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_memory_is_bounded_by_live_events_not_total() {
        // A long, busy run schedules hundreds of thousands of events;
        // the slab's high-water mark must stay proportional to what is
        // simultaneously in flight (a handful of service completions
        // plus queued forwards), not to the run length.
        let mut engine = Engine::new(vec![
            StageConfig::new("front", 2, 128, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", 1, 128, Box::new(LineRate::new("10G", 10e9))),
        ]);
        let wl = WorkloadSpec::cbr(8e6, 200, 16, 7);
        let r = engine.run(&wl, 50_000_000, 0);
        assert!(r.total_events > 400_000, "total events {}", r.total_events);
        assert!(
            r.peak_live_events < 64,
            "peak live events {} should be O(in-flight), total {}",
            r.peak_live_events,
            r.total_events
        );
    }

    #[test]
    fn wheel_and_heap_schedulers_produce_identical_results() {
        // The core A/B: the timing wheel must be observationally
        // indistinguishable from the reference heap — full RunResult
        // equality (histogram counts included) across pipeline shapes.
        type Build = (&'static str, fn() -> Engine, WorkloadSpec);
        let builds: Vec<Build> = vec![
            ("forward-2stage", || Engine::new(vec![forwarding_stage(2)]), {
                WorkloadSpec::cbr(5e6, 200, 16, 9)
            }),
            (
                "overloaded",
                || {
                    Engine::new(vec![
                        StageConfig::new(
                            "front",
                            1,
                            32,
                            Box::new(NfService::host_core(NfChain::empty())),
                        ),
                        StageConfig::new("back", 1, 8, Box::new(LineRate::new("1G", 1e9))),
                    ])
                },
                WorkloadSpec::cbr(15e6, 700, 8, 1),
            ),
            (
                "batch-gpu",
                || Engine::new(vec![batch_stage(16, 30_000, 5_000)]),
                WorkloadSpec::cbr(2e6, 200, 8, 3),
            ),
        ];
        for (name, build, wl) in builds {
            let a = build()
                .with_scheduler(crate::sched::SchedulerKind::Wheel)
                .run(&wl, 5_000_000, 500_000);
            let b = build()
                .with_scheduler(crate::sched::SchedulerKind::Heap)
                .run(&wl, 5_000_000, 500_000);
            assert_eq!(a, b, "scheduler A/B mismatch on {name}");
        }
    }

    #[test]
    fn scratch_buffers_retain_capacity_across_runs() {
        // The batch-result pool and the bucket buffer persist on the
        // engine: a second run must start with the first run's
        // capacity instead of reallocating from scratch.
        let mut engine = Engine::new(vec![batch_stage(16, 30_000, 5_000)]);
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let _ = engine.run(&wl, 5_000_000, 500_000);
        let pooled = engine.batch_pool.len();
        let pooled_cap: usize = engine.batch_pool.iter().map(Vec::capacity).sum();
        let bucket_cap = engine.bucket_buf.capacity();
        assert!(pooled > 0, "batch pool should retain drained buffers");
        assert!(pooled_cap >= 16, "pooled buffers should keep batch-sized capacity");
        assert!(bucket_cap > 0, "bucket buffer should retain capacity");
        let a = engine.run(&wl, 5_000_000, 500_000);
        assert!(
            engine.batch_pool.iter().map(Vec::capacity).sum::<usize>() >= pooled_cap,
            "second run must not shrink the pooled capacity"
        );
        assert!(engine.bucket_buf.capacity() >= bucket_cap);
        // Reuse must not perturb results.
        let b = Engine::new(vec![batch_stage(16, 30_000, 5_000)]).run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let wl = WorkloadSpec::cbr(5e6, 200, 16, 9);
        let a = Engine::new(vec![forwarding_stage(2)]).run(&wl, 5_000_000, 500_000);
        let b = Engine::new(vec![forwarding_stage(2)])
            .with_fault_plan(crate::fault::FaultPlan::none())
            .run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b);
    }

    fn severe_plan(stages: usize) -> crate::fault::FaultPlan {
        crate::fault::FaultPlan::derive(
            1234,
            &crate::fault::FaultSpec::at_severity(1.0),
            stages,
            5_000_000,
        )
    }

    #[test]
    fn faulted_runs_conserve_packets() {
        // Outage-heavy spec so the 5 ms run reliably sees down windows.
        let spec = crate::fault::FaultSpec {
            drop_prob: 0.05,
            corrupt_prob: 0.0,
            slowdown: None,
            outage: Some(crate::fault::OutageSpec { mtbf_ns: 800_000, mttr_ns: 400_000 }),
        };
        let plan = crate::fault::FaultPlan::derive(1234, &spec, 2, 5_000_000);
        let mk = || {
            Engine::new(vec![
                StageConfig::new("front", 2, 64, Box::new(NfService::host_core(NfChain::empty()))),
                StageConfig::new("back", 1, 64, Box::new(LineRate::new("10G", 10e9))),
            ])
            .with_fault_plan(plan.clone())
        };
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let r = mk().run(&wl, 5_000_000, 0);
        assert!(r.injected_drops > 0, "severity-1 plan must drop at the injection point");
        let total_fault_drops: u64 = r.stages.iter().map(|s| s.fault_drops).sum();
        assert!(total_fault_drops > 0, "outage windows must drop arrivals");
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks packets: {s:?}", s.name);
        }
        let accounted = r.sink.delivered_packets()
            + r.stages
                .iter()
                .map(|s| s.queue_drops + s.policy_drops + s.fault_drops + s.in_flight)
                .sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn faulted_runs_replay_from_seed_and_plan_alone() {
        let mk = || Engine::new(vec![forwarding_stage(2)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let a = mk().run(&wl, 5_000_000, 500_000);
        let b = mk().run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b, "(seed, FaultPlan) must fully determine the run");
    }

    #[test]
    fn faulted_wheel_and_heap_runs_are_identical() {
        let mk = |kind| {
            Engine::new(vec![
                StageConfig::new("front", 2, 64, Box::new(NfService::host_core(NfChain::empty()))),
                StageConfig::new("back", 1, 64, Box::new(LineRate::new("10G", 10e9))),
            ])
            .with_fault_plan(severe_plan(2))
            .with_scheduler(kind)
        };
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let a = mk(crate::sched::SchedulerKind::Wheel).run(&wl, 5_000_000, 500_000);
        let b = mk(crate::sched::SchedulerKind::Heap).run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b, "fault events must not break the scheduler A/B");
    }

    #[test]
    fn faulted_batch_stage_conserves_and_replays() {
        let mk =
            || Engine::new(vec![batch_stage(16, 30_000, 5_000)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let a = mk().run(&wl, 5_000_000, 0);
        let b = mk().run(&wl, 5_000_000, 0);
        assert_eq!(a, b);
        assert!(a.stages[0].conserves_packets(), "{:?}", a.stages[0]);
    }

    #[test]
    fn engine_reuse_keeps_the_fault_plan() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let a = engine.run(&wl, 5_000_000, 0);
        let b = engine.run(&wl, 5_000_000, 0);
        assert_eq!(a, b, "a reused engine must re-apply the same plan");
        assert!(a.injected_drops > 0);
    }

    #[test]
    fn slowdown_windows_degrade_throughput() {
        // Pure slowdown (no loss, no outage): the run must deliver
        // strictly less than the fault-free run at a load near capacity.
        let spec = crate::fault::FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            slowdown: Some(crate::fault::SlowdownSpec {
                mean_period_ns: 400_000,
                duration_ns: 300_000,
                factor: 8.0,
            }),
            outage: None,
        };
        let plan = crate::fault::FaultPlan::derive(7, &spec, 1, 10_000_000);
        assert!(!plan.events.is_empty());
        let wl = WorkloadSpec::cbr(8e6, 64, 8, 5);
        let clean = Engine::new(vec![forwarding_stage(1)]).run(&wl, 10_000_000, 1_000_000);
        let slowed = Engine::new(vec![forwarding_stage(1)])
            .with_fault_plan(plan)
            .run(&wl, 10_000_000, 1_000_000);
        assert!(
            slowed.sink.delivered_packets() < clean.sink.delivered_packets() * 95 / 100,
            "slowdown should cost >5% of deliveries: clean {} vs slowed {}",
            clean.sink.delivered_packets(),
            slowed.sink.delivered_packets()
        );
        assert_eq!(slowed.injected_drops, 0);
    }

    #[test]
    fn corruption_with_fail_closed_chain_raises_policy_drops() {
        use crate::nf::firewall::{Action, Firewall};
        let mk = |corrupt_prob: f64| {
            let fw =
                Firewall::new(vec![crate::nf::firewall::Rule::any(Action::Allow)], Action::Allow);
            let plan = crate::fault::FaultPlan {
                seed: 5,
                drop_prob: 0.0,
                corrupt_prob,
                slow_factor: 1.0,
                events: Vec::new(),
            };
            Engine::new(vec![StageConfig::new(
                "fw",
                1,
                256,
                Box::new(NfService::host_core(NfChain::new(vec![Box::new(fw)]))),
            )])
            .with_fault_plan(plan)
        };
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let clean = mk(0.0).run(&wl, 10_000_000, 0);
        assert_eq!(clean.sink.policy_drops(), 0);
        assert_eq!(clean.corrupted, 0);
        let noisy = mk(0.2).run(&wl, 10_000_000, 0);
        assert!(noisy.corrupted > 0);
        assert_eq!(
            noisy.sink.policy_drops(),
            noisy.corrupted,
            "every corrupted packet must be dropped by the fail-closed firewall"
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_must_precede_end() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(1000.0, 64, 1, 1);
        let _ = engine.run(&wl, 1000, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = Engine::new(vec![]);
    }
}
