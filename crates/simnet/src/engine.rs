//! The discrete-event simulation engine.
//!
//! A deployment is a pipeline of queueing stages. Each stage has a
//! bounded FIFO, `servers` parallel executors (cores, NIC cores, or a
//! pipeline slot), and a [`ServiceModel`] that decides each packet's
//! verdict and service time. Packets flow source → stage 0 → stage 1 →
//! … → sink; stage queues drop on overflow (overload loss), NF verdicts
//! drop by policy (counted separately — a firewall denying a packet did
//! its job).
//!
//! Time is `u64` nanoseconds. Events are totally ordered by
//! `(time, sequence)` so runs are exactly reproducible.

use crate::packet::Packet;
use crate::nf::NfVerdict;
use crate::service::ServiceModel;
use crate::stats::{DropReason, SinkStats};
use apples_workload::WorkloadSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Where a stage's forwarded packets go next.
pub enum NextHop {
    /// The next stage in configuration order, or the sink after the
    /// last stage (the default linear pipeline).
    Linear,
    /// A fixed stage index.
    Stage(usize),
    /// Straight to the sink.
    Sink,
    /// Per-packet steering (e.g. RSS: hash the flow to one of several
    /// core stages). Returning `None` sends the packet to the sink.
    Steer(Box<dyn Fn(&Packet) -> Option<usize> + Send>),
}

/// Batch-processing policy for vector accelerators (GPUs, wide SIMD
/// engines): packets accumulate until `max_batch` are waiting or the
/// head of the buffer has waited `timeout_ns`, then a server processes
/// the whole batch in one `kernel_overhead_ns + per-packet` invocation.
///
/// Batching trades latency (packets wait for the batch to form) for
/// throughput (the kernel overhead amortizes) — the defining shape of
/// GPU packet processing, and a natural §4.3 subject: no amount of
/// batching hardware buys back the formation delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum packets per batch.
    pub max_batch: usize,
    /// Flush a partial batch after the buffer has waited this long.
    pub timeout_ns: u64,
    /// Fixed per-invocation cost (kernel launch, DMA setup).
    pub kernel_overhead_ns: u64,
}

impl BatchPolicy {
    /// Creates a policy; panics on degenerate parameters.
    pub fn new(max_batch: usize, timeout_ns: u64, kernel_overhead_ns: u64) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        assert!(timeout_ns > 0, "timeout must be positive");
        BatchPolicy { max_batch, timeout_ns, kernel_overhead_ns }
    }
}

/// Configuration for one pipeline stage.
pub struct StageConfig {
    /// Stage name for reports.
    pub name: &'static str,
    /// Parallel servers (cores).
    pub servers: u32,
    /// Queue capacity in packets (excluding those in service).
    pub queue_capacity: usize,
    /// The service model.
    pub service: Box<dyn ServiceModel>,
    /// Forwarding target for packets this stage passes.
    pub next: NextHop,
    /// Batch-processing policy; `None` = serve packets one at a time.
    pub batch: Option<BatchPolicy>,
}

impl StageConfig {
    /// Creates a stage that forwards linearly (to the next stage, or the
    /// sink if it is the last one).
    pub fn new(
        name: &'static str,
        servers: u32,
        queue_capacity: usize,
        service: Box<dyn ServiceModel>,
    ) -> Self {
        StageConfig { name, servers, queue_capacity, service, next: NextHop::Linear, batch: None }
    }

    /// Overrides the forwarding target.
    pub fn with_next(mut self, next: NextHop) -> Self {
        self.next = next;
        self
    }

    /// Enables batch processing on this stage.
    pub fn with_batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = Some(policy);
        self
    }
}

struct StageState {
    cfg: StageConfig,
    queue: VecDeque<Packet>,
    busy: u32,
    busy_ns: u128,
    arrivals: u64,
    served: u64,
    queue_drops: u64,
    policy_drops: u64,
    /// Packets currently inside servers (equals `busy` for per-packet
    /// stages; a multiple for batch stages).
    in_service_pkts: u64,
    /// Invalidates stale batch timers.
    batch_epoch: u64,
    /// A batch timeout fired while all servers were busy; flush a
    /// partial batch as soon as one frees.
    batch_flush_pending: bool,
}

/// Per-stage outcome of a run, for utilization-driven power accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: &'static str,
    /// Fraction of server-time spent busy, `[0, 1]`.
    pub utilization: f64,
    /// Packets that arrived at this stage.
    pub arrivals: u64,
    /// Packets that completed service here.
    pub served: u64,
    /// Packets dropped at this stage's queue.
    pub queue_drops: u64,
    /// Packets dropped here by NF policy.
    pub policy_drops: u64,
    /// Packets still queued or in service when the run ended.
    pub in_flight: u64,
}

impl StageReport {
    /// Packet-conservation check: every arrival is served, dropped at
    /// the queue, or still in flight at cutoff.
    pub fn conserves_packets(&self) -> bool {
        self.arrivals == self.served + self.queue_drops + self.in_flight
    }
}

/// Optional payload synthesis for payload-inspecting pipelines.
pub struct PayloadConfig {
    /// Probability a packet carries one of the needles.
    pub attack_prob: f64,
    /// Patterns to embed (the DPI experiments' ground truth).
    pub needles: Vec<Vec<u8>>,
}

#[derive(Debug)]
enum EventKind {
    Arrive { stage: usize, pkt: Packet },
    Done { stage: usize, pkt: Packet, verdict: NfVerdict },
    BatchTimeout { stage: usize, epoch: u64 },
    BatchDone { stage: usize, results: Vec<(Packet, NfVerdict)> },
}

/// The simulator.
pub struct Engine {
    stages: Vec<StageState>,
    payload: Option<PayloadConfig>,
}

/// The raw result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Sink-side statistics over the measurement window.
    pub sink: SinkStats,
    /// Per-stage reports.
    pub stages: Vec<StageReport>,
    /// Measurement window length, ns.
    pub window_ns: u64,
    /// Packets injected into stage 0 over the whole run.
    pub injected: u64,
}

type EventQueue = BinaryHeap<Reverse<(u64, u64, usize)>>;

fn push_event(events: &mut EventQueue, payloads: &mut Vec<EventKind>, seq: &mut u64, t: u64, kind: EventKind) {
    payloads.push(kind);
    events.push(Reverse((t, *seq, payloads.len() - 1)));
    *seq += 1;
}

/// Starts as many batches as servers and buffered packets allow.
/// `force_partial` flushes a below-max batch (the formation timer fired).
fn try_flush_batches(
    st: &mut StageState,
    stage: usize,
    t: u64,
    force_partial: bool,
    events: &mut EventQueue,
    payloads: &mut Vec<EventKind>,
    seq: &mut u64,
) {
    let Some(policy) = st.cfg.batch else { return };
    let force = force_partial || st.batch_flush_pending;
    while st.busy < st.cfg.servers
        && (st.queue.len() >= policy.max_batch || (force && !st.queue.is_empty()))
    {
        let n = st.queue.len().min(policy.max_batch);
        let mut total_ns = policy.kernel_overhead_ns;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let pkt = st.queue.pop_front().expect("checked non-empty");
            let (verdict, svc_ns) = st.cfg.service.serve(&pkt);
            total_ns += svc_ns;
            results.push((pkt, verdict));
        }
        st.busy += 1;
        st.in_service_pkts += n as u64;
        st.busy_ns += u128::from(total_ns);
        st.batch_epoch += 1;
        push_event(events, payloads, seq, t + total_ns, EventKind::BatchDone { stage, results });
    }
    st.batch_flush_pending = force && !st.queue.is_empty() && st.busy >= st.cfg.servers;
    // Re-arm the formation timer for whatever still waits (measured from
    // now — a slight overestimate of the head packet's wait, documented
    // in BatchPolicy).
    if !st.queue.is_empty() && !st.batch_flush_pending {
        push_event(
            events,
            payloads,
            seq,
            t + policy.timeout_ns,
            EventKind::BatchTimeout { stage, epoch: st.batch_epoch },
        );
    }
}

impl Engine {
    /// Builds an engine from stage configurations (source feeds stage 0).
    pub fn new(stages: Vec<StageConfig>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        for (i, s) in stages.iter().enumerate() {
            assert!(s.servers > 0, "stage '{}' needs at least one server", s.name);
            if let NextHop::Stage(j) = s.next {
                assert!(j < stages.len(), "stage '{}' forwards to nonexistent stage {j}", s.name);
                assert_ne!(i, j, "stage '{}' must not forward to itself", s.name);
            }
        }
        Engine {
            stages: stages
                .into_iter()
                .map(|cfg| StageState {
                    cfg,
                    queue: VecDeque::new(),
                    busy: 0,
                    busy_ns: 0,
                    arrivals: 0,
                    served: 0,
                    queue_drops: 0,
                    policy_drops: 0,
                    in_service_pkts: 0,
                    batch_epoch: 0,
                    batch_flush_pending: false,
                })
                .collect(),
            payload: None,
        }
    }

    /// Routes a packet that finished service at `stage` according to its
    /// verdict: policy drop, next stage, or sink delivery.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        stage: usize,
        pkt: Packet,
        verdict: NfVerdict,
        t: u64,
        warmup_ns: u64,
        sink: &mut SinkStats,
        events: &mut EventQueue,
        payloads: &mut Vec<EventKind>,
        seq: &mut u64,
    ) {
        match verdict {
            NfVerdict::Drop => {
                if t >= warmup_ns {
                    sink.drop(DropReason::Policy);
                }
            }
            NfVerdict::Forward => {
                let dest = match &self.stages[stage].cfg.next {
                    NextHop::Linear => {
                        if stage + 1 < self.stages.len() {
                            Some(stage + 1)
                        } else {
                            None
                        }
                    }
                    NextHop::Stage(i) => Some(*i),
                    NextHop::Sink => None,
                    NextHop::Steer(f) => f(&pkt),
                };
                match dest {
                    Some(next_stage) => {
                        assert!(
                            next_stage < self.stages.len(),
                            "stage '{}' steered to nonexistent stage {next_stage}",
                            self.stages[stage].cfg.name
                        );
                        push_event(events, payloads, seq, t, EventKind::Arrive { stage: next_stage, pkt });
                    }
                    None => {
                        if t >= warmup_ns && pkt.t_arrival_ns >= warmup_ns {
                            sink.deliver(pkt.flow, pkt.wire_bits(), t - pkt.t_arrival_ns);
                        }
                    }
                }
            }
        }
    }

    /// Enables payload synthesis (needed when the pipeline contains DPI).
    pub fn with_payloads(mut self, cfg: PayloadConfig) -> Self {
        self.payload = Some(cfg);
        self
    }

    /// Runs `workload` for `duration_ns` of simulated time, measuring
    /// from `warmup_ns` on. Deliveries and drops before warmup are not
    /// counted; events after `duration_ns` are not processed.
    pub fn run(&mut self, workload: &WorkloadSpec, duration_ns: u64, warmup_ns: u64) -> RunResult {
        let stream = workload.stream();
        self.run_stubs(stream, workload.flows, workload.seed, duration_ns, warmup_ns)
    }

    /// Replays a recorded or imported [`apples_workload::Trace`] instead
    /// of a generator.
    /// Payload synthesis (when enabled) derives from `payload_seed`.
    pub fn run_trace(
        &mut self,
        trace: &apples_workload::Trace,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        self.run_stubs(
            trace.packets().iter().copied(),
            trace.flows(),
            payload_seed,
            duration_ns,
            warmup_ns,
        )
    }

    fn run_stubs(
        &mut self,
        stubs: impl Iterator<Item = apples_workload::PacketStub>,
        flows: usize,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        assert!(warmup_ns < duration_ns, "warmup must precede the end of the run");
        let window_ns = duration_ns - warmup_ns;
        let mut sink = SinkStats::new(flows);

        // Reset per-run state so an Engine can be reused safely.
        for st in &mut self.stages {
            st.queue.clear();
            st.busy = 0;
            st.busy_ns = 0;
            st.arrivals = 0;
            st.served = 0;
            st.queue_drops = 0;
            st.policy_drops = 0;
            st.in_service_pkts = 0;
            st.batch_epoch = 0;
            st.batch_flush_pending = false;
        }

        let mut events: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut payloads: Vec<EventKind> = Vec::new(); // slab keyed by seq
        let mut seq = 0u64;

        // Inject all arrivals up front (they are independent of service).
        let needle_refs: Vec<Vec<u8>> =
            self.payload.as_ref().map(|p| p.needles.clone()).unwrap_or_default();
        for stub in stubs {
            if stub.t_ns >= duration_ns {
                break;
            }
            let mut pkt =
                Packet::new(seq, stub.flow, stub.tuple, stub.size_bytes, stub.t_ns);
            if let Some(p) = &self.payload {
                let refs: Vec<&[u8]> = needle_refs.iter().map(|n| n.as_slice()).collect();
                let len = (stub.size_bytes as usize).saturating_sub(54); // L2-L4 headers
                pkt = pkt.with_payload(len, payload_seed, p.attack_prob, &refs);
            }
            push_event(&mut events, &mut payloads, &mut seq, stub.t_ns, EventKind::Arrive { stage: 0, pkt });
        }

        while let Some(Reverse((t, _, idx))) = events.pop() {
            if t > duration_ns {
                break;
            }
            // Take the event out of the slab (replace with a tombstone).
            let kind = std::mem::replace(
                &mut payloads[idx],
                EventKind::Arrive {
                    stage: usize::MAX,
                    pkt: Packet::new(0, 0, apples_workload::FiveTuple {
                        src_ip: 0, dst_ip: 0, src_port: 0, dst_port: 0, proto: 0,
                    }, 0, 0),
                },
            );
            match kind {
                EventKind::Arrive { stage, pkt } => {
                    let st = &mut self.stages[stage];
                    st.arrivals += 1;
                    if st.cfg.batch.is_some() {
                        if st.queue.len() < st.cfg.queue_capacity {
                            let was_empty = st.queue.is_empty();
                            st.queue.push_back(pkt);
                            if was_empty {
                                let timeout = st.cfg.batch.expect("checked").timeout_ns;
                                let epoch = st.batch_epoch;
                                push_event(
                                    &mut events,
                                    &mut payloads,
                                    &mut seq,
                                    t + timeout,
                                    EventKind::BatchTimeout { stage, epoch },
                                );
                            }
                            try_flush_batches(
                                st, stage, t, false, &mut events, &mut payloads, &mut seq,
                            );
                        } else {
                            st.queue_drops += 1;
                            if t >= warmup_ns {
                                sink.drop(DropReason::QueueFull);
                            }
                        }
                    } else if st.busy < st.cfg.servers {
                        st.busy += 1;
                        st.in_service_pkts += 1;
                        let (verdict, svc_ns) = st.cfg.service.serve(&pkt);
                        st.busy_ns += u128::from(svc_ns);
                        push_event(
                            &mut events,
                            &mut payloads,
                            &mut seq,
                            t + svc_ns,
                            EventKind::Done { stage, pkt, verdict },
                        );
                    } else if st.queue.len() < st.cfg.queue_capacity {
                        st.queue.push_back(pkt);
                    } else {
                        st.queue_drops += 1;
                        if t >= warmup_ns {
                            sink.drop(DropReason::QueueFull);
                        }
                    }
                }
                EventKind::BatchTimeout { stage, epoch } => {
                    let st = &mut self.stages[stage];
                    if st.batch_epoch == epoch && !st.queue.is_empty() {
                        st.batch_flush_pending = true;
                        try_flush_batches(st, stage, t, true, &mut events, &mut payloads, &mut seq);
                    }
                }
                EventKind::BatchDone { stage, results } => {
                    {
                        let st = &mut self.stages[stage];
                        st.busy -= 1;
                        st.in_service_pkts -= results.len() as u64;
                        st.served += results.len() as u64;
                        st.policy_drops +=
                            results.iter().filter(|(_, v)| *v == NfVerdict::Drop).count() as u64;
                        try_flush_batches(st, stage, t, false, &mut events, &mut payloads, &mut seq);
                    }
                    for (pkt, verdict) in results {
                        self.settle(
                            stage, pkt, verdict, t, warmup_ns, &mut sink, &mut events,
                            &mut payloads, &mut seq,
                        );
                    }
                }
                EventKind::Done { stage, pkt, verdict } => {
                    {
                        let st = &mut self.stages[stage];
                        st.busy -= 1;
                        st.in_service_pkts -= 1;
                        st.served += 1;
                        if verdict == NfVerdict::Drop {
                            st.policy_drops += 1;
                        }
                        // Pull the next queued packet into service.
                        if let Some(next) = st.queue.pop_front() {
                            st.busy += 1;
                            st.in_service_pkts += 1;
                            let (v, svc_ns) = st.cfg.service.serve(&next);
                            st.busy_ns += u128::from(svc_ns);
                            push_event(
                                &mut events,
                                &mut payloads,
                                &mut seq,
                                t + svc_ns,
                                EventKind::Done { stage, pkt: next, verdict: v },
                            );
                        }
                    }
                    self.settle(
                        stage, pkt, verdict, t, warmup_ns, &mut sink, &mut events, &mut payloads,
                        &mut seq,
                    );
                }
            }
        }

        let stages = self
            .stages
            .iter()
            .map(|s| StageReport {
                name: s.cfg.name,
                utilization: (s.busy_ns as f64
                    / (duration_ns as f64 * f64::from(s.cfg.servers)))
                .min(1.0),
                arrivals: s.arrivals,
                served: s.served,
                queue_drops: s.queue_drops,
                policy_drops: s.policy_drops,
                in_flight: s.queue.len() as u64 + s.in_service_pkts,
            })
            .collect();

        let injected = self.stages[0].arrivals;
        RunResult { sink, stages, window_ns, injected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{Action, Firewall};
    use crate::nf::NfChain;
    use crate::service::{LineRate, NfService};

    fn forwarding_stage(servers: u32) -> StageConfig {
        StageConfig::new("core", servers, 256, Box::new(NfService::host_core(NfChain::empty())))
    }

    #[test]
    fn underloaded_pipeline_delivers_everything() {
        // 100 kpps of 64 B on one core (100 ns/packet service): ~1% load.
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert_eq!(r.sink.queue_drops(), 0);
        let expected = 100_000.0 * 0.05; // 5000 packets in 50 ms
        let got = r.sink.delivered_packets() as f64;
        assert!((got - expected).abs() / expected < 0.01, "delivered {got}");
        assert!(r.stages[0].utilization < 0.05);
    }

    #[test]
    fn overloaded_stage_saturates_and_drops() {
        // Service ~100 ns => capacity ~10 Mpps; offer 20 Mpps.
        let mut engine = Engine::new(vec![StageConfig::new("core", 1, 64, Box::new(NfService::host_core(NfChain::empty())))]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 1_000_000);
        assert!(r.sink.queue_drops() > 0, "expected overload drops");
        assert!(r.sink.loss_rate() > 0.3, "loss {}", r.sink.loss_rate());
        assert!(r.stages[0].utilization > 0.95, "util {}", r.stages[0].utilization);
        // Delivered rate ~ capacity, not offered rate.
        let pps = r.sink.throughput_pps(r.window_ns);
        assert!(pps < 12e6, "delivered {pps} pps");
    }

    #[test]
    fn more_servers_raise_capacity() {
        let run_with = |servers: u32| {
            let mut engine = Engine::new(vec![forwarding_stage(servers)]);
            // Offer well above even 4 cores' capacity (~40 Mpps).
            let wl = WorkloadSpec::cbr(60e6, 64, 4, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(four > 3.0 * one, "1 core {one} pps, 4 cores {four} pps");
    }

    #[test]
    fn policy_drops_are_not_loss() {
        // A deny-all firewall: every packet dropped by policy, none lost.
        let fw = Firewall::new(vec![], Action::Deny);
        let mut engine = Engine::new(vec![StageConfig::new("fw", 1, 256, Box::new(NfService::host_core(NfChain::new(vec![Box::new(fw)]))))]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 0);
        assert_eq!(r.sink.delivered_packets(), 0);
        assert_eq!(r.sink.queue_drops(), 0);
        assert!(r.sink.policy_drops() > 900);
        assert_eq!(r.sink.loss_rate(), 0.0);
        assert_eq!(r.stages[0].policy_drops, r.sink.policy_drops());
    }

    #[test]
    fn latency_includes_queueing_under_load() {
        let lat_at = |rate: f64| {
            let mut engine = Engine::new(vec![forwarding_stage(1)]);
            let wl = WorkloadSpec {
                sizes: apples_workload::PacketSizeDist::Fixed(64),
                arrivals: apples_workload::ArrivalProcess::Poisson { rate_pps: rate },
                flows: 4,
                zipf_s: 0.0,
                seed: 3,
            };
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let light = lat_at(1e6); // ~10% load
        let heavy = lat_at(9e6); // ~90% load
        assert!(heavy > 2 * light, "p99 light {light} ns vs heavy {heavy} ns");
    }

    #[test]
    fn multi_stage_pipelines_accumulate_latency() {
        let mk = || StageConfig::new("link", 1, 1024, Box::new(LineRate::new("10G", 10e9)));
        let mut one = Engine::new(vec![mk()]);
        let mut three = Engine::new(vec![mk(), mk(), mk()]);
        let wl = WorkloadSpec::cbr(10_000.0, 1500, 2, 1);
        let l1 = one.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        let l3 = three.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        assert!((l3 / l1 - 3.0).abs() < 0.1, "l1 {l1} l3 {l3}");
    }

    fn batch_stage(max_batch: usize, timeout_ns: u64, kernel_ns: u64) -> StageConfig {
        StageConfig::new(
            "gpu",
            1,
            4096,
            // 30 ns marginal per packet once the kernel is launched.
            Box::new(crate::service::FixedTime::new("gpu-kernel", NfChain::empty(), 30)),
        )
        .with_batching(BatchPolicy::new(max_batch, timeout_ns, kernel_ns))
    }

    #[test]
    fn full_batches_flush_immediately() {
        // 8 packets arrive back-to-back; batch size 4 -> two batches,
        // each kernel 10 us + 4*30 ns.
        let mut engine = Engine::new(vec![batch_stage(4, 1_000_000, 10_000)]);
        let wl = WorkloadSpec::cbr(100e6, 64, 4, 1); // 10 ns spacing
        let r = engine.run(&wl, 60_000, 0);
        assert!(r.sink.delivered_packets() >= 16, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
        // Latency of the first delivered packets ~ one kernel, far below
        // the 1 ms timeout: the size trigger fired, not the timer.
        assert!(r.sink.latency().quantile_ns(0.01) < 100_000);
    }

    #[test]
    fn lone_packet_waits_for_the_timeout() {
        let mut engine = Engine::new(vec![batch_stage(64, 50_000, 10_000)]);
        // One packet per 10 ms: every batch is a timeout flush of 1.
        let wl = WorkloadSpec::cbr(100.0, 64, 1, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert!(r.sink.delivered_packets() >= 4);
        let lat = r.sink.latency().quantile_ns(0.5);
        // ~ timeout (50 us) + kernel (10 us) + marginal, within the
        // histogram's ~1.6% bucket error.
        assert!(lat >= 58_000 && lat < 75_000, "median latency {lat} ns");
    }

    #[test]
    fn batching_amortizes_kernel_overhead() {
        // Same kernel cost; batch 1 vs batch 256 at a load the former
        // cannot carry.
        let tput = |max_batch: usize| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, 100_000, 10_000)]);
            let wl = WorkloadSpec::cbr(1e6, 64, 16, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let unbatched = tput(1); // 10.03 us per packet -> ~0.1 Mpps
        let batched = tput(256); // ~17.7 us per 256 packets -> >> 1 Mpps
        assert!(unbatched < 0.15e6, "unbatched {unbatched}");
        assert!(batched > 0.9e6, "batched {batched}");
    }

    #[test]
    fn batching_trades_latency_for_throughput() {
        // At a light load both configurations keep up, but the large
        // batch makes packets wait for the formation timeout.
        let p99 = |max_batch: usize, timeout: u64| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, timeout, 10_000)]);
            let wl = WorkloadSpec::cbr(10_000.0, 64, 4, 1);
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let small = p99(1, 200_000);
        let large = p99(64, 200_000);
        assert!(
            large > small + 150_000,
            "large-batch p99 {large} should exceed small-batch {small} by ~the timeout"
        );
    }

    #[test]
    fn batch_stage_conserves_packets_under_overload() {
        let mut engine = Engine::new(vec![batch_stage(32, 10_000, 50_000)]);
        let wl = WorkloadSpec::cbr(5e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.stages[0].queue_drops > 0, "overload expected");
        assert!(r.stages[0].conserves_packets(), "{:?}", r.stages[0]);
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn batch_runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![batch_stage(16, 30_000, 5_000)]);
            let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (r.sink.delivered_packets(), r.sink.latency().quantile_ns(0.99))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn packets_are_conserved_at_every_stage() {
        // Overloaded two-stage pipeline: drops, queues, and in-flight
        // packets must all be accounted for.
        let mut engine = Engine::new(vec![
            StageConfig::new("front", 1, 32, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", 1, 8, Box::new(LineRate::new("1G", 1e9))),
        ]);
        let wl = WorkloadSpec::cbr(15e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.injected > 0);
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks packets: {s:?}", s.name);
        }
        // Cross-stage conservation: what the front forwards equals what
        // the back receives.
        let front = &r.stages[0];
        let back = &r.stages[1];
        assert_eq!(front.served - front.policy_drops, back.arrivals);
        // Global: delivered + drops + in-flight across stages == injected.
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn trace_replay_matches_the_generator_bit_for_bit() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(2e6, 700, 16, 9);
        let trace = Trace::record(&wl, 5_000_000);

        let mut live = Engine::new(vec![forwarding_stage(2)]);
        let a = live.run(&wl, 5_000_000, 500_000);

        let mut replay = Engine::new(vec![forwarding_stage(2)]);
        let b = replay.run_trace(&trace, wl.seed, 5_000_000, 500_000);

        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.sink.latency().quantile_ns(0.99), b.sink.latency().quantile_ns(0.99));
        assert_eq!(a.stages[0].served, b.stages[0].served);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn csv_imported_trace_drives_the_engine() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(1e6, 400, 4, 3);
        let csv = Trace::record(&wl, 2_000_000).to_csv();
        let imported = Trace::from_csv(&csv).expect("parses");
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let r = engine.run_trace(&imported, 0, 2_000_000, 0);
        assert!(r.sink.delivered_packets() > 1900, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
    }

    #[test]
    fn engine_reuse_resets_state() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let a = engine.run(&wl, 5_000_000, 0);
        let b = engine.run(&wl, 5_000_000, 0);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.stages[0].queue_drops, b.stages[0].queue_drops);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![forwarding_stage(2)]);
            let wl = WorkloadSpec::cbr(5e6, 200, 16, 9);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (
                r.sink.delivered_packets(),
                r.sink.latency().quantile_ns(0.999),
                r.stages[0].served,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_must_precede_end() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(1000.0, 64, 1, 1);
        let _ = engine.run(&wl, 1000, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = Engine::new(vec![]);
    }
}
