//! The discrete-event simulation engine.
//!
//! A deployment is a pipeline of queueing stages. Each stage has a
//! bounded FIFO, `servers` parallel executors (cores, NIC cores, or a
//! pipeline slot), and a [`ServiceModel`] that decides each packet's
//! verdict and service time. Packets flow source → stage 0 → stage 1 →
//! … → sink; stage queues drop on overflow (overload loss), NF verdicts
//! drop by policy (counted separately — a firewall denying a packet did
//! its job).
//!
//! Time is `u64` nanoseconds. Events are totally ordered by
//! `(time, sequence)` so runs are exactly reproducible.
//!
//! ## Memory discipline and the SoA event layout
//!
//! The hot path is allocation-free in steady state. Events are split
//! struct-of-arrays (DESIGN.md §10): the *hot* half is the scheduler
//! entry itself — `(t_ns, seq, tag)`, 24 bytes, where the tag packs the
//! event kind, the stage, and a cold-payload index — so wheel buckets
//! are cache-line-dense. The *cold* half (the packet in service, its
//! verdict, batch result buffers) lives in flat per-stage pools and
//! engine-level slabs touched only at dispatch, reclaimed through free
//! lists the moment an event fires, so resident memory is O(live
//! events), not O(total events). Timer and fault events have no cold
//! half at all: their whole payload fits in the tag.
//!
//! Zero-latency forwards (a stage settling a packet into the next stage
//! at the same timestamp) are *fused*: they ride a FIFO straight back
//! into the dispatch walk instead of re-enqueueing through the wheel,
//! while still minting seqs so the processing order — and therefore
//! every report and trace — is bit-identical to the unfused reference
//! path ([`Engine::with_fusion`]).
//!
//! Workload arrivals are injected lazily from the stub iterator
//! (arrival times are monotone), so a week-long simulated run holds one
//! pending arrival at a time instead of the whole packet sequence.
//! Batch result buffers are pooled and reused across kernel
//! invocations; all pools persist across runs of a reused engine.

use crate::fault::{FaultAction, FaultPlan};
use crate::nf::NfVerdict;
use crate::packet::Packet;
use crate::sanitizer::OrderSanitizer;
use crate::sched::{EventScheduler, SchedulerKind};
use crate::service::ServiceModel;
use crate::stats::{DropReason, SinkStats};
use apples_obs::span::SpanToken;
use apples_obs::{Phase, RunObserver, TraceDrop, TraceFault};
use apples_workload::WorkloadSpec;
use std::collections::VecDeque;

/// A per-packet steering function: maps a packet to the next stage
/// index, or `None` for the sink.
pub type SteerFn = Box<dyn Fn(&Packet) -> Option<usize> + Send>;

/// Where a stage's forwarded packets go next.
pub enum NextHop {
    /// The next stage in configuration order, or the sink after the
    /// last stage (the default linear pipeline).
    Linear,
    /// A fixed stage index.
    Stage(usize),
    /// Straight to the sink.
    Sink,
    /// Per-packet steering (e.g. RSS: hash the flow to one of several
    /// core stages). Returning `None` sends the packet to the sink.
    Steer(SteerFn),
}

/// Batch-processing policy for vector accelerators (GPUs, wide SIMD
/// engines): packets accumulate until `max_batch` are waiting or the
/// head of the buffer has waited `timeout_ns`, then a server processes
/// the whole batch in one `kernel_overhead_ns + per-packet` invocation.
///
/// Batching trades latency (packets wait for the batch to form) for
/// throughput (the kernel overhead amortizes) — the defining shape of
/// GPU packet processing, and a natural §4.3 subject: no amount of
/// batching hardware buys back the formation delay.
///
/// The formation timer is measured from the *head packet's enqueue
/// time*: when a server is available, no packet waits in the formation
/// buffer longer than `timeout_ns` before its batch launches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum packets per batch.
    pub max_batch: usize,
    /// Flush a partial batch once its head packet has waited this long.
    pub timeout_ns: u64,
    /// Fixed per-invocation cost (kernel launch, DMA setup).
    pub kernel_overhead_ns: u64,
}

impl BatchPolicy {
    /// Creates a policy; panics on degenerate parameters.
    pub fn new(max_batch: usize, timeout_ns: u64, kernel_overhead_ns: u64) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        assert!(timeout_ns > 0, "timeout must be positive");
        BatchPolicy { max_batch, timeout_ns, kernel_overhead_ns }
    }
}

/// Configuration for one pipeline stage.
pub struct StageConfig {
    /// Stage name for reports.
    pub name: &'static str,
    /// Parallel servers (cores).
    pub servers: u32,
    /// Queue capacity in packets (excluding those in service).
    pub queue_capacity: usize,
    /// The service model.
    pub service: Box<dyn ServiceModel>,
    /// Forwarding target for packets this stage passes.
    pub next: NextHop,
    /// Batch-processing policy; `None` = serve packets one at a time.
    pub batch: Option<BatchPolicy>,
    /// Declared target set of a [`NextHop::Steer`] function. Steering
    /// closures are opaque to static analysis; the shard planner needs
    /// the edge set to partition the pipeline, so steered stages that
    /// want to participate in sharded runs declare their reachable
    /// stages here. Leaving it `None` is always safe — the planner
    /// falls back to the serial engine.
    pub steer_targets: Option<Vec<usize>>,
}

impl StageConfig {
    /// Creates a stage that forwards linearly (to the next stage, or the
    /// sink if it is the last one).
    pub fn new(
        name: &'static str,
        servers: u32,
        queue_capacity: usize,
        service: Box<dyn ServiceModel>,
    ) -> Self {
        StageConfig {
            name,
            servers,
            queue_capacity,
            service,
            next: NextHop::Linear,
            batch: None,
            steer_targets: None,
        }
    }

    /// Overrides the forwarding target.
    pub fn with_next(mut self, next: NextHop) -> Self {
        self.next = next;
        self
    }

    /// Declares the stages a [`NextHop::Steer`] closure can return, so
    /// the shard planner knows this stage's outgoing edges.
    pub fn with_steer_targets(mut self, targets: Vec<usize>) -> Self {
        self.steer_targets = Some(targets);
        self
    }

    /// Enables batch processing on this stage.
    pub fn with_batching(mut self, policy: BatchPolicy) -> Self {
        self.batch = Some(policy);
        self
    }
}

pub(crate) struct StageState {
    pub(crate) cfg: StageConfig,
    /// Waiting packets, each with its enqueue timestamp (the batch
    /// formation timer is measured from the head's enqueue time).
    pub(crate) queue: VecDeque<(u64, Packet)>,
    pub(crate) busy: u32,
    pub(crate) busy_ns: u128,
    pub(crate) arrivals: u64,
    pub(crate) served: u64,
    pub(crate) queue_drops: u64,
    pub(crate) policy_drops: u64,
    /// Packets currently inside servers (equals `busy` for per-packet
    /// stages; a multiple for batch stages).
    pub(crate) in_service_pkts: u64,
    /// Invalidates stale batch timers.
    pub(crate) batch_epoch: u64,
    /// A batch timeout fired while all servers were busy; flush a
    /// partial batch as soon as one frees.
    pub(crate) batch_flush_pending: bool,
    /// Service-time multiplier from the fault plan (1.0 = nominal).
    pub(crate) slow_factor: f64,
    /// The stage is in an outage window: arrivals drop, in-flight work
    /// completes, no new work starts until recovery.
    pub(crate) down: bool,
    /// Packets lost to faults at this stage (outage-window arrivals).
    pub(crate) fault_drops: u64,
    /// Flat pool of cold `Done` payloads for this stage (SoA layout):
    /// the event tag carries only the pool index. Free-listed, and
    /// persisted across runs under the pool-reuse contract.
    pool: Vec<Option<DoneSlot>>,
    pool_free: Vec<usize>,
}

impl StageState {
    /// Fresh run state around a stage configuration.
    pub(crate) fn from_cfg(cfg: StageConfig) -> Self {
        StageState {
            cfg,
            queue: VecDeque::new(),
            busy: 0,
            busy_ns: 0,
            arrivals: 0,
            served: 0,
            queue_drops: 0,
            policy_drops: 0,
            in_service_pkts: 0,
            batch_epoch: 0,
            batch_flush_pending: false,
            slow_factor: 1.0,
            down: false,
            fault_drops: 0,
            pool: Vec::new(),
            pool_free: Vec::new(),
        }
    }

    /// Resets everything a run mutates so an engine can be reused.
    pub(crate) fn reset(&mut self) {
        self.queue.clear();
        self.busy = 0;
        self.busy_ns = 0;
        self.arrivals = 0;
        self.served = 0;
        self.queue_drops = 0;
        self.policy_drops = 0;
        self.in_service_pkts = 0;
        self.batch_epoch = 0;
        self.batch_flush_pending = false;
        self.slow_factor = 1.0;
        self.down = false;
        self.fault_drops = 0;
        self.pool.clear();
        self.pool_free.clear();
    }

    /// The outgoing stage edges of this stage, for the shard planner.
    /// `None` means the edge set is statically unknown (an undeclared
    /// steering function) — partitioning must not be attempted.
    pub(crate) fn successors(&self, index: usize, n_stages: usize) -> Option<Vec<usize>> {
        match &self.cfg.next {
            NextHop::Linear => {
                Some(if index + 1 < n_stages { vec![index + 1] } else { Vec::new() })
            }
            NextHop::Stage(j) => Some(vec![*j]),
            NextHop::Sink => Some(Vec::new()),
            NextHop::Steer(_) => self.cfg.steer_targets.clone(),
        }
    }
    fn pool_insert(&mut self, slot: DoneSlot) -> usize {
        match self.pool_free.pop() {
            Some(idx) => {
                debug_assert!(self.pool[idx].is_none(), "free list hit a live pool slot");
                self.pool[idx] = Some(slot);
                idx
            }
            None => {
                self.pool.push(Some(slot));
                self.pool.len() - 1
            }
        }
    }

    fn pool_take(&mut self, idx: usize) -> DoneSlot {
        // lint: allow(P1, reason = "invariant: Done tags are minted by begin_service and consumed exactly once; a vacant slot here is tag corruption")
        let slot = self.pool[idx].take().expect("Done tag referenced a vacant pool slot");
        self.pool_free.push(idx);
        slot
    }

    /// Starts service on `pkt` at time `t`: one `serve()` call, the
    /// cold-pool insert, and the Done event push. Shared by arrivals,
    /// queue pulls on completion, and outage-recovery drains — the
    /// caller has already bumped `busy`/`in_service_pkts` and emitted
    /// its dispatch hook.
    #[inline]
    fn begin_service(&mut self, stage: usize, pkt: Packet, t: u64, core: &mut EventCore) {
        let (verdict, svc_ns) = self.cfg.service.serve(&pkt);
        let svc_ns = scaled(svc_ns, self.slow_factor);
        self.busy_ns += u128::from(svc_ns);
        let idx = self.pool_insert((pkt, verdict, svc_ns));
        core.push_done(t + svc_ns, stage, idx);
    }
}

/// Per-stage outcome of a run, for utilization-driven power accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: &'static str,
    /// Fraction of server-time spent busy, `[0, 1]`.
    pub utilization: f64,
    /// Packets that arrived at this stage.
    pub arrivals: u64,
    /// Packets that completed service here.
    pub served: u64,
    /// Packets dropped at this stage's queue.
    pub queue_drops: u64,
    /// Packets dropped here by NF policy.
    pub policy_drops: u64,
    /// Packets lost to injected faults at this stage (arrivals during
    /// an outage window).
    pub fault_drops: u64,
    /// Packets still queued or in service when the run ended.
    pub in_flight: u64,
}

impl StageReport {
    /// Packet-conservation check: every arrival is served, dropped at
    /// the queue, lost to a fault, or still in flight at cutoff.
    pub fn conserves_packets(&self) -> bool {
        self.arrivals == self.served + self.queue_drops + self.fault_drops + self.in_flight
    }
}

/// Optional payload synthesis for payload-inspecting pipelines.
pub struct PayloadConfig {
    /// Probability a packet carries one of the needles.
    pub attack_prob: f64,
    /// Patterns to embed (the DPI experiments' ground truth).
    pub needles: Vec<Vec<u8>>,
}

// ── SoA event layout ────────────────────────────────────────────────
//
// A scheduled event is the scheduler entry `(t_ns, seq, tag)` alone.
// The tag packs everything dispatch needs to find the cold payload:
//
//   bits 60..64  event kind (KIND_*)
//   bits 48..60  stage index (pipelines are capped at MAX_STAGES)
//   bits  0..48  payload — a pool/slab index, a batch epoch, or a
//                fault action code, depending on the kind
//
// Done events index the owning stage's packet pool; BatchDone events
// index the engine's batch slab; Arrive events (unfused mode only)
// index the arrive slab; BatchTimeout and Fault events need no cold
// storage at all.

const TAG_KIND_SHIFT: u32 = 60;
const TAG_STAGE_SHIFT: u32 = 48;
const TAG_STAGE_MASK: u64 = (1 << (TAG_KIND_SHIFT - TAG_STAGE_SHIFT)) - 1;
const TAG_PAYLOAD_MASK: u64 = (1 << TAG_STAGE_SHIFT) - 1;

/// Largest pipeline the packed event tag can address (12 stage bits).
pub const MAX_STAGES: usize = 1 << (TAG_KIND_SHIFT - TAG_STAGE_SHIFT);

const KIND_DONE: u64 = 0;
const KIND_ARRIVE: u64 = 1;
const KIND_BATCH_TIMEOUT: u64 = 2;
const KIND_BATCH_DONE: u64 = 3;
const KIND_FAULT: u64 = 4;

// Size-regression guards: the hot slot must never regrow past a cache
// line (it is the entire per-event footprint inside wheel buckets), and
// the tag packing assumes the scheduler's payload word holds 64 bits.
const _: () = assert!(std::mem::size_of::<crate::sched::EventKey>() <= 64);
const _: () = assert!(std::mem::size_of::<usize>() == 8);

#[inline]
fn pack_tag(kind: u64, stage: usize, payload: usize) -> usize {
    debug_assert!((stage as u64) <= TAG_STAGE_MASK, "stage exceeds tag width");
    debug_assert!((payload as u64) <= TAG_PAYLOAD_MASK, "payload exceeds tag width");
    ((kind << TAG_KIND_SHIFT) | ((stage as u64) << TAG_STAGE_SHIFT) | payload as u64) as usize
}

#[inline]
fn tag_kind(tag: usize) -> u64 {
    tag as u64 >> TAG_KIND_SHIFT
}

#[inline]
pub(crate) fn tag_stage(tag: usize) -> usize {
    ((tag as u64 >> TAG_STAGE_SHIFT) & TAG_STAGE_MASK) as usize
}

#[inline]
fn tag_payload(tag: usize) -> usize {
    (tag as u64 & TAG_PAYLOAD_MASK) as usize
}

/// Cold payload of a `Done` event: the packet in service, its verdict,
/// and its (fault-scaled) service time. Lives in the owning stage's
/// flat pool; the event tag carries only the pool index.
type DoneSlot = (Packet, NfVerdict, u64);

/// Cold payload of a `BatchDone` event: the completed batch results and
/// the batch's total service time. Lives in the batch slab; the event
/// tag carries only the slab index.
type BatchSlot = (Vec<(Packet, NfVerdict)>, u64);

/// Bytes per *hot* event slot: one scheduler entry `(t_ns, seq, tag)`.
/// This is what wheel buckets and the heap actually move per event.
pub fn hot_slot_bytes() -> usize {
    std::mem::size_of::<crate::sched::EventKey>()
}

/// Bytes per *cold* payload slot: one entry of a stage's packet pool,
/// touched only at dispatch. (Batch events amortize a larger buffer
/// over the whole batch; timers and faults have no cold half.)
pub fn cold_slot_bytes() -> usize {
    std::mem::size_of::<Option<DoneSlot>>()
}

/// A zero-latency forward waiting in the fused-hop FIFO: a packet that
/// finished service and settles into its next stage at the same
/// timestamp, carrying the seq it was minted with so the dispatch walk
/// can merge it in exact `(t, seq)` order against wheel events.
struct FusedHop {
    seq: u64,
    stage: usize,
    pkt: Packet,
}

/// Hot-path event state threaded through the dispatch helpers: the
/// scheduler, the seq mint, the live/peak/total accounting the old
/// event slab kept, the fused-hop FIFO, and the engine-level cold
/// slabs of the SoA layout.
pub(crate) struct EventCore {
    pub(crate) events: EventScheduler,
    seq: u64,
    live: usize,
    pub(crate) peak_live: usize,
    pub(crate) total: u64,
    /// Same-time forwards bypassing the scheduler (fusion on). Always
    /// empty between timestamps: the dispatch walk drains it fully.
    fwd: VecDeque<FusedHop>,
    /// Arrive payloads (fusion off: every hop re-enqueues through the
    /// scheduler — the reference path the A/B property tests pin).
    arrive_slots: Vec<Option<Packet>>,
    arrive_free: Vec<usize>,
    /// BatchDone payloads: the result buffer and the batch's total ns.
    batch_slots: Vec<Option<BatchSlot>>,
    batch_free: Vec<usize>,
    fused: bool,
    /// Sharded runs only: the stage-ownership map and per-destination
    /// outboxes. `None` (serial runs) keeps `forward` on its old path.
    pub(crate) route: Option<crate::shard::ShardRoute>,
}

impl EventCore {
    /// Mints the next seq, counting the event as live — the accounting
    /// the old event slab did on insert, kept so `total_events` and
    /// `peak_live_events` stay bit-identical.
    #[inline]
    fn mint(&mut self) -> u64 {
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        self.total += 1;
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Counts a dispatched event (the old slab's take-side accounting).
    #[inline]
    fn retire(&mut self) {
        self.live -= 1;
    }

    /// Currently live (scheduled, not yet dispatched) events — the
    /// time-series gauge the per-bucket tick samples.
    #[inline]
    pub(crate) fn live_now(&self) -> usize {
        self.live
    }

    #[inline]
    fn push_done(&mut self, t: u64, stage: usize, pool_idx: usize) {
        let seq = self.mint();
        self.events.push(t, seq, pack_tag(KIND_DONE, stage, pool_idx));
    }

    fn push_batch_timeout(&mut self, t: u64, stage: usize, epoch: u64) {
        let seq = self.mint();
        self.events.push(t, seq, pack_tag(KIND_BATCH_TIMEOUT, stage, epoch as usize));
    }

    fn push_batch_done(
        &mut self,
        t: u64,
        stage: usize,
        results: Vec<(Packet, NfVerdict)>,
        total_ns: u64,
    ) {
        let idx = match self.batch_free.pop() {
            Some(idx) => {
                debug_assert!(self.batch_slots[idx].is_none(), "free list hit a live batch slot");
                self.batch_slots[idx] = Some((results, total_ns));
                idx
            }
            None => {
                self.batch_slots.push(Some((results, total_ns)));
                self.batch_slots.len() - 1
            }
        };
        let seq = self.mint();
        self.events.push(t, seq, pack_tag(KIND_BATCH_DONE, stage, idx));
    }

    fn take_batch(&mut self, idx: usize) -> (Vec<(Packet, NfVerdict)>, u64) {
        // lint: allow(P1, reason = "invariant: batch tags are minted by push_batch_done and consumed exactly once; a vacant slot here is tag corruption")
        let slot = self.batch_slots[idx].take().expect("batch tag referenced a vacant slot");
        self.batch_free.push(idx);
        slot
    }

    pub(crate) fn push_fault(&mut self, t: u64, action: FaultAction) {
        let (stage, code) = action.encode();
        let seq = self.mint();
        self.events.push(t, seq, pack_tag(KIND_FAULT, stage, code));
    }

    /// Routes a same-time forward: into the fused-hop FIFO (fusion on),
    /// or back through the scheduler as an Arrive event (fusion off).
    /// Both sides mint a seq, so the dispatch order is identical.
    ///
    /// Sharded runs divert forwards to remote stages into the outbox
    /// for the destination shard *without* minting a seq: the seq is
    /// minted by the destination's epoch-barrier merge, which is what
    /// keeps per-shard seq streams dense and the merge order exactly
    /// the serial dispatch order.
    #[inline]
    pub(crate) fn forward(&mut self, t: u64, stage: usize, pkt: Packet) {
        if let Some(route) = self.route.as_mut() {
            let dst = route.owner[stage];
            if dst != route.me {
                route.out[dst].push((t, stage, pkt));
                return;
            }
        }
        if self.fused {
            let seq = self.mint();
            self.fwd.push_back(FusedHop { seq, stage, pkt });
        } else {
            self.enqueue_arrive(t, stage, pkt);
        }
    }

    /// Slab-inserts `pkt` and schedules a `KIND_ARRIVE` event at `t`.
    /// Shared by the unfused forward path and the cross-shard inbox
    /// merge (merged hops always go through the scheduler: their seqs
    /// are minted here, in merge order, above every local seq already
    /// scheduled for that timestamp).
    pub(crate) fn enqueue_arrive(&mut self, t: u64, stage: usize, pkt: Packet) {
        let idx = match self.arrive_free.pop() {
            Some(idx) => {
                debug_assert!(self.arrive_slots[idx].is_none(), "free list hit a live arrive slot");
                self.arrive_slots[idx] = Some(pkt);
                idx
            }
            None => {
                self.arrive_slots.push(Some(pkt));
                self.arrive_slots.len() - 1
            }
        };
        let seq = self.mint();
        self.events.push(t, seq, pack_tag(KIND_ARRIVE, stage, idx));
    }

    /// A fresh event core for one run (sharded workers build one per
    /// shard; the serial path reuses the engine's pooled buffers
    /// instead).
    pub(crate) fn new_for_run(
        kind: SchedulerKind,
        fused: bool,
        route: Option<crate::shard::ShardRoute>,
    ) -> Self {
        EventCore {
            events: EventScheduler::new(kind),
            seq: 0,
            live: 0,
            peak_live: 0,
            total: 0,
            fwd: VecDeque::new(),
            arrive_slots: Vec::new(),
            arrive_free: Vec::new(),
            batch_slots: Vec::new(),
            batch_free: Vec::new(),
            fused,
            route,
        }
    }

    fn take_arrive(&mut self, idx: usize) -> Packet {
        // lint: allow(P1, reason = "invariant: arrive tags are minted by forward() and consumed exactly once; a vacant slot here is tag corruption")
        let pkt = self.arrive_slots[idx].take().expect("arrive tag referenced a vacant slot");
        self.arrive_free.push(idx);
        pkt
    }
}

/// The simulator.
pub struct Engine {
    pub(crate) stages: Vec<StageState>,
    pub(crate) payload: Option<PayloadConfig>,
    pub(crate) scheduler: SchedulerKind,
    /// Fault plan applied to every run; `None` = fault-free.
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Pooled batch-result buffers, persisted across `run` calls so a
    /// reused engine's steady state allocates nothing (the old per-run
    /// pool started empty every run and reallocated from scratch).
    batch_pool: Vec<Vec<(Packet, NfVerdict)>>,
    /// Persisted timestamp-bucket buffer for the dispatch loop.
    bucket_buf: Vec<(u64, u64, usize)>,
    /// Scratch for same-time scheduler re-drains inside the dispatch
    /// walk (events minted at the timestamp being processed).
    redrain_buf: Vec<(u64, u64, usize)>,
    /// Fused-hop FIFO, persisted across runs (pool-reuse contract).
    fwd_buf: VecDeque<FusedHop>,
    /// Cold slabs for Arrive / BatchDone payloads, persisted likewise.
    arrive_slots: Vec<Option<Packet>>,
    arrive_free: Vec<usize>,
    batch_slots: Vec<Option<BatchSlot>>,
    batch_free: Vec<usize>,
    /// Zero-latency hop fusion (default on). `false` re-enqueues every
    /// hop through the scheduler — the reference path the fused/unfused
    /// property tests compare against, bit for bit.
    pub(crate) fused: bool,
    /// Shard count for single-run parallelism (default 1 = serial).
    /// Sharding engages only when the pipeline partitions provably
    /// (see `crate::shard::plan`); otherwise the run stays serial.
    shards: usize,
    /// Optional observability hooks (tracing / telemetry / spans).
    /// `None` — the default — leaves the hot path byte-identical to an
    /// uninstrumented engine: every site is a single `Option` branch.
    pub(crate) observer: Option<RunObserver>,
    /// Optional order sanitizer (invariant checks + interleaving
    /// perturber); gated exactly like the observer: `None` costs one
    /// branch per site.
    pub(crate) sanitizer: Option<OrderSanitizer>,
    /// Scaling diagnosis from the most recent *sharded* run: per-shard
    /// wall-time decomposition (compute / barrier / merge), barrier-wait
    /// histograms, and mailbox traffic. `None` after serial runs.
    /// Wall-clock only — never flows into simulated results.
    pub(crate) shard_diag: Option<crate::shard::ShardDiag>,
}

/// The raw result of a run.
///
/// `PartialEq` compares every field (histogram counts included) — the
/// A/B scheduler tests lean on it to assert byte-identical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Sink-side statistics over the measurement window.
    pub sink: SinkStats,
    /// Per-stage reports.
    pub stages: Vec<StageReport>,
    /// Measurement window length, ns.
    pub window_ns: u64,
    /// Packets injected into stage 0 over the whole run.
    pub injected: u64,
    /// Packets the fault plan dropped at the injection point (these
    /// never reached stage 0 and are not part of `injected`).
    pub injected_drops: u64,
    /// Packets the fault plan marked corrupted at the injection point.
    pub corrupted: u64,
    /// Total events scheduled over the run (what the old grow-forever
    /// arena would have held in memory).
    pub total_events: u64,
    /// High-water mark of simultaneously live events — the slab's
    /// actual footprint.
    pub peak_live_events: usize,
}

/// Applies a stage's fault slowdown factor to a service time. The
/// nominal case takes the exact identity path so fault-free runs are
/// bit-for-bit unchanged.
#[inline]
fn scaled(svc_ns: u64, factor: f64) -> u64 {
    // lint: allow(N1, reason = "exact sentinel: 1.0 is assigned verbatim, never computed")
    if factor == 1.0 {
        svc_ns
    } else {
        (svc_ns as f64 * factor).ceil() as u64
    }
}

/// Maps a fault-plan action to its trace representation.
fn fault_trace(action: FaultAction) -> (usize, TraceFault) {
    match action {
        FaultAction::SlowdownStart { stage } => (stage, TraceFault::SlowdownStart),
        FaultAction::SlowdownEnd { stage } => (stage, TraceFault::SlowdownEnd),
        FaultAction::DeviceDown { stage } => (stage, TraceFault::DeviceDown),
        FaultAction::DeviceUp { stage } => (stage, TraceFault::DeviceUp),
    }
}

/// Starts as many batches as servers and buffered packets allow.
/// `force_partial` flushes a below-max batch (the formation timer fired).
fn try_flush_batches(
    st: &mut StageState,
    stage: usize,
    t: u64,
    force_partial: bool,
    core: &mut EventCore,
    batch_pool: &mut Vec<Vec<(Packet, NfVerdict)>>,
    obs: &mut Option<RunObserver>,
) {
    let Some(policy) = st.cfg.batch else { return };
    if st.down {
        // No new kernels launch during an outage; a pending flush (or
        // queued packets) will be picked up again at DeviceUp.
        return;
    }
    let force = force_partial || st.batch_flush_pending;
    let mut launched = false;
    while st.busy < st.cfg.servers
        && (st.queue.len() >= policy.max_batch || (force && !st.queue.is_empty()))
    {
        let n = st.queue.len().min(policy.max_batch);
        let mut total_ns = policy.kernel_overhead_ns;
        let mut results = batch_pool.pop().unwrap_or_default();
        results.reserve(n);
        for _ in 0..n {
            // lint: allow(P1, reason = "invariant: loop condition just checked the queue holds at least max_batch (or is non-empty under force)")
            let (enq_t, pkt) = st.queue.pop_front().expect("checked non-empty");
            if let Some(o) = obs.as_mut() {
                o.on_dispatch(t, pkt.id, stage, t - enq_t);
            }
            let (verdict, svc_ns) = st.cfg.service.serve(&pkt);
            total_ns += svc_ns;
            results.push((pkt, verdict));
        }
        let total_ns = scaled(total_ns, st.slow_factor);
        st.busy += 1;
        st.in_service_pkts += n as u64;
        st.busy_ns += u128::from(total_ns);
        st.batch_epoch += 1;
        launched = true;
        core.push_batch_done(t + total_ns, stage, results, total_ns);
    }
    st.batch_flush_pending = force && !st.queue.is_empty() && st.busy >= st.cfg.servers;
    // A launch invalidated the head's timer (epoch bump). If packets
    // remain, re-arm for the new head — measured from *its* enqueue
    // time, so no packet waits more than timeout_ns while a server is
    // free. (Timers for an unchanged head are still in the heap and
    // stay valid: the epoch has not moved.)
    if launched && !st.queue.is_empty() && !st.batch_flush_pending {
        // lint: allow(P1, reason = "invariant: guarded by the !st.queue.is_empty() conjunct on the if directly above")
        let head_enqueued = st.queue.front().expect("checked non-empty").0;
        let deadline = (head_enqueued + policy.timeout_ns).max(t);
        core.push_batch_timeout(deadline, stage, st.batch_epoch);
    }
}

impl Engine {
    /// Builds an engine from stage configurations (source feeds stage 0).
    pub fn new(stages: Vec<StageConfig>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert!(stages.len() <= MAX_STAGES, "pipelines are capped at {MAX_STAGES} stages");
        for (i, s) in stages.iter().enumerate() {
            assert!(s.servers > 0, "stage '{}' needs at least one server", s.name);
            if let NextHop::Stage(j) = s.next {
                assert!(j < stages.len(), "stage '{}' forwards to nonexistent stage {j}", s.name);
                assert_ne!(i, j, "stage '{}' must not forward to itself", s.name);
            }
        }
        Engine {
            stages: stages.into_iter().map(StageState::from_cfg).collect(),
            payload: None,
            scheduler: SchedulerKind::Wheel,
            fault_plan: None,
            batch_pool: Vec::new(),
            bucket_buf: Vec::new(),
            redrain_buf: Vec::new(),
            fwd_buf: VecDeque::new(),
            arrive_slots: Vec::new(),
            arrive_free: Vec::new(),
            batch_slots: Vec::new(),
            batch_free: Vec::new(),
            fused: true,
            shards: 1,
            observer: None,
            sanitizer: None,
            shard_diag: None,
        }
    }

    /// Attaches observability hooks for subsequent runs. The observer
    /// accumulates across runs until taken with [`Engine::take_observer`].
    pub fn with_observer(mut self, observer: RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Removes and returns the observer (with everything it collected).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&RunObserver> {
        self.observer.as_ref()
    }

    /// Attaches the runtime order sanitizer for subsequent runs: the
    /// dispatch walk is shadowed with monotone-time / unique-seq /
    /// merge-order invariant checks (and, when the sanitizer was built
    /// with [`OrderSanitizer::with_perturbation`], a seeded shuffle of
    /// every same-timestamp equivalence class that the seq-keyed merge
    /// must undo). Results must stay byte-identical to an unsanitized
    /// run — that identity is asserted by tests and the `xp sanitize`
    /// gate, not here.
    pub fn with_sanitizer(mut self, sanitizer: OrderSanitizer) -> Self {
        self.sanitizer = Some(sanitizer);
        self
    }

    /// Removes and returns the sanitizer (with its accumulated report).
    pub fn take_sanitizer(&mut self) -> Option<OrderSanitizer> {
        self.sanitizer.take()
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&OrderSanitizer> {
        self.sanitizer.as_ref()
    }

    /// Removes and returns the scaling diagnosis collected by the most
    /// recent run, if that run actually sharded (serial runs — including
    /// silent fallbacks — leave `None`).
    pub fn take_shard_diag(&mut self) -> Option<crate::shard::ShardDiag> {
        self.shard_diag.take()
    }

    /// Stage names in pipeline order (labels for telemetry and traces).
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.cfg.name.to_owned()).collect()
    }

    /// Selects the event-queue discipline. The timing wheel is the
    /// default; the heap baseline exists for A/B determinism tests —
    /// both produce byte-identical results on every workload.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Splits subsequent runs across `n` shards (default 1 = serial),
    /// each with its own timing wheel and event pools, synchronized by
    /// conservative epoch barriers with cross-shard hops exchanged in
    /// per-epoch outboxes. Results are **byte-identical** to the serial
    /// engine: per-shard seq allocation plus the destination-side merge
    /// replay exactly the serial dispatch order (DESIGN.md §12).
    ///
    /// Sharding engages only when the pipeline partitions provably —
    /// the planner needs a feed-forward stage DAG with declared steer
    /// edges ([`StageConfig::with_steer_targets`]). Anything else falls
    /// back to the serial path, which is trivially identical. Observed
    /// runs shard too when the observer is shardable
    /// ([`RunObserver::shardable`]: no trace ring) — telemetry, spans,
    /// the time series, and scheduler counters are collected per shard
    /// and folded back; a tracing observer keeps the run serial.
    pub fn with_shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        self.shards = n;
        self
    }

    /// Enables or disables zero-latency hop fusion (default: enabled).
    /// Fused runs push same-time forwards through a FIFO straight back
    /// into the dispatch walk; unfused runs re-enqueue them through the
    /// scheduler. Both mint seqs identically, so results, traces, and
    /// telemetry are byte-identical — the unfused path exists as the
    /// reference oracle for A/B tests and the bench's `fused_speedup`.
    pub fn with_fusion(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Attaches a fault plan: its windowed transitions become timing-
    /// wheel events and its per-packet hash decisions gate the
    /// injection point. An empty plan leaves runs bit-for-bit
    /// unchanged; `(seed, plan)` fully determines the perturbation.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables payload synthesis (needed when the pipeline contains DPI).
    pub fn with_payloads(mut self, cfg: PayloadConfig) -> Self {
        self.payload = Some(cfg);
        self
    }

    /// Runs `workload` for `duration_ns` of simulated time, measuring
    /// from `warmup_ns` on. Deliveries and drops before warmup are not
    /// counted; events after `duration_ns` are not processed.
    pub fn run(&mut self, workload: &WorkloadSpec, duration_ns: u64, warmup_ns: u64) -> RunResult {
        let stream = workload.stream();
        self.run_stubs(stream, workload.flows, workload.seed, duration_ns, warmup_ns)
    }

    /// Replays a recorded or imported [`apples_workload::Trace`] instead
    /// of a generator.
    /// Payload synthesis (when enabled) derives from `payload_seed`.
    pub fn run_trace(
        &mut self,
        trace: &apples_workload::Trace,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        self.run_stubs(
            trace.packets().iter().copied(),
            trace.flows(),
            payload_seed,
            duration_ns,
            warmup_ns,
        )
    }
}

/// Handles one arrival at `stage`: start service, enqueue, or drop.
/// A free function over the stage slice (not an `Engine` method) so the
/// sharded workers can drive the identical code path over their own
/// per-shard stage vectors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn arrive(
    stages: &mut [StageState],
    stage: usize,
    pkt: Packet,
    t: u64,
    warmup_ns: u64,
    sink: &mut SinkStats,
    core: &mut EventCore,
    batch_pool: &mut Vec<Vec<(Packet, NfVerdict)>>,
    obs: &mut Option<RunObserver>,
) {
    let st = &mut stages[stage];
    st.arrivals += 1;
    if let Some(o) = obs.as_mut() {
        o.on_stage_enter(t, pkt.id, stage);
    }
    if st.down {
        // Outage window: the device is gone; packets addressed to
        // it are lost rather than queued.
        st.fault_drops += 1;
        if let Some(o) = obs.as_mut() {
            o.on_drop(t, pkt.id, stage, TraceDrop::Fault);
        }
        if t >= warmup_ns {
            sink.drop(DropReason::Fault);
        }
    } else if st.cfg.batch.is_some() {
        if st.queue.len() < st.cfg.queue_capacity {
            let was_empty = st.queue.is_empty();
            let pkt_id = pkt.id;
            st.queue.push_back((t, pkt));
            if let Some(o) = obs.as_mut() {
                o.on_enqueue(t, pkt_id, stage, st.queue.len());
            }
            if was_empty {
                // New head: the formation timer runs from its
                // enqueue time (which is now).
                // lint: allow(P1, reason = "invariant: inside the st.cfg.batch.is_some() branch entered a few lines up")
                let timeout = st.cfg.batch.expect("checked").timeout_ns;
                core.push_batch_timeout(t + timeout, stage, st.batch_epoch);
            }
            try_flush_batches(st, stage, t, false, core, batch_pool, obs);
        } else {
            st.queue_drops += 1;
            if let Some(o) = obs.as_mut() {
                o.on_drop(t, pkt.id, stage, TraceDrop::QueueFull);
            }
            if t >= warmup_ns {
                sink.drop(DropReason::QueueFull);
            }
        }
    } else if st.busy < st.cfg.servers {
        st.busy += 1;
        st.in_service_pkts += 1;
        if let Some(o) = obs.as_mut() {
            o.on_dispatch(t, pkt.id, stage, 0);
        }
        st.begin_service(stage, pkt, t, core);
    } else if st.queue.len() < st.cfg.queue_capacity {
        let pkt_id = pkt.id;
        st.queue.push_back((t, pkt));
        if let Some(o) = obs.as_mut() {
            o.on_enqueue(t, pkt_id, stage, st.queue.len());
        }
    } else {
        st.queue_drops += 1;
        if let Some(o) = obs.as_mut() {
            o.on_drop(t, pkt.id, stage, TraceDrop::QueueFull);
        }
        if t >= warmup_ns {
            sink.drop(DropReason::QueueFull);
        }
    }
}

/// Routes a packet that finished service at `stage` according to its
/// verdict: policy drop, next stage, or sink delivery.
#[allow(clippy::too_many_arguments)]
pub(crate) fn settle(
    stages: &[StageState],
    stage: usize,
    pkt: Packet,
    verdict: NfVerdict,
    t: u64,
    warmup_ns: u64,
    sink: &mut SinkStats,
    core: &mut EventCore,
    obs: &mut Option<RunObserver>,
) {
    match verdict {
        NfVerdict::Drop => {
            if let Some(o) = obs.as_mut() {
                o.on_drop(t, pkt.id, stage, TraceDrop::Policy);
            }
            if t >= warmup_ns {
                sink.drop(DropReason::Policy);
            }
        }
        NfVerdict::Forward => {
            let dest = match &stages[stage].cfg.next {
                NextHop::Linear => {
                    if stage + 1 < stages.len() {
                        Some(stage + 1)
                    } else {
                        None
                    }
                }
                NextHop::Stage(i) => Some(*i),
                NextHop::Sink => None,
                NextHop::Steer(f) => f(&pkt),
            };
            match dest {
                Some(next_stage) => {
                    assert!(
                        next_stage < stages.len(),
                        "stage '{}' steered to nonexistent stage {next_stage}",
                        stages[stage].cfg.name
                    );
                    core.forward(t, next_stage, pkt);
                }
                None => {
                    if t >= warmup_ns && pkt.t_arrival_ns >= warmup_ns {
                        sink.deliver(pkt.flow, pkt.wire_bits(), t - pkt.t_arrival_ns);
                    }
                }
            }
        }
    }
}

/// Walks every event at timestamp `t` in ascending seq order, merging
/// three seq-sorted sources: the drained `bucket`, the fused-hop FIFO,
/// and scheduler re-drains (events minted *during* the walk at exactly
/// `t`). That merge is precisely the order the serial heap engine pops
/// — fused hops mint seqs exactly where their Arrive events used to —
/// so results, traces, and telemetry are bit-identical across
/// scheduler kinds and fusion modes.
///
/// Shared verbatim by the serial run loop and each shard's worker loop:
/// the sharded engine's claim to byte-identity rests on every shard
/// processing its own events with *this* code over its own core.
#[allow(clippy::too_many_arguments)]
pub(crate) fn walk_bucket(
    stages: &mut [StageState],
    t: u64,
    warmup_ns: u64,
    bucket: &mut Vec<(u64, u64, usize)>,
    redrain: &mut Vec<(u64, u64, usize)>,
    core: &mut EventCore,
    sink: &mut SinkStats,
    batch_pool: &mut Vec<Vec<(Packet, NfVerdict)>>,
    fault_plan: Option<&FaultPlan>,
    obs: &mut Option<RunObserver>,
    san: &mut Option<OrderSanitizer>,
) {
    let mut i = 0;
    loop {
        // Refill: follow-ups minted at exactly t sit in the
        // scheduler's live bucket; pull them into the walk.
        // Everything appended was minted after everything
        // already in `bucket`, so the bucket stays seq-sorted.
        if i == bucket.len() && core.events.peek_time() == Some(t) {
            core.events.drain_bucket(redrain);
            bucket.append(redrain);
            if let Some(s) = san.as_mut() {
                s.on_refill(t, bucket, i);
            }
        }
        let wheel_seq = bucket.get(i).map(|&(_, s, _)| s);
        let hop_seq = core.fwd.front().map(|h| h.seq);
        let use_wheel = match (wheel_seq, hop_seq) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(w), Some(h)) => w < h,
        };
        if !use_wheel {
            // lint: allow(P1, reason = "invariant: hop_seq matched Some in the merge selection directly above")
            let hop = core.fwd.pop_front().expect("checked above");
            core.retire();
            if let Some(s) = san.as_mut() {
                s.on_dispatch(t, hop.seq, hop.stage, stages.len());
            }
            arrive(stages, hop.stage, hop.pkt, t, warmup_ns, sink, core, batch_pool, obs);
            continue;
        }
        let (_, eseq, tag) = bucket[i];
        i += 1;
        core.retire();
        let stage = tag_stage(tag);
        if let Some(s) = san.as_mut() {
            s.on_dispatch(t, eseq, stage, stages.len());
        }
        match tag_kind(tag) {
            KIND_DONE => {
                let (pkt, verdict, svc_ns) = stages[stage].pool_take(tag_payload(tag));
                {
                    let st = &mut stages[stage];
                    st.busy -= 1;
                    st.in_service_pkts -= 1;
                    st.served += 1;
                    if verdict == NfVerdict::Drop {
                        st.policy_drops += 1;
                    }
                    if let Some(o) = obs.as_mut() {
                        o.on_stage_exit(t, pkt.id, stage, svc_ns, verdict == NfVerdict::Forward);
                    }
                    // Pull the next queued packet into service
                    // (unless an outage window is open — queued
                    // work resumes at DeviceUp).
                    if !st.down {
                        if let Some((enq_t, next)) = st.queue.pop_front() {
                            st.busy += 1;
                            st.in_service_pkts += 1;
                            if let Some(o) = obs.as_mut() {
                                o.on_dispatch(t, next.id, stage, t - enq_t);
                            }
                            st.begin_service(stage, next, t, core);
                        }
                    }
                }
                settle(stages, stage, pkt, verdict, t, warmup_ns, sink, core, obs);
            }
            KIND_ARRIVE => {
                let pkt = core.take_arrive(tag_payload(tag));
                arrive(stages, stage, pkt, t, warmup_ns, sink, core, batch_pool, obs);
            }
            KIND_BATCH_TIMEOUT => {
                let epoch = tag_payload(tag) as u64;
                let st = &mut stages[stage];
                if st.batch_epoch == epoch && !st.queue.is_empty() {
                    st.batch_flush_pending = true;
                    try_flush_batches(st, stage, t, true, core, batch_pool, obs);
                }
            }
            KIND_BATCH_DONE => {
                let (mut results, total_ns) = core.take_batch(tag_payload(tag));
                {
                    let st = &mut stages[stage];
                    st.busy -= 1;
                    st.in_service_pkts -= results.len() as u64;
                    st.served += results.len() as u64;
                    st.policy_drops +=
                        results.iter().filter(|(_, v)| *v == NfVerdict::Drop).count() as u64;
                    if let Some(o) = obs.as_mut() {
                        // Every batch member shares the batch's
                        // wall of service: the kernel is the
                        // unit of work.
                        for (pkt, verdict) in results.iter() {
                            o.on_stage_exit(
                                t,
                                pkt.id,
                                stage,
                                total_ns,
                                *verdict == NfVerdict::Forward,
                            );
                        }
                    }
                    try_flush_batches(st, stage, t, false, core, batch_pool, obs);
                }
                for (pkt, verdict) in results.drain(..) {
                    settle(stages, stage, pkt, verdict, t, warmup_ns, sink, core, obs);
                }
                batch_pool.push(results);
            }
            KIND_FAULT => {
                let action = FaultAction::decode(stage, tag_payload(tag));
                let fault_tok = match obs.as_mut() {
                    Some(o) => o.span_begin(Phase::FaultApply),
                    None => SpanToken::noop(),
                };
                if let Some(o) = obs.as_mut() {
                    let (stage, kind) = fault_trace(action);
                    o.on_fault(t, eseq, stage, kind);
                }
                match action {
                    FaultAction::SlowdownStart { stage } => {
                        if let Some(plan) = fault_plan {
                            stages[stage].slow_factor = plan.slow_factor;
                        }
                    }
                    FaultAction::SlowdownEnd { stage } => {
                        stages[stage].slow_factor = 1.0;
                    }
                    FaultAction::DeviceDown { stage } => {
                        stages[stage].down = true;
                    }
                    FaultAction::DeviceUp { stage } => {
                        let st = &mut stages[stage];
                        st.down = false;
                        if st.cfg.batch.is_some() {
                            try_flush_batches(st, stage, t, false, core, batch_pool, obs);
                        } else {
                            // Resume draining the backlog that
                            // accumulated before the outage.
                            while st.busy < st.cfg.servers {
                                let Some((enq_t, next)) = st.queue.pop_front() else {
                                    break;
                                };
                                st.busy += 1;
                                st.in_service_pkts += 1;
                                if let Some(o) = obs.as_mut() {
                                    o.on_dispatch(t, next.id, stage, t - enq_t);
                                }
                                st.begin_service(stage, next, t, core);
                            }
                        }
                    }
                }
                if let Some(o) = obs.as_mut() {
                    o.span_end(Phase::FaultApply, fault_tok, 0);
                }
            }
            _ => unreachable!("event tag carries an unknown kind"),
        }
    }
}

impl Engine {
    fn run_stubs(
        &mut self,
        stubs: impl Iterator<Item = apples_workload::PacketStub>,
        flows: usize,
        payload_seed: u64,
        duration_ns: u64,
        warmup_ns: u64,
    ) -> RunResult {
        assert!(warmup_ns < duration_ns, "warmup must precede the end of the run");
        // Sharded dispatch: engage only when the pipeline partitions
        // provably and any attached observer merges across shards (the
        // bounded trace ring does not — its retained window depends on
        // the global event order). An unpartitionable pipeline runs
        // serially, which satisfies the identity contract trivially.
        self.shard_diag = None;
        if self.shards > 1 && self.observer.as_ref().is_none_or(|o| o.shardable()) {
            if let Some(plan) = crate::shard::plan(&self.stages, self.shards) {
                return crate::shard::run_sharded(
                    self,
                    &plan,
                    stubs,
                    flows,
                    payload_seed,
                    duration_ns,
                    warmup_ns,
                );
            }
        }
        let window_ns = duration_ns - warmup_ns;
        let mut sink = SinkStats::new(flows);

        // Reset per-run state so an Engine can be reused safely.
        for st in &mut self.stages {
            st.reset();
        }

        // The event core carries every pooled buffer the SoA layout
        // needs; clearing (not replacing) retains their capacity, so a
        // reused engine's steady state allocates nothing.
        let mut core = EventCore {
            events: EventScheduler::new(self.scheduler),
            seq: 0,
            live: 0,
            peak_live: 0,
            total: 0,
            fwd: std::mem::take(&mut self.fwd_buf),
            arrive_slots: std::mem::take(&mut self.arrive_slots),
            arrive_free: std::mem::take(&mut self.arrive_free),
            batch_slots: std::mem::take(&mut self.batch_slots),
            batch_free: std::mem::take(&mut self.batch_free),
            fused: self.fused,
            route: None,
        };
        core.fwd.clear();
        core.arrive_slots.clear();
        core.arrive_free.clear();
        core.batch_slots.clear();
        core.batch_free.clear();

        // The observer travels alongside the sink through the helpers;
        // taking it out of `self` keeps the borrows disjoint.
        let mut obs = self.observer.take();
        if let Some(o) = obs.as_mut() {
            o.ensure_stages(self.stages.len());
        }
        // The sanitizer rides the same way: out of `self` for disjoint
        // borrows, per-run state reset, handed back at the end.
        let mut san = self.sanitizer.take();
        if let Some(s) = san.as_mut() {
            s.begin_run();
        }

        // Materialize the fault plan's windowed transitions as ordinary
        // events before anything else runs: they get the lowest seqs, so
        // their relative order is fixed under both scheduler kinds.
        let fault_plan = self.fault_plan.take();
        if let Some(plan) = &fault_plan {
            for e in plan.events.iter().filter(|e| e.t_ns <= duration_ns) {
                core.push_fault(e.t_ns, e.action);
            }
        }
        let mut injected_drops = 0u64;
        let mut corrupted = 0u64;
        // Scratch buffers persist on the engine across runs: a reused
        // engine's batch kernels and bucket drains allocate nothing in
        // steady state.
        let mut batch_pool = std::mem::take(&mut self.batch_pool);
        let mut bucket = std::mem::take(&mut self.bucket_buf);
        bucket.clear();
        let mut redrain = std::mem::take(&mut self.redrain_buf);
        redrain.clear();

        // Arrivals are injected lazily: workload arrival times are
        // monotone, so holding the single next stub (rather than the
        // whole packet sequence) preserves event order exactly while
        // keeping memory independent of run length. Packet ids number
        // arrivals in stub order.
        let needle_refs: Vec<Vec<u8>> =
            self.payload.as_ref().map(|p| p.needles.clone()).unwrap_or_default();
        let refs: Vec<&[u8]> = needle_refs.iter().map(|n| n.as_slice()).collect();
        let attack_prob = self.payload.as_ref().map(|p| p.attack_prob);
        let mut pkt_id = 0u64;
        let mut stubs = stubs.take_while(|stub| stub.t_ns < duration_ns);
        let make_packet = |stub: apples_workload::PacketStub, id: u64| {
            let mut pkt = Packet::new(id, stub.flow, stub.tuple, stub.size_bytes, stub.t_ns);
            if let Some(prob) = attack_prob {
                let len = (stub.size_bytes as usize).saturating_sub(54); // L2-L4 headers
                pkt = pkt.with_payload(len, payload_seed, prob, &refs);
            }
            pkt
        };
        let mut next_arrival: Option<Packet> = stubs.next().map(|s| {
            let p = make_packet(s, pkt_id);
            pkt_id += 1;
            p
        });
        // Sim-time of the previous bucket, for span attribution.
        let mut last_t = 0u64;

        loop {
            // Arrivals sort before simulation events at the same time
            // (they were scheduled first in program order).
            let take_arrival = match (&next_arrival, core.events.peek_time()) {
                (Some(a), Some(t)) => a.t_arrival_ns <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };

            if take_arrival {
                // lint: allow(P1, reason = "invariant: take_arrival is only true when next_arrival matched Some in the selection above")
                let mut pkt = next_arrival.take().expect("checked above");
                let t = pkt.t_arrival_ns;
                next_arrival = stubs.next().map(|s| {
                    let p = make_packet(s, pkt_id);
                    pkt_id += 1;
                    p
                });
                // Injection-point faults: hash decisions on the packet
                // id, independent of schedule and of each other.
                if let Some(plan) = &fault_plan {
                    if plan.drops(pkt.id) {
                        injected_drops += 1;
                        if let Some(o) = obs.as_mut() {
                            o.on_fault(t, pkt.id, 0, TraceFault::InjectedDrop);
                        }
                        if t >= warmup_ns {
                            sink.drop(DropReason::Fault);
                        }
                        continue;
                    }
                    if plan.corrupts(pkt.id) {
                        pkt.corrupted = true;
                        corrupted += 1;
                        if let Some(o) = obs.as_mut() {
                            o.on_fault(t, pkt.id, 0, TraceFault::Corrupt);
                        }
                    }
                }
                arrive(
                    &mut self.stages,
                    0,
                    pkt,
                    t,
                    warmup_ns,
                    &mut sink,
                    &mut core,
                    &mut batch_pool,
                    &mut obs,
                );
                continue;
            }

            // Drain the earliest-timestamp bucket and walk everything at
            // that timestamp in ascending seq order, merging three
            // seq-sorted sources: the drained bucket, the fused-hop
            // FIFO, and scheduler re-drains (events minted *during* the
            // walk at exactly this timestamp). That merge is precisely
            // the order the serial heap engine pops — fused hops mint
            // seqs exactly where their Arrive events used to — so
            // results, traces, and telemetry are bit-identical. All
            // arrivals at <= this time were injected above, and none can
            // appear mid-walk (stub times are monotone), so the
            // arrival/event interleave is unchanged too.
            let adv_tok = match obs.as_mut() {
                Some(o) => o.span_begin(Phase::WheelAdvance),
                None => SpanToken::noop(),
            };
            core.events.drain_bucket(&mut bucket);
            let t = match bucket.first() {
                Some(&(t, _, _)) => t,
                // peek_time returned Some, so the bucket cannot be
                // empty; keep the engine total rather than panicking.
                None => break,
            };
            if let Some(o) = obs.as_mut() {
                o.span_end(Phase::WheelAdvance, adv_tok, t.saturating_sub(last_t));
            }
            last_t = t;
            if t > duration_ns {
                break;
            }
            if let Some(o) = obs.as_mut() {
                // Per-bucket gauge sample for the time series: live
                // events and scheduler occupancy at this sim time.
                o.on_tick(t, core.live_now() as u64, core.events.len() as u64);
            }
            if let Some(s) = san.as_mut() {
                // Monotone-time + uniform-timestamp checks, and (when
                // armed) the shuffle-then-merge perturbation of this
                // same-timestamp equivalence class.
                s.begin_bucket(t, &mut bucket);
            }
            let disp_tok = match obs.as_mut() {
                Some(o) => o.span_begin(Phase::Dispatch),
                None => SpanToken::noop(),
            };
            walk_bucket(
                &mut self.stages,
                t,
                warmup_ns,
                &mut bucket,
                &mut redrain,
                &mut core,
                &mut sink,
                &mut batch_pool,
                fault_plan.as_ref(),
                &mut obs,
                &mut san,
            );
            if let Some(o) = obs.as_mut() {
                o.span_end(Phase::Dispatch, disp_tok, 0);
            }
        }

        // Hand the scratch buffers and cold slabs back to the engine
        // for the next run (pool-reuse contract).
        self.batch_pool = batch_pool;
        self.bucket_buf = bucket;
        self.redrain_buf = redrain;
        self.fault_plan = fault_plan;
        if let Some(o) = obs.as_mut() {
            // Fold in the scheduler's structural counters (deterministic:
            // pure functions of the event schedule).
            o.merge_sched(core.events.counters());
        }
        self.observer = obs;
        self.sanitizer = san;
        self.fwd_buf = core.fwd;
        self.arrive_slots = core.arrive_slots;
        self.arrive_free = core.arrive_free;
        self.batch_slots = core.batch_slots;
        self.batch_free = core.batch_free;

        let stages = self
            .stages
            .iter()
            .map(|s| StageReport {
                name: s.cfg.name,
                utilization: (s.busy_ns as f64 / (duration_ns as f64 * f64::from(s.cfg.servers)))
                    .min(1.0),
                arrivals: s.arrivals,
                served: s.served,
                queue_drops: s.queue_drops,
                policy_drops: s.policy_drops,
                fault_drops: s.fault_drops,
                in_flight: s.queue.len() as u64 + s.in_service_pkts,
            })
            .collect();

        let injected = self.stages[0].arrivals;
        RunResult {
            sink,
            stages,
            window_ns,
            injected,
            injected_drops,
            corrupted,
            total_events: core.total + injected,
            peak_live_events: core.peak_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::firewall::{Action, Firewall};
    use crate::nf::NfChain;
    use crate::service::{LineRate, NfService};

    fn forwarding_stage(servers: u32) -> StageConfig {
        StageConfig::new("core", servers, 256, Box::new(NfService::host_core(NfChain::empty())))
    }

    #[test]
    fn underloaded_pipeline_delivers_everything() {
        // 100 kpps of 64 B on one core (100 ns/packet service): ~1% load.
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert_eq!(r.sink.queue_drops(), 0);
        let expected = 100_000.0 * 0.05; // 5000 packets in 50 ms
        let got = r.sink.delivered_packets() as f64;
        assert!((got - expected).abs() / expected < 0.01, "delivered {got}");
        assert!(r.stages[0].utilization < 0.05);
    }

    #[test]
    fn overloaded_stage_saturates_and_drops() {
        // Service ~100 ns => capacity ~10 Mpps; offer 20 Mpps.
        let mut engine = Engine::new(vec![StageConfig::new(
            "core",
            1,
            64,
            Box::new(NfService::host_core(NfChain::empty())),
        )]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 1_000_000);
        assert!(r.sink.queue_drops() > 0, "expected overload drops");
        assert!(r.sink.loss_rate() > 0.3, "loss {}", r.sink.loss_rate());
        assert!(r.stages[0].utilization > 0.95, "util {}", r.stages[0].utilization);
        // Delivered rate ~ capacity, not offered rate.
        let pps = r.sink.throughput_pps(r.window_ns);
        assert!(pps < 12e6, "delivered {pps} pps");
    }

    #[test]
    fn more_servers_raise_capacity() {
        let run_with = |servers: u32| {
            let mut engine = Engine::new(vec![forwarding_stage(servers)]);
            // Offer well above even 4 cores' capacity (~40 Mpps).
            let wl = WorkloadSpec::cbr(60e6, 64, 4, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(four > 3.0 * one, "1 core {one} pps, 4 cores {four} pps");
    }

    #[test]
    fn policy_drops_are_not_loss() {
        // A deny-all firewall: every packet dropped by policy, none lost.
        let fw = Firewall::new(vec![], Action::Deny);
        let mut engine = Engine::new(vec![StageConfig::new(
            "fw",
            1,
            256,
            Box::new(NfService::host_core(NfChain::new(vec![Box::new(fw)]))),
        )]);
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let r = engine.run(&wl, 10_000_000, 0);
        assert_eq!(r.sink.delivered_packets(), 0);
        assert_eq!(r.sink.queue_drops(), 0);
        assert!(r.sink.policy_drops() > 900);
        assert_eq!(r.sink.loss_rate(), 0.0);
        assert_eq!(r.stages[0].policy_drops, r.sink.policy_drops());
    }

    #[test]
    fn latency_includes_queueing_under_load() {
        let lat_at = |rate: f64| {
            let mut engine = Engine::new(vec![forwarding_stage(1)]);
            let wl = WorkloadSpec {
                sizes: apples_workload::PacketSizeDist::Fixed(64),
                arrivals: apples_workload::ArrivalProcess::Poisson { rate_pps: rate },
                flows: 4,
                zipf_s: 0.0,
                seed: 3,
            };
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let light = lat_at(1e6); // ~10% load
        let heavy = lat_at(9e6); // ~90% load
        assert!(heavy > 2 * light, "p99 light {light} ns vs heavy {heavy} ns");
    }

    #[test]
    fn multi_stage_pipelines_accumulate_latency() {
        let mk = || StageConfig::new("link", 1, 1024, Box::new(LineRate::new("10G", 10e9)));
        let mut one = Engine::new(vec![mk()]);
        let mut three = Engine::new(vec![mk(), mk(), mk()]);
        let wl = WorkloadSpec::cbr(10_000.0, 1500, 2, 1);
        let l1 = one.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        let l3 = three.run(&wl, 10_000_000, 0).sink.latency().mean_ns();
        assert!((l3 / l1 - 3.0).abs() < 0.1, "l1 {l1} l3 {l3}");
    }

    fn batch_stage(max_batch: usize, timeout_ns: u64, kernel_ns: u64) -> StageConfig {
        StageConfig::new(
            "gpu",
            1,
            4096,
            // 30 ns marginal per packet once the kernel is launched.
            Box::new(crate::service::FixedTime::new("gpu-kernel", NfChain::empty(), 30)),
        )
        .with_batching(BatchPolicy::new(max_batch, timeout_ns, kernel_ns))
    }

    #[test]
    fn full_batches_flush_immediately() {
        // 8 packets arrive back-to-back; batch size 4 -> two batches,
        // each kernel 10 us + 4*30 ns.
        let mut engine = Engine::new(vec![batch_stage(4, 1_000_000, 10_000)]);
        let wl = WorkloadSpec::cbr(100e6, 64, 4, 1); // 10 ns spacing
        let r = engine.run(&wl, 60_000, 0);
        assert!(r.sink.delivered_packets() >= 16, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
        // Latency of the first delivered packets ~ one kernel, far below
        // the 1 ms timeout: the size trigger fired, not the timer.
        assert!(r.sink.latency().quantile_ns(0.01) < 100_000);
    }

    #[test]
    fn lone_packet_waits_for_the_timeout() {
        let mut engine = Engine::new(vec![batch_stage(64, 50_000, 10_000)]);
        // One packet per 10 ms: every batch is a timeout flush of 1.
        let wl = WorkloadSpec::cbr(100.0, 64, 1, 1);
        let r = engine.run(&wl, 50_000_000, 0);
        assert!(r.sink.delivered_packets() >= 4);
        let lat = r.sink.latency().quantile_ns(0.5);
        // ~ timeout (50 us) + kernel (10 us) + marginal, within the
        // histogram's ~1.6% bucket error.
        assert!((58_000..75_000).contains(&lat), "median latency {lat} ns");
    }

    #[test]
    fn remainder_after_a_full_batch_waits_from_its_own_enqueue_time() {
        // The documented bound: with a server free, no packet waits in
        // the formation buffer longer than timeout_ns. Regression test
        // for the old behavior of re-arming the timer from the *flush*
        // time, which overcharged remainder packets by however long the
        // previous batch took.
        use apples_workload::Trace;
        const TIMEOUT: u64 = 50_000;
        const KERNEL: u64 = 10_000;
        // Exactly 9 packets, 100 ns apart (t = 100 .. 900), then silence:
        // batch 1 = packets 1-4 (size trigger), batch 2 = packets 5-8
        // (size trigger on BatchDone), packet 9 = a timer flush.
        let wl = WorkloadSpec::cbr(10e6, 64, 1, 1);
        let trace = Trace::record(&wl, 1_000);
        assert_eq!(trace.packets().len(), 9);
        let mut engine = Engine::new(vec![batch_stage(4, TIMEOUT, KERNEL)]);
        let r = engine.run_trace(&trace, 0, 5_000_000, 0);
        assert_eq!(r.sink.delivered_packets(), 9);
        // Packet 9 enqueues at t=900 while batch 2 is in flight; its
        // timer must run from t=900, so its latency is timeout + kernel
        // + marginal — NOT timeout + the in-flight batch's completion.
        let worst = r.sink.latency().quantile_ns(1.0);
        let bound = TIMEOUT + KERNEL + 4 * 30;
        assert!(
            u128::from(worst) <= u128::from(bound) * 102 / 100,
            "worst latency {worst} ns exceeds head-wait bound {bound} ns (+2% histogram error)"
        );
        assert!(worst >= TIMEOUT, "worst latency {worst} ns should include the full timeout");
    }

    #[test]
    fn batching_amortizes_kernel_overhead() {
        // Same kernel cost; batch 1 vs batch 256 at a load the former
        // cannot carry.
        let tput = |max_batch: usize| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, 100_000, 10_000)]);
            let wl = WorkloadSpec::cbr(1e6, 64, 16, 1);
            let r = engine.run(&wl, 10_000_000, 1_000_000);
            r.sink.throughput_pps(r.window_ns)
        };
        let unbatched = tput(1); // 10.03 us per packet -> ~0.1 Mpps
        let batched = tput(256); // ~17.7 us per 256 packets -> >> 1 Mpps
        assert!(unbatched < 0.15e6, "unbatched {unbatched}");
        assert!(batched > 0.9e6, "batched {batched}");
    }

    #[test]
    fn batching_trades_latency_for_throughput() {
        // At a light load both configurations keep up, but the large
        // batch makes packets wait for the formation timeout.
        let p99 = |max_batch: usize, timeout: u64| {
            let mut engine = Engine::new(vec![batch_stage(max_batch, timeout, 10_000)]);
            let wl = WorkloadSpec::cbr(10_000.0, 64, 4, 1);
            let r = engine.run(&wl, 20_000_000, 2_000_000);
            r.sink.latency().quantile_ns(0.99)
        };
        let small = p99(1, 200_000);
        let large = p99(64, 200_000);
        assert!(
            large > small + 150_000,
            "large-batch p99 {large} should exceed small-batch {small} by ~the timeout"
        );
    }

    #[test]
    fn batch_stage_conserves_packets_under_overload() {
        let mut engine = Engine::new(vec![batch_stage(32, 10_000, 50_000)]);
        let wl = WorkloadSpec::cbr(5e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.stages[0].queue_drops > 0, "overload expected");
        assert!(r.stages[0].conserves_packets(), "{:?}", r.stages[0]);
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn batch_runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![batch_stage(16, 30_000, 5_000)]);
            let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (r.sink.delivered_packets(), r.sink.latency().quantile_ns(0.99))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn packets_are_conserved_at_every_stage() {
        // Overloaded two-stage pipeline: drops, queues, and in-flight
        // packets must all be accounted for.
        let mut engine = Engine::new(vec![
            StageConfig::new("front", 1, 32, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", 1, 8, Box::new(LineRate::new("1G", 1e9))),
        ]);
        let wl = WorkloadSpec::cbr(15e6, 700, 8, 1);
        let r = engine.run(&wl, 5_000_000, 0);
        assert!(r.injected > 0);
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks packets: {s:?}", s.name);
        }
        // Cross-stage conservation: what the front forwards equals what
        // the back receives.
        let front = &r.stages[0];
        let back = &r.stages[1];
        assert_eq!(front.served - front.policy_drops, back.arrivals);
        // Global: delivered + drops + in-flight across stages == injected.
        let accounted = r.sink.delivered_packets()
            + r.stages.iter().map(|s| s.queue_drops + s.policy_drops + s.in_flight).sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn trace_replay_matches_the_generator_bit_for_bit() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(2e6, 700, 16, 9);
        let trace = Trace::record(&wl, 5_000_000);

        let mut live = Engine::new(vec![forwarding_stage(2)]);
        let a = live.run(&wl, 5_000_000, 500_000);

        let mut replay = Engine::new(vec![forwarding_stage(2)]);
        let b = replay.run_trace(&trace, wl.seed, 5_000_000, 500_000);

        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.sink.latency().quantile_ns(0.99), b.sink.latency().quantile_ns(0.99));
        assert_eq!(a.stages[0].served, b.stages[0].served);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn csv_imported_trace_drives_the_engine() {
        use apples_workload::Trace;
        let wl = WorkloadSpec::cbr(1e6, 400, 4, 3);
        let csv = Trace::record(&wl, 2_000_000).to_csv();
        let imported = Trace::from_csv(&csv).expect("parses");
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let r = engine.run_trace(&imported, 0, 2_000_000, 0);
        assert!(r.sink.delivered_packets() > 1900, "{}", r.sink.delivered_packets());
        assert!(r.stages[0].conserves_packets());
    }

    #[test]
    fn engine_reuse_resets_state() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(20e6, 64, 4, 1);
        let a = engine.run(&wl, 5_000_000, 0);
        let b = engine.run(&wl, 5_000_000, 0);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.sink.delivered_packets(), b.sink.delivered_packets());
        assert_eq!(a.stages[0].queue_drops, b.stages[0].queue_drops);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new(vec![forwarding_stage(2)]);
            let wl = WorkloadSpec::cbr(5e6, 200, 16, 9);
            let r = engine.run(&wl, 5_000_000, 500_000);
            (r.sink.delivered_packets(), r.sink.latency().quantile_ns(0.999), r.stages[0].served)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_memory_is_bounded_by_live_events_not_total() {
        // A long, busy run schedules hundreds of thousands of events;
        // the slab's high-water mark must stay proportional to what is
        // simultaneously in flight (a handful of service completions
        // plus queued forwards), not to the run length.
        let mut engine = Engine::new(vec![
            StageConfig::new("front", 2, 128, Box::new(NfService::host_core(NfChain::empty()))),
            StageConfig::new("back", 1, 128, Box::new(LineRate::new("10G", 10e9))),
        ]);
        let wl = WorkloadSpec::cbr(8e6, 200, 16, 7);
        let r = engine.run(&wl, 50_000_000, 0);
        assert!(r.total_events > 400_000, "total events {}", r.total_events);
        assert!(
            r.peak_live_events < 64,
            "peak live events {} should be O(in-flight), total {}",
            r.peak_live_events,
            r.total_events
        );
    }

    #[test]
    fn wheel_and_heap_schedulers_produce_identical_results() {
        // The core A/B: the timing wheel must be observationally
        // indistinguishable from the reference heap — full RunResult
        // equality (histogram counts included) across pipeline shapes.
        type Build = (&'static str, fn() -> Engine, WorkloadSpec);
        let builds: Vec<Build> = vec![
            ("forward-2stage", || Engine::new(vec![forwarding_stage(2)]), {
                WorkloadSpec::cbr(5e6, 200, 16, 9)
            }),
            (
                "overloaded",
                || {
                    Engine::new(vec![
                        StageConfig::new(
                            "front",
                            1,
                            32,
                            Box::new(NfService::host_core(NfChain::empty())),
                        ),
                        StageConfig::new("back", 1, 8, Box::new(LineRate::new("1G", 1e9))),
                    ])
                },
                WorkloadSpec::cbr(15e6, 700, 8, 1),
            ),
            (
                "batch-gpu",
                || Engine::new(vec![batch_stage(16, 30_000, 5_000)]),
                WorkloadSpec::cbr(2e6, 200, 8, 3),
            ),
        ];
        for (name, build, wl) in builds {
            let a = build()
                .with_scheduler(crate::sched::SchedulerKind::Wheel)
                .run(&wl, 5_000_000, 500_000);
            let b = build()
                .with_scheduler(crate::sched::SchedulerKind::Heap)
                .run(&wl, 5_000_000, 500_000);
            assert_eq!(a, b, "scheduler A/B mismatch on {name}");
        }
    }

    #[test]
    fn scratch_buffers_retain_capacity_across_runs() {
        // The batch-result pool and the bucket buffer persist on the
        // engine: a second run must start with the first run's
        // capacity instead of reallocating from scratch.
        let mut engine = Engine::new(vec![batch_stage(16, 30_000, 5_000)]);
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let _ = engine.run(&wl, 5_000_000, 500_000);
        let pooled = engine.batch_pool.len();
        let pooled_cap: usize = engine.batch_pool.iter().map(Vec::capacity).sum();
        let bucket_cap = engine.bucket_buf.capacity();
        assert!(pooled > 0, "batch pool should retain drained buffers");
        assert!(pooled_cap >= 16, "pooled buffers should keep batch-sized capacity");
        assert!(bucket_cap > 0, "bucket buffer should retain capacity");
        let a = engine.run(&wl, 5_000_000, 500_000);
        assert!(
            engine.batch_pool.iter().map(Vec::capacity).sum::<usize>() >= pooled_cap,
            "second run must not shrink the pooled capacity"
        );
        assert!(engine.bucket_buf.capacity() >= bucket_cap);
        // Reuse must not perturb results.
        let b = Engine::new(vec![batch_stage(16, 30_000, 5_000)]).run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let wl = WorkloadSpec::cbr(5e6, 200, 16, 9);
        let a = Engine::new(vec![forwarding_stage(2)]).run(&wl, 5_000_000, 500_000);
        let b = Engine::new(vec![forwarding_stage(2)])
            .with_fault_plan(crate::fault::FaultPlan::none())
            .run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b);
    }

    fn severe_plan(stages: usize) -> crate::fault::FaultPlan {
        crate::fault::FaultPlan::derive(
            1234,
            &crate::fault::FaultSpec::at_severity(1.0),
            stages,
            5_000_000,
        )
    }

    #[test]
    fn faulted_runs_conserve_packets() {
        // Outage-heavy spec so the 5 ms run reliably sees down windows.
        let spec = crate::fault::FaultSpec {
            drop_prob: 0.05,
            corrupt_prob: 0.0,
            slowdown: None,
            outage: Some(crate::fault::OutageSpec { mtbf_ns: 800_000, mttr_ns: 400_000 }),
        };
        let plan = crate::fault::FaultPlan::derive(1234, &spec, 2, 5_000_000);
        let mk = || {
            Engine::new(vec![
                StageConfig::new("front", 2, 64, Box::new(NfService::host_core(NfChain::empty()))),
                StageConfig::new("back", 1, 64, Box::new(LineRate::new("10G", 10e9))),
            ])
            .with_fault_plan(plan.clone())
        };
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let r = mk().run(&wl, 5_000_000, 0);
        assert!(r.injected_drops > 0, "severity-1 plan must drop at the injection point");
        let total_fault_drops: u64 = r.stages.iter().map(|s| s.fault_drops).sum();
        assert!(total_fault_drops > 0, "outage windows must drop arrivals");
        for s in &r.stages {
            assert!(s.conserves_packets(), "stage {} leaks packets: {s:?}", s.name);
        }
        let accounted = r.sink.delivered_packets()
            + r.stages
                .iter()
                .map(|s| s.queue_drops + s.policy_drops + s.fault_drops + s.in_flight)
                .sum::<u64>();
        assert_eq!(accounted, r.injected);
    }

    #[test]
    fn faulted_runs_replay_from_seed_and_plan_alone() {
        let mk = || Engine::new(vec![forwarding_stage(2)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let a = mk().run(&wl, 5_000_000, 500_000);
        let b = mk().run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b, "(seed, FaultPlan) must fully determine the run");
    }

    #[test]
    fn faulted_wheel_and_heap_runs_are_identical() {
        let mk = |kind| {
            Engine::new(vec![
                StageConfig::new("front", 2, 64, Box::new(NfService::host_core(NfChain::empty()))),
                StageConfig::new("back", 1, 64, Box::new(LineRate::new("10G", 10e9))),
            ])
            .with_fault_plan(severe_plan(2))
            .with_scheduler(kind)
        };
        let wl = WorkloadSpec::cbr(4e6, 400, 8, 5);
        let a = mk(crate::sched::SchedulerKind::Wheel).run(&wl, 5_000_000, 500_000);
        let b = mk(crate::sched::SchedulerKind::Heap).run(&wl, 5_000_000, 500_000);
        assert_eq!(a, b, "fault events must not break the scheduler A/B");
    }

    #[test]
    fn faulted_batch_stage_conserves_and_replays() {
        let mk =
            || Engine::new(vec![batch_stage(16, 30_000, 5_000)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let a = mk().run(&wl, 5_000_000, 0);
        let b = mk().run(&wl, 5_000_000, 0);
        assert_eq!(a, b);
        assert!(a.stages[0].conserves_packets(), "{:?}", a.stages[0]);
    }

    #[test]
    fn engine_reuse_keeps_the_fault_plan() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]).with_fault_plan(severe_plan(1));
        let wl = WorkloadSpec::cbr(2e6, 200, 8, 3);
        let a = engine.run(&wl, 5_000_000, 0);
        let b = engine.run(&wl, 5_000_000, 0);
        assert_eq!(a, b, "a reused engine must re-apply the same plan");
        assert!(a.injected_drops > 0);
    }

    #[test]
    fn slowdown_windows_degrade_throughput() {
        // Pure slowdown (no loss, no outage): the run must deliver
        // strictly less than the fault-free run at a load near capacity.
        let spec = crate::fault::FaultSpec {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            slowdown: Some(crate::fault::SlowdownSpec {
                mean_period_ns: 400_000,
                duration_ns: 300_000,
                factor: 8.0,
            }),
            outage: None,
        };
        let plan = crate::fault::FaultPlan::derive(7, &spec, 1, 10_000_000);
        assert!(!plan.events.is_empty());
        let wl = WorkloadSpec::cbr(8e6, 64, 8, 5);
        let clean = Engine::new(vec![forwarding_stage(1)]).run(&wl, 10_000_000, 1_000_000);
        let slowed = Engine::new(vec![forwarding_stage(1)])
            .with_fault_plan(plan)
            .run(&wl, 10_000_000, 1_000_000);
        assert!(
            slowed.sink.delivered_packets() < clean.sink.delivered_packets() * 95 / 100,
            "slowdown should cost >5% of deliveries: clean {} vs slowed {}",
            clean.sink.delivered_packets(),
            slowed.sink.delivered_packets()
        );
        assert_eq!(slowed.injected_drops, 0);
    }

    #[test]
    fn corruption_with_fail_closed_chain_raises_policy_drops() {
        use crate::nf::firewall::{Action, Firewall};
        let mk = |corrupt_prob: f64| {
            let fw =
                Firewall::new(vec![crate::nf::firewall::Rule::any(Action::Allow)], Action::Allow);
            let plan = crate::fault::FaultPlan {
                seed: 5,
                drop_prob: 0.0,
                corrupt_prob,
                slow_factor: 1.0,
                events: Vec::new(),
            };
            Engine::new(vec![StageConfig::new(
                "fw",
                1,
                256,
                Box::new(NfService::host_core(NfChain::new(vec![Box::new(fw)]))),
            )])
            .with_fault_plan(plan)
        };
        let wl = WorkloadSpec::cbr(100_000.0, 64, 4, 1);
        let clean = mk(0.0).run(&wl, 10_000_000, 0);
        assert_eq!(clean.sink.policy_drops(), 0);
        assert_eq!(clean.corrupted, 0);
        let noisy = mk(0.2).run(&wl, 10_000_000, 0);
        assert!(noisy.corrupted > 0);
        assert_eq!(
            noisy.sink.policy_drops(),
            noisy.corrupted,
            "every corrupted packet must be dropped by the fail-closed firewall"
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_must_precede_end() {
        let mut engine = Engine::new(vec![forwarding_stage(1)]);
        let wl = WorkloadSpec::cbr(1000.0, 64, 1, 1);
        let _ = engine.run(&wl, 1000, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let _ = Engine::new(vec![]);
    }
}
