//! Event schedulers: the hierarchical timing wheel that runs the
//! engine's hot path, and the binary-heap baseline kept for A/B
//! verification.
//!
//! The engine orders events by `(time, seq)` — `time` in simulated
//! nanoseconds, `seq` a monotone tie-breaker minted at push time — and
//! pops them in exactly that total order. The original implementation
//! was a `BinaryHeap`, paying `O(log n)` comparison discipline per
//! event. This module replaces it with a **hierarchical timing wheel**
//! (calendar queue) with O(1) amortized insert and extract:
//!
//! - **4 levels × 4096 slots**, 12 bits of the timestamp per level, so
//!   the wheel spans 2^48 ns (~3.3 days) of horizon from the cursor.
//!   Level 0 slots are 1 ns wide: one slot is one exact timestamp,
//!   which is what makes bucket draining preserve the total order. The
//!   wide level 0 is deliberate: packet workloads schedule almost
//!   everything within a few µs of the cursor, and a 4096 ns level-0
//!   window files those pushes directly at level 0 — no upper-level
//!   detour, no cascade to pay later.
//! - An **overflow tree** (`BTreeMap<time, entries>`) holds far-future
//!   timers beyond the current 2^48 ns epoch; when the wheel drains
//!   into a new epoch, the overflow entries of that epoch are promoted
//!   into the wheel in one pass.
//! - **Two-level occupancy bitmaps** per level (4096 bits as 64 `u64`
//!   words plus one summary word over the words) make "find the next
//!   non-empty slot" two `trailing_zeros` instructions instead of a
//!   scan.
//! - An exact **`min_time` cache** (updated by `min` on push, recomputed
//!   once per bucket drain) gives O(1) `peek_time`, which the engine
//!   calls every loop iteration to interleave lazily-injected arrivals.
//! - A **same-window fast path** in the cursor advance: when the next
//!   bucket shares the cursor's 4096 ns level-0 window, neither an
//!   epoch change nor a cascade is possible (either would require an
//!   upper timestamp bit to differ), so the drain skips both checks
//!   and swaps the level-0 slot straight out. On dense timelines this
//!   is nearly every drain.
//!
//! ## Determinism
//!
//! Pop order is *identical* to the heap's: strictly ascending
//! `(time, seq)`. Level-0 slots are single timestamps, entries within a
//! slot are sorted by `seq` at drain, and same-time pushes that arrive
//! while a bucket is being dispatched are merged into the live bucket
//! in `seq` position. `runs_match_heap_order` and the engine's A/B
//! tests pin this: serial results are byte-identical under either
//! scheduler.
//!
//! ## The one ordering contract
//!
//! Callers must never push an event earlier than the last drained
//! bucket's timestamp (the engine can't: every event it schedules while
//! processing time `t` is at `≥ t`, and arrivals are merged in time
//! order *before* the bucket at their timestamp is drained). Pushes at
//! exactly the current bucket time are legal and land in the live
//! bucket.

use apples_obs::SchedCounters;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A scheduled event: `(time_ns, seq, tag)`. The tag is an opaque
/// 64-bit word the engine packs its event kind, stage, and cold-payload
/// index into (the hot half of the SoA event layout); the scheduler
/// never interprets it.
pub type EventKey = (u64, u64, usize);

/// Which event-queue discipline an [`Engine`](crate::Engine) runs on.
///
/// `Wheel` is the default and the only production scheduler; `Heap` is
/// retained so determinism tests can assert the wheel's pop order is
/// byte-identical to the reference discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The hierarchical timing wheel (production default).
    Wheel,
    /// The `BinaryHeap` baseline (A/B verification only).
    Heap,
}

impl SchedulerKind {
    /// Stable lowercase name used in provenance stamps and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        }
    }
}

const SLOT_BITS: u32 = 12;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 4;
/// Bits of timestamp the wheel covers; times whose upper bits differ
/// from the cursor's live in the overflow tree.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
const WORDS: usize = SLOTS / 64;

/// One wheel level: 4096 slots of pending entries plus a two-level
/// occupancy bitmap (64 slot words + one summary word over the words)
/// so empty slots cost nothing to skip and "first occupied" is two
/// `trailing_zeros`.
struct Level {
    /// Fixed-size boxed array (not a slice): slot indexes are always
    /// masked with `SLOTS - 1`, so the compiler elides every bounds
    /// check on this hot-path access.
    slots: Box<[Vec<EventKey>; SLOTS]>,
    occupied: [u64; WORDS],
    /// Bit `w` set iff `occupied[w] != 0`. WORDS is at most 64, so the
    /// summary is a single word (enforced below).
    summary: u64,
}

const _: () =
    assert!(WORDS >= 1 && WORDS <= 64, "the summary bitmap is a single u64 over the slot words");

impl Level {
    fn new() -> Self {
        let slots = (0..SLOTS).map(|_| Vec::new()).collect::<Vec<_>>().into_boxed_slice();
        // lint: allow(P1, reason = "invariant: the boxed slice is built with exactly SLOTS elements on the previous line")
        let slots = slots.try_into().expect("slot array is SLOTS long");
        Level { slots, occupied: [0; WORDS], summary: 0 }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
        self.summary |= 1u64 << (idx / 64);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        let w = idx / 64;
        self.occupied[w] &= !(1u64 << (idx % 64));
        if self.occupied[w] == 0 {
            self.summary &= !(1u64 << w);
        }
    }

    #[inline]
    fn is_set(&self, idx: usize) -> bool {
        self.occupied[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Lowest occupied slot index, if any: summary word → slot word.
    #[inline]
    fn first_occupied(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        Some(w * 64 + self.occupied[w].trailing_zeros() as usize)
    }
}

/// The hierarchical timing wheel. See the module docs for the design;
/// use it through [`EventScheduler`] unless benchmarking it directly.
pub struct TimingWheel {
    levels: [Level; LEVELS],
    /// Cursor: the timestamp of the most recently drained bucket. All
    /// wheel/overflow entries are `> now`; same-time entries are in
    /// `ready`.
    now: u64,
    /// Exact minimum over wheel + overflow (not `ready`); `None` when
    /// both are empty. Maintained by `min` on push, recomputed once per
    /// bucket drain.
    min_time: Option<u64>,
    /// Far-future entries (beyond the cursor's 2^48 ns epoch), keyed by
    /// exact timestamp; values are `(seq, slot)`.
    overflow: BTreeMap<u64, Vec<(u64, usize)>>,
    /// The live bucket: entries at one single timestamp, sorted by
    /// `seq`. Swapped out whole by `drain_bucket`.
    ready: Vec<EventKey>,
    /// Reusable scratch for cascading a slot without aliasing `self`.
    cascade_buf: Vec<EventKey>,
    len: usize,
    /// Structural counters for observability: pure functions of the
    /// push/drain schedule, so deterministic per `(seed, spec)`.
    counters: SchedCounters,
}

impl TimingWheel {
    /// An empty wheel with its cursor at t = 0.
    pub fn new() -> Self {
        TimingWheel {
            levels: std::array::from_fn(|_| Level::new()),
            now: 0,
            min_time: None,
            overflow: BTreeMap::new(),
            ready: Vec::new(),
            cascade_buf: Vec::new(),
            len: 0,
            counters: SchedCounters::default(),
        }
    }

    /// Number of pending entries (including the live bucket).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an entry. `t` must be at or after the last drained
    /// bucket's timestamp (see the module-level ordering contract).
    #[inline]
    pub fn push(&mut self, t: u64, seq: u64, slot: usize) {
        self.len += 1;
        self.counters.pushes += 1;
        self.place(t, seq, slot);
    }

    /// Structural counters accumulated so far.
    pub fn counters(&self) -> SchedCounters {
        self.counters
    }

    /// Earliest pending timestamp, if any. O(1).
    #[inline]
    pub fn peek_time(&self) -> Option<u64> {
        match self.ready.first() {
            // The live bucket is at the cursor, which everything in the
            // wheel and overflow is strictly after.
            Some(&(t, _, _)) => Some(t),
            None => self.min_time,
        }
    }

    /// Moves every entry at the earliest pending timestamp into `out`
    /// (cleared first), in ascending `seq` order. Leaves `out` empty
    /// when nothing is pending. O(1) amortized: cascades touch each
    /// entry at most once per wheel level over its lifetime.
    #[inline]
    pub fn drain_bucket(&mut self, out: &mut Vec<EventKey>) {
        out.clear();
        if self.ready.is_empty() {
            let Some(t) = self.min_time else { return };
            // Same-window fast path: when t shares the cursor's level-0
            // window, every upper timestamp bit matches the cursor's,
            // so no epoch change and no cascade is possible — and
            // because entries at upper levels (or in overflow) differ
            // from the cursor in exactly those bits, the minimum entry
            // at t must already sit at level 0. Its slot holds only
            // exact-time-t entries (one slot = one timestamp within the
            // window), so it *is* the bucket: swap it straight into
            // `out`. On dense timelines (deltas under the 4096 ns
            // window) this is nearly every drain.
            if (t >> SLOT_BITS) == (self.now >> SLOT_BITS) {
                self.now = t;
                let idx0 = (t as usize) & (SLOTS - 1);
                let lvl = &mut self.levels[0];
                debug_assert!(lvl.is_set(idx0), "min_time must point at a level-0 slot");
                std::mem::swap(out, &mut lvl.slots[idx0]);
                lvl.clear(idx0);
                if out.len() > 1 {
                    // All entries share timestamp t; order by seq.
                    out.sort_unstable_by_key(|&(_, rs, _)| rs);
                }
                self.len -= out.len();
                self.counters.buckets_drained += 1;
                self.min_time = self.compute_min();
                return;
            }
            self.advance_to(t);
        }
        self.len -= self.ready.len();
        if !self.ready.is_empty() {
            self.counters.buckets_drained += 1;
        }
        std::mem::swap(out, &mut self.ready);
    }

    /// Files an entry into `ready`, a wheel level, or the overflow tree
    /// according to the current cursor. Does not touch `len`.
    fn place(&mut self, t: u64, seq: u64, slot: usize) {
        if t <= self.now {
            // Same-time-as-live-bucket push (engine: an event processed
            // at t scheduling a follow-up at t). Insert in (time, seq)
            // position; the common case is an append.
            let pos = self
                .ready
                .iter()
                .rposition(|&(rt, rs, _)| (rt, rs) <= (t, seq))
                .map_or(0, |p| p + 1);
            self.ready.insert(pos, (t, seq, slot));
            return;
        }
        // Branchless level select: the highest timestamp bit on which t
        // and the cursor differ picks the level directly (12 bits per
        // level). A differing bit at or above WHEEL_BITS means t is in
        // a different 2^48 ns epoch — the overflow tree's territory —
        // so the old per-level window scan and the separate epoch check
        // collapse into one leading_zeros.
        let diff_bit = 63 - (t ^ self.now).leading_zeros();
        let level = (diff_bit / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.entry(t).or_default().push((seq, slot));
        } else {
            let idx = ((t >> (SLOT_BITS * level as u32)) as usize) & (SLOTS - 1);
            self.levels[level].slots[idx].push((t, seq, slot));
            self.levels[level].set(idx);
        }
        self.min_time = Some(self.min_time.map_or(t, |m| m.min(t)));
    }

    /// Advances the cursor to `t` (the exact wheel/overflow minimum),
    /// promoting overflow entries on an epoch change, cascading upper
    /// levels down, and loading the bucket at `t` into `ready`.
    /// The slow path of a drain: the target bucket is outside the
    /// cursor's level-0 window, so epoch promotion and cascades apply
    /// (`drain_bucket` handles the same-window case inline).
    fn advance_to(&mut self, t: u64) {
        let old = self.now;
        self.now = t;

        // Far-future promotion: on entering a new 2^48 ns epoch, pull
        // that whole epoch out of the overflow tree and re-file it.
        if (t >> WHEEL_BITS) != (old >> WHEEL_BITS) && !self.overflow.is_empty() {
            // NB: not `checked_shl` — that only guards the shift
            // *amount*, and `(epoch + 1) << WHEEL_BITS` wraps silently
            // to 0 in the last representable epoch, which would leave
            // every overflow entry stranded.
            let next_epoch = (t >> WHEEL_BITS) + 1;
            let promoted = if next_epoch > (u64::MAX >> WHEEL_BITS) {
                // The cursor is in the last representable epoch: every
                // remaining overflow entry belongs to it.
                std::mem::take(&mut self.overflow)
            } else {
                let tail = self.overflow.split_off(&(next_epoch << WHEEL_BITS));
                std::mem::replace(&mut self.overflow, tail)
            };
            for (time, entries) in promoted {
                self.counters.overflow_promotions += entries.len() as u64;
                for (seq, slot) in entries {
                    self.place(time, seq, slot);
                }
            }
        }

        // Cascade: re-file the upper-level slot containing t at each
        // level, top down. Slots whose window did not change are
        // provably empty, so this is harmless and branch-cheap.
        for k in (1..LEVELS).rev() {
            let idx = ((t >> (SLOT_BITS * k as u32)) as usize) & (SLOTS - 1);
            if self.levels[k].is_set(idx) {
                self.counters.cascades += 1;
                let mut buf = std::mem::take(&mut self.cascade_buf);
                std::mem::swap(&mut buf, &mut self.levels[k].slots[idx]);
                self.levels[k].clear(idx);
                for (et, es, eslot) in buf.drain(..) {
                    self.place(et, es, eslot);
                }
                self.cascade_buf = buf;
            }
        }

        // The level-0 slot at t is the bucket: one exact timestamp.
        // Entries re-filed at exactly t by the cascade are already in
        // `ready`; merge and order by seq.
        let idx0 = (t as usize) & (SLOTS - 1);
        if self.levels[0].is_set(idx0) {
            let mut buf = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut buf, &mut self.levels[0].slots[idx0]);
            self.levels[0].clear(idx0);
            self.ready.append(&mut buf);
            self.cascade_buf = buf;
        }
        // Singleton buckets — the overwhelmingly common case on sparse
        // timelines — are trivially sorted; skip the sort dispatch.
        if self.ready.len() > 1 {
            self.ready.sort_unstable_by_key(|&(rt, rs, _)| (rt, rs));
        }

        self.min_time = self.compute_min();
    }

    /// Exact minimum over the wheel levels and the overflow tree,
    /// exploiting the level ordering invariant: every entry at level k
    /// is strictly earlier than every entry at level k+1, and the
    /// overflow tree holds the latest entries of all.
    fn compute_min(&self) -> Option<u64> {
        if let Some(idx) = self.levels[0].first_occupied() {
            // Level-0 slots are exact timestamps within the cursor's
            // 4096 ns window.
            return Some((self.now >> SLOT_BITS << SLOT_BITS) | idx as u64);
        }
        for k in 1..LEVELS {
            if let Some(idx) = self.levels[k].first_occupied() {
                // The earliest occupied slot of the first non-empty
                // level holds the global minimum; scan it for the exact
                // time (paid once per drain, amortized by the cascade).
                return self.levels[k].slots[idx].iter().map(|&(et, _, _)| et).min();
            }
        }
        self.overflow.keys().next().copied()
    }
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

/// The engine-facing scheduler: the timing wheel, or the binary-heap
/// baseline behind the same bucket-drain interface.
// The wheel variant carries its occupancy bitmaps inline (~2 KiB) so the
// drain hot path never chases a pointer to reach them; the enum lives
// once per engine, so the size skew costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum EventScheduler {
    /// Hierarchical timing wheel (production).
    Wheel(TimingWheel),
    /// `BinaryHeap` reference discipline (A/B tests and benchmarks).
    Heap {
        /// The reference heap itself.
        heap: BinaryHeap<Reverse<EventKey>>,
        /// Push/drain counters (cascade counters stay 0: heaps never
        /// cascade or promote).
        counters: SchedCounters,
    },
}

impl EventScheduler {
    /// Creates an empty scheduler of the requested kind.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Wheel => EventScheduler::Wheel(TimingWheel::new()),
            SchedulerKind::Heap => {
                EventScheduler::Heap { heap: BinaryHeap::new(), counters: SchedCounters::default() }
            }
        }
    }

    /// Schedules `(t, seq, slot)`.
    pub fn push(&mut self, t: u64, seq: u64, slot: usize) {
        match self {
            EventScheduler::Wheel(w) => w.push(t, seq, slot),
            EventScheduler::Heap { heap, counters } => {
                counters.pushes += 1;
                heap.push(Reverse((t, seq, slot)));
            }
        }
    }

    /// Earliest pending timestamp, if any.
    pub fn peek_time(&self) -> Option<u64> {
        match self {
            EventScheduler::Wheel(w) => w.peek_time(),
            EventScheduler::Heap { heap, .. } => heap.peek().map(|&Reverse((t, _, _))| t),
        }
    }

    /// Drains every entry sharing the earliest timestamp into `out`
    /// (cleared first), in `(time, seq)` order.
    pub fn drain_bucket(&mut self, out: &mut Vec<EventKey>) {
        match self {
            EventScheduler::Wheel(w) => w.drain_bucket(out),
            EventScheduler::Heap { heap, counters } => {
                out.clear();
                let Some(&Reverse((t, _, _))) = heap.peek() else { return };
                counters.buckets_drained += 1;
                while let Some(&Reverse((et, _, _))) = heap.peek() {
                    if et != t {
                        break;
                    }
                    if let Some(Reverse(entry)) = heap.pop() {
                        out.push(entry);
                    }
                }
            }
        }
    }

    /// Structural counters: how many pushes and bucket drains this
    /// scheduler performed (plus wheel-only cascade/promotion tallies).
    /// Deterministic per `(seed, spec)` but **not** invariant across
    /// scheduler kinds — reported beside traces, never inside them.
    pub fn counters(&self) -> SchedCounters {
        match self {
            EventScheduler::Wheel(w) => w.counters(),
            EventScheduler::Heap { counters, .. } => *counters,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        match self {
            EventScheduler::Wheel(w) => w.len(),
            EventScheduler::Heap { heap, .. } => heap.len(),
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples_rng::Rng;

    /// Pops everything from a scheduler as a flat `(time, seq)` list.
    fn pop_all(s: &mut EventScheduler) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut bucket = Vec::new();
        loop {
            s.drain_bucket(&mut bucket);
            if bucket.is_empty() {
                break;
            }
            out.extend(bucket.iter().map(|&(t, q, _)| (t, q)));
        }
        out
    }

    #[test]
    fn single_bucket_round_trip() {
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        w.push(42, 0, 7);
        w.push(42, 1, 8);
        assert_eq!(w.peek_time(), Some(42));
        assert_eq!(w.len(), 2);
        let mut bucket = Vec::new();
        w.drain_bucket(&mut bucket);
        assert_eq!(bucket, vec![(42, 0, 7), (42, 1, 8)]);
        assert!(w.is_empty());
        w.drain_bucket(&mut bucket);
        assert!(bucket.is_empty());
    }

    #[test]
    fn level_boundary_times_order_correctly() {
        // Events exactly at every wheel-level boundary (4096^k) plus
        // their neighbors: the cascade must keep the total order exact
        // where a slot index wraps to zero.
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        let mut want = Vec::new();
        let mut seq = 0u64;
        for k in 1..=3u32 {
            let b = 1u64 << (SLOT_BITS * k);
            for t in [b - 1, b, b + 1] {
                w.push(t, seq, 0);
                want.push((t, seq));
                seq += 1;
            }
        }
        want.sort_unstable();
        assert_eq!(pop_all(&mut w), want);
    }

    #[test]
    fn far_future_overflow_promotes_on_epoch_change() {
        // Entries beyond the 2^48 ns horizon live in the overflow tree;
        // draining into their epoch must promote them in exact order —
        // including two distinct far epochs and an entry that lands
        // back in the wheel mid-epoch.
        let epoch = 1u64 << WHEEL_BITS;
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        let times =
            [5, epoch + 3, epoch + 3, 2 * epoch + 77, 3 * epoch, 3 * epoch + epoch / 2, 900];
        let mut want = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, 0);
            want.push((t, seq as u64));
        }
        want.sort_unstable();
        assert_eq!(pop_all(&mut w), want);
    }

    #[test]
    fn same_timestamp_orders_by_seq_under_perturbed_insertion() {
        // Push one timestamp's entries in scrambled seq order (the
        // slot Vec sees them out of order); the drain must sort them.
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        let seqs = [9u64, 2, 14, 0, 7, 3, 11, 1];
        for &q in &seqs {
            w.push(1000, q, q as usize);
        }
        let mut bucket = Vec::new();
        w.drain_bucket(&mut bucket);
        let got: Vec<u64> = bucket.iter().map(|&(_, q, _)| q).collect();
        let mut want = seqs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn pushes_at_the_live_bucket_time_merge_in_seq_position() {
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        w.push(50, 0, 0);
        w.push(50, 2, 2);
        let mut bucket = Vec::new();
        w.drain_bucket(&mut bucket);
        assert_eq!(bucket.len(), 2);
        // While the bucket at t=50 is live, a same-time follow-up (with
        // a higher seq, as the engine mints them) joins the next drain
        // of the same timestamp.
        w.push(50, 3, 3);
        w.push(51, 4, 4);
        assert_eq!(w.peek_time(), Some(50));
        w.drain_bucket(&mut bucket);
        assert_eq!(bucket, vec![(50, 3, 3)]);
        w.drain_bucket(&mut bucket);
        assert_eq!(bucket, vec![(51, 4, 4)]);
    }

    #[test]
    fn randomized_runs_match_heap_order_exactly() {
        // The conclusive A/B: a workload-shaped random schedule (mixed
        // short/long horizons, same-time collisions, occasional
        // far-future timers) pops identically from wheel and heap.
        let mut rng = Rng::seed_from_u64(0x5EED_CA1E);
        for round in 0..20u64 {
            let mut wheel = EventScheduler::new(SchedulerKind::Wheel);
            let mut heap = EventScheduler::new(SchedulerKind::Heap);
            let mut seq = 0u64;
            let mut now = 0u64;
            let push_both =
                |t: u64, seq: &mut u64, w: &mut EventScheduler, h: &mut EventScheduler| {
                    w.push(t, *seq, *seq as usize);
                    h.push(t, *seq, *seq as usize);
                    *seq += 1;
                };
            for _ in 0..200 {
                let delta = match rng.range_u64(0, 10) {
                    0 => 0,
                    1..=5 => rng.range_u64(1, 300),
                    6..=8 => rng.range_u64(300, 100_000),
                    _ => rng.range_u64(1 << (WHEEL_BITS - 2), 1 << (WHEEL_BITS + 1)), // cross epochs
                };
                push_both(now + delta, &mut seq, &mut wheel, &mut heap);
            }
            // Interleave drains with fresh same-or-later pushes, the
            // way the engine does.
            let mut wb = Vec::new();
            let mut hb = Vec::new();
            while !wheel.is_empty() || !heap.is_empty() {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "round {round}");
                wheel.drain_bucket(&mut wb);
                heap.drain_bucket(&mut hb);
                assert_eq!(wb, hb, "round {round}");
                if let Some(&(t, _, _)) = wb.first() {
                    now = t;
                    if rng.range_u64(0, 3) == 0 {
                        let d = rng.range_u64(0, 500);
                        push_both(now + d, &mut seq, &mut wheel, &mut heap);
                    }
                }
            }
            assert_eq!(wheel.peek_time(), None);
        }
    }

    #[test]
    fn len_tracks_pushes_and_drains() {
        let mut w = EventScheduler::new(SchedulerKind::Wheel);
        for i in 0..100u64 {
            w.push(i * 17 % 5000, i, 0);
        }
        assert_eq!(w.len(), 100);
        let mut bucket = Vec::new();
        let mut popped = 0;
        while !w.is_empty() {
            w.drain_bucket(&mut bucket);
            popped += bucket.len();
        }
        assert_eq!(popped, 100);
        assert_eq!(w.len(), 0);
    }
}
