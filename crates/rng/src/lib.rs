//! Deterministic pseudo-random numbers with zero external dependencies.
//!
//! The workspace needs reproducible randomness in two places: workload
//! synthesis (packet sizes, inter-arrival gaps, flow populations) and
//! test-input generation (seeded property loops). Both were previously
//! served by the `rand` crate; this module replaces it with two small,
//! well-known generators so the build is hermetic:
//!
//! - [`SplitMix64`] — the stateless-feeling 64-bit mixer from Steele,
//!   Lea & Flood ("Fast splittable pseudorandom number generators",
//!   OOPSLA 2014). Used to expand a user seed into generator state and
//!   to derive independent sub-streams.
//! - [`Rng`] — xoshiro256** 1.0 (Blackman & Vigna), seeded via
//!   SplitMix64 exactly as its authors recommend. This is the
//!   general-purpose generator used everywhere.
//!
//! Both algorithms are public domain; the implementations here are
//! written from the published recurrences. Their output is frozen by
//! regression vectors in this crate's tests — if those vectors ever
//! change, every seeded workload in the repo silently changes, so the
//! vectors are load-bearing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// SplitMix64: a tiny 64-bit generator with a single u64 of state.
///
/// Primarily used for seeding [`Rng`] and deriving per-stream seeds;
/// it is a fine standalone generator for non-statistical uses too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed. Any value works,
    /// including zero.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Mixes a single u64 through the SplitMix64 finalizer — useful for
/// turning structured identifiers (packet ids, stream indices) into
/// well-distributed seeds without carrying generator state.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256** 1.0 — the workspace's general-purpose generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded from a
/// u64 via SplitMix64 so that every distinct seed yields a distinct,
/// well-mixed starting state (and so seed 0 is as good as any other).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64, per the xoshiro authors' seeding recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Derives an independent generator for sub-stream `index`.
    ///
    /// Streams are decorrelated by mixing the index into fresh seed
    /// material rather than by jumping, which keeps the construction
    /// obviously deterministic: `fork(i)` depends only on the parent's
    /// current state and `i`.
    pub fn fork(&mut self, index: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from_u64(base ^ mix64(index))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits (the high half of a 64-bit draw,
    /// which is the better-mixed half for this generator family).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)`, using the standard 53-bit mantissa
    /// construction.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step to remove modulo bias.
    ///
    /// # Panics
    /// If `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires a non-zero bound");
        // Widening multiply: (x * bound) >> 64 is uniform once biased
        // low products are rejected.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform u64 in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded_u64(hi - lo)
    }

    /// Uniform u64 in the closed range `[lo, hi]`.
    ///
    /// # Panics
    /// If `lo > hi`.
    pub fn range_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded_u64(span + 1)
    }

    /// Uniform u32 in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform u32 in `[lo, hi]`.
    pub fn range_u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64_inclusive(lo as u64, hi as u64) as u32
    }

    /// Uniform u16 in `[lo, hi)`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64(lo as u64, hi as u64) as u16
    }

    /// Uniform u16 in `[lo, hi]`.
    pub fn range_u16_inclusive(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64_inclusive(lo as u64, hi as u64) as u16
    }

    /// Uniform u8 in `[lo, hi]`.
    pub fn range_u8_inclusive(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64_inclusive(lo as u64, hi as u64) as u8
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    ///
    /// # Panics
    /// If the range is empty or not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad f64 range {lo}..{hi}");
        let u = self.next_f64();
        // Clamp guards against lo + (hi-lo)*u rounding up to hi.
        (lo + (hi - lo) * u).min(hi - f64::EPSILON * hi.abs().max(1.0))
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frozen reference outputs computed independently from the
    /// published SplitMix64 recurrence. Changing the implementation in
    /// any output-visible way must fail this test.
    #[test]
    fn splitmix64_matches_reference_vectors() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(g.next_u64(), 0xF88B_B8A8_724C_81EC);

        let mut g = SplitMix64::new(1);
        assert_eq!(g.next_u64(), 0x910A_2DEC_8902_5CC1);
        assert_eq!(g.next_u64(), 0xBEEB_8DA1_658E_EC67);

        let mut g = SplitMix64::new(0xDEAD_BEEF);
        assert_eq!(g.next_u64(), 0x4ADF_B90F_68C9_EB9B);
        assert_eq!(g.next_u64(), 0xDE58_6A31_41A1_0922);
    }

    /// Frozen reference outputs for xoshiro256** seeded via SplitMix64,
    /// computed independently from the published algorithm.
    #[test]
    fn xoshiro_matches_reference_vectors() {
        let mut g = Rng::seed_from_u64(0);
        assert_eq!(g.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(g.next_u64(), 0xBF6E_1F78_4956_452A);
        assert_eq!(g.next_u64(), 0x1A5F_849D_4933_E6E0);
        assert_eq!(g.next_u64(), 0x6AA5_94F1_262D_2D2C);

        let mut g = Rng::seed_from_u64(42);
        assert_eq!(g.next_u64(), 0x1578_0B2E_0C2E_C716);
        assert_eq!(g.next_u64(), 0x6104_D986_6D11_3A7E);
        assert_eq!(g.next_u64(), 0xAE17_5332_39E4_99A1);
        assert_eq!(g.next_u64(), 0xECB8_AD47_03B3_60A1);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut g = Rng::seed_from_u64(3);
        for _ in 0..100_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut g = Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bounded_is_unbiased_across_small_bound() {
        let mut g = Rng::seed_from_u64(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[g.bounded_u64(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = n as f64 / 7.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn ranges_respect_their_bounds() {
        let mut g = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = g.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = g.range_u64_inclusive(10, 20);
            assert!((10..=20).contains(&y));
            let z = g.range_f64(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&z), "{z}");
            let p = g.range_u8_inclusive(0, 32);
            assert!(p <= 32);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut g = Rng::seed_from_u64(1);
        // Must not panic; covers the span == u64::MAX special case.
        let _ = g.range_u64_inclusive(0, u64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut g = Rng::seed_from_u64(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(g.gen_bool(1.0));
        assert!(!g.gen_bool(0.0));
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = Rng::seed_from_u64(99);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(mix64(1), mix64(2));
    }
}
