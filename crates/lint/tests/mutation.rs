//! Seeded-mutation tests: take the *real* engine source, inject the
//! exact nondeterminism bugs the S rules exist to stop (a hash-order
//! walk feeding the scheduler, a wall-clock timestamp, a pointer-derived
//! sequence number), and assert the analyzer catches every one.
//!
//! This is the analyzer's own identity gate: the golden fixtures prove
//! the rules fire on distilled examples, this proves they fire on the
//! production dispatch code they are meant to guard.

use apples_lint::lint_source;
use std::path::Path;

const ENGINE_REL: &str = "crates/simnet/src/engine.rs";

fn engine_source() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../simnet/src/engine.rs");
    std::fs::read_to_string(path).expect("engine source readable")
}

/// The pristine engine carries no S findings — mutations below are the
/// only delta, so any new finding is attributable to the injected bug.
#[test]
fn pristine_engine_has_no_s_findings() {
    let report = lint_source(ENGINE_REL, &engine_source());
    let s: Vec<_> = report.findings.iter().filter(|f| f.rule.starts_with('S')).collect();
    assert!(s.is_empty(), "pristine engine flagged: {s:?}");
}

fn s3_hits(src: &str) -> Vec<String> {
    lint_source(ENGINE_REL, src)
        .findings
        .iter()
        .filter(|f| f.rule == "S3")
        .map(|f| f.message.clone())
        .collect()
}

/// Mutation 1: drain pending events by walking a `HashMap` — iteration
/// order would differ run to run, so delivery order would too.
#[test]
fn hash_order_drain_is_caught() {
    let mut src = engine_source();
    src.push_str(
        "\npub fn mutated_drain(map: &std::collections::HashMap<u64, u32>, core: &mut EngineCore) {\n\
         \x20   for (when, tag) in map.iter() {\n\
         \x20       core.events.push(*when, core.mint_seq(), *tag);\n\
         \x20   }\n\
         }\n",
    );
    let hits = s3_hits(&src);
    assert!(
        hits.iter().any(|m| m.contains("hash-iteration order")),
        "hash-order mutation missed: {hits:?}"
    );
    // The plain D1 container rule backs the taint pass up.
    let report = lint_source(ENGINE_REL, &src);
    assert!(report.findings.iter().any(|f| f.rule == "D1"));
}

/// Mutation 2: stamp an event with the host clock — replay from
/// `(seed, spec)` dies the moment wall time leaks into `t_ns`.
#[test]
fn wall_clock_timestamp_is_caught() {
    let mut src = engine_source();
    src.push_str(
        "\npub fn mutated_stamp() -> u64 {\n\
         \x20   let wall = std::time::Instant::now();\n\
         \x20   let t_ns = wall.elapsed().as_nanos() as u64;\n\
         \x20   t_ns\n\
         }\n",
    );
    let hits = s3_hits(&src);
    assert!(
        hits.iter().any(|m| m.contains("t_ns") && m.contains("wall-clock")),
        "wall-clock mutation missed: {hits:?}"
    );
}

/// Mutation 3: mint `seq` from an allocator address — unique, monotone
/// within a run, and different on every run: the classic silent killer.
#[test]
fn pointer_derived_seq_is_caught() {
    let mut src = engine_source();
    src.push_str(
        "\npub fn mutated_seq(ev: &EventKey) -> u64 {\n\
         \x20   let addr = ev as *const EventKey as usize;\n\
         \x20   let seq = addr as u64;\n\
         \x20   seq\n\
         }\n",
    );
    let hits = s3_hits(&src);
    assert!(
        hits.iter().any(|m| m.contains("seq") && m.contains("pointer/address")),
        "pointer mutation missed: {hits:?}"
    );
}

/// Fingerprints survive reformatting: the same finding keeps its
/// identity when the file is re-indented and lines shift.
#[test]
fn fingerprints_survive_reformatting() {
    let bad = "pub fn f() {\n    let t_ns = std::time::Instant::now().elapsed().as_nanos() as u64;\n    t_ns\n}\n";
    let shifted = format!("// a new leading comment\n\n{}", bad.replace("    ", "        "));
    let a = lint_source(ENGINE_REL, bad);
    let b = lint_source(ENGINE_REL, &shifted);
    let fp = |r: &apples_lint::LintReport| -> Vec<String> {
        r.findings.iter().filter(|f| f.rule == "S3").map(|f| f.fingerprint.clone()).collect()
    };
    assert_eq!(fp(&a), fp(&b), "fingerprints must not depend on line numbers or indentation");
    assert!(!fp(&a).is_empty());
}
