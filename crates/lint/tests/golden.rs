//! Golden tests for the analyzer: a fixture tree of known-bad sources
//! with an exact expected finding list, plus a self-check that the real
//! workspace stays lint-clean.

use apples_lint::{lint_workspace, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn fixture_findings_match_golden() {
    let report = lint_workspace(&fixture_root()).expect("fixture tree scans");
    let got: Vec<(&str, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.path.as_str(), f.line)).collect();
    let want: Vec<(&str, &str, usize)> = vec![
        ("S2", "crates/bench/src/entropy.rs", 3),
        ("S2", "crates/bench/src/entropy.rs", 6),
        ("H1", "crates/bench/src/main.rs", 1),
        ("D3", "crates/bench/src/threads.rs", 4),
        ("A1", "crates/core/src/allows.rs", 6),
        ("D1", "crates/core/src/allows.rs", 7),
        ("D1", "crates/core/src/allows.rs", 8),
        ("A1", "crates/core/src/allows.rs", 11),
        ("D2", "crates/core/src/clock.rs", 6),
        ("N1", "crates/core/src/floats.rs", 4),
        ("P1", "crates/core/src/panics.rs", 8),
        ("P1", "crates/core/src/panics.rs", 9),
        ("P1", "crates/core/src/panics.rs", 11),
        ("A2", "crates/core/src/stale.rs", 3),
        ("N2", "crates/metrics/src/sig.rs", 9),
        ("D3", "crates/simnet/src/sched.rs", 5),
        ("S1", "crates/simnet/src/shared_state.rs", 3),
        ("S1", "crates/simnet/src/shared_state.rs", 6),
        ("S1", "crates/simnet/src/shared_state.rs", 20),
        ("D2", "crates/simnet/src/tainted.rs", 5),
        ("S3", "crates/simnet/src/tainted.rs", 6),
        ("S3", "crates/simnet/src/tainted.rs", 7),
        ("S3", "crates/simnet/src/tainted.rs", 12),
        ("S3", "crates/simnet/src/tainted.rs", 13),
        ("D1", "crates/simnet/src/tainted.rs", 16),
        ("S3", "crates/simnet/src/tainted.rs", 18),
        ("D1", "crates/simnet/src/unordered.rs", 3),
        ("D1", "crates/simnet/src/unordered.rs", 8),
        ("D1", "crates/simnet/src/unordered.rs", 9),
        ("H1", "src/lib.rs", 1),
        ("H1", "src/lib.rs", 1),
    ];
    assert_eq!(got, want, "full report:\n{}", report.render());
    // The reasoned D1 allow plus the reasoned S1 allows on the OnceLock
    // and the sanctioned barrier.
    assert_eq!(report.suppressed, 3, "exactly the reasoned allows suppress");
    assert_eq!(report.files_scanned, 16);
    // Everything denies except the stale-suppression warning.
    for f in &report.findings {
        let want = if f.rule == "A2" { Severity::Warn } else { Severity::Deny };
        assert_eq!(f.severity, want, "{}:{} {}", f.path, f.line, f.rule);
    }
    // The scheduler module gets its own D3 phrasing (determinism rationale).
    let sched = report
        .findings
        .iter()
        .find(|f| f.path == "crates/simnet/src/sched.rs")
        .expect("scheduler fixture finding");
    assert!(sched.message.contains("event scheduler"), "got: {}", sched.message);
}

#[test]
fn fixture_decoys_stay_silent() {
    let report = lint_workspace(&fixture_root()).expect("fixture tree scans");
    // Rule text inside strings/comments, cfg(test) regions, tuple-field
    // comparisons, and the sanctioned pool path must produce nothing.
    assert!(report.findings.iter().all(|f| f.path != "crates/bench/src/pool.rs"));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("unordered.rs") && f.line > 10)));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("floats.rs") && f.line > 4)));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("panics.rs") && f.line > 14)));
    // S-rule scoping: the rng crate is exempt from S2; Arc payloads and
    // test-region cells never trip S1; the clean dispatch fn has no S3.
    assert!(report.findings.iter().all(|f| !f.path.starts_with("crates/rng/")));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("shared_state.rs") && f.line > 20)));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("tainted.rs") && f.line > 18)));
}

#[test]
fn fixture_fingerprints_are_unique_and_well_formed() {
    let report = lint_workspace(&fixture_root()).expect("fixture tree scans");
    let mut seen = std::collections::BTreeSet::new();
    for f in &report.findings {
        assert_eq!(f.fingerprint.len(), 16, "{}: {}", f.path, f.fingerprint);
        assert!(f.fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(seen.insert(f.fingerprint.clone()), "duplicate fingerprint {}", f.fingerprint);
        assert!(!f.legacy, "no baseline applied, nothing is legacy");
    }
}

#[test]
fn reports_render_byte_identically_across_runs() {
    let a = lint_workspace(&fixture_root()).expect("first run");
    let b = lint_workspace(&fixture_root()).expect("second run");
    assert_eq!(a.render(), b.render());
    assert_eq!(a.to_json().render_pretty(), b.to_json().render_pretty());
}

#[test]
fn real_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace scans");
    assert_eq!(report.deny_count(), 0, "workspace has deny findings:\n{}", report.render());
    assert_eq!(report.warn_count(), 0, "stale suppressions:\n{}", report.render());
    assert!(report.files_scanned > 50, "walker should see the whole workspace");
}
