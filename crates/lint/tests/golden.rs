//! Golden tests for the analyzer: a fixture tree of known-bad sources
//! with an exact expected finding list, plus a self-check that the real
//! workspace stays lint-clean.

use apples_lint::{lint_workspace, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn fixture_findings_match_golden() {
    let report = lint_workspace(&fixture_root()).expect("fixture tree scans");
    let got: Vec<(&str, &str, usize)> =
        report.findings.iter().map(|f| (f.rule, f.path.as_str(), f.line)).collect();
    let want: Vec<(&str, &str, usize)> = vec![
        ("H1", "crates/bench/src/main.rs", 1),
        ("D3", "crates/bench/src/threads.rs", 4),
        ("A1", "crates/core/src/allows.rs", 6),
        ("D1", "crates/core/src/allows.rs", 7),
        ("D1", "crates/core/src/allows.rs", 8),
        ("A1", "crates/core/src/allows.rs", 11),
        ("D2", "crates/core/src/clock.rs", 6),
        ("N1", "crates/core/src/floats.rs", 4),
        ("P1", "crates/core/src/panics.rs", 8),
        ("P1", "crates/core/src/panics.rs", 9),
        ("P1", "crates/core/src/panics.rs", 11),
        ("N2", "crates/metrics/src/sig.rs", 9),
        ("D3", "crates/simnet/src/sched.rs", 5),
        ("D1", "crates/simnet/src/unordered.rs", 3),
        ("D1", "crates/simnet/src/unordered.rs", 8),
        ("D1", "crates/simnet/src/unordered.rs", 9),
        ("H1", "src/lib.rs", 1),
        ("H1", "src/lib.rs", 1),
    ];
    assert_eq!(got, want, "full report:\n{}", report.render());
    assert_eq!(report.suppressed, 1, "exactly the reasoned allow suppresses");
    assert_eq!(report.files_scanned, 11);
    assert!(report.findings.iter().all(|f| f.severity == Severity::Deny));
    // The scheduler module gets its own D3 phrasing (determinism rationale).
    let sched = report
        .findings
        .iter()
        .find(|f| f.path == "crates/simnet/src/sched.rs")
        .expect("scheduler fixture finding");
    assert!(sched.message.contains("event scheduler"), "got: {}", sched.message);
}

#[test]
fn fixture_decoys_stay_silent() {
    let report = lint_workspace(&fixture_root()).expect("fixture tree scans");
    // Rule text inside strings/comments, cfg(test) regions, tuple-field
    // comparisons, and the sanctioned pool path must produce nothing.
    assert!(report.findings.iter().all(|f| f.path != "crates/bench/src/pool.rs"));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("unordered.rs") && f.line > 10)));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("floats.rs") && f.line > 4)));
    assert!(report.findings.iter().all(|f| !(f.path.ends_with("panics.rs") && f.line > 14)));
}

#[test]
fn reports_render_byte_identically_across_runs() {
    let a = lint_workspace(&fixture_root()).expect("first run");
    let b = lint_workspace(&fixture_root()).expect("second run");
    assert_eq!(a.render(), b.render());
    assert_eq!(a.to_json().render_pretty(), b.to_json().render_pretty());
}

#[test]
fn real_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace scans");
    assert_eq!(report.deny_count(), 0, "workspace has deny findings:\n{}", report.render());
    assert_eq!(report.warn_count(), 0);
    assert!(report.files_scanned > 50, "walker should see the whole workspace");
}
