//! S2 fixture: RNG/hashing outside the seeded streams, plus decoys.

use std::collections::hash_map::DefaultHasher;

pub fn unstable_hash() -> u64 {
    let _h = DefaultHasher::default();
    0
}

// A decoy: `thread_rng()` in a string must not fire.
pub const DECOY: &str = "thread_rng() mentioned in prose";

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_in_tests_is_fine() {
        let _h = super::DefaultHasher::default();
    }
}
