//! D3 fixture: raw thread use outside the sanctioned pool.

pub fn naive_parallelism() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
