//! D3 exemption fixture: this path is the sanctioned pool module.

pub fn sanctioned() {
    std::thread::yield_now();
}
