//! H1 fixture: a binary crate root missing the unsafe ban.

fn main() {}
