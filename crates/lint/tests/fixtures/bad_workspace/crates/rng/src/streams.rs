//! S2 negative fixture: the rng crate is the sanctioned home for
//! entropy plumbing, so S2 must stay silent here.

pub fn reseed_shim() -> u64 {
    let raw = getrandom();
    raw ^ 0x9e37_79b9
}

fn getrandom() -> u64 {
    0
}
