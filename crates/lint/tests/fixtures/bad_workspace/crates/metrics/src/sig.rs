//! N2 fixture: a raw-f64 bypass and an exempt unit constructor.

pub struct Quantity(f64);

pub fn grams(v: f64) -> Quantity {
    Quantity(v)
}

pub fn leak(q: &Quantity) -> f64 {
    q.0
}
