//! P1 fixture: every panic pattern in scope, none in test code.

fn opt() -> Option<u32> {
    None
}

pub fn all_three() -> u32 {
    let a = opt().unwrap();
    let b = opt().expect("fixture");
    if a + b > 3 {
        panic!("fixture");
    }
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let _ = super::opt().unwrap();
    }
}
