//! Allow fixture: reasoned, unreasoned, and unknown-rule suppressions.

// lint: allow(D1, reason = "fixture: a reasoned allow suppresses the finding")
use std::collections::HashMap;

// lint: allow(D1)
pub fn unreasoned() -> HashMap<u32, u32> {
    HashMap::new()
}

// lint: allow(Z9, reason = "fixture: unknown rule id")
pub fn unknown() {}
