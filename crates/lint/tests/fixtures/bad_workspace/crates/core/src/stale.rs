//! A2 fixture: a reasoned allow whose rule never fires on its target.

// lint: allow(D2, reason = "this module reads no clocks at all")
pub fn quiet() -> u32 {
    7
}
