//! D2 fixture: a wall-clock read outside the sanctioned site.

use std::time::Instant;

pub fn leak_time() -> u128 {
    Instant::now().elapsed().as_nanos()
}
