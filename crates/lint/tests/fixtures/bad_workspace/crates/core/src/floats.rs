//! N1 fixture: float-literal equality, with a tuple-access decoy.

pub fn bad(x: f64) -> bool {
    x == 1.5
}

pub fn decoy(pair: (f64, f64)) -> bool {
    pair.0 == pair.1
}
