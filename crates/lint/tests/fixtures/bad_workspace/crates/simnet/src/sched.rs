//! D3 fixture: raw threads inside the event-scheduler hot path, where
//! bucket drain order (and so every result) depends on single-threading.

pub fn parallel_bucket_drain() {
    let handle = std::thread::spawn(|| 7);
    let _ = handle.join();
}
