//! S1 fixture: shared mutable state in the engine crate, plus decoys.

static mut EVENT_COUNT: u64 = 0;

pub struct Scratch {
    inner: std::cell::RefCell<Vec<u64>>,
}

// A decoy: `RefCell` in a comment must not fire.
const DECOY: &str = "RefCell in a string is silent";

// Immutable sharing is fine: S1 deliberately does not match bare Arc/Rc.
pub type Payload = std::sync::Arc<[u8]>;

// lint: allow(S1, reason = "write-once registry initialized before any dispatch runs")
pub static REGISTRY: std::sync::OnceLock<u32> = std::sync::OnceLock::new();

// A rendezvous outside the sanctioned shard runtime fires S1's named
// blocking-rendezvous class.
pub fn rendezvous(b: &std::sync::Barrier) {
    b.wait();
}

// lint: allow(S1, reason = "epoch-barrier shard runtime: fixture stand-in for the slot barrier")
pub fn sanctioned(b: &std::sync::Barrier) {
    b.wait();
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;

    #[test]
    fn cells_in_tests_are_fine() {
        let c = Cell::new(0u32);
        c.set(1);
        assert_eq!(c.get(), 1);
    }
}
