//! D1 fixture: unordered containers, plus decoys that must not fire.

use std::collections::HashMap;

// A comment mentioning HashMap must not fire.
const DECOY: &str = "HashMap in a string is not a finding";

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_side_sets_are_fine() {
        let _ = HashSet::<u32>::new();
    }
}
