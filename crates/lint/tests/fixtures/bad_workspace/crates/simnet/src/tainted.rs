//! S3 fixture: ordering taint flowing into the `(t_ns, seq)` key, plus
//! clean functions that must stay silent.

pub fn stamp_from_wall_clock(core: &mut Core) {
    let wall = std::time::Instant::now();
    let t_ns = wall.elapsed().as_nanos() as u64;
    core.push(t_ns, 0, 0);
}

pub fn seq_from_address(pkt: &Packet, core: &mut Core) {
    let addr = pkt as *const Packet as usize;
    let seq = addr as u64;
    core.schedule(seq);
}

pub fn drain_in_hash_order(map: &std::collections::HashMap<u64, u32>, core: &mut Core) {
    for (when, tag) in map.iter() {
        core.push(*when, 0, *tag);
    }
}

// Negative: the same sinks fed from seeded simulation state are silent.
pub fn clean_dispatch(core: &mut Core) {
    let t_ns = core.now + 10;
    let seq = core.mint_seq();
    core.push(t_ns, seq, 0);
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _t_ns = std::time::Instant::now();
    }
}
