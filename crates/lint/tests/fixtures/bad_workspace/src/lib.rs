//! H1 fixture: a library crate root missing both hygiene attributes.

pub fn entry() {}
