//! The rule catalog and per-line checks.
//!
//! Every rule encodes one invariant the workspace's results depend on
//! (see DESIGN.md §8 for the rationale tied to the paper):
//!
//! | id | tier | invariant |
//! |----|------|-----------|
//! | D1 | deny | no `HashMap`/`HashSet` in non-test code (iteration order would leak into reports) |
//! | D2 | deny | no `Instant::now`/`SystemTime` (wall clock in a deterministic simulation) |
//! | D3 | deny | no `thread::spawn`/`std::thread` outside the pool (scheduling must go through the deterministic harness) |
//! | P1 | deny | no `unwrap()`/`expect(`/`panic!` in library-crate non-test code |
//! | N1 | deny | no `==`/`!=` against float literals |
//! | N2 | deny | no raw `f64` in public `apples-metrics` signatures that bypass the unit newtypes |
//! | H1 | deny | crate roots carry `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` |
//! | A1 | deny | every `lint: allow` suppression states a reason |
//! | A2 | warn | no stale suppressions: an allow that matches no finding must be deleted |
//! | S1 | deny | no shared mutable state (`static mut`, interior-mutability cells) or blocking rendezvous (`Barrier`/`Condvar`) in `crates/simnet` |
//! | S2 | deny | no RNG/hashing outside a seed-derived `apples-rng` stream |
//! | S3 | deny | no wall-clock / hash-order / address-derived value may flow into `t_ns`/`seq`/slot (ordering-taint dataflow) |
//!
//! Suppression syntax, inline or on the directly preceding comment line:
//!
//! ```text
//! // lint: allow(D2, reason = "the one sanctioned wall-clock read")
//! ```

/// Finding severity tier. CI gates on `Deny`; `Warn` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the build.
    Warn,
    /// Gating: any deny finding makes `xp lint` exit non-zero.
    Deny,
}

impl Severity {
    /// Lower-case name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One rule of the catalog.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Short stable identifier (`D1`, `P1`, …) used in `allow(...)`.
    pub id: &'static str,
    /// Severity tier.
    pub severity: Severity,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// The full catalog, in report order.
pub const CATALOG: &[Rule] = &[
    Rule {
        id: "D1",
        severity: Severity::Deny,
        summary: "HashMap/HashSet in non-test code: unordered iteration can leak into reports; \
                  use BTreeMap/BTreeSet or drain in sorted order",
    },
    Rule {
        id: "D2",
        severity: Severity::Deny,
        summary: "wall-clock read (Instant::now/SystemTime) outside the sanctioned WallClock \
                  helper: simulated results must not depend on host time",
    },
    Rule {
        id: "D3",
        severity: Severity::Deny,
        summary: "raw std::thread outside crates/bench/src/pool.rs: concurrency must go through \
                  the deterministic work-stealing Pool",
    },
    Rule {
        id: "P1",
        severity: Severity::Deny,
        summary: "unwrap()/expect(/panic! in library non-test code: return Result or document \
                  the invariant with an allow",
    },
    Rule {
        id: "N1",
        severity: Severity::Deny,
        summary: "==/!= against a float literal: use a tolerance, or allow with a reason when \
                  comparing against an exact sentinel",
    },
    Rule {
        id: "N2",
        severity: Severity::Deny,
        summary: "raw f64 in a public apples-metrics signature: route values through \
                  Quantity/unit newtypes, or allow with the dimensional reason",
    },
    Rule {
        id: "H1",
        severity: Severity::Deny,
        summary: "crate root missing #![forbid(unsafe_code)] / #![deny(missing_docs)]",
    },
    Rule {
        id: "A1",
        severity: Severity::Deny,
        summary: "lint: allow(...) without a reason: suppressions must say why",
    },
    Rule {
        id: "A2",
        severity: Severity::Warn,
        summary: "stale suppression: this allow matched no finding and must be deleted \
                  (suppressions are claims, and stale claims rot the audit trail)",
    },
    Rule {
        id: "S1",
        severity: Severity::Deny,
        summary: "shared mutable state (static mut / RefCell / Cell / UnsafeCell / locks) or a \
                  blocking rendezvous (Barrier / Condvar) in crates/simnet: sharded dispatch \
                  would race on the former, and only the epoch-barrier shard runtime may use \
                  the latter — each such site needs a reasoned allow naming that contract",
    },
    Rule {
        id: "S2",
        severity: Severity::Deny,
        summary: "RNG or hashing outside a seed-derived apples-rng stream: results must \
                  replay from (seed, spec) alone",
    },
    Rule {
        id: "S3",
        severity: Severity::Deny,
        summary: "ordering taint: a value derived from a wall-clock read, hash-iteration \
                  order, or a pointer/address cast flows into t_ns/seq/slot (the engine's \
                  ordering key must be a pure function of the seeded simulation)",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.id == id)
}

/// A parsed `lint: allow(<rule>, reason = "...")` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule id being suppressed.
    pub rule: String,
    /// Whether a non-empty reason was given (mandatory; enforced by A1).
    pub has_reason: bool,
}

/// Parses the `lint: allow(...)` directives out of one line's comment
/// text. A directive must start the comment (`// lint: allow(...)`) so
/// prose *about* the syntax — like this sentence — is never parsed.
pub fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    if !comment.trim_start().starts_with("lint: allow(") {
        return out;
    }
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (rule_part, reason_part) = match inner.split_once(',') {
            Some((r, rest)) => (r, Some(rest)),
            None => (inner, None),
        };
        let has_reason = reason_part.is_some_and(|r| {
            let r = r.trim();
            r.strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                // The comment text has literal quotes (comments are not
                // masked); require something inside them.
                .is_some_and(|v| !v.trim().trim_matches('"').trim().is_empty())
        });
        out.push(Allow { rule: rule_part.trim().to_owned(), has_reason });
    }
    out
}

/// True when `needle` occurs in `hay` as a whole token (not embedded in
/// a larger identifier).
pub fn has_token(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when a `==`/`!=` on this masked code line compares against a
/// float literal on either side (N1).
pub fn float_literal_comparison(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        if two == b"==" || two == b"!=" {
            // `<=`, `>=`, `!=...` handled: only reject `===`-like runs
            // and comparison-assignment lookalikes by checking the
            // neighbors are not themselves operator characters.
            let prev_op = i > 0 && matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!');
            let next_op = i + 2 < bytes.len() && bytes[i + 2] == b'=';
            if !prev_op && !next_op {
                let left = token_before(code, i);
                let right = token_after(code, i + 2);
                if is_float_literal(&left) || is_float_literal(&right) {
                    return true;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

/// The contiguous literal-ish token ending just before byte `end`.
fn token_before(code: &str, end: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = end;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (is_ident_byte(bytes[i - 1]) || bytes[i - 1] == b'.') {
        i -= 1;
    }
    // A literal preceded by an identifier char or `.` is a field access
    // (`t.0`), not a float literal: include that context so the
    // pattern check rejects it.
    code[i..stop].to_owned()
}

/// The contiguous literal-ish token starting at/after byte `start`.
fn token_after(code: &str, start: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'-' {
        i += 1;
    }
    let from = i;
    while i < bytes.len() && (is_ident_byte(bytes[i]) || bytes[i] == b'.') {
        i += 1;
    }
    code[from..i].to_owned()
}

/// Whether a token is a float literal (`1.0`, `2.`, `.5`, `1e-3`,
/// `1.5f64`), as opposed to an integer, an identifier, or a tuple-field
/// access like `pair.0`.
pub fn is_float_literal(tok: &str) -> bool {
    let tok = tok.strip_suffix("f64").or_else(|| tok.strip_suffix("f32")).unwrap_or(tok);
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let mut saw_digit = false;
    let mut saw_dot = false;
    let mut saw_exp = false;
    let mut chars = tok.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' if !saw_dot && !saw_exp => saw_dot = true,
            'e' | 'E' if saw_digit && !saw_exp => {
                saw_exp = true;
                if matches!(chars.peek(), Some('+') | Some('-')) {
                    chars.next();
                }
            }
            _ => return false,
        }
    }
    saw_digit && (saw_dot || saw_exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique() {
        for (i, a) in CATALOG.iter().enumerate() {
            for b in &CATALOG[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
        assert!(rule("D1").is_some());
        assert!(rule("Z9").is_none());
    }

    #[test]
    fn allow_parsing_with_and_without_reason() {
        let a = parse_allows(" lint: allow(D1, reason = \"sorted drain below\")");
        assert_eq!(a, vec![Allow { rule: "D1".into(), has_reason: true }]);
        let b = parse_allows(" lint: allow(P1)");
        assert_eq!(b, vec![Allow { rule: "P1".into(), has_reason: false }]);
        let c = parse_allows(" lint: allow(N1, reason = \"\")");
        assert!(!c[0].has_reason, "empty reason must not count");
        assert!(parse_allows("nothing here").is_empty());
        // Prose about the syntax is not a directive.
        assert!(parse_allows("see `lint: allow(D1, reason = \"x\")` for syntax").is_empty());
    }

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("x.unwrap()", "unwrap"));
        assert!(!has_token("x.unwrap_or(1)", "unwrap"));
    }

    #[test]
    fn float_comparisons_detected() {
        assert!(float_literal_comparison("if x == 0.0 {"));
        assert!(float_literal_comparison("if 1.5 != y {"));
        assert!(float_literal_comparison("a == 1e-9"));
        assert!(float_literal_comparison("a == -2.5"));
        assert!(float_literal_comparison("a == 3.0f64"));
    }

    #[test]
    fn non_float_comparisons_ignored() {
        assert!(!float_literal_comparison("if x == 0 {"));
        assert!(!float_literal_comparison("if a.0 == b.1 {"));
        assert!(!float_literal_comparison("if pair.dst_ports.0 == pair.dst_ports.1 {"));
        assert!(!float_literal_comparison("x <= 0.5"));
        assert!(!float_literal_comparison("x >= 0.5"));
        assert!(!float_literal_comparison("let y = x; // no comparison"));
    }

    #[test]
    fn float_literal_shapes() {
        for ok in ["1.0", "0.", "2.5e3", "1e-9", "1.5f64", "3f32"] {
            if ok == "3f32" {
                // Integer with suffix: no dot, no exponent — not
                // detected, and that is fine (comparing `3f32` is the
                // integer-exact case).
                assert!(!is_float_literal(ok));
            } else {
                assert!(is_float_literal(ok), "{ok}");
            }
        }
        for bad in ["10", "x", "a.0", "ports.1", "", ".", "1.2.3"] {
            assert!(!is_float_literal(bad), "{bad}");
        }
    }
}
